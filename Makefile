GO ?= go

.PHONY: all build test race vet bench fmt ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/obs/ ./internal/pipeline/

fmt:
	gofmt -l -w cmd internal examples

ci: build vet race
