GO ?= go

.PHONY: all build test race race-stress vet bench fmt cover staticcheck govulncheck lint-metrics ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-stress re-runs the concurrency suites (snapshot isolation,
# interleaved reader/writer query stress, shutdown drains, fleet monitor
# ingest/sweep/federate) under the race detector with caching disabled,
# so an interleaving-dependent regression cannot hide behind a cached
# pass.
race-stress:
	$(GO) test -race -count=1 -run 'Concurrent|Snapshot|Stress' ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/obs/ ./internal/pipeline/
	$(GO) test -run=NONE -bench=BenchmarkTrajstoreWritePath -benchtime=2s .
	$(GO) test -run=NONE -bench=BenchmarkRPCMiddlewareOverhead -benchtime=1s -benchmem ./internal/transport/
	$(GO) test -run=NONE -bench=BenchmarkQueryPath -benchtime=2s ./internal/query/
	$(GO) test -run=NONE -bench=BenchmarkFramestore -benchtime=2s ./internal/framestore/

fmt:
	gofmt -l -w cmd internal examples

# cover runs the suite with coverage and then re-runs the goroutine-leak
# shutdown tests verbosely, failing if any of them was skipped (a skipped
# leak check must never pass CI silently).
cover:
	$(GO) test -cover ./...
	@out=$$($(GO) test -v -count=1 -run 'Leak' ./internal/transport/ ./internal/core/ 2>&1); \
	status=$$?; \
	echo "$$out"; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	if echo "$$out" | grep -q -e '--- SKIP' -e 'no tests to run'; then \
		echo 'goroutine-leak checks were skipped' >&2; exit 1; \
	fi

# staticcheck runs honnef.co/go/tools if the binary is on PATH and skips
# with a warning otherwise, so local ci works in environments that cannot
# install tools; the CI workflow installs it explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo 'staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)' >&2; \
	fi

# govulncheck scans dependencies (here: just the stdlib) for known
# vulnerabilities, with the same skip-if-not-installed escape hatch as
# staticcheck for offline environments.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo 'govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)' >&2; \
	fi

# lint-metrics enforces the metric naming conventions (coralpie_ prefix,
# _total/_seconds/_bytes suffixes, no reserved histogram suffixes) over
# the registries the system actually wires — see
# internal/obs/lint_wired_test.go, which boots a full monitored sim.
lint-metrics:
	$(GO) test -count=1 -run 'Lint' ./internal/obs/

ci: build vet staticcheck govulncheck lint-metrics race race-stress cover
