// Quickstart: the smallest end-to-end Coral-Pie deployment — three
// cameras on a corridor, one vehicle driving through, and a trajectory
// query at the end.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	coralpie "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A road network: five intersections in a line, 150 m apart.
	graph, nodes, err := coralpie.Corridor(5, 150, coralpie.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		return err
	}

	// 2. A system: topology server, trajectory store, frame store, and a
	//    simulated network, all on a deterministic virtual clock.
	sys, err := coralpie.NewSystem(coralpie.Config{Graph: graph, Seed: 1})
	if err != nil {
		return err
	}

	// 3. Cameras at intersections 0, 2, 4. Each camera gets its own
	//    processing node: detector, SORT tracker, feature extraction,
	//    candidate pool, and protocol endpoints.
	for _, i := range []int{0, 2, 4} {
		if err := sys.AddCameraAt(fmt.Sprintf("cam%d", i), nodes[i], 0); err != nil {
			return err
		}
	}

	// 4. One red vehicle driving the whole corridor at 15 m/s.
	err = sys.World().AddVehicle(coralpie.VehicleSpec{
		ID:       "red-sedan",
		Color:    coralpie.PaletteColor(0),
		SpeedMPS: 15,
		Route:    nodes,
		Depart:   5 * time.Second,
	})
	if err != nil {
		return err
	}

	// 5. Run: cameras register with the topology server via heartbeats,
	//    receive their MDCS tables, and process every frame.
	sys.Start(context.Background())
	sys.Run(2 * time.Minute)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		return err
	}

	// 6. Query the trajectory graph: start from the vehicle's first
	//    detection event and walk the space-time track.
	store := sys.TrajStore()
	fmt.Printf("trajectory graph: %d events, %d re-identification links\n",
		store.NumVertices(), store.NumEdges())

	start, err := store.Vertex(1)
	if err != nil {
		return err
	}
	track, err := coralpie.BestTrack(store, start.Event.ID, coralpie.DefaultTraceLimits())
	if err != nil {
		return err
	}
	fmt.Print("space-time track:")
	for _, hop := range track.Hops {
		fmt.Printf("  %s@%s", hop.Camera, hop.Time.Format("15:04:05"))
	}
	fmt.Printf("\n(%d sightings over %v, mean link distance %.3f)\n",
		len(track.Hops), track.Duration.Round(time.Second), track.MeanWeight)
	return nil
}
