// Selfhealing: kill a camera mid-run and watch the topology server heal
// the network (paper Section 5.4) — the upstream camera's MDCS switches
// to the next survivor, and vehicles passing afterward are re-identified
// across the gap. Evidence frames are replicated to two frame stores,
// and one store is killed alongside the camera: every frame still lands
// on the survivor, so trajectory verification loses nothing.
//
// The in-sim fleet monitor watches the same outage from the health
// plane: node_down alerts fire for the dead camera and frame store once
// their heartbeats stop, and resolve after both are recovered late in
// the run.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	coralpie "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	graph, nodes, err := coralpie.Corridor(5, 150, coralpie.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		return err
	}
	sys, err := coralpie.NewSystem(coralpie.Config{
		Graph:             graph,
		Seed:              3,
		HeartbeatInterval: 2 * time.Second,
		// Ship every frame to two replicated frame stores so losing one
		// mid-run costs no evidence.
		StoreFrames:   true,
		FrameReplicas: 2,
		// Run the fleet monitor on simulated time: every node pushes
		// heartbeats, and node_down alerts track the outage below.
		EnableMonitor: true,
	})
	if err != nil {
		return err
	}
	for i, node := range nodes {
		if err := sys.AddCameraAt(fmt.Sprintf("cam%d", i), node, 0); err != nil {
			return err
		}
	}

	// Two vehicles: one before the failure, one after.
	for v, depart := range []time.Duration{5 * time.Second, 80 * time.Second} {
		err := sys.World().AddVehicle(coralpie.VehicleSpec{
			ID:       fmt.Sprintf("veh-%d", v),
			Color:    coralpie.PaletteColor(v),
			SpeedMPS: 15,
			Route:    nodes,
			Depart:   depart,
		})
		if err != nil {
			return err
		}
	}

	sys.Start(context.Background())
	sys.Run(10 * time.Second)

	cam1, err := sys.Node("cam1")
	if err != nil {
		return err
	}
	fmt.Printf("t=%-4v cam1 east MDCS: %s\n", sys.Sim().Now().Round(time.Second), mdcsOf(cam1))

	// Kill cam2 at t=40s: heartbeats stop, the topology server notices,
	// and pushes new MDCS tables to the affected cameras. Frame store 0
	// dies with it — replicated puts keep landing on store 1.
	sys.Sim().Schedule(30*time.Second, func() {
		if err := sys.FailCamera("cam2"); err != nil {
			log.Printf("fail cam2: %v", err)
			return
		}
		if err := sys.FailFrameStore(0); err != nil {
			log.Printf("fail frame store: %v", err)
			return
		}
		fmt.Printf("t=%-4v camera cam2 and frame store 0 FAILED\n", sys.Sim().Now().Round(time.Second))
	})

	sys.Run(40 * time.Second) // past the failure + healing
	fmt.Printf("t=%-4v cam1 east MDCS: %s (healed around cam2)\n",
		sys.Sim().Now().Round(time.Second), mdcsOf(cam1))
	printAlerts(sys, "after failure")

	// Recover both nodes at t=110s — after veh-1 has already driven past
	// the cam2 gap, so its trajectory below still heals around the hole.
	sys.Sim().Schedule(110*time.Second-sys.Sim().Now(), func() {
		if err := sys.RecoverCamera("cam2"); err != nil {
			log.Printf("recover cam2: %v", err)
			return
		}
		if err := sys.RecoverFrameStore(0); err != nil {
			log.Printf("recover frame store: %v", err)
			return
		}
		fmt.Printf("t=%-4v camera cam2 and frame store 0 RECOVERED\n", sys.Sim().Now().Round(time.Second))
	})

	sys.Run(sys.World().LastVehicleDone() + 30*time.Second - sys.Sim().Now())
	printAlerts(sys, "after recovery")
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		return err
	}

	// The surviving frame-store replica kept receiving evidence after
	// store 0 went dark.
	stores := sys.FrameStores()
	fmt.Printf("\nframe replicas after outage: store0=%d frames (died at t=40s), store1=%d frames\n",
		totalFrames(stores[0]), totalFrames(stores[1]))

	// The second vehicle's track skips cam2 but continues beyond it.
	store := sys.TrajStore()
	fmt.Printf("\ntrajectory graph: %d events, %d links\n", store.NumVertices(), store.NumEdges())
	for vid := int64(1); vid <= int64(store.NumVertices()); vid++ {
		v, err := store.Vertex(vid)
		if err != nil {
			continue
		}
		if v.Event.TruthID != "veh-1" || len(store.InEdges(vid)) > 0 {
			continue
		}
		paths, err := store.Trajectory(vid, coralpie.DefaultTraceLimits())
		if err != nil {
			return err
		}
		for _, path := range paths {
			fmt.Print("veh-1 (after failure):")
			for _, pv := range path {
				vv, err := store.Vertex(pv)
				if err != nil {
					return err
				}
				fmt.Printf(" %s", vv.Event.CameraID)
			}
			fmt.Println(" — cam2 is absent, the chain heals around it")
		}
		break
	}
	return nil
}

// printAlerts shows the monitor's current view of the outage: node_down
// alerts fire while heartbeats are missing and resolve once they return.
func printAlerts(sys *coralpie.System, when string) {
	active, _ := sys.Monitor().Alerts()
	fmt.Printf("t=%-4v fleet alerts (%s):\n", sys.Sim().Now().Round(time.Second), when)
	if len(active) == 0 {
		fmt.Println("  (none)")
		return
	}
	for _, a := range active {
		fmt.Printf("  [%s] %s on %s: %s\n", a.State, a.Rule, a.Node, a.Reason)
	}
}

func totalFrames(store *coralpie.FrameStore) int {
	n := 0
	for _, cam := range store.Cameras() {
		n += store.Count(cam)
	}
	return n
}

func mdcsOf(node *coralpie.Node) string {
	refs := node.Topology().Lookup(coralpie.East)
	if len(refs) == 0 {
		return "(empty)"
	}
	out := ""
	for i, r := range refs {
		if i > 0 {
			out += ", "
		}
		out += r.ID
	}
	return out
}
