// Cityscale: a large deployment on the 37-intersection campus network —
// cameras at every intersection, vehicles on random routes, demonstrating
// the scalability properties of Section 5.5: bounded MDCS sizes and
// geo-local communication regardless of deployment size.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	coralpie "repro"
	"repro/internal/trajstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	graph, sites, err := coralpie.Campus()
	if err != nil {
		return err
	}
	sys, err := coralpie.NewSystem(coralpie.Config{
		Graph: graph,
		Seed:  7,
		// Large sweep: drop the frame rate to keep the run quick.
		CameraFPS: 10,
	})
	if err != nil {
		return err
	}

	var camIDs []string
	for i, site := range sites {
		id := fmt.Sprintf("cam%02d", i)
		if err := sys.AddCameraAt(id, site, 0); err != nil {
			return err
		}
		camIDs = append(camIDs, id)
	}

	rng := rand.New(rand.NewSource(7))
	const vehicles = 25
	for v := 0; v < vehicles; v++ {
		start := sites[rng.Intn(len(sites))]
		route, err := coralpie.RandomRoute(graph, rng, start, 6+rng.Intn(6))
		if err != nil {
			return err
		}
		err = sys.World().AddVehicle(coralpie.VehicleSpec{
			ID:       fmt.Sprintf("veh-%02d", v),
			Color:    coralpie.PaletteColor(v),
			SpeedMPS: 13,
			Route:    route,
			Depart:   time.Duration(v) * 2 * time.Second,
		})
		if err != nil {
			return err
		}
	}

	horizon := sys.World().LastVehicleDone() + 15*time.Second
	fmt.Printf("37 cameras, %d vehicles on random routes, %v of virtual time\n",
		vehicles, horizon.Round(time.Second))
	sys.Start(context.Background())
	sys.Run(horizon)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		return err
	}

	// Scalability evidence: with a camera at every intersection, every
	// MDCS has size 1 and communication stays geo-local.
	avg, err := graph.AverageMDCSSize()
	if err != nil {
		return err
	}
	fmt.Printf("average MDCS size across 37 cameras: %.2f (dense deployment -> 1)\n", avg)

	var totalEvents, totalInforms, totalMatches int64
	maxPool := 0
	for _, id := range camIDs {
		node, err := sys.Node(id)
		if err != nil {
			return err
		}
		st := node.Stats()
		totalEvents += st.EventsGenerated
		totalInforms += st.InformsSent
		totalMatches += st.ReidMatches
		if s := node.Pool().Size(); s > maxPool {
			maxPool = s
		}
	}
	fmt.Printf("events generated: %d, informs sent: %d (%.2f per event — bounded)\n",
		totalEvents, totalInforms, float64(totalInforms)/float64(max(totalEvents, 1)))
	fmt.Printf("re-identifications: %d, largest candidate pool: %d entries\n",
		totalMatches, maxPool)
	fmt.Printf("trajectory graph: %d events, %d links\n",
		sys.TrajStore().NumVertices(), sys.TrajStore().NumEdges())

	// Query the finished graph the way an operator would: serve it over
	// loopback TCP and ask the server-side query engine — one round trip
	// per question, answered against a consistent snapshot.
	srv, err := trajstore.ServeWith(sys.TrajStore(), "127.0.0.1:0", trajstore.ServerOptions{})
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	client, err := trajstore.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sightings, err := client.SightingsContext(ctx, "veh-00", 0)
	if err != nil {
		return err
	}
	fmt.Printf("veh-00 ground truth: %d sightings\n", len(sightings))
	if len(sightings) > 0 {
		tracks, err := client.ReconstructVertexContext(ctx, sightings[0].VertexID,
			trajstore.DefaultTraceLimits())
		if err != nil {
			return err
		}
		fmt.Printf("server-side reconstruct from its first sighting: %d candidate track(s)",
			len(tracks))
		if len(tracks) > 0 {
			fmt.Printf(", best spans %d hops over %v",
				len(tracks[0].Hops), tracks[0].Duration.Round(time.Second))
		}
		fmt.Println()
	}
	return nil
}
