// Campus: the paper's five-camera evaluation scenario — a camera corridor
// with realistic traffic (distinct vehicle colors, a traffic light that
// bunches arrivals, detection noise), reporting the per-camera statistics
// the paper's Section 5 tables are built from.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	coralpie "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	graph, nodes, err := coralpie.Corridor(9, 120, coralpie.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		return err
	}
	sys, err := coralpie.NewSystem(coralpie.Config{
		Graph:             graph,
		Seed:              2020,
		HeartbeatInterval: 2 * time.Second,
	})
	if err != nil {
		return err
	}

	// Five cameras on alternating intersections, like the five campus
	// cameras along a street.
	var camIDs []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("cam%d", i+1)
		if err := sys.AddCameraAt(id, nodes[2*i], 0); err != nil {
			return err
		}
		camIDs = append(camIDs, id)
	}

	// A traffic light mid-corridor bunches vehicles the way Figure 10(a)
	// shows.
	err = sys.World().AddTrafficLight(coralpie.TrafficLight{
		Node:      nodes[3],
		Period:    45 * time.Second,
		GreenFrac: 0.4,
	})
	if err != nil {
		return err
	}

	// Twelve vehicles, distinct colors, departing every 4 s.
	for v := 0; v < 12; v++ {
		err := sys.World().AddVehicle(coralpie.VehicleSpec{
			ID:       fmt.Sprintf("veh-%02d", v),
			Color:    coralpie.PaletteColor(v),
			SpeedMPS: 14,
			Route:    nodes,
			Depart:   time.Duration(v) * 4 * time.Second,
		})
		if err != nil {
			return err
		}
	}

	horizon := sys.World().LastVehicleDone() + 20*time.Second
	fmt.Printf("running the 5-camera campus scenario for %v of virtual time\n",
		horizon.Round(time.Second))
	sys.Start(context.Background())
	sys.Run(horizon)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		return err
	}

	fmt.Printf("\n%-8s %8s %8s %12s %12s %12s\n",
		"camera", "frames", "events", "informsSent", "informsRecv", "reidMatched")
	for _, id := range camIDs {
		node, err := sys.Node(id)
		if err != nil {
			return err
		}
		st := node.Stats()
		fmt.Printf("%-8s %8d %8d %12d %12d %12d\n",
			id, st.FramesProcessed, st.EventsGenerated, st.InformsSent,
			st.InformsReceived, st.ReidMatches)
	}

	store := sys.TrajStore()
	fmt.Printf("\ntrajectory graph: %d events, %d links\n", store.NumVertices(), store.NumEdges())

	// Reconstruct one vehicle's track from its first event.
	v, err := store.FindByEventID("cam1#1")
	if err != nil {
		// Event numbering depends on traffic; fall back to vertex 1.
		v, err = store.Vertex(1)
		if err != nil {
			return err
		}
	}
	paths, err := store.Trajectory(v.ID, coralpie.DefaultTraceLimits())
	if err != nil {
		return err
	}
	fmt.Printf("track through %s (%d candidate path(s)):\n", v.Event.ID, len(paths))
	for _, path := range paths {
		for i, vid := range path {
			pv, err := store.Vertex(vid)
			if err != nil {
				return err
			}
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(pv.Event.CameraID)
		}
		fmt.Println()
	}
	return nil
}
