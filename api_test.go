package coralpie

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd drives the package through its exported surface
// only, the way a downstream user would: build a road network, assemble a
// system, add cameras and traffic, run, and query trajectories.
func TestPublicAPIEndToEnd(t *testing.T) {
	graph, nodes, err := Corridor(5, 150, Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{Graph: graph, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4} {
		if err := sys.AddCameraAt(fmt.Sprintf("cam%d", i), nodes[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 2; v++ {
		err := sys.World().AddVehicle(VehicleSpec{
			ID:       fmt.Sprintf("veh-%d", v),
			Color:    PaletteColor(v),
			SpeedMPS: 15,
			Route:    nodes,
			Depart:   time.Duration(v) * 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sys.Start(context.Background())
	sys.Run(sys.World().LastVehicleDone() + 20*time.Second)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}

	store := sys.TrajStore()
	if store.NumVertices() != 6 || store.NumEdges() != 4 {
		t.Fatalf("graph: %d vertices %d edges", store.NumVertices(), store.NumEdges())
	}
	v, err := store.Vertex(1)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := store.Trajectory(v.ID, DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Fatalf("trajectory = %v", paths)
	}
}

func TestPublicAPIGraphHelpers(t *testing.T) {
	graph, sites, err := Campus()
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 37 {
		t.Fatalf("campus sites = %d", len(sites))
	}
	rng := rand.New(rand.NewSource(5))
	route, err := RandomRoute(graph, rng, sites[0], 5)
	if err != nil || len(route) < 2 {
		t.Fatalf("route = %v err %v", route, err)
	}
	g2, ids, err := Grid(3, 3, 100, Point{Lat: 33, Lon: -84})
	if err != nil || g2.NumNodes() != 9 || len(ids) != 9 {
		t.Fatalf("grid: %v", err)
	}
	if _, err := NewSimDetector(DefaultSimDetectorConfig(1)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDirectionsAndColors(t *testing.T) {
	if East.Opposite() != West || North.Opposite() != South {
		t.Error("direction constants miswired")
	}
	if PaletteColor(0) == PaletteColor(1) {
		t.Error("palette colors should differ")
	}
	store := NewMemTrajStore()
	if store.NumVertices() != 0 {
		t.Error("fresh store not empty")
	}
	h1 := Histogram{Bins: make([]float64, 512)}
	h1.Bins[0] = 1
	h2 := Histogram{Bins: make([]float64, 512)}
	h2.Bins[511] = 1
	d, err := Bhattacharyya(h1, h2)
	if err != nil || d < 0.99 {
		t.Errorf("Bhattacharyya = %v err %v", d, err)
	}
}

// TestExperimentWrappers spot-checks the cheap experiment re-exports.
func TestExperimentWrappers(t *testing.T) {
	t1, err := RunTable1()
	if err != nil || t1.PipelinedFPS < 10 {
		t.Errorf("RunTable1: %v %v", t1.PipelinedFPS, err)
	}
	f12a, err := RunFigure12a(1)
	if err != nil || len(f12a.Points) != 37 {
		t.Errorf("RunFigure12a: %v", err)
	}
	single, err := RunAblationSingleDevice()
	if err != nil || single.DualFPS <= single.SingleFPS {
		t.Errorf("RunAblationSingleDevice: %+v %v", single, err)
	}
}
