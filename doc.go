// Package coralpie is a from-scratch Go implementation of Coral-Pie, the
// geo-distributed edge-compute system for space-time vehicle tracking
// described in:
//
//	Zhuangdi Xu, Harshil S Shah, Umakishore Ramachandran.
//	"Coral-Pie: A Geo-Distributed Edge-compute Solution for Space-Time
//	Vehicle Tracking." Middleware 2020.
//	https://doi.org/10.1145/3423211.3425686
//
// Coral-Pie tracks every vehicle, all the time, at video ingestion time:
// each camera's dedicated compute runs detection, SORT tracking, and
// feature extraction on every frame; detection events flow to the
// camera's minimum downstream camera set (MDCS) over the
// informing/confirming protocol; re-identification stitches per-camera
// events into space-time trajectories stored in a weighted graph; and a
// cloud topology server self-heals the camera network on failures.
//
// The package exposes the system's building blocks — the road-network
// graph with MDCS computation, the pluggable vision stack (detector,
// SORT tracker, adaptive histograms, Bhattacharyya re-identification),
// the inter-camera protocol, the trajectory and frame stores, the camera
// topology server — plus a deterministic simulation harness (System)
// that assembles a full deployment over a discrete-event simulator, and
// a live TCP runtime assembled by the cmd/ binaries.
//
// # Quick start
//
//	g, ids, _ := coralpie.Corridor(5, 150, coralpie.Point{Lat: 33.77, Lon: -84.39})
//	sys, _ := coralpie.NewSystem(coralpie.Config{Graph: g})
//	for i, id := range ids {
//		_ = sys.AddCameraAt(fmt.Sprintf("cam%d", i), id, 0)
//	}
//	_ = sys.World().AddVehicle(coralpie.VehicleSpec{
//		ID: "veh-1", Color: coralpie.PaletteColor(0), SpeedMPS: 15, Route: ids,
//	})
//	sys.Start(context.Background())
//	sys.Run(2 * time.Minute)
//	sys.Stop()
//	_ = sys.FlushAll()
//	// Query the trajectory graph:
//	v, _ := sys.TrajStore().FindByEventID("cam0#1")
//	paths, _ := sys.TrajStore().Trajectory(v.ID, coralpie.DefaultTraceLimits())
//
// See examples/ for complete runnable programs and DESIGN.md for the
// system inventory and the per-experiment reproduction index.
package coralpie
