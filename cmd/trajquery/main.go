// Command trajquery is the query interface the paper defers to future
// work (Section 8): it connects to a running trajectory store server and
// reconstructs the space-time track of a vehicle from any known sighting.
//
// Usage:
//
//	trajquery -server 127.0.0.1:7001 -event cam1#42
//	trajquery -server 127.0.0.1:7001 -vertex 7 -max-depth 16
//	trajquery -server 127.0.0.1:7001 -stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/protocol"
	"repro/internal/query"
	"repro/internal/rpc"
	"repro/internal/trajstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		server   = flag.String("server", "127.0.0.1:7001", "trajectory store server address")
		eventID  = flag.String("event", "", "start from a detection event id (camera#track)")
		vertexID = flag.Int64("vertex", 0, "start from a trajectory-graph vertex id")
		maxDepth = flag.Int("max-depth", 64, "traversal depth limit")
		maxPaths = flag.Int("max-paths", 32, "candidate path limit")
		stats    = flag.Bool("stats", false, "print store statistics and exit")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-RPC deadline for store calls (overrides -rpc-call-timeout)")
	)
	rpcFlags := rpc.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := trajstore.ClientConfigFromFlags(rpcFlags)
	cfg.CallTimeout = *timeout
	client, err := trajstore.DialContext(ctx, *server, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	if *stats {
		vertices, edges, err := client.StatsContext(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("trajectory graph: %d events, %d re-identification links\n", vertices, edges)
		return nil
	}

	var start trajstore.Vertex
	switch {
	case *eventID != "":
		start, err = client.FindByEventIDContext(ctx, protocol.EventID(*eventID))
	case *vertexID > 0:
		start, err = client.VertexContext(ctx, *vertexID)
	default:
		return fmt.Errorf("one of -event, -vertex, or -stats is required")
	}
	if err != nil {
		return err
	}

	tracks, err := query.ReconstructFromVertex(client, start.ID, trajstore.TraceLimits{
		MaxDepth: *maxDepth,
		MaxPaths: *maxPaths,
	})
	if err != nil {
		return err
	}

	fmt.Printf("sighting: %s at %s (%s)\n",
		start.Event.ID, start.Event.CameraID,
		start.Event.Timestamp.Format("2006-01-02 15:04:05 MST"))
	fmt.Printf("%d candidate space-time track(s), most plausible first:\n", len(tracks))
	for i, track := range tracks {
		hops := make([]string, 0, len(track.Hops))
		for _, h := range track.Hops {
			hops = append(hops, fmt.Sprintf("%s@%s", h.Camera, h.Time.Format("15:04:05")))
		}
		fmt.Printf("  %2d. %s  (%d hops, %v, mean link distance %.3f)\n",
			i+1, strings.Join(hops, " -> "), len(track.Hops),
			track.Duration.Round(time.Second), track.MeanWeight)
	}
	return nil
}
