// Command trajquery is the query interface the paper defers to future
// work (Section 8): it connects to a running trajectory store server and
// reconstructs the space-time track of a vehicle from any known sighting.
//
// By default the reconstruction executes inside the server (one round
// trip against a consistent snapshot via the reconstruct/best/sightings
// ops); -fallback walks the graph client-side over the per-vertex ops,
// which stays wire-compatible with servers predating the query engine.
//
// Usage:
//
//	trajquery -server 127.0.0.1:7001 -event cam1#42
//	trajquery -server 127.0.0.1:7001 -event cam1#42 -best
//	trajquery -server 127.0.0.1:7001 -vertex 7 -max-depth 16
//	trajquery -server 127.0.0.1:7001 -vehicle veh-03
//	trajquery -server 127.0.0.1:7001 -event cam1#42 -fallback
//	trajquery -server 127.0.0.1:7001 -stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/protocol"
	"repro/internal/query"
	"repro/internal/rpc"
	"repro/internal/trajstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		server   = flag.String("server", "127.0.0.1:7001", "trajectory store server address")
		eventID  = flag.String("event", "", "start from a detection event id (camera#track)")
		vertexID = flag.Int64("vertex", 0, "start from a trajectory-graph vertex id")
		vehicle  = flag.String("vehicle", "", "list the ground-truth sightings of a vehicle id")
		best     = flag.Bool("best", false, "print only the top-ranked track")
		fallback = flag.Bool("fallback", false, "reconstruct client-side over the per-vertex ops (works against old servers)")
		maxDepth = flag.Int("max-depth", 64, "traversal depth limit")
		maxPaths = flag.Int("max-paths", 32, "candidate path limit")
		stats    = flag.Bool("stats", false, "print store statistics and exit")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-RPC deadline for store calls (overrides -rpc-call-timeout)")
	)
	rpcFlags := rpc.RegisterFlags(flag.CommandLine)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := trajstore.ClientConfigFromFlags(rpcFlags)
	cfg.CallTimeout = *timeout
	client, err := trajstore.DialContext(ctx, *server, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	if *stats {
		vertices, edges, err := client.StatsContext(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("trajectory graph: %d events, %d re-identification links\n", vertices, edges)
		return nil
	}

	if *vehicle != "" {
		hops, err := client.SightingsContext(ctx, *vehicle, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%d ground-truth sighting(s) of %s:\n", len(hops), *vehicle)
		for i, h := range hops {
			fmt.Printf("  %2d. %s at %s (vertex %d)\n",
				i+1, h.Camera, h.Time.Format("2006-01-02 15:04:05 MST"), h.VertexID)
		}
		return nil
	}

	limits := trajstore.TraceLimits{MaxDepth: *maxDepth, MaxPaths: *maxPaths}

	var start trajstore.Vertex
	switch {
	case *eventID != "":
		start, err = client.FindByEventIDContext(ctx, protocol.EventID(*eventID))
	case *vertexID > 0:
		start, err = client.VertexContext(ctx, *vertexID)
	default:
		return fmt.Errorf("one of -event, -vertex, -vehicle, or -stats is required")
	}
	if err != nil {
		return err
	}

	var tracks []query.Track
	switch {
	case *fallback:
		// Client-side walk over the per-vertex ops (N+1 round trips,
		// memoized per query) — the path old servers still speak.
		tracks, err = query.ReconstructFromVertex(client, start.ID, limits)
	case *best:
		var track trajstore.Track
		track, err = client.BestContext(ctx, start.Event.ID, limits)
		tracks = []query.Track{track}
	default:
		tracks, err = client.ReconstructVertexContext(ctx, start.ID, limits)
	}
	if err != nil {
		return err
	}

	fmt.Printf("sighting: %s at %s (%s)\n",
		start.Event.ID, start.Event.CameraID,
		start.Event.Timestamp.Format("2006-01-02 15:04:05 MST"))
	fmt.Printf("%d candidate space-time track(s), most plausible first:\n", len(tracks))
	for i, track := range tracks {
		hops := make([]string, 0, len(track.Hops))
		for _, h := range track.Hops {
			hops = append(hops, fmt.Sprintf("%s@%s", h.Camera, h.Time.Format("15:04:05")))
		}
		fmt.Printf("  %2d. %s  (%d hops, %v, mean link distance %.3f)\n",
			i+1, strings.Join(hops, " -> "), len(track.Hops),
			track.Duration.Round(time.Second), track.MeanWeight)
	}
	return nil
}
