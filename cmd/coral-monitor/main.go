// Command coral-monitor runs Coral-Pie's fleet health plane: it
// receives heartbeats from every node (cameras, topology server,
// stores), tracks per-node liveness, federates the fleet's metrics, and
// evaluates alert rules. The whole-deployment view is served over HTTP:
//
//	/cluster          per-node liveness and transition history (JSON)
//	/cluster/metrics  federated Prometheus text with a node label
//	/cluster/alerts   firing/resolved alert state and history (JSON)
//
// Usage:
//
//	coral-monitor -listen 0.0.0.0:7100 -obs-listen 0.0.0.0:9100 \
//	  -liveness-timeout 15s \
//	  -alert 'drops=rate(coralpie_transport_lost_total)>0.5' \
//	  -alert 'rpc-errors=coralpie_rpc_errors_total>=10'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		obs.DefaultLogger().WithComponent("coral-monitor").Error(err.Error())
		os.Exit(1)
	}
}

func run() error {
	var rules fleet.RuleFlag
	var (
		listen    = flag.String("listen", "127.0.0.1:7100", "heartbeat address to listen on")
		obsListen = flag.String("obs-listen", "127.0.0.1:9100", "HTTP address for /cluster, /cluster/metrics, /cluster/alerts plus the monitor's own /metrics, /healthz, /debug/obs (empty = disabled)")
		obsPProf  = flag.Bool("obs-pprof", false, "also mount net/http/pprof profiling handlers on the telemetry server")
		timeout   = flag.Duration("liveness-timeout", 15*time.Second, "declare a node dead after this long without a heartbeat")
		sweep     = flag.Duration("sweep-interval", 2*time.Second, "how often to run the liveness/alert sweep")
		history   = flag.Int("max-transitions", 1024, "liveness and alert transition history bound")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		drain     = flag.Duration("drain-timeout", 5*time.Second, "how long a SIGINT/SIGTERM shutdown may spend draining in-flight pushes")
	)
	flag.Var(&rules, "alert",
		"alert rule name=metric<op>value or name=rate(metric)<op>value (repeatable)")
	flag.Parse()

	baseLogger, err := obs.InitDefaultLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	logger := baseLogger.WithComponent("coral-monitor")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	obs.RegisterBuildInfo(obs.Default(), "coral-monitor", "coral-monitor")
	monitor := fleet.NewMonitor(fleet.MonitorConfig{
		LivenessTimeout: *timeout,
		Rules:           rules.Rules,
		Registry:        obs.Default(),
		Logger:          baseLogger,
		MaxTransitions:  *history,
	})

	srv, err := fleet.ServeWith(monitor, *listen, fleet.ServerOptions{Logger: logger})
	if err != nil {
		return err
	}
	logger.Info("fleet monitor listening", "addr", srv.Addr())

	var obsSrv *obs.Server
	if *obsListen != "" {
		mux := obs.NewMuxWith(obs.MuxConfig{
			Registry: obs.Default(),
			PProf:    *obsPProf,
			NamedChecks: []obs.NamedCheck{
				{Name: "heartbeat-listener", Check: func() error { return nil }},
			},
		})
		monitor.RegisterHTTP(mux)
		if obsSrv, err = obs.Serve(*obsListen, mux); err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		logger.Info("cluster view listening", "url", "http://"+obsSrv.Addr()+"/cluster")
	}

	ticker := time.NewTicker(*sweep)
	defer ticker.Stop()
	go func() {
		for {
			select {
			case <-ticker.C:
				monitor.Sweep()
			case <-ctx.Done():
				return
			}
		}
	}()

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C force-kills
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown", "err", err.Error())
	}
	if obsSrv != nil {
		if err := obsSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("telemetry shutdown", "err", err.Error())
		}
	}
	sum := monitor.Summary()
	logger.Info("shutting down",
		"nodes", fmt.Sprint(len(sum.Nodes)),
		"alive", fmt.Sprint(sum.Alive), "dead", fmt.Sprint(sum.Dead))
	return nil
}
