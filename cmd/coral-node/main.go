// Command coral-node runs one Coral-Pie camera node over real TCP: the
// per-camera continuous processing (detection, SORT tracking, feature
// extraction, the informing/confirming protocol, re-identification) plus
// the storage clients, fed by a synthetic camera stream.
//
// All nodes of a deployment simulate the same deterministic traffic on a
// shared corridor, anchored at a shared epoch, so cross-camera
// re-identification works across processes exactly as it would with real
// synchronized cameras. A typical 3-camera deployment:
//
//	coral-node -dump-graph corridor.json -corridor-cameras 3
//	topology-server -listen :7000 -graph corridor.json
//	trajstore-server -listen :7001
//	epoch=$(($(date +%s)+5))
//	coral-node -id cam0 -corridor-index 0 -listen :7100 -epoch $epoch &
//	coral-node -id cam1 -corridor-index 1 -listen :7101 -epoch $epoch &
//	coral-node -id cam2 -corridor-index 2 -listen :7102 -epoch $epoch &
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/camnode"
	"repro/internal/clock"
	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/framestore"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/reid"
	"repro/internal/roadnet"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/tracker"
	"repro/internal/trajstore"
	"repro/internal/transport"
	"repro/internal/vision"
)

func main() {
	if err := run(); err != nil {
		obs.DefaultLogger().WithComponent("coral-node").Error(err.Error())
		os.Exit(1)
	}
}

func run() error {
	var (
		id          = flag.String("id", "cam0", "camera identity")
		listen      = flag.String("listen", "127.0.0.1:0", "inter-camera listen address")
		topoAddr    = flag.String("topology", "127.0.0.1:7000", "topology server address")
		trajAddr    = flag.String("trajstore", "127.0.0.1:7001", "trajectory store address")
		frameAddr   = flag.String("framestore", "", "comma-separated frame store addresses; >1 replicates every frame to all of them (empty = do not store frames)")
		frameQuorum = flag.Int("framestore-quorum", 1, "replicas that must accept a frame for the send to count as delivered")
		heartbeat   = flag.Duration("heartbeat", 2*time.Second, "heartbeat interval")
		obsListen   = flag.String("obs-listen", "127.0.0.1:0", "telemetry HTTP address for /metrics, /healthz, /debug/obs, /debug/trace (empty = disabled)")
		obsPProf    = flag.Bool("obs-pprof", false, "also mount net/http/pprof profiling handlers on the telemetry server")

		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		traceOut    = flag.String("trace-out", "", "append finished trace spans as JSON lines to this file (empty = disabled)")
		traceSample = flag.Int("trace-sample", 1, "record every Nth trace root (1 = all)")

		cameras   = flag.Int("corridor-cameras", 3, "cameras on the shared demo corridor")
		index     = flag.Int("corridor-index", 0, "this node's position on the corridor")
		spacing   = flag.Float64("spacing", 150, "corridor intersection spacing in meters")
		vehicles  = flag.Int("vehicles", 8, "demo vehicles driving the corridor")
		seed      = flag.Int64("seed", 1, "traffic seed (must match across nodes)")
		duration  = flag.Duration("duration", time.Minute, "stream duration")
		epochUnix = flag.Int64("epoch", 0, "shared traffic epoch (unix seconds; 0 = now+3s)")

		dumpGraph = flag.String("dump-graph", "", "write the corridor road graph JSON here and exit")
		drain     = flag.Duration("drain-timeout", 5*time.Second, "how long a SIGINT/SIGTERM shutdown may spend draining in-flight work")
	)
	rpcFlags := rpc.RegisterFlags(flag.CommandLine)
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if fleetFlags.NodeID == "" {
		fleetFlags.NodeID = *id // the camera identity is the natural fleet identity
	}

	baseLogger, err := obs.InitDefaultLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	logger := baseLogger.WithComponent("coral-node").With("camera", *id)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	origin := geo.Point{Lat: 33.7756, Lon: -84.3963}
	graph, nodes, err := roadnet.Corridor(*cameras, *spacing, origin)
	if err != nil {
		return err
	}

	if *dumpGraph != "" {
		f, err := os.Create(*dumpGraph)
		if err != nil {
			return err
		}
		if err := graph.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d-intersection corridor graph to %s\n", graph.NumNodes(), *dumpGraph)
		return nil
	}

	if *index < 0 || *index >= len(nodes) {
		return fmt.Errorf("corridor-index %d out of [0,%d)", *index, len(nodes))
	}
	myNode, err := graph.Node(nodes[*index])
	if err != nil {
		return err
	}

	// Shared deterministic traffic: every node builds the identical world.
	world, camera, err := buildDemoWorld(graph, nodes, *index, *vehicles, *seed)
	if err != nil {
		return err
	}
	_ = world

	ep, err := transport.ListenTCPConfig(*listen, transport.TCPConfigFromFlags(rpcFlags))
	if err != nil {
		return err
	}
	ep.Use(obs.Default())
	// The ID prefix keeps span IDs globally unique across the deployment's
	// nodes, so a cross-camera trace assembles without collisions.
	tracer := obs.NewTracerWith(obs.TracerConfig{
		Clock:       clock.Real{},
		Capacity:    4096,
		IDPrefix:    *id + "-",
		SampleEvery: *traceSample,
	})
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer func() { _ = f.Close() }()
		tracer.SetSink(obs.NewJSONLWriter(f).Export)
	}

	trajCfg := trajstore.ClientConfigFromFlags(rpcFlags)
	trajCfg.Registry = obs.Default()
	trajClient, err := trajstore.DialContext(ctx, *trajAddr, trajCfg)
	if err != nil {
		return fmt.Errorf("trajectory store: %w", err)
	}
	defer func() { _ = trajClient.Close() }()
	// Buffer edge writes client-side: re-id edges flush in batches over
	// the add_batch op instead of one RPC each. Close drains the buffer
	// before the underlying client goes away.
	trajWriter := trajstore.NewBatchWriter(trajClient, trajstore.BatchWriterConfig{})
	defer func() { _ = trajWriter.Close() }()

	detector, err := vision.NewSimDetector(vision.DefaultSimDetectorConfig(*seed))
	if err != nil {
		return err
	}
	cfg := camnode.Config{
		CameraID:           *id,
		Position:           myNode.Pos,
		HeadingDeg:         0,
		TopologyServerAddr: *topoAddr,
		Detector:           detector,
		PostProcess:        vision.PostProcessConfig{MinConfidence: vision.DefaultMinConfidence},
		Tracker:            tracker.Config{MaxAge: 3, MinHits: 3, IoUThreshold: 0.25},
		Matcher:            reid.DefaultMatcherConfig(),
		Pool:               reid.DefaultPoolConfig(),
		TrajStore:          trajWriter,
		Clock:              clock.Real{},
		Registry:           obs.Default(),
		Tracer:             tracer,
	}
	if *frameAddr != "" {
		addrs := strings.Split(*frameAddr, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		if len(addrs) == 1 && *frameQuorum <= 1 {
			fsClient, err := framestore.NewClient(ep, addrs[0])
			if err != nil {
				return err
			}
			cfg.FrameStore = fsClient
		} else {
			mc, err := framestore.NewMultiClient(ep, addrs, framestore.MultiClientConfig{
				CallTimeout: rpcFlags.CallTimeout,
				RetryBudget: rpcFlags.RetryBudget,
				Quorum:      *frameQuorum,
				Registry:    obs.Default(),
			})
			if err != nil {
				return err
			}
			cfg.FrameStore = mc
		}
		cfg.StoreFrames = true
	}
	node, err := camnode.New(cfg, ep)
	if err != nil {
		return err
	}
	if err := node.Topology().StartHeartbeats(ctx, *heartbeat); err != nil {
		return err
	}
	defer func() { _ = node.Topology().Close() }()

	// The same named checks back /healthz?v=json and the fleet
	// heartbeat, so the monitor sees exactly what the node reports.
	checks := []obs.NamedCheck{
		{Name: "pipeline", Check: nil}, // liveness of the process itself
		{Name: "trajstore", Check: func() error {
			// The batch writer surfaces the last flush failure; a node
			// that cannot commit edges is serving but not healthy.
			return trajWriter.Err()
		}},
	}
	obs.RegisterBuildInfo(obs.Default(), fleetFlags.ResolveNodeID(*id), "coral-node")
	stopFleet, _ := fleetFlags.Start(ctx, "coral-node", obs.Default(), checks, logger)
	defer stopFleet()

	var obsSrv *obs.Server
	if *obsListen != "" {
		mux := obs.NewMuxWith(obs.MuxConfig{
			Registry:    obs.Default(),
			Tracer:      tracer,
			PProf:       *obsPProf,
			NamedChecks: checks,
		})
		if obsSrv, err = obs.Serve(*obsListen, mux); err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		logger.Info("telemetry listening", "url", "http://"+obsSrv.Addr()+"/metrics")
	}

	epoch := time.Unix(*epochUnix, 0)
	if *epochUnix == 0 {
		epoch = time.Now().Add(3 * time.Second)
	}
	source, err := sim.NewRealtimeSourceAt(camera, epoch, *duration)
	if err != nil {
		return err
	}

	logger.Info("listening",
		"addr", ep.Addr(),
		"corridor", fmt.Sprintf("%d/%d", *index, *cameras),
		"epoch", epoch.Format(time.RFC3339))
	// RunLive exits on stream end or on SIGINT/SIGTERM (ctx cancel); a
	// cancelled run still flushes live tracks and returns nil, so the
	// process exits 0 on a clean signal-driven stop.
	if err := node.RunLive(ctx, source); err != nil {
		return err
	}
	if ctx.Err() != nil {
		logger.Info("interrupted; draining")
	}
	stop() // restore default signal handling: a second ^C force-kills

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := ep.Shutdown(shutdownCtx); err != nil {
		logger.Warn("transport shutdown", "err", err.Error())
	}
	if obsSrv != nil {
		if err := obsSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("telemetry shutdown", "err", err.Error())
		}
	}

	st := node.Stats()
	logger.Info("done",
		"frames", fmt.Sprint(st.FramesProcessed),
		"events", fmt.Sprint(st.EventsGenerated),
		"informsSent", fmt.Sprint(st.InformsSent),
		"informsRecv", fmt.Sprint(st.InformsReceived),
		"reidMatches", fmt.Sprint(st.ReidMatches))
	return nil
}

// buildDemoWorld constructs the deterministic shared traffic and this
// node's camera view. The discrete-event simulator inside the world is
// unused (rendering is driven by wall-clock Render calls); it only
// anchors timestamps.
func buildDemoWorld(graph *roadnet.Graph, nodes []roadnet.NodeID, index, vehicles int, seed int64) (*sim.World, *sim.Camera, error) {
	world, err := sim.NewWorld(sim.WorldConfig{
		Sim:   des.New(time.Unix(0, 0).UTC()),
		Graph: graph,
	})
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < vehicles; v++ {
		spec := sim.VehicleSpec{
			ID:       fmt.Sprintf("veh-%02d", v),
			Color:    sim.PaletteColor(v),
			SpeedMPS: 12 + rng.Float64()*6,
			Route:    nodes,
			Depart:   time.Duration(v) * 5 * time.Second,
		}
		if err := world.AddVehicle(spec); err != nil {
			return nil, nil, err
		}
	}
	me, err := graph.Node(nodes[index])
	if err != nil {
		return nil, nil, err
	}
	camera, err := world.AddCamera(sim.DefaultCameraSpec(fmt.Sprintf("view-%d", index), me.Pos, 0), func(*vision.Frame) {})
	if err != nil {
		return nil, nil, err
	}
	return world, camera, nil
}
