// Command topology-server runs Coral-Pie's cloud camera topology server
// over TCP: it accepts camera heartbeats, places cameras on the road
// network, detects failures by heartbeat loss, and pushes MDCS updates to
// the affected cameras.
//
// Usage:
//
//	topology-server -listen 0.0.0.0:7000 -graph road.json -heartbeat 2s
//	topology-server -listen 0.0.0.0:7000 -campus
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/rpc"
	"repro/internal/topology"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		obs.DefaultLogger().WithComponent("topology-server").Error(err.Error())
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7000", "address to listen on")
		graphPath = flag.String("graph", "", "road network JSON (see roadnet.Spec)")
		campus    = flag.Bool("campus", false, "use the built-in 37-intersection campus network")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "expected camera heartbeat interval")
		snap      = flag.Float64("snap-meters", 30, "radius for snapping cameras to intersections")
		obsListen = flag.String("obs-listen", "127.0.0.1:9090", "telemetry HTTP address for /metrics, /healthz, /debug/obs (empty = disabled)")
		obsPProf  = flag.Bool("obs-pprof", false, "also mount net/http/pprof profiling handlers on the telemetry server")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		drain     = flag.Duration("drain-timeout", 5*time.Second, "how long a SIGINT/SIGTERM shutdown may spend draining in-flight work")
	)
	rpcFlags := rpc.RegisterFlags(flag.CommandLine)
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()

	baseLogger, err := obs.InitDefaultLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	logger := baseLogger.WithComponent("topology-server")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var graph *roadnet.Graph
	switch {
	case *campus:
		graph, _, err = roadnet.Campus()
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return fmt.Errorf("open graph: %w", ferr)
		}
		graph, err = roadnet.ReadJSON(f)
		_ = f.Close()
	default:
		return fmt.Errorf("one of -graph or -campus is required")
	}
	if err != nil {
		return fmt.Errorf("load graph: %w", err)
	}

	ep, err := transport.ListenTCPConfig(*listen, transport.TCPConfigFromFlags(rpcFlags))
	if err != nil {
		return err
	}
	ep.Use(obs.Default())

	srv, err := topology.NewServer(graph, ep, clock.Real{}, topology.ServerConfig{
		LivenessTimeout:  2 * *heartbeat,
		SnapToNodeMeters: *snap,
		Registry:         obs.Default(),
	})
	if err != nil {
		return err
	}
	if err := srv.Start(ctx, *heartbeat/2); err != nil {
		return err
	}

	// The same named checks back /healthz?v=json and the fleet
	// heartbeat, so the monitor sees exactly what the node reports.
	checks := []obs.NamedCheck{
		{Name: "graph", Check: func() error {
			if graph.NumNodes() == 0 {
				return fmt.Errorf("road graph is empty")
			}
			return nil
		}},
	}
	obs.RegisterBuildInfo(obs.Default(),
		fleetFlags.ResolveNodeID("topology-server"), "topology-server")
	stopFleet, _ := fleetFlags.Start(ctx, "topology-server", obs.Default(), checks, logger)
	defer stopFleet()

	var obsSrv *obs.Server
	if *obsListen != "" {
		mux := obs.NewMuxWith(obs.MuxConfig{
			Registry:    obs.Default(),
			PProf:       *obsPProf,
			NamedChecks: checks,
		})
		if obsSrv, err = obs.Serve(*obsListen, mux); err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		logger.Info("telemetry listening", "url", "http://"+obsSrv.Addr()+"/metrics")
	}

	logger.Info("topology server listening",
		"addr", ep.Addr(),
		"intersections", fmt.Sprint(graph.NumNodes()),
		"heartbeat", heartbeat.String())

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C force-kills
	logger.Info("shutting down", "cameras", fmt.Sprint(len(srv.Cameras())))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("topology shutdown", "err", err.Error())
	}
	if err := ep.Shutdown(shutdownCtx); err != nil {
		logger.Warn("transport shutdown", "err", err.Error())
	}
	if obsSrv != nil {
		if err := obsSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("telemetry shutdown", "err", err.Error())
		}
	}
	return nil
}
