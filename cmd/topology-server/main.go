// Command topology-server runs Coral-Pie's cloud camera topology server
// over TCP: it accepts camera heartbeats, places cameras on the road
// network, detects failures by heartbeat loss, and pushes MDCS updates to
// the affected cameras.
//
// Usage:
//
//	topology-server -listen 0.0.0.0:7000 -graph road.json -heartbeat 2s
//	topology-server -listen 0.0.0.0:7000 -campus
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/topology"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7000", "address to listen on")
		graphPath = flag.String("graph", "", "road network JSON (see roadnet.Spec)")
		campus    = flag.Bool("campus", false, "use the built-in 37-intersection campus network")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "expected camera heartbeat interval")
		snap      = flag.Float64("snap-meters", 30, "radius for snapping cameras to intersections")
		obsListen = flag.String("obs-listen", "127.0.0.1:9090", "telemetry HTTP address for /metrics, /healthz, /debug/obs (empty = disabled)")
		drain     = flag.Duration("drain-timeout", 5*time.Second, "how long a SIGINT/SIGTERM shutdown may spend draining in-flight work")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		graph *roadnet.Graph
		err   error
	)
	switch {
	case *campus:
		graph, _, err = roadnet.Campus()
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return fmt.Errorf("open graph: %w", ferr)
		}
		graph, err = roadnet.ReadJSON(f)
		_ = f.Close()
	default:
		return fmt.Errorf("one of -graph or -campus is required")
	}
	if err != nil {
		return fmt.Errorf("load graph: %w", err)
	}

	ep, err := transport.ListenTCP(*listen)
	if err != nil {
		return err
	}
	ep.Use(obs.Default())

	srv, err := topology.NewServer(graph, ep, clock.Real{}, topology.ServerConfig{
		LivenessTimeout:  2 * *heartbeat,
		SnapToNodeMeters: *snap,
		Registry:         obs.Default(),
	})
	if err != nil {
		return err
	}
	if err := srv.Start(ctx, *heartbeat/2); err != nil {
		return err
	}

	if *obsListen != "" {
		obsSrv, err := obs.Serve(*obsListen, obs.NewMux(obs.Default(), nil))
		if err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		log.Printf("telemetry on http://%s/metrics", obsSrv.Addr())
	}

	log.Printf("topology server on %s (%d intersections, heartbeat %v)",
		ep.Addr(), graph.NumNodes(), *heartbeat)

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C force-kills
	log.Printf("shutting down; cameras registered: %d", len(srv.Cameras()))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("topology shutdown: %v", err)
	}
	if err := ep.Shutdown(shutdownCtx); err != nil {
		log.Printf("transport shutdown: %v", err)
	}
	return nil
}
