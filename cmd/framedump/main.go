// Command framedump exports stored camera frames as PPM images with
// their tracking annotations drawn as bounding-box outlines — the
// verification/visualization use the paper gives for frame storage
// (Section 4.2.2).
//
// Usage:
//
//	framedump -dir /var/lib/coralpie/frames -camera cam1 -from 100 -to 120 -out /tmp/frames
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/framestore"
	"repro/internal/imaging"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		dir     = flag.String("dir", "", "frame store directory")
		camera  = flag.String("camera", "", "camera to export (empty = list cameras)")
		fromSeq = flag.Int64("from", 0, "first frame sequence number")
		toSeq   = flag.Int64("to", 1<<62, "last frame sequence number")
		out     = flag.String("out", ".", "output directory for PPM files")
		boxes   = flag.Bool("boxes", true, "draw annotation bounding boxes")
	)
	flag.Parse()
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}

	store, err := framestore.OpenStore(*dir)
	if err != nil {
		return err
	}
	defer func() { _ = store.Close() }()

	if *camera == "" {
		for _, cam := range store.Cameras() {
			fmt.Printf("%s: %d frames\n", cam, store.Count(cam))
		}
		return nil
	}

	records, err := store.Range(*camera, *fromSeq, *toSeq)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("no frames for %s in [%d, %d]", *camera, *fromSeq, *toSeq)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	for _, rec := range records {
		img, err := imaging.FrameFromBytes(rec.Width, rec.Height, rec.Pixels)
		if err != nil {
			return fmt.Errorf("frame %s/%d: %w", rec.CameraID, rec.Seq, err)
		}
		if *boxes {
			for _, ann := range rec.Annotations {
				img.DrawRectOutline(imaging.Rect{X: ann.X, Y: ann.Y, W: ann.W, H: ann.H}, imaging.White)
			}
		}
		name := filepath.Join(*out, fmt.Sprintf("%s-%06d.ppm", rec.CameraID, rec.Seq))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := img.EncodePPM(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d frames to %s\n", len(records), *out)
	return nil
}
