// Command trajstore-server runs Coral-Pie's trajectory graph store (the
// JanusGraph role in the paper) over TCP on an edge node.
//
// Usage:
//
//	trajstore-server -listen 0.0.0.0:7001 -dir /var/lib/coralpie/traj
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/trajstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "address to listen on")
		dir       = flag.String("dir", "", "persistence directory (empty = in-memory)")
		compact   = flag.Duration("compact-every", 10*time.Minute, "snapshot compaction interval (persistent stores)")
		obsListen = flag.String("obs-listen", "127.0.0.1:9091", "telemetry HTTP address for /metrics, /healthz, /debug/obs (empty = disabled)")
		drain     = flag.Duration("drain-timeout", 5*time.Second, "how long a SIGINT/SIGTERM shutdown may spend draining in-flight requests")
		fsync     = flag.Bool("fsync", false, "fsync every WAL group commit (durable across power loss; pair with -group-commit-window)")
		window    = flag.Duration("group-commit-window", 0, "WAL group-commit window: writes acknowledged within one window share one flush (0 = flush immediately)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		store *trajstore.Store
		err   error
	)
	if *dir == "" {
		store = trajstore.NewMemStore()
	} else {
		store, err = trajstore.OpenWithConfig(*dir, trajstore.StoreConfig{
			Fsync:             *fsync,
			GroupCommitWindow: *window,
		})
		if err != nil {
			return err
		}
	}
	defer func() { _ = store.Close() }()
	store.Instrument(obs.Default(), nil)

	srv, err := trajstore.Serve(store, *listen)
	if err != nil {
		return err
	}
	log.Printf("trajectory store on %s (dir=%q, %d vertices)", srv.Addr(), *dir, store.NumVertices())

	if *obsListen != "" {
		obsSrv, err := obs.Serve(*obsListen, obs.NewMux(obs.Default(), nil))
		if err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		log.Printf("telemetry on http://%s/metrics", obsSrv.Addr())
	}

	doneCompact := make(chan struct{})
	go func() {
		defer close(doneCompact)
		if *dir == "" || *compact <= 0 {
			return
		}
		ticker := time.NewTicker(*compact)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := store.Compact(); err != nil {
					log.Printf("compact: %v", err)
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C force-kills
	<-doneCompact
	// Drain in-flight requests before closing, so a camera mid-insert
	// gets its reply, then flush the WAL via the deferred store.Close.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("shutting down with %d vertices / %d edges", store.NumVertices(), store.NumEdges())
	return nil
}
