// Command trajstore-server runs Coral-Pie's trajectory graph store (the
// JanusGraph role in the paper) over TCP on an edge node.
//
// Usage:
//
//	trajstore-server -listen 0.0.0.0:7001 -dir /var/lib/coralpie/traj
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/trajstore"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "address to listen on")
		dir       = flag.String("dir", "", "persistence directory (empty = in-memory)")
		compact   = flag.Duration("compact-every", 10*time.Minute, "snapshot compaction interval (persistent stores)")
		obsListen = flag.String("obs-listen", "127.0.0.1:9091", "telemetry HTTP address for /metrics, /healthz, /debug/obs (empty = disabled)")
	)
	flag.Parse()

	var (
		store *trajstore.Store
		err   error
	)
	if *dir == "" {
		store = trajstore.NewMemStore()
	} else {
		store, err = trajstore.Open(*dir)
		if err != nil {
			return err
		}
	}
	defer func() { _ = store.Close() }()
	store.Instrument(obs.Default(), nil)

	srv, err := trajstore.Serve(store, *listen)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	log.Printf("trajectory store on %s (dir=%q, %d vertices)", srv.Addr(), *dir, store.NumVertices())

	if *obsListen != "" {
		obsSrv, err := obs.Serve(*obsListen, obs.NewMux(obs.Default(), nil))
		if err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		log.Printf("telemetry on http://%s/metrics", obsSrv.Addr())
	}

	stopCompact := make(chan struct{})
	doneCompact := make(chan struct{})
	go func() {
		defer close(doneCompact)
		if *dir == "" || *compact <= 0 {
			return
		}
		ticker := time.NewTicker(*compact)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := store.Compact(); err != nil {
					log.Printf("compact: %v", err)
				}
			case <-stopCompact:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stopCompact)
	<-doneCompact
	log.Printf("shutting down with %d vertices / %d edges", store.NumVertices(), store.NumEdges())
	return nil
}
