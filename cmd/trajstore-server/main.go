// Command trajstore-server runs Coral-Pie's trajectory graph store (the
// JanusGraph role in the paper) over TCP on an edge node.
//
// Usage:
//
//	trajstore-server -listen 0.0.0.0:7001 -dir /var/lib/coralpie/traj
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/trajstore"
)

func main() {
	if err := run(); err != nil {
		obs.DefaultLogger().WithComponent("trajstore-server").Error(err.Error())
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "address to listen on")
		dir       = flag.String("dir", "", "persistence directory (empty = in-memory)")
		compact   = flag.Duration("compact-every", 10*time.Minute, "snapshot compaction interval (persistent stores)")
		obsListen = flag.String("obs-listen", "127.0.0.1:9091", "telemetry HTTP address for /metrics, /healthz, /debug/obs, /debug/trace (empty = disabled)")
		obsPProf  = flag.Bool("obs-pprof", false, "also mount net/http/pprof profiling handlers on the telemetry server")

		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		traceOut    = flag.String("trace-out", "", "append finished trace spans as JSON lines to this file (empty = disabled)")
		traceSample = flag.Int("trace-sample", 1, "record every Nth locally rooted trace (1 = all; spans joining a camera's trace always record)")
		drain       = flag.Duration("drain-timeout", 5*time.Second, "how long a SIGINT/SIGTERM shutdown may spend draining in-flight requests")
		fsync       = flag.Bool("fsync", false, "fsync every WAL group commit (durable across power loss; pair with -group-commit-window)")
		window      = flag.Duration("group-commit-window", 0, "WAL group-commit window: writes acknowledged within one window share one flush (0 = flush immediately)")
		queryCache  = flag.Int("query-cache", trajstore.DefaultQueryCacheSize, "server-side query result cache size in entries (negative = disable)")
	)
	rpcFlags := rpc.RegisterFlags(flag.CommandLine)
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()

	baseLogger, err := obs.InitDefaultLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	logger := baseLogger.WithComponent("trajstore-server")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var store *trajstore.Store
	if *dir == "" {
		store = trajstore.NewMemStore()
	} else {
		store, err = trajstore.OpenWithConfig(*dir, trajstore.StoreConfig{
			Fsync:             *fsync,
			GroupCommitWindow: *window,
		})
		if err != nil {
			return err
		}
	}
	defer func() { _ = store.Close() }()
	store.Instrument(obs.Default(), nil)
	// WAL group commits append a wal_commit span to any trace context a
	// camera attached to its write, completing the cross-node trace.
	tracer := obs.NewTracerWith(obs.TracerConfig{
		Capacity:    4096,
		IDPrefix:    "traj-",
		SampleEvery: *traceSample,
	})
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer func() { _ = f.Close() }()
		tracer.SetSink(obs.NewJSONLWriter(f).Export)
	}
	store.UseTracer(tracer)

	srv, err := trajstore.ServeWith(store, *listen, trajstore.ServerOptions{
		WriteTimeout: rpcFlags.CallTimeout,
		Logger:       logger,
		Registry:     obs.Default(),
		QueryCache:   *queryCache,
	})
	if err != nil {
		return err
	}
	logger.Info("trajectory store listening",
		"addr", srv.Addr(), "dir", *dir, "vertices", fmt.Sprint(store.NumVertices()))

	// The same named checks back /healthz?v=json and the fleet
	// heartbeat, so the monitor sees exactly what the node reports.
	checks := []obs.NamedCheck{
		{Name: "store", Check: func() error {
			if *dir == "" {
				return nil
			}
			_, err := os.Stat(*dir)
			return err
		}},
	}
	obs.RegisterBuildInfo(obs.Default(),
		fleetFlags.ResolveNodeID("trajstore-server"), "trajstore-server")
	stopFleet, _ := fleetFlags.Start(ctx, "trajstore-server", obs.Default(), checks, logger)
	defer stopFleet()

	var obsSrv *obs.Server
	if *obsListen != "" {
		mux := obs.NewMuxWith(obs.MuxConfig{
			Registry:    obs.Default(),
			Tracer:      tracer,
			PProf:       *obsPProf,
			NamedChecks: checks,
		})
		if obsSrv, err = obs.Serve(*obsListen, mux); err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		logger.Info("telemetry listening", "url", "http://"+obsSrv.Addr()+"/metrics")
	}

	doneCompact := make(chan struct{})
	go func() {
		defer close(doneCompact)
		if *dir == "" || *compact <= 0 {
			return
		}
		ticker := time.NewTicker(*compact)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := store.Compact(); err != nil {
					logger.Error("compact", "err", err.Error())
				}
			case <-ctx.Done():
				return
			}
		}
	}()

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C force-kills
	<-doneCompact
	// Drain in-flight requests before closing, so a camera mid-insert
	// gets its reply, then flush the WAL via the deferred store.Close.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown", "err", err.Error())
	}
	if obsSrv != nil {
		if err := obsSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("telemetry shutdown", "err", err.Error())
		}
	}
	logger.Info("shutting down",
		"vertices", fmt.Sprint(store.NumVertices()), "edges", fmt.Sprint(store.NumEdges()))
	return nil
}
