// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 5) and prints paper-vs-measured comparisons.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run table2     # one experiment
//	experiments -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type experiment struct {
	name string
	desc string
	fn   func(seed int64) error
}

func run() error {
	var (
		runName = flag.String("run", "", "run only the named experiment (see -list)")
		list    = flag.Bool("list", false, "list experiment names and exit")
		seed    = flag.Int64("seed", 42, "randomness seed")
	)
	flag.Parse()

	all := []experiment{
		{"table1", "Table 1: latency summary and pipeline throughput", func(int64) error { return printTable1() }},
		{"table2", "Table 2: event detection accuracy", printTable2},
		{"fig10a", "Figure 10(a): message vs vehicle arrival", printFig10a},
		{"fig10b", "Figure 10(b): candidate-pool redundancy", printFig10b},
		{"fig11", "Figure 11: failure recovery time", printFig11},
		{"fig12a", "Figure 12(a): MDCS size vs deployment size", printFig12a},
		{"fig12b", "Figure 12(b): redundancy vs camera density", printFig12b},
		{"reid", "Section 5.6: re-identification accuracy", printReid},
		{"ablations", "Section 4.1.5 design-space ablations", printAblations},
		{"sweep", "Extension: Bhattacharyya threshold calibration curve", printSweep},
		{"blob", "Extension: pixels-only pipeline (truth-blind blob detector)", printBlob},
	}

	if *list {
		for _, e := range all {
			fmt.Printf("  %-10s %s\n", e.name, e.desc)
		}
		return nil
	}

	names := make(map[string]experiment, len(all))
	for _, e := range all {
		names[e.name] = e
	}
	var toRun []experiment
	if *runName != "" {
		e, ok := names[*runName]
		if !ok {
			var known []string
			for n := range names {
				known = append(known, n)
			}
			sort.Strings(known)
			return fmt.Errorf("unknown experiment %q; known: %s", *runName, strings.Join(known, ", "))
		}
		toRun = []experiment{e}
	} else {
		toRun = all
	}

	for _, e := range toRun {
		fmt.Printf("==== %s ====\n", e.desc)
		start := time.Now()
		if err := e.fn(*seed); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("(%s in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func printTable1() error {
	res, err := experiments.Table1()
	if err != nil {
		return err
	}
	fmt.Printf("  %-20s %10s %10s %14s\n", "sub-task", "paper", "modeled", "host-measured")
	for _, r := range res.Rows {
		host := "-"
		if r.MeasuredHost > 0 {
			host = r.MeasuredHost.String()
		}
		fmt.Printf("  %-20s %10v %10v %14s\n", r.SubTask, r.Paper, r.Modeled, host)
	}
	fmt.Printf("  pipelined throughput: %.1f FPS (paper: 10.4)\n", res.PipelinedFPS)
	fmt.Printf("  sequential:           %.1f FPS -> %.1fx speedup (paper: ~5x)\n",
		res.SequentialFPS, res.Speedup)
	fmt.Printf("  bottleneck stage:     %s (paper: Load)\n", res.BottleneckStage)
	return nil
}

func printTable2(seed int64) error {
	res, err := experiments.Table2(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-8s %8s %10s %8s %8s %8s\n", "camera", "recall", "precision", "F2", "visits", "events")
	for _, r := range res.Rows {
		fmt.Printf("  %-8s %8.2f %10.2f %8.2f %8d %8d\n",
			r.Camera, r.Recall, r.Precision, r.F2, r.Visits, r.Events)
	}
	fmt.Printf("  macro: recall %.2f, precision %.2f, F2 %.2f\n", res.MacroRecall, res.MacroPrecision, res.MacroF2)
	fmt.Println("  (paper: recall ~1.0 on 4/5 cameras, precision 0.71-0.93, F2 0.89-0.99)")
	return nil
}

func printFig10a(seed int64) error {
	res, err := experiments.Figure10a(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  observed camera: %s\n", res.Camera)
	fmt.Printf("  %-8s %14s %14s %12s\n", "vehicle", "msg-arrival", "veh-arrival", "headstart")
	for _, p := range res.Points {
		fmt.Printf("  %-8s %14v %14v %12v\n",
			p.VehicleID, p.MessageArrival.Round(time.Millisecond),
			p.VehicleArrival.Round(time.Millisecond), p.Headstart.Round(time.Millisecond))
	}
	fmt.Printf("  every message ahead of its vehicle: %v (min headstart %v)\n",
		res.AllAhead, res.MinHeadstart.Round(time.Millisecond))
	return nil
}

func printFig10b(seed int64) error {
	res, err := experiments.Figure10b(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-8s %12s %12s\n", "camera", "MDCS", "broadcast")
	for i := range res.MDCS {
		fmt.Printf("  %-8s %11.1f%% %11.1f%%\n",
			res.MDCS[i].Camera, res.MDCS[i].Redundant*100, res.Broadcast[i].Redundant*100)
	}
	fmt.Printf("  mean: MDCS %.1f%%, broadcast %.1f%% (paper: low vs >83%%)\n",
		res.MeanMDCS*100, res.MeanBroadcast*100)
	return nil
}

func printFig11(seed int64) error {
	for _, hb := range []time.Duration{2 * time.Second, 5 * time.Second} {
		res, err := experiments.Figure11(hb, 10, seed)
		if err != nil {
			return err
		}
		fmt.Printf("  heartbeat %v: ", hb)
		for _, p := range res.Points {
			fmt.Printf("%v ", p.Recovery.Round(100*time.Millisecond))
		}
		fmt.Printf("\n    max %v (%.2fx heartbeat; paper: <= 2x), mean %v\n",
			res.MaxRecovery.Round(100*time.Millisecond), res.MaxOverHeartbeat,
			res.MeanRecovery.Round(100*time.Millisecond))
	}
	return nil
}

func printFig12a(seed int64) error {
	res, err := experiments.Figure12a(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-10s %10s\n", "cameras", "avg MDCS")
	for _, p := range res.Points {
		if p.Cameras%4 == 0 || p.Cameras == 1 || p.Cameras == 10 || p.Cameras == 37 {
			fmt.Printf("  %-10d %10.2f\n", p.Cameras, p.AvgMDCS)
		}
	}
	fmt.Printf("  avg@10 = %.2f (paper: ~2.5), final = %.2f (paper: ->1), peak = %.2f (bounded)\n",
		res.AvgAt10, res.FinalAvg, res.PeakAvg)
	return nil
}

func printFig12b(seed int64) error {
	res, err := experiments.Figure12b(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-14s %12s\n", "active cameras", "redundancy")
	for _, p := range res.Points {
		fmt.Printf("  %-14d %11.1f%%\n", p.ActiveCameras, p.Redundant*100)
	}
	fmt.Println("  (paper: 0% at 5 cameras rising to ~60% at 2)")
	return nil
}

func printReid(seed int64) error {
	res, err := experiments.ReidAccuracy(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  transitions=%d edges=%d\n", res.Transitions, res.Edges)
	fmt.Printf("  recall %.2f, precision %.2f, F2 %.2f (paper: overall F2 ~0.71)\n",
		res.Recall, res.Precision, res.F2)
	fmt.Printf("  max outgoing edges per vertex: %d (paper: <= 2 redundant)\n", res.MaxOutEdges)
	return nil
}

func printSweep(seed int64) error {
	res, err := experiments.ThresholdSweep(seed, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  %-10s %8s %10s %8s\n", "threshold", "recall", "precision", "F2")
	for _, p := range res.Points {
		fmt.Printf("  %-10.2f %8.2f %10.2f %8.2f\n", p.Threshold, p.Recall, p.Precision, p.F2)
	}
	fmt.Printf("  best F2 %.2f at threshold %.2f (prototype uses 0.35)\n", res.Best.F2, res.Best.Threshold)
	return nil
}

func printBlob(seed int64) error {
	res, err := experiments.BlobPipeline(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  truth-blind connected-components detector, full pipeline:\n")
	fmt.Printf("  event F2 %.2f (%d events), re-id F2 %.2f (%d edges)\n",
		res.EventF2, res.Events, res.ReidF2, res.Edges)
	return nil
}

func printAblations(seed int64) error {
	single, err := experiments.AblationSingleDevice()
	if err != nil {
		return err
	}
	fmt.Printf("  device mapping: single-RPi %.1f FPS (latency %v) vs dual %.1f FPS (latency %v)\n",
		single.SingleFPS, single.SingleMeanLatency.Round(time.Millisecond),
		single.DualFPS, single.DualMeanLatency.Round(time.Millisecond))

	ser, err := experiments.AblationSerialization()
	if err != nil {
		return err
	}
	for _, o := range ser.Options {
		fmt.Printf("  serialization %-6s +%-6v -> %5.1f FPS, breaks 100ms budget: %v\n",
			o.Name, o.ExtraPerFrame, o.FPS, o.BreaksBudget)
	}

	dat, err := experiments.AblationDetectAndTrack(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  detect every frame:  F2 %.2f (%d events)\n", dat.EveryFrameF2, dat.EveryFrameEvents)
	fmt.Printf("  detect every 5th:    F2 %.2f (%d events) — the rejected detect-and-track design\n",
		dat.EveryFifthF2, dat.EveryFifthEvents)
	return nil
}
