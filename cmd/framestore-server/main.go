// Command framestore-server runs Coral-Pie's raw-frame storage server on
// an edge node: cameras ship raw frames plus tracking annotations as
// fire-and-forget messages, which are persisted to per-camera logs.
//
// Usage:
//
//	framestore-server -listen 0.0.0.0:7002 -dir /var/lib/coralpie/frames
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/framestore"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen = flag.String("listen", "127.0.0.1:7002", "address to listen on")
		dir    = flag.String("dir", "", "persistence directory (empty = in-memory)")
	)
	flag.Parse()

	store, err := framestore.OpenStore(*dir)
	if err != nil {
		return err
	}
	defer func() { _ = store.Close() }()

	ep, err := transport.ListenTCP(*listen)
	if err != nil {
		return err
	}
	defer func() { _ = ep.Close() }()

	srv, err := framestore.NewServer(store, ep)
	if err != nil {
		return err
	}
	log.Printf("frame store on %s (dir=%q)", ep.Addr(), *dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	received, errs := srv.Stats()
	log.Printf("shutting down; frames stored: %d, handler errors: %d", received, errs)
	return nil
}
