// Command framestore-server runs Coral-Pie's raw-frame storage server on
// an edge node: cameras ship raw frames plus tracking annotations as
// fire-and-forget messages, which are persisted to per-camera logs.
//
// Usage:
//
//	framestore-server -listen 0.0.0.0:7002 -dir /var/lib/coralpie/frames
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/framestore"
	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7002", "address to listen on")
		dir       = flag.String("dir", "", "persistence directory (empty = in-memory)")
		obsListen = flag.String("obs-listen", "127.0.0.1:9092", "telemetry HTTP address for /metrics, /healthz, /debug/obs (empty = disabled)")
		drain     = flag.Duration("drain-timeout", 5*time.Second, "how long a SIGINT/SIGTERM shutdown may spend draining in-flight frames")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	store, err := framestore.OpenStore(*dir)
	if err != nil {
		return err
	}
	defer func() { _ = store.Close() }()
	store.Instrument(obs.Default(), nil)

	ep, err := transport.ListenTCP(*listen)
	if err != nil {
		return err
	}
	ep.Use(obs.Default())

	srv, err := framestore.NewServer(store, ep)
	if err != nil {
		return err
	}
	log.Printf("frame store on %s (dir=%q)", ep.Addr(), *dir)

	if *obsListen != "" {
		obsSrv, err := obs.Serve(*obsListen, obs.NewMux(obs.Default(), nil))
		if err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		log.Printf("telemetry on http://%s/metrics", obsSrv.Addr())
	}

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C force-kills
	// Drain in-flight frame handlers before closing the store, so the
	// last frames land in the per-camera logs before they are flushed by
	// the deferred store.Close.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := ep.Shutdown(shutdownCtx); err != nil {
		log.Printf("transport shutdown: %v", err)
	}
	received, errs := srv.Stats()
	log.Printf("shutting down; frames stored: %d, handler errors: %d", received, errs)
	return nil
}
