// Command framestore-server runs Coral-Pie's raw-frame storage server on
// an edge node: cameras ship raw frames plus tracking annotations as
// fire-and-forget messages, which are persisted to per-camera logs.
//
// Usage:
//
//	framestore-server -listen 0.0.0.0:7002 -dir /var/lib/coralpie/frames
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/framestore"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		obs.DefaultLogger().WithComponent("framestore-server").Error(err.Error())
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7002", "address to listen on")
		dir       = flag.String("dir", "", "persistence directory (empty = in-memory)")
		obsListen = flag.String("obs-listen", "127.0.0.1:9092", "telemetry HTTP address for /metrics, /healthz, /debug/obs (empty = disabled)")
		obsPProf  = flag.Bool("obs-pprof", false, "also mount net/http/pprof profiling handlers on the telemetry server")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		drain     = flag.Duration("drain-timeout", 5*time.Second, "how long a SIGINT/SIGTERM shutdown may spend draining in-flight frames")

		segmentBytes = flag.Int64("segment-bytes", framestore.DefaultSegmentBytes, "per-camera segment roll threshold in bytes")
		retainFrames = flag.Duration("retain-frames", 0, "drop sealed segments whose newest frame is older than this (0 = keep forever)")
		retainBytes  = flag.Int64("retain-bytes", 0, "bound total on-disk bytes, deleting oldest sealed segments when exceeded (0 = unbounded)")
		cacheFrames  = flag.Int("cache-frames", 0, "capacity of the read-through LRU frame cache in records (0 = disabled)")
		gcInterval   = flag.Duration("gc-interval", time.Minute, "how often retention GC runs when -retain-frames or -retain-bytes is set (0 = only on segment rolls)")
	)
	rpcFlags := rpc.RegisterFlags(flag.CommandLine)
	fleetFlags := fleet.RegisterFlags(flag.CommandLine)
	flag.Parse()

	baseLogger, err := obs.InitDefaultLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	logger := baseLogger.WithComponent("framestore-server")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	store, err := framestore.OpenStoreConfig(*dir, framestore.Config{
		SegmentBytes: *segmentBytes,
		RetainAge:    *retainFrames,
		RetainBytes:  *retainBytes,
		CacheFrames:  *cacheFrames,
	})
	if err != nil {
		return err
	}
	defer func() { _ = store.Close() }()
	store.Instrument(obs.Default(), nil)
	// Every retention pass appends a "gc" span with what it reclaimed.
	tracer := obs.NewTracerWith(obs.TracerConfig{Capacity: 1024, IDPrefix: "fs-"})
	store.UseTracer(tracer)

	retention := *dir != "" && (*retainFrames > 0 || *retainBytes > 0)
	if retention && *gcInterval > 0 {
		// The after-roll GC hook only fires while frames flow; the timer
		// ages out segments on idle cameras too.
		gcTick := time.NewTicker(*gcInterval)
		defer gcTick.Stop()
		go func() {
			for range gcTick.C {
				if st, err := store.GC(); errors.Is(err, framestore.ErrClosed) {
					return
				} else if err != nil {
					logger.Warn("retention gc", "err", err.Error())
				} else if st.Segments > 0 {
					logger.Info("retention gc",
						"segments", fmt.Sprint(st.Segments),
						"frames", fmt.Sprint(st.Frames),
						"reclaimedBytes", fmt.Sprint(st.Bytes),
						"diskBytes", fmt.Sprint(store.DiskBytes()))
				}
			}
		}()
	}

	ep, err := transport.ListenTCPConfig(*listen, transport.TCPConfigFromFlags(rpcFlags))
	if err != nil {
		return err
	}
	ep.Use(obs.Default())

	srv, err := framestore.NewServer(store, ep)
	if err != nil {
		return err
	}
	srv.Use(obs.Default(), nil)
	logger.Info("frame store listening", "addr", ep.Addr(), "dir", *dir)

	// The same named checks back /healthz?v=json and the fleet
	// heartbeat, so the monitor sees exactly what the node reports.
	checks := []obs.NamedCheck{
		{Name: "store", Check: func() error {
			if *dir == "" {
				return nil
			}
			_, err := os.Stat(*dir)
			return err
		}},
	}
	obs.RegisterBuildInfo(obs.Default(),
		fleetFlags.ResolveNodeID("framestore-server"), "framestore-server")
	stopFleet, _ := fleetFlags.Start(ctx, "framestore-server", obs.Default(), checks, logger)
	defer stopFleet()

	var obsSrv *obs.Server
	if *obsListen != "" {
		mux := obs.NewMuxWith(obs.MuxConfig{
			Registry:    obs.Default(),
			Tracer:      tracer,
			PProf:       *obsPProf,
			NamedChecks: checks,
		})
		if obsSrv, err = obs.Serve(*obsListen, mux); err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		logger.Info("telemetry listening", "url", "http://"+obsSrv.Addr()+"/metrics")
	}

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C force-kills
	// Drain in-flight frame handlers before closing the store, so the
	// last frames land in the per-camera logs before they are flushed.
	// Transport first (stop the inbound stream), then the server's own
	// graceful shutdown: cut intake, drain handlers, flush and close the
	// store, and record the drain duration in
	// coralpie_framestore_shutdown_drain_seconds.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := ep.Shutdown(shutdownCtx); err != nil {
		logger.Warn("transport shutdown", "err", err.Error())
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("framestore shutdown", "err", err.Error())
	}
	if obsSrv != nil {
		if err := obsSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("telemetry shutdown", "err", err.Error())
		}
	}
	received, errs := srv.Stats()
	logger.Info("shutting down",
		"framesStored", fmt.Sprint(received), "handlerErrors", fmt.Sprint(errs))
	return nil
}
