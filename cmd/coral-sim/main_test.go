package main

import (
	"testing"
	"time"
)

func TestParseFail(t *testing.T) {
	cam, at, err := parseFail("cam2@40s")
	if err != nil || cam != "cam2" || at != 40*time.Second {
		t.Errorf("parseFail = %q %v %v", cam, at, err)
	}
	if _, _, err := parseFail("cam2"); err == nil {
		t.Error("missing @ accepted")
	}
	if _, _, err := parseFail("cam2@later"); err == nil {
		t.Error("bad duration accepted")
	}
	cam, at, err = parseFail("edge@cam@1m30s")
	if err != nil || cam != "edge" || at != 90*time.Second {
		// SplitN(2) keeps everything after the first @ as the duration,
		// which fails to parse — that is the expected behaviour.
		if err == nil {
			t.Errorf("parseFail = %q %v", cam, at)
		}
	}
}
