// Command coral-sim runs a complete simulated Coral-Pie deployment on the
// discrete-event simulator: cameras along a corridor (or on the campus
// network), synthetic traffic, the topology server, trajectory and frame
// stores — then prints per-camera statistics and the reconstructed
// trajectory of a chosen vehicle.
//
// Usage:
//
//	coral-sim -cameras 5 -vehicles 20 -fail cam3@40s
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/rpc/faultinject"
	"repro/internal/sim"
	"repro/internal/trajstore"
)

func main() {
	if err := run(); err != nil {
		obs.DefaultLogger().WithComponent("coral-sim").Error(err.Error())
		os.Exit(1)
	}
}

func run() error {
	var (
		cameras   = flag.Int("cameras", 5, "cameras along the corridor")
		spacing   = flag.Float64("spacing", 150, "intersection spacing in meters")
		vehicles  = flag.Int("vehicles", 12, "vehicles driving the corridor")
		seed      = flag.Int64("seed", 42, "randomness seed")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "camera heartbeat interval")
		failSpec  = flag.String("fail", "", "fail a camera mid-run, e.g. cam2@40s")

		storeFrames   = flag.Bool("store-frames", false, "ship raw frames to the simulated frame store")
		frameReplicas = flag.Int("frame-replicas", 1, "frame-store replicas; >1 fans every frame out to all of them")
		monitor       = flag.Bool("monitor", false, "run the in-sim fleet monitor and serve /cluster* on -obs-listen")

		faultDrop    = flag.Float64("fault-drop-rate", 0, "drop each network message with this probability, in [0,1)")
		faultErr     = flag.Float64("fault-error-rate", 0, "fail each network send with an injected error with this probability, in [0,1)")
		faultLatency = flag.Duration("fault-latency", 0, "extra latency added to every network message")
		faultJitter  = flag.Duration("fault-latency-jitter", 0, "uniform extra latency in [0,jitter) per message, drawn from the seeded fault RNG")
		track        = flag.String("track", "veh-00", "vehicle whose trajectory to reconstruct")
		obsListen    = flag.String("obs-listen", "", "telemetry HTTP address for /metrics, /healthz, /debug/obs, /debug/trace (empty = disabled)")
		obsPProf     = flag.Bool("obs-pprof", false, "also mount net/http/pprof profiling handlers on the telemetry server")

		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		traceOut    = flag.String("trace-out", "", "append finished trace spans as JSON lines to this file (empty = disabled)")
		traceSample = flag.Int("trace-sample", 1, "record every Nth trace root (1 = all)")
		dumpObs     = flag.Bool("dump-metrics", false, "print the final Prometheus metric snapshot")
		drain       = flag.Duration("drain-timeout", 5*time.Second, "how long shutdown may spend flushing stores")
	)
	flag.Parse()

	baseLogger, err := obs.InitDefaultLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	logger := baseLogger.WithComponent("coral-sim")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	graph, nodes, err := roadnet.Corridor(*cameras, *spacing, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(core.Config{
		Graph:             graph,
		Seed:              *seed,
		HeartbeatInterval: *heartbeat,
		TraceSampleEvery:  *traceSample,
		StoreFrames:       *storeFrames,
		FrameReplicas:     *frameReplicas,
		EnableMonitor:     *monitor,
		// The fault RNG is derived from -seed inside NewSystem, so two
		// runs with the same seed inject the same faults.
		Fault: faultinject.Config{
			DropRate:      *faultDrop,
			ErrorRate:     *faultErr,
			Latency:       *faultLatency,
			LatencyJitter: *faultJitter,
		},
	})
	if err != nil {
		return err
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer func() { _ = f.Close() }()
		sys.Tracer().SetSink(obs.NewJSONLWriter(f).Export)
	}

	var camIDs []string
	for i, node := range nodes {
		id := fmt.Sprintf("cam%d", i)
		if err := sys.AddCameraAt(id, node, 0); err != nil {
			return err
		}
		camIDs = append(camIDs, id)
	}

	rng := rand.New(rand.NewSource(*seed))
	for v := 0; v < *vehicles; v++ {
		spec := sim.VehicleSpec{
			ID:       fmt.Sprintf("veh-%02d", v),
			Color:    sim.PaletteColor(v),
			SpeedMPS: 12 + rng.Float64()*6,
			Route:    nodes,
			Depart:   time.Duration(v) * 5 * time.Second,
		}
		if err := sys.World().AddVehicle(spec); err != nil {
			return err
		}
	}

	var obsSrv *obs.Server
	if *obsListen != "" {
		mux := obs.NewMuxWith(obs.MuxConfig{
			Registry: sys.Telemetry(),
			Tracer:   sys.Tracer(),
			PProf:    *obsPProf,
		})
		if m := sys.Monitor(); m != nil {
			m.RegisterHTTP(mux)
		}
		if obsSrv, err = obs.Serve(*obsListen, mux); err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		logger.Info("telemetry listening", "url", "http://"+obsSrv.Addr()+"/metrics")
	}

	sys.Start(ctx)

	if *failSpec != "" {
		victim, at, err := parseFail(*failSpec)
		if err != nil {
			return err
		}
		sys.Sim().Schedule(at, func() {
			if err := sys.FailCamera(victim); err != nil {
				logger.Error("fail camera", "camera", victim, "err", err.Error())
				return
			}
			logger.Info("camera failed", "camera", victim, "t", sys.Sim().Now().String())
		})
	}

	horizon := sys.World().LastVehicleDone() + 30*time.Second
	fmt.Printf("running %d cameras, %d vehicles for %v of virtual time...\n",
		*cameras, *vehicles, horizon.Round(time.Second))
	sys.Run(horizon)
	if ctx.Err() != nil {
		logger.Info("interrupted; flushing", "t", sys.Sim().Now().String())
	}
	stop() // restore default signal handling: a second ^C force-kills
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		return err
	}

	fmt.Println("\nper-camera statistics:")
	fmt.Printf("  %-8s %8s %8s %12s %12s %12s\n", "camera", "frames", "events", "informsSent", "informsRecv", "reidMatches")
	for _, id := range camIDs {
		node, err := sys.Node(id)
		if err != nil {
			return err
		}
		st := node.Stats()
		fmt.Printf("  %-8s %8d %8d %12d %12d %12d\n",
			id, st.FramesProcessed, st.EventsGenerated, st.InformsSent, st.InformsReceived, st.ReidMatches)
	}

	if m := sys.Monitor(); m != nil {
		sum := m.Summary()
		fmt.Printf("\nfleet health: %d alive, %d dead\n", sum.Alive, sum.Dead)
		for _, tr := range sum.Transitions {
			fmt.Printf("  %-12s %s -> %s at t=%s\n", tr.NodeID, tr.From, tr.To, tr.At.Format("15:04:05"))
		}
	}

	store := sys.TrajStore()
	fmt.Printf("\ntrajectory graph: %d vertices, %d edges\n", store.NumVertices(), store.NumEdges())
	if err := printTrajectory(store, *track); err != nil {
		fmt.Printf("trajectory of %s: %v\n", *track, err)
	}

	if *dumpObs {
		fmt.Println("\nfinal metric snapshot:")
		if err := sys.Telemetry().WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if obsSrv != nil {
		if err := obsSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("telemetry shutdown", "err", err.Error())
		}
	}
	return sys.Shutdown(shutdownCtx)
}

// parseFail splits "cam2@40s" into its camera and instant.
func parseFail(spec string) (string, time.Duration, error) {
	parts := strings.SplitN(spec, "@", 2)
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("bad -fail spec %q, want camera@duration", spec)
	}
	at, err := time.ParseDuration(parts[1])
	if err != nil {
		return "", 0, fmt.Errorf("bad -fail time: %w", err)
	}
	return parts[0], at, nil
}

// printTrajectory reconstructs and prints the space-time track of a
// ground-truth vehicle, starting from its earliest event.
func printTrajectory(store *trajstore.Store, vehicleID string) error {
	var starts []trajstore.Vertex
	for vid := int64(1); vid <= int64(store.NumVertices()); vid++ {
		v, err := store.Vertex(vid)
		if err != nil {
			continue
		}
		if v.Event.TruthID == vehicleID {
			starts = append(starts, v)
		}
	}
	if len(starts) == 0 {
		return fmt.Errorf("no events recorded")
	}
	sort.Slice(starts, func(i, j int) bool {
		return starts[i].Event.Timestamp.Before(starts[j].Event.Timestamp)
	})
	paths, err := store.Trajectory(starts[0].ID, trajstore.DefaultTraceLimits())
	if err != nil {
		return err
	}
	fmt.Printf("space-time track of %s (%d candidate path(s)):\n", vehicleID, len(paths))
	for _, path := range paths {
		var hops []string
		for _, vid := range path {
			v, err := store.Vertex(vid)
			if err != nil {
				return err
			}
			hops = append(hops, fmt.Sprintf("%s@%s", v.Event.CameraID, v.Event.Timestamp.Format("15:04:05")))
		}
		fmt.Printf("  %s\n", strings.Join(hops, " -> "))
	}
	return nil
}
