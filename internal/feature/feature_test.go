package feature

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/imaging"
)

func coloredFrame(c imaging.Color) *imaging.Frame {
	f := imaging.MustNewFrame(64, 64)
	f.Fill(c)
	return f
}

func TestExtractNormalized(t *testing.T) {
	f := coloredFrame(imaging.Red)
	h, err := Extract(f, imaging.Rect{X: 10, Y: 10, W: 20, H: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Valid() {
		t.Fatalf("histogram size = %d", len(h.Bins))
	}
	var sum float64
	for _, b := range h.Bins {
		sum += b
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sums to %v, want 1", sum)
	}
}

func TestExtractNilFrame(t *testing.T) {
	if _, err := Extract(nil, imaging.Rect{W: 5, H: 5}); err == nil {
		t.Error("nil frame should error")
	}
}

func TestExtractOffFrameBoxIsZero(t *testing.T) {
	f := coloredFrame(imaging.Red)
	h, err := Extract(f, imaging.Rect{X: 500, Y: 500, W: 10, H: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsZero() {
		t.Error("fully off-frame box should give zero histogram")
	}
}

func TestIdenticalColorsDistanceZero(t *testing.T) {
	f := coloredFrame(imaging.Red)
	box := imaging.Rect{X: 5, Y: 5, W: 30, H: 30}
	h1, err := Extract(f, box)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Extract(f, imaging.Rect{X: 20, Y: 20, W: 30, H: 30})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Bhattacharyya(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-6 {
		t.Errorf("same-color distance = %v, want ~0", d)
	}
}

func TestDifferentColorsDistanceLarge(t *testing.T) {
	hr, err := Extract(coloredFrame(imaging.Red), imaging.Rect{X: 5, Y: 5, W: 30, H: 30})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := Extract(coloredFrame(imaging.Blue), imaging.Rect{X: 5, Y: 5, W: 30, H: 30})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Bhattacharyya(hr, hb)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.9 {
		t.Errorf("disjoint-color distance = %v, want ~1", d)
	}
}

func TestBhattacharyyaSizeMismatch(t *testing.T) {
	if _, err := Bhattacharyya(Histogram{Bins: make([]float64, 2)}, Histogram{Bins: make([]float64, 3)}); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestBhattacharyyaRangeProperty(t *testing.T) {
	f := func(seed1, seed2 uint8) bool {
		mk := func(seed uint8) Histogram {
			h := Histogram{Bins: make([]float64, HistogramSize)}
			// Put mass in a few pseudo-random bins.
			total := 0.0
			for i := 0; i < 5; i++ {
				idx := (int(seed)*31 + i*97) % HistogramSize
				h.Bins[idx] += float64(i + 1)
				total += float64(i + 1)
			}
			for i := range h.Bins {
				h.Bins[i] /= total
			}
			return h
		}
		a, b := mk(seed1), mk(seed2)
		d1, err1 := Bhattacharyya(a, b)
		d2, err2 := Bhattacharyya(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		if d1 < 0 || d1 > 1 {
			return false
		}
		if math.Abs(d1-d2) > 1e-12 {
			return false // symmetry
		}
		self, err := Bhattacharyya(a, a)
		return err == nil && self < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCenterWeightingDiscountsBorder(t *testing.T) {
	// A frame whose center is red but whose border region is blue; a box
	// covering both should be dominated by the center color thanks to the
	// adaptive weighting.
	f := imaging.MustNewFrame(60, 60)
	f.Fill(imaging.Blue)
	f.FillRect(imaging.Rect{X: 18, Y: 18, W: 24, H: 24}, imaging.Red)
	h, err := Extract(f, imaging.Rect{X: 10, Y: 10, W: 40, H: 40})
	if err != nil {
		t.Fatal(err)
	}
	pureRed, err := Extract(coloredFrame(imaging.Red), imaging.Rect{X: 10, Y: 10, W: 40, H: 40})
	if err != nil {
		t.Fatal(err)
	}
	pureBlue, err := Extract(coloredFrame(imaging.Blue), imaging.Rect{X: 10, Y: 10, W: 40, H: 40})
	if err != nil {
		t.Fatal(err)
	}
	dRed, err := Bhattacharyya(h, pureRed)
	if err != nil {
		t.Fatal(err)
	}
	dBlue, err := Bhattacharyya(h, pureBlue)
	if err != nil {
		t.Fatal(err)
	}
	if dRed >= dBlue {
		t.Errorf("center color should dominate: dRed=%v dBlue=%v", dRed, dBlue)
	}
}

func TestAccumulatorAcrossFrames(t *testing.T) {
	acc := NewAccumulator()
	box := imaging.Rect{X: 10, Y: 10, W: 20, H: 20}
	if err := acc.Add(coloredFrame(imaging.Red), box); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(coloredFrame(imaging.Red), box); err != nil {
		t.Fatal(err)
	}
	h := acc.Histogram()
	single, err := Extract(coloredFrame(imaging.Red), box)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Bhattacharyya(h, single)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-6 {
		t.Errorf("accumulating identical frames should not change the signature, d=%v", d)
	}
}

func TestEmptyAccumulatorHistogram(t *testing.T) {
	h := NewAccumulator().Histogram()
	if !h.IsZero() || !h.Valid() {
		t.Error("empty accumulator should give a valid all-zero histogram")
	}
}

func TestBoxCentroids(t *testing.T) {
	cs := BoxCentroids([]imaging.Rect{
		{X: 0, Y: 0, W: 10, H: 10},
		{X: 10, Y: 0, W: 10, H: 10},
	})
	if len(cs) != 2 || cs[0].X != 5 || cs[1].X != 15 {
		t.Errorf("centroids = %v", cs)
	}
}

func TestEstimateDirection(t *testing.T) {
	line := func(dx, dy float64, n int) []Centroid {
		out := make([]Centroid, n)
		for i := range out {
			out[i] = Centroid{X: 100 + dx*float64(i), Y: 100 + dy*float64(i)}
		}
		return out
	}
	tests := []struct {
		name    string
		cs      []Centroid
		heading float64
		want    geo.Direction
	}{
		{"rightward camera-north", line(5, 0, 10), 0, geo.East},
		{"upward camera-north", line(0, -5, 10), 0, geo.North},
		{"downward camera-north", line(0, 5, 10), 0, geo.South},
		{"leftward camera-north", line(-5, 0, 10), 0, geo.West},
		{"rightward camera-east", line(5, 0, 10), 90, geo.South},
		{"upward camera-west", line(0, -5, 10), 270, geo.West},
		{"diagonal", line(5, -5, 10), 0, geo.NorthEast},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EstimateDirection(tt.cs, tt.heading); got != tt.want {
				t.Errorf("EstimateDirection = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEstimateDirectionDegenerate(t *testing.T) {
	if got := EstimateDirection(nil, 0); got != geo.DirectionInvalid {
		t.Errorf("empty tracklet: %v", got)
	}
	if got := EstimateDirection([]Centroid{{X: 1, Y: 1}}, 0); got != geo.DirectionInvalid {
		t.Errorf("single point: %v", got)
	}
	still := []Centroid{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 5}}
	if got := EstimateDirection(still, 0); got != geo.DirectionInvalid {
		t.Errorf("stationary: %v", got)
	}
}

func TestEstimateDirectionRobustToJitter(t *testing.T) {
	// A rightward track with one wild outlier in the middle must still
	// read as East.
	cs := []Centroid{
		{X: 10, Y: 50}, {X: 15, Y: 50}, {X: 20, Y: 50},
		{X: 25, Y: 10}, // outlier
		{X: 30, Y: 50}, {X: 35, Y: 50}, {X: 40, Y: 50},
	}
	if got := EstimateDirection(cs, 0); got != geo.East {
		t.Errorf("jittered track direction = %v, want E", got)
	}
}
