// Package feature implements the signature extraction of Coral-Pie's
// vehicle identification element (paper Section 4.1.2): an adaptive
// color histogram that weights pixels near the center of the bounding box
// (following Tang et al., CVPRW 2018), the Bhattacharyya distance used to
// compare signatures during re-identification, and the direction-of-motion
// estimate derived from a tracklet's centroid sequence.
package feature

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/imaging"
)

// BinsPerChannel is the histogram resolution per RGB channel. 8 bins per
// channel gives the 512-bin signature carried in detection events.
const BinsPerChannel = 8

// HistogramSize is the total number of bins.
const HistogramSize = BinsPerChannel * BinsPerChannel * BinsPerChannel

// Histogram is a normalized color signature: entries sum to 1 (or the
// histogram is all zeros if it was built from no pixels).
type Histogram struct {
	Bins []float64 `json:"bins"`
}

// Valid reports whether the histogram has the expected bin count.
func (h Histogram) Valid() bool { return len(h.Bins) == HistogramSize }

// IsZero reports whether the histogram holds no mass.
func (h Histogram) IsZero() bool {
	for _, b := range h.Bins {
		if b != 0 {
			return false
		}
	}
	return true
}

func binIndex(c imaging.Color) int {
	const shift = 8 - 3 // 256 values -> 8 bins
	r := int(c.R) >> shift
	g := int(c.G) >> shift
	b := int(c.B) >> shift
	return (r*BinsPerChannel+g)*BinsPerChannel + b
}

// centerWeight returns the adaptive weight for a pixel at (x, y) within a
// box: a Gaussian centered on the box center whose scale tracks the box
// size, so border pixels (likely background) contribute little.
func centerWeight(x, y int, box imaging.Rect) float64 {
	cx, cy := box.CenterX(), box.CenterY()
	sx := float64(box.W) / 4
	sy := float64(box.H) / 4
	if sx <= 0 || sy <= 0 {
		return 1
	}
	dx := (float64(x) + 0.5 - cx) / sx
	dy := (float64(y) + 0.5 - cy) / sy
	return math.Exp(-(dx*dx + dy*dy) / 2)
}

// Accumulator builds an adaptive histogram incrementally across the frames
// of a tracklet. The zero value is not usable; call NewAccumulator.
type Accumulator struct {
	bins  []float64
	total float64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{bins: make([]float64, HistogramSize)}
}

// Add folds the center-weighted pixels of box within img into the
// accumulator. Out-of-frame parts of the box are ignored.
func (a *Accumulator) Add(img *imaging.Frame, box imaging.Rect) error {
	if img == nil {
		return fmt.Errorf("feature: nil frame")
	}
	clipped := img.Clamp(box)
	if clipped.Empty() {
		return nil
	}
	for y := clipped.Y; y < clipped.Y+clipped.H; y++ {
		for x := clipped.X; x < clipped.X+clipped.W; x++ {
			w := centerWeight(x, y, box)
			a.bins[binIndex(img.At(x, y))] += w
			a.total += w
		}
	}
	return nil
}

// Histogram returns the normalized signature accumulated so far.
func (a *Accumulator) Histogram() Histogram {
	out := Histogram{Bins: make([]float64, HistogramSize)}
	if a.total == 0 {
		return out
	}
	inv := 1 / a.total
	for i, b := range a.bins {
		out.Bins[i] = b * inv
	}
	return out
}

// Extract computes the single-frame adaptive histogram for a box.
func Extract(img *imaging.Frame, box imaging.Rect) (Histogram, error) {
	acc := NewAccumulator()
	if err := acc.Add(img, box); err != nil {
		return Histogram{}, err
	}
	return acc.Histogram(), nil
}

// Bhattacharyya returns the Bhattacharyya distance between two normalized
// histograms: sqrt(1 − Σ sqrt(p·q)), which is 0 for identical
// distributions and 1 for disjoint ones. It returns an error if the
// histograms have mismatched sizes.
func Bhattacharyya(p, q Histogram) (float64, error) {
	if len(p.Bins) != len(q.Bins) {
		return 0, fmt.Errorf("feature: histogram size mismatch %d vs %d", len(p.Bins), len(q.Bins))
	}
	var bc float64
	for i := range p.Bins {
		bc += math.Sqrt(p.Bins[i] * q.Bins[i])
	}
	if bc > 1 {
		bc = 1 // guard against accumulated floating-point excess
	}
	return math.Sqrt(1 - bc), nil
}

// Centroid is one tracklet point used for direction estimation.
type Centroid struct {
	X, Y float64
}

// BoxCentroids extracts the centroid sequence from tracklet boxes.
func BoxCentroids(boxes []imaging.Rect) []Centroid {
	out := make([]Centroid, 0, len(boxes))
	for _, b := range boxes {
		out = append(out, Centroid{X: b.CenterX(), Y: b.CenterY()})
	}
	return out
}

// EstimateDirection fits the dominant displacement of a centroid sequence
// (in image coordinates, +x right, +y down) and converts it to a compass
// direction using the camera's videoing angle: cameraHeadingDeg is the
// compass bearing that "up" in the image corresponds to in the world.
// It returns geo.DirectionInvalid when the tracklet shows no net motion.
func EstimateDirection(centroids []Centroid, cameraHeadingDeg float64) geo.Direction {
	if len(centroids) < 2 {
		return geo.DirectionInvalid
	}
	// Use the total-displacement vector between robust endpoint averages:
	// the mean of the first and last thirds of the tracklet, which damps
	// detector jitter better than first-to-last alone.
	k := len(centroids) / 3
	if k < 1 {
		k = 1
	}
	head := meanCentroid(centroids[:k])
	tail := meanCentroid(centroids[len(centroids)-k:])
	dx := tail.X - head.X
	dy := tail.Y - head.Y
	if math.Hypot(dx, dy) < 1e-6 {
		return geo.DirectionInvalid
	}
	// Image bearing: 0 = up, 90 = right (y grows downward).
	imageBearing := math.Atan2(dx, -dy) * 180 / math.Pi
	return geo.DirectionFromBearing(imageBearing + cameraHeadingDeg)
}

func meanCentroid(cs []Centroid) Centroid {
	var sx, sy float64
	for _, c := range cs {
		sx += c.X
		sy += c.Y
	}
	n := float64(len(cs))
	return Centroid{X: sx / n, Y: sy / n}
}
