package vision

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/imaging"
)

// SimDetectorConfig is the error model for the simulated DCNN detector.
// The defaults are calibrated so that, after SORT de-duplication, the
// per-camera event-detection accuracy lands in the band the paper reports
// in Table 2 (recall ~1.0, precision 0.7-0.95).
type SimDetectorConfig struct {
	// MissRate is the per-frame probability that a visible true object
	// produces no detection.
	MissRate float64
	// FalsePositiveRate is the per-frame probability of emitting one
	// spurious vehicle detection.
	FalsePositiveRate float64
	// BoxJitterPx is the standard deviation, in pixels, of the noise
	// added independently to each box coordinate.
	BoxJitterPx float64
	// ConfMean and ConfStd shape the confidence of true detections
	// (clamped to [0.05, 0.99]).
	ConfMean float64
	ConfStd  float64
	// FalseConfMean shapes the confidence of false positives.
	FalseConfMean float64
	// MinBoxPx drops true objects smaller than this many pixels on a
	// side, modeling the detector's resolution floor.
	MinBoxPx int
	// Seed initializes the detector's private RNG.
	Seed int64
}

// DefaultSimDetectorConfig returns the calibrated default error model.
func DefaultSimDetectorConfig(seed int64) SimDetectorConfig {
	return SimDetectorConfig{
		MissRate:          0.05,
		FalsePositiveRate: 0.02,
		BoxJitterPx:       1.5,
		ConfMean:          0.75,
		ConfStd:           0.15,
		FalseConfMean:     0.35,
		MinBoxPx:          4,
		Seed:              seed,
	}
}

// SimDetector is a Detector driven by simulation ground truth plus a
// configurable noise model. It is safe for concurrent use.
type SimDetector struct {
	cfg SimDetectorConfig

	mu  sync.Mutex
	rng *rand.Rand
	fp  int64 // counter for synthesizing false-positive identities
}

var _ Detector = (*SimDetector)(nil)

// NewSimDetector validates the config and returns a detector.
func NewSimDetector(cfg SimDetectorConfig) (*SimDetector, error) {
	if cfg.MissRate < 0 || cfg.MissRate > 1 {
		return nil, fmt.Errorf("vision: miss rate %v out of [0,1]", cfg.MissRate)
	}
	if cfg.FalsePositiveRate < 0 || cfg.FalsePositiveRate > 1 {
		return nil, fmt.Errorf("vision: false positive rate %v out of [0,1]", cfg.FalsePositiveRate)
	}
	if cfg.BoxJitterPx < 0 {
		return nil, fmt.Errorf("vision: negative box jitter %v", cfg.BoxJitterPx)
	}
	return &SimDetector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Detect implements Detector. For each ground-truth object it rolls the
// miss probability, jitters the box, and samples a confidence; it also
// occasionally emits a false positive somewhere on the frame.
func (d *SimDetector) Detect(f *Frame) ([]Detection, error) {
	if f == nil || f.Image == nil {
		return nil, fmt.Errorf("vision: nil frame")
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	out := make([]Detection, 0, len(f.Truth)+1)
	for _, obj := range f.Truth {
		if obj.Box.W < d.cfg.MinBoxPx || obj.Box.H < d.cfg.MinBoxPx {
			continue
		}
		if d.rng.Float64() < d.cfg.MissRate {
			continue
		}
		box := d.jitter(obj.Box, f.Image)
		if box.Empty() {
			continue
		}
		conf := clamp(d.rng.NormFloat64()*d.cfg.ConfStd+d.cfg.ConfMean, 0.05, 0.99)
		out = append(out, Detection{
			Box:        box,
			Label:      obj.Label,
			Confidence: conf,
			TruthID:    obj.ID,
		})
	}
	if d.rng.Float64() < d.cfg.FalsePositiveRate {
		out = append(out, d.falsePositive(f.Image))
	}
	return out, nil
}

func (d *SimDetector) jitter(r imaging.Rect, img *imaging.Frame) imaging.Rect {
	if d.cfg.BoxJitterPx == 0 {
		return img.Clamp(r)
	}
	j := func() int { return int(d.rng.NormFloat64() * d.cfg.BoxJitterPx) }
	out := imaging.Rect{
		X: r.X + j(),
		Y: r.Y + j(),
		W: max(1, r.W+j()),
		H: max(1, r.H+j()),
	}
	return img.Clamp(out)
}

func (d *SimDetector) falsePositive(img *imaging.Frame) Detection {
	d.fp++
	w := 8 + d.rng.Intn(max(1, img.Width/4))
	h := 8 + d.rng.Intn(max(1, img.Height/4))
	box := imaging.Rect{
		X: d.rng.Intn(max(1, img.Width-w)),
		Y: d.rng.Intn(max(1, img.Height-h)),
		W: w,
		H: h,
	}
	conf := clamp(d.rng.NormFloat64()*0.1+d.cfg.FalseConfMean, 0.05, 0.99)
	return Detection{
		Box:        img.Clamp(box),
		Label:      LabelCar,
		Confidence: conf,
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PerfectDetector returns ground truth verbatim with confidence 0.99.
// Useful as an oracle in tests and ablation baselines.
type PerfectDetector struct{}

var _ Detector = PerfectDetector{}

// Detect implements Detector.
func (PerfectDetector) Detect(f *Frame) ([]Detection, error) {
	if f == nil || f.Image == nil {
		return nil, fmt.Errorf("vision: nil frame")
	}
	out := make([]Detection, 0, len(f.Truth))
	for _, obj := range f.Truth {
		out = append(out, Detection{
			Box:        f.Image.Clamp(obj.Box),
			Label:      obj.Label,
			Confidence: 0.99,
			TruthID:    obj.ID,
		})
	}
	return out, nil
}
