package vision

import (
	"testing"

	"repro/internal/imaging"
)

// blobFrame renders the simulator's asphalt texture plus vehicle
// rectangles.
func blobFrame(t *testing.T, vehicles ...imaging.Rect) *Frame {
	t.Helper()
	img := imaging.MustNewFrame(160, 120)
	img.FillTexturedBackground(imaging.Color{R: 96, G: 96, B: 100}, 5)
	f := &Frame{CameraID: "cam", Image: img}
	for i, box := range vehicles {
		colors := []imaging.Color{imaging.Red, imaging.Blue, {R: 240, G: 200, B: 40}}
		img.FillRect(box, colors[i%len(colors)])
	}
	return f
}

func mustBlob(t *testing.T) *BlobDetector {
	t.Helper()
	d, err := NewBlobDetector(DefaultBlobDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBlobDetectorValidation(t *testing.T) {
	bad := DefaultBlobDetectorConfig()
	bad.Threshold = 0
	if _, err := NewBlobDetector(bad); err == nil {
		t.Error("zero threshold accepted")
	}
	bad = DefaultBlobDetectorConfig()
	bad.MinArea = 0
	if _, err := NewBlobDetector(bad); err == nil {
		t.Error("zero min area accepted")
	}
	bad = DefaultBlobDetectorConfig()
	bad.MaxArea = -1
	if _, err := NewBlobDetector(bad); err == nil {
		t.Error("negative max area accepted")
	}
	d := mustBlob(t)
	if _, err := d.Detect(nil); err == nil {
		t.Error("nil frame accepted")
	}
}

func TestBlobDetectorFindsVehiclesFromPixels(t *testing.T) {
	d := mustBlob(t)
	want := []imaging.Rect{
		{X: 20, Y: 40, W: 18, H: 9},
		{X: 90, Y: 70, W: 18, H: 9},
	}
	f := blobFrame(t, want...)
	dets, err := d.Detect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2: %+v", len(dets), dets)
	}
	for i, det := range dets {
		if iou := det.Box.IoU(want[i]); iou < 0.9 {
			t.Errorf("detection %d box %v vs truth %v (IoU %.2f)", i, det.Box, want[i], iou)
		}
		if det.Confidence < 0.9 {
			t.Errorf("solid rectangle confidence = %v", det.Confidence)
		}
		if det.Label != LabelCar {
			t.Errorf("label = %v", det.Label)
		}
		if det.TruthID != "" {
			t.Error("blob detector must be truth-blind")
		}
	}
}

func TestBlobDetectorEmptyRoad(t *testing.T) {
	d := mustBlob(t)
	dets, err := d.Detect(blobFrame(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Errorf("textured background produced %d false detections: %+v", len(dets), dets)
	}
}

func TestBlobDetectorAreaFilters(t *testing.T) {
	cfg := DefaultBlobDetectorConfig()
	cfg.MinArea = 50
	d, err := NewBlobDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 5x5 speck (25 px) is below MinArea.
	f := blobFrame(t, imaging.Rect{X: 10, Y: 10, W: 5, H: 5})
	dets, err := d.Detect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Errorf("speck should be filtered, got %+v", dets)
	}

	cfg = DefaultBlobDetectorConfig()
	cfg.MaxArea = 100
	d, err = NewBlobDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A huge blob (shadow/lighting artifact) is above MaxArea.
	f = blobFrame(t, imaging.Rect{X: 10, Y: 10, W: 60, H: 60})
	dets, err = d.Detect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Errorf("oversized blob should be filtered, got %+v", dets)
	}
}

func TestBlobDetectorMergesTouchingPixelsOnly(t *testing.T) {
	d := mustBlob(t)
	// Two vehicles separated by one background column stay distinct.
	f := blobFrame(t,
		imaging.Rect{X: 20, Y: 40, W: 10, H: 8},
		imaging.Rect{X: 35, Y: 40, W: 10, H: 8},
	)
	dets, err := d.Detect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
	// Touching vehicles merge into one component (the occlusion failure
	// mode the paper warns about).
	f = blobFrame(t,
		imaging.Rect{X: 20, Y: 40, W: 10, H: 8},
		imaging.Rect{X: 30, Y: 40, W: 10, H: 8},
	)
	dets, err = d.Detect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("touching vehicles: detections = %d, want 1 merged", len(dets))
	}
}

func TestAttributeTruth(t *testing.T) {
	dets := []Detection{
		{Box: imaging.Rect{X: 20, Y: 40, W: 18, H: 9}, Label: LabelCar, Confidence: 0.9},
		{Box: imaging.Rect{X: 120, Y: 10, W: 10, H: 10}, Label: LabelCar, Confidence: 0.9},
	}
	truth := []TruthObject{
		{ID: "veh-1", Label: LabelCar, Box: imaging.Rect{X: 21, Y: 40, W: 18, H: 9}},
	}
	out := AttributeTruth(dets, truth, 0.3)
	if out[0].TruthID != "veh-1" {
		t.Errorf("overlapping detection not attributed: %+v", out[0])
	}
	if out[1].TruthID != "" {
		t.Errorf("non-overlapping detection attributed: %+v", out[1])
	}
	// Originals untouched.
	if dets[0].TruthID != "" {
		t.Error("AttributeTruth must not mutate its input")
	}
}

func TestTruthAttributingDetectorWrapsBlob(t *testing.T) {
	blob := mustBlob(t)
	d := &TruthAttributingDetector{Inner: blob}
	box := imaging.Rect{X: 20, Y: 40, W: 18, H: 9}
	f := blobFrame(t, box)
	f.Truth = []TruthObject{{ID: "veh-9", Label: LabelCar, Box: box}}
	dets, err := d.Detect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 || dets[0].TruthID != "veh-9" {
		t.Errorf("attributed detections = %+v", dets)
	}
}
