// Package vision defines the pluggable computer-vision interfaces of
// Coral-Pie and the post-processing filters from Section 4.1.2 of the
// paper: label filtering ({car, bus, truck}), a minimum-confidence
// threshold, and the context-of-interest (CoI) polygon test.
//
// The paper runs MobileNetSSD V2 on an EdgeTPU; this reproduction supplies
// SimDetector, a ground-truth-driven detector with a calibrated error
// model, behind the same Detector interface a real model binding would
// implement.
package vision

import (
	"fmt"
	"time"

	"repro/internal/imaging"
)

// Label classifies a detected object. The paper keeps {car, bus, truck}
// and discards the rest.
type Label int

// Object labels, mirroring the COCO classes the paper filters on.
const (
	LabelUnknown Label = iota
	LabelCar
	LabelBus
	LabelTruck
	LabelPerson
	LabelBicycle
)

var labelNames = [...]string{
	LabelUnknown: "unknown",
	LabelCar:     "car",
	LabelBus:     "bus",
	LabelTruck:   "truck",
	LabelPerson:  "person",
	LabelBicycle: "bicycle",
}

// String implements fmt.Stringer.
func (l Label) String() string {
	if l < LabelUnknown || int(l) >= len(labelNames) {
		return fmt.Sprintf("Label(%d)", int(l))
	}
	return labelNames[l]
}

// IsVehicle reports whether the label is one of the vehicle classes kept
// by the paper's post-processing step 1.
func (l Label) IsVehicle() bool {
	return l == LabelCar || l == LabelBus || l == LabelTruck
}

// Detection is one inference output: a bounding box with a label and a
// confidence score in [0, 1]. TruthID carries the simulator's ground-truth
// vehicle identity for evaluation only; it is empty for false positives
// and must never be consulted by the tracking or re-identification logic.
type Detection struct {
	Box        imaging.Rect `json:"box"`
	Label      Label        `json:"label"`
	Confidence float64      `json:"confidence"`
	TruthID    string       `json:"truthId,omitempty"`
}

// TruthObject is the simulator's ground-truth annotation for one object
// visible in a frame.
type TruthObject struct {
	ID    string
	Label Label
	Box   imaging.Rect
}

// Frame is one captured camera frame flowing through the pipeline.
type Frame struct {
	CameraID string
	Seq      int64
	Time     time.Time
	Image    *imaging.Frame
	// Truth holds simulation ground truth. Real deployments leave it nil;
	// SimDetector and the evaluation harness consume it.
	Truth []TruthObject
}

// Detector is the pluggable detection component (paper Section 2.1). A
// production implementation would wrap an accelerator binding; the
// reproduction uses SimDetector.
type Detector interface {
	// Detect returns the raw detections for a frame, before
	// post-processing.
	Detect(f *Frame) ([]Detection, error)
}

// PointF is a floating-point image coordinate used by CoI polygons.
type PointF struct {
	X, Y float64
}

// CoI is the context-of-interest polygon for a camera: bounding boxes
// whose centroid falls outside it are discarded because they are usually
// too blurred for re-identification (paper Section 4.1.2, step 3).
type CoI struct {
	vertices []PointF
}

// NewCoI builds a CoI from polygon vertices in order. It requires at
// least three vertices.
func NewCoI(vertices []PointF) (*CoI, error) {
	if len(vertices) < 3 {
		return nil, fmt.Errorf("vision: CoI needs >= 3 vertices, have %d", len(vertices))
	}
	vs := make([]PointF, len(vertices))
	copy(vs, vertices)
	return &CoI{vertices: vs}, nil
}

// RectCoI builds a rectangular CoI covering the given fractional region of
// a width×height frame, e.g. margins of 0.15 keep the central 70%.
func RectCoI(width, height int, marginFrac float64) (*CoI, error) {
	if marginFrac < 0 || marginFrac >= 0.5 {
		return nil, fmt.Errorf("vision: margin fraction %v out of [0, 0.5)", marginFrac)
	}
	w, h := float64(width), float64(height)
	mx, my := w*marginFrac, h*marginFrac
	return NewCoI([]PointF{
		{X: mx, Y: my},
		{X: w - mx, Y: my},
		{X: w - mx, Y: h - my},
		{X: mx, Y: h - my},
	})
}

// Contains reports whether the point lies inside the polygon, using the
// even-odd ray-casting rule. Points exactly on an edge may fall on either
// side; camera CoIs do not care.
func (c *CoI) Contains(p PointF) bool {
	inside := false
	n := len(c.vertices)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := c.vertices[i], c.vertices[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Vertices returns a copy of the polygon vertices.
func (c *CoI) Vertices() []PointF {
	out := make([]PointF, len(c.vertices))
	copy(out, c.vertices)
	return out
}

// PostProcessConfig parameterizes the paper's 3-step bounding-box filter.
type PostProcessConfig struct {
	// MinConfidence is the minimum detection confidence kept (paper
	// prototype: 0.2).
	MinConfidence float64
	// CoI is the context-of-interest polygon; nil keeps every centroid.
	CoI *CoI
}

// DefaultMinConfidence is the prototype system's threshold (Section 5.1).
const DefaultMinConfidence = 0.2

// PostProcess applies the three filtering steps from Section 4.1.2 in
// order: vehicle label, confidence threshold, centroid-in-CoI. It returns
// the surviving detections in input order.
func PostProcess(dets []Detection, cfg PostProcessConfig) []Detection {
	out := make([]Detection, 0, len(dets))
	for _, d := range dets {
		if !d.Label.IsVehicle() {
			continue
		}
		if d.Confidence < cfg.MinConfidence {
			continue
		}
		if cfg.CoI != nil && !cfg.CoI.Contains(PointF{X: d.Box.CenterX(), Y: d.Box.CenterY()}) {
			continue
		}
		out = append(out, d)
	}
	return out
}
