package vision

import (
	"fmt"

	"repro/internal/imaging"
)

// BlobDetectorConfig parameterizes the pixel-based detector.
type BlobDetectorConfig struct {
	// Background is the expected background color (the road surface);
	// pixels deviating from it by more than Threshold (max channel
	// difference) are foreground.
	Background imaging.Color
	// Threshold is the per-channel deviation above which a pixel counts
	// as foreground. It must exceed the background texture amplitude.
	Threshold int
	// MinArea discards components smaller than this many pixels.
	MinArea int
	// MaxArea discards components larger than this many pixels
	// (0 = unlimited).
	MaxArea int
}

// DefaultBlobDetectorConfig is tuned for the simulator's textured asphalt
// background (amplitude ±16 around the base color).
func DefaultBlobDetectorConfig() BlobDetectorConfig {
	return BlobDetectorConfig{
		Background: imaging.Color{R: 96, G: 96, B: 100},
		Threshold:  40,
		MinArea:    12,
	}
}

// BlobDetector is a real pixel-driven detector: it thresholds the frame
// against a background model and extracts connected foreground components
// as vehicle detections. Unlike SimDetector it never consults ground
// truth, so the full Coral-Pie pipeline runs on pixels alone — it is the
// simplest possible occupant of the paper's pluggable detector slot.
//
// TruthID attribution for evaluation is recovered afterwards by
// intersecting detections with frame ground truth (see AttributeTruth);
// the detector itself is truth-blind.
type BlobDetector struct {
	cfg BlobDetectorConfig
}

var _ Detector = (*BlobDetector)(nil)

// NewBlobDetector validates the config and returns the detector.
func NewBlobDetector(cfg BlobDetectorConfig) (*BlobDetector, error) {
	if cfg.Threshold < 1 || cfg.Threshold > 255 {
		return nil, fmt.Errorf("vision: blob threshold %d out of [1,255]", cfg.Threshold)
	}
	if cfg.MinArea < 1 {
		return nil, fmt.Errorf("vision: blob min area %d must be >= 1", cfg.MinArea)
	}
	if cfg.MaxArea < 0 {
		return nil, fmt.Errorf("vision: blob max area %d must be >= 0", cfg.MaxArea)
	}
	return &BlobDetector{cfg: cfg}, nil
}

// Detect implements Detector by connected-component labeling of the
// foreground mask (4-connectivity, union-find).
func (d *BlobDetector) Detect(f *Frame) ([]Detection, error) {
	if f == nil || f.Image == nil {
		return nil, fmt.Errorf("vision: nil frame")
	}
	img := f.Image
	w, h := img.Width, img.Height

	// Foreground mask.
	fg := make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if d.isForeground(img.At(x, y)) {
				fg[y*w+x] = true
			}
		}
	}

	// Union-find over foreground pixels.
	parent := make([]int32, w*h)
	for i := range parent {
		parent[i] = -1
	}
	var find func(i int32) int32
	find = func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := int32(y*w + x)
			if !fg[i] {
				continue
			}
			parent[i] = i
			if x > 0 && fg[i-1] {
				union(i-1, i)
			}
			if y > 0 && fg[i-int32(w)] {
				union(i-int32(w), i)
			}
		}
	}

	// Component bounding boxes.
	type box struct {
		minX, minY, maxX, maxY, area int
	}
	comps := make(map[int32]*box)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := int32(y*w + x)
			if !fg[i] {
				continue
			}
			root := find(i)
			b, ok := comps[root]
			if !ok {
				b = &box{minX: x, minY: y, maxX: x, maxY: y}
				comps[root] = b
			}
			if x < b.minX {
				b.minX = x
			}
			if x > b.maxX {
				b.maxX = x
			}
			if y < b.minY {
				b.minY = y
			}
			if y > b.maxY {
				b.maxY = y
			}
			b.area++
		}
	}

	var out []Detection
	for _, b := range comps {
		if b.area < d.cfg.MinArea {
			continue
		}
		if d.cfg.MaxArea > 0 && b.area > d.cfg.MaxArea {
			continue
		}
		rect := imaging.Rect{X: b.minX, Y: b.minY, W: b.maxX - b.minX + 1, H: b.maxY - b.minY + 1}
		// Confidence: how solid the component is (filled fraction of its
		// bounding box); vehicles render as solid rectangles.
		conf := float64(b.area) / float64(rect.Area())
		out = append(out, Detection{
			Box:        rect,
			Label:      LabelCar,
			Confidence: conf,
		})
	}
	// Deterministic order: left-to-right, top-to-bottom.
	sortDetections(out)
	return out, nil
}

func (d *BlobDetector) isForeground(c imaging.Color) bool {
	diff := func(a, b uint8) int {
		v := int(a) - int(b)
		if v < 0 {
			return -v
		}
		return v
	}
	m := diff(c.R, d.cfg.Background.R)
	if v := diff(c.G, d.cfg.Background.G); v > m {
		m = v
	}
	if v := diff(c.B, d.cfg.Background.B); v > m {
		m = v
	}
	return m > d.cfg.Threshold
}

func sortDetections(dets []Detection) {
	for i := 1; i < len(dets); i++ {
		for j := i; j > 0 && less(dets[j], dets[j-1]); j-- {
			dets[j], dets[j-1] = dets[j-1], dets[j]
		}
	}
}

func less(a, b Detection) bool {
	if a.Box.X != b.Box.X {
		return a.Box.X < b.Box.X
	}
	return a.Box.Y < b.Box.Y
}

// AttributeTruth assigns ground-truth identities to truth-blind
// detections by maximum box IoU against the frame's annotations (used
// only by the evaluation harness; IoU below minIoU leaves TruthID empty).
func AttributeTruth(dets []Detection, truth []TruthObject, minIoU float64) []Detection {
	out := make([]Detection, len(dets))
	copy(out, dets)
	for i := range out {
		best := minIoU
		for _, obj := range truth {
			if iou := out[i].Box.IoU(obj.Box); iou >= best {
				best = iou
				out[i].TruthID = obj.ID
			}
		}
	}
	return out
}

// TruthAttributingDetector wraps a truth-blind detector and attributes
// ground-truth identities to its output for scoring. The wrapped
// detector's behaviour is unchanged.
type TruthAttributingDetector struct {
	Inner  Detector
	MinIoU float64
}

var _ Detector = (*TruthAttributingDetector)(nil)

// Detect implements Detector.
func (d *TruthAttributingDetector) Detect(f *Frame) ([]Detection, error) {
	dets, err := d.Inner.Detect(f)
	if err != nil {
		return nil, err
	}
	minIoU := d.MinIoU
	if minIoU <= 0 {
		minIoU = 0.3
	}
	return AttributeTruth(dets, f.Truth, minIoU), nil
}
