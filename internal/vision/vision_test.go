package vision

import (
	"testing"
	"time"

	"repro/internal/imaging"
)

func TestLabelString(t *testing.T) {
	if LabelCar.String() != "car" || LabelBus.String() != "bus" {
		t.Error("unexpected label names")
	}
	if Label(99).String() != "Label(99)" {
		t.Errorf("out of range: %v", Label(99))
	}
}

func TestIsVehicle(t *testing.T) {
	for _, l := range []Label{LabelCar, LabelBus, LabelTruck} {
		if !l.IsVehicle() {
			t.Errorf("%v should be a vehicle", l)
		}
	}
	for _, l := range []Label{LabelPerson, LabelBicycle, LabelUnknown} {
		if l.IsVehicle() {
			t.Errorf("%v should not be a vehicle", l)
		}
	}
}

func TestNewCoIValidation(t *testing.T) {
	if _, err := NewCoI([]PointF{{0, 0}, {1, 1}}); err == nil {
		t.Error("two vertices should error")
	}
	c, err := NewCoI([]PointF{{0, 0}, {10, 0}, {10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Vertices()) != 3 {
		t.Error("vertex count wrong")
	}
}

func TestCoIContainsTriangle(t *testing.T) {
	c, err := NewCoI([]PointF{{0, 0}, {10, 0}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		p    PointF
		want bool
	}{
		{PointF{1, 1}, true},
		{PointF{3, 3}, true},
		{PointF{9, 9}, false},
		{PointF{-1, 5}, false},
		{PointF{5, -1}, false},
	}
	for _, tt := range tests {
		if got := c.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestCoIContainsConcave(t *testing.T) {
	// A "U" shaped polygon; the notch must be outside.
	c, err := NewCoI([]PointF{
		{0, 0}, {10, 0}, {10, 10}, {7, 10}, {7, 3}, {3, 3}, {3, 10}, {0, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(PointF{1, 5}) {
		t.Error("left arm should be inside")
	}
	if !c.Contains(PointF{8.5, 5}) {
		t.Error("right arm should be inside")
	}
	if c.Contains(PointF{5, 7}) {
		t.Error("notch should be outside")
	}
	if !c.Contains(PointF{5, 1}) {
		t.Error("bridge should be inside")
	}
}

func TestRectCoI(t *testing.T) {
	c, err := RectCoI(100, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(PointF{50, 50}) {
		t.Error("center should be inside")
	}
	if c.Contains(PointF{10, 50}) {
		t.Error("margin should be outside")
	}
	if _, err := RectCoI(100, 100, 0.6); err == nil {
		t.Error("margin >= 0.5 should error")
	}
	if _, err := RectCoI(100, 100, -0.1); err == nil {
		t.Error("negative margin should error")
	}
}

func TestPostProcessThreeSteps(t *testing.T) {
	coi, err := RectCoI(100, 100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	dets := []Detection{
		{Box: imaging.Rect{X: 45, Y: 45, W: 10, H: 10}, Label: LabelCar, Confidence: 0.9},    // keep
		{Box: imaging.Rect{X: 45, Y: 45, W: 10, H: 10}, Label: LabelPerson, Confidence: 0.9}, // label
		{Box: imaging.Rect{X: 45, Y: 45, W: 10, H: 10}, Label: LabelCar, Confidence: 0.1},    // confidence
		{Box: imaging.Rect{X: 0, Y: 0, W: 10, H: 10}, Label: LabelCar, Confidence: 0.9},      // CoI
		{Box: imaging.Rect{X: 40, Y: 40, W: 20, H: 20}, Label: LabelBus, Confidence: 0.21},   // keep
	}
	got := PostProcess(dets, PostProcessConfig{MinConfidence: DefaultMinConfidence, CoI: coi})
	if len(got) != 2 {
		t.Fatalf("kept %d detections, want 2: %v", len(got), got)
	}
	if got[0].Label != LabelCar || got[1].Label != LabelBus {
		t.Errorf("wrong detections kept: %v", got)
	}
}

func TestPostProcessNilCoI(t *testing.T) {
	dets := []Detection{
		{Box: imaging.Rect{X: 0, Y: 0, W: 5, H: 5}, Label: LabelTruck, Confidence: 0.5},
	}
	got := PostProcess(dets, PostProcessConfig{MinConfidence: 0.2})
	if len(got) != 1 {
		t.Errorf("nil CoI should keep all centroids, got %v", got)
	}
}

func newTestFrame(t *testing.T, truth ...TruthObject) *Frame {
	t.Helper()
	return &Frame{
		CameraID: "cam1",
		Seq:      1,
		Time:     time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC),
		Image:    imaging.MustNewFrame(320, 240),
		Truth:    truth,
	}
}

func TestSimDetectorValidation(t *testing.T) {
	bad := DefaultSimDetectorConfig(1)
	bad.MissRate = 1.5
	if _, err := NewSimDetector(bad); err == nil {
		t.Error("miss rate > 1 should error")
	}
	bad = DefaultSimDetectorConfig(1)
	bad.FalsePositiveRate = -0.1
	if _, err := NewSimDetector(bad); err == nil {
		t.Error("negative FP rate should error")
	}
	bad = DefaultSimDetectorConfig(1)
	bad.BoxJitterPx = -1
	if _, err := NewSimDetector(bad); err == nil {
		t.Error("negative jitter should error")
	}
}

func TestSimDetectorNilFrame(t *testing.T) {
	d, err := NewSimDetector(DefaultSimDetectorConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Detect(nil); err == nil {
		t.Error("nil frame should error")
	}
}

func TestSimDetectorNoNoiseReturnsTruth(t *testing.T) {
	cfg := SimDetectorConfig{Seed: 1, ConfMean: 0.8, ConfStd: 0, MinBoxPx: 1}
	d, err := NewSimDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := TruthObject{ID: "v1", Label: LabelCar, Box: imaging.Rect{X: 50, Y: 50, W: 20, H: 15}}
	dets, err := d.Detect(newTestFrame(t, truth))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1", len(dets))
	}
	if dets[0].Box != truth.Box {
		t.Errorf("box = %v, want %v", dets[0].Box, truth.Box)
	}
	if dets[0].TruthID != "v1" {
		t.Errorf("truth id = %q", dets[0].TruthID)
	}
}

func TestSimDetectorMissRateStatistics(t *testing.T) {
	cfg := SimDetectorConfig{Seed: 42, MissRate: 0.3, ConfMean: 0.8, MinBoxPx: 1}
	d, err := NewSimDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := TruthObject{ID: "v1", Label: LabelCar, Box: imaging.Rect{X: 50, Y: 50, W: 20, H: 15}}
	const n = 5000
	detected := 0
	for i := 0; i < n; i++ {
		dets, err := d.Detect(newTestFrame(t, truth))
		if err != nil {
			t.Fatal(err)
		}
		detected += len(dets)
	}
	rate := float64(detected) / n
	if rate < 0.65 || rate > 0.75 {
		t.Errorf("detection rate %v, want ~0.7", rate)
	}
}

func TestSimDetectorFalsePositives(t *testing.T) {
	cfg := SimDetectorConfig{Seed: 7, FalsePositiveRate: 1.0, FalseConfMean: 0.4, MinBoxPx: 1}
	d, err := NewSimDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dets, err := d.Detect(newTestFrame(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("got %d detections from empty truth, want 1 FP", len(dets))
	}
	if dets[0].TruthID != "" {
		t.Error("false positive must have empty TruthID")
	}
	if dets[0].Box.Empty() {
		t.Error("FP box should not be empty")
	}
}

func TestSimDetectorDeterministic(t *testing.T) {
	mk := func() []int {
		d, err := NewSimDetector(DefaultSimDetectorConfig(99))
		if err != nil {
			t.Fatal(err)
		}
		truth := TruthObject{ID: "v1", Label: LabelCar, Box: imaging.Rect{X: 50, Y: 50, W: 20, H: 15}}
		var counts []int
		for i := 0; i < 50; i++ {
			dets, err := d.Detect(newTestFrame(t, truth))
			if err != nil {
				t.Fatal(err)
			}
			counts = append(counts, len(dets))
		}
		return counts
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must yield identical detection sequences")
		}
	}
}

func TestSimDetectorMinBoxPx(t *testing.T) {
	cfg := SimDetectorConfig{Seed: 1, MinBoxPx: 10, ConfMean: 0.9}
	d, err := NewSimDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := TruthObject{ID: "tiny", Label: LabelCar, Box: imaging.Rect{X: 5, Y: 5, W: 4, H: 4}}
	dets, err := d.Detect(newTestFrame(t, small))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Errorf("sub-threshold object should be dropped, got %v", dets)
	}
}

func TestPerfectDetector(t *testing.T) {
	d := PerfectDetector{}
	truth := TruthObject{ID: "v9", Label: LabelTruck, Box: imaging.Rect{X: 10, Y: 10, W: 30, H: 20}}
	dets, err := d.Detect(newTestFrame(t, truth))
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 || dets[0].TruthID != "v9" || dets[0].Box != truth.Box {
		t.Errorf("PerfectDetector output wrong: %v", dets)
	}
	if _, err := d.Detect(nil); err == nil {
		t.Error("nil frame should error")
	}
}
