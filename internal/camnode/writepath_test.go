package camnode

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/imaging"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/reid"
	"repro/internal/trajstore"
	"repro/internal/transport"
)

// informEvent builds a minimal upstream detection event for direct
// handleInform delivery.
func informEvent(id string) protocol.DetectionEvent {
	return protocol.DetectionEvent{
		ID:        protocol.EventID(id),
		CameraID:  "up",
		Timestamp: epoch,
	}
}

// TestDuplicateInformRedelivery proves a re-delivered Inform refreshes
// the sender address without corrupting the upstream FIFO: with the old
// double-append, the duplicate slot evicted the live map entry early
// while the stale slot kept burning budget.
func TestDuplicateInformRedelivery(t *testing.T) {
	bus := transport.NewBus()
	cfg := nodeConfig("dupcam", trajstore.NewMemStore())
	cfg.MaxPendingInforms = 2
	n := newTestNode(t, bus, "dupcam", cfg)

	evA, evB := informEvent("up#A"), informEvent("up#B")
	n.handleInform(context.Background(), protocol.Inform{Event: evA, FromAddr: "addrA"})
	n.handleInform(context.Background(), protocol.Inform{Event: evA, FromAddr: "addrA2"}) // redelivery
	n.handleInform(context.Background(), protocol.Inform{Event: evB, FromAddr: "addrB"})

	n.mu.Lock()
	ordLen, mapLen := len(n.upOrd), len(n.upstream)
	gotA, gotB := n.upstream[evA.ID], n.upstream[evB.ID]
	n.mu.Unlock()

	if ordLen != 2 || mapLen != 2 {
		t.Fatalf("upOrd=%d upstream=%d, want 2/2: duplicate slot corrupted the FIFO", ordLen, mapLen)
	}
	if gotA != "addrA2" {
		t.Errorf("upstream[A] = %q, want refreshed addrA2", gotA)
	}
	if gotB != "addrB" {
		t.Errorf("upstream[B] = %q", gotB)
	}
	if n.Stats().InformsReceived != 3 {
		t.Errorf("informs received = %d", n.Stats().InformsReceived)
	}
}

// TestRememberInformRedelivery covers the same double-append bug on the
// pending-confirm side.
func TestRememberInformRedelivery(t *testing.T) {
	bus := transport.NewBus()
	cfg := nodeConfig("pendcam", trajstore.NewMemStore())
	cfg.MaxPendingInforms = 2
	n := newTestNode(t, bus, "pendcam", cfg)

	refs := []protocol.CameraRef{{ID: "x", Addr: "x"}}
	n.rememberInform("e1", refs)
	n.rememberInform("e1", refs) // repeat replaces, must not re-append
	n.rememberInform("e2", refs)

	n.mu.Lock()
	ordLen, mapLen := len(n.pendOrd), len(n.pending)
	_, hasE1 := n.pending["e1"]
	n.mu.Unlock()

	if ordLen != 2 || mapLen != 2 {
		t.Fatalf("pendOrd=%d pending=%d, want 2/2", ordLen, mapLen)
	}
	if !hasE1 {
		t.Error("e1 evicted by its own duplicate slot")
	}
}

// edgeFailStore passes vertices through and fails every edge insert.
type edgeFailStore struct {
	*trajstore.Store
}

func (s *edgeFailStore) AddEdge(from, to int64, weight float64) error {
	return errors.New("injected edge failure")
}

// TestReidMatchAccountingWhenEdgeFails proves the re-id accounting no
// longer diverges on a failed edge write: ReidMatches counts the match,
// the failure lands in SendErrors, and EdgesInserted stays at zero.
func TestReidMatchAccountingWhenEdgeFails(t *testing.T) {
	bus := transport.NewBus()
	base := trajstore.NewMemStore()
	store := &edgeFailStore{Store: base}
	a := newTestNode(t, bus, "camA", nodeConfig("camA", store))
	b := newTestNode(t, bus, "camB", nodeConfig("camB", store))
	a.Topology().ApplyUpdate(protocol.TopologyUpdate{
		CameraID: "camA",
		Version:  1,
		MDCS: map[geo.Direction][]protocol.CameraRef{
			geo.East: {{ID: "camB", Addr: "camB"}},
		},
	})

	driveVehicleThrough(t, a, "veh-1", imaging.Red, 0)
	driveVehicleThrough(t, b, "veh-1", imaging.Red, 100)

	st := b.Stats()
	if st.ReidMatches != 1 {
		t.Errorf("ReidMatches = %d, want 1 (match happened regardless of edge outcome)", st.ReidMatches)
	}
	if st.EdgesInserted != 0 {
		t.Errorf("EdgesInserted = %d, want 0", st.EdgesInserted)
	}
	if st.SendErrors == 0 {
		t.Error("failed edge write not counted in SendErrors")
	}
	if base.NumEdges() != 0 {
		t.Errorf("edges = %d", base.NumEdges())
	}
	// The confirming stage still ran: the failed edge must not mask it.
	if st.ConfirmsSent != 1 {
		t.Errorf("ConfirmsSent = %d, want 1", st.ConfirmsSent)
	}
}

// queueStore implements the EdgeQueuer/EdgeFlusher pair on top of a mem
// store: edges buffer until Flush delivers them, like the real
// BatchWriter but deterministic.
type queueStore struct {
	*trajstore.Store

	mu      sync.Mutex
	queued  []trajstore.Edge
	dones   []func(error)
	flushes int
}

func (s *queueStore) QueueEdge(from, to int64, weight float64, done func(error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queued = append(s.queued, trajstore.Edge{From: from, To: to, Weight: weight})
	s.dones = append(s.dones, done)
}

func (s *queueStore) Flush(ctx context.Context) error {
	s.mu.Lock()
	edges, dones := s.queued, s.dones
	s.queued, s.dones = nil, nil
	s.flushes++
	s.mu.Unlock()
	for i, e := range edges {
		err := s.Store.AddEdge(e.From, e.To, e.Weight)
		if dones[i] != nil {
			dones[i](err)
		}
	}
	return nil
}

// TestBatchedEdgePathAccounting proves the node routes edges through an
// EdgeQueuer when the store offers one, that the deferred result feeds
// the accounting, and that FlushContext drains the buffer.
func TestBatchedEdgePathAccounting(t *testing.T) {
	bus := transport.NewBus()
	base := trajstore.NewMemStore()
	store := &queueStore{Store: base}
	a := newTestNode(t, bus, "camA", nodeConfig("camA", store))
	b := newTestNode(t, bus, "camB", nodeConfig("camB", store))
	a.Topology().ApplyUpdate(protocol.TopologyUpdate{
		CameraID: "camA",
		Version:  1,
		MDCS: map[geo.Direction][]protocol.CameraRef{
			geo.East: {{ID: "camB", Addr: "camB"}},
		},
	})

	driveVehicleThrough(t, a, "veh-1", imaging.Red, 0)
	driveVehicleThrough(t, b, "veh-1", imaging.Red, 100)

	// The edge is queued, not yet delivered: re-id already counted, edge
	// accounting deferred until the batch lands.
	if st := b.Stats(); st.ReidMatches != 1 || st.EdgesInserted != 0 {
		t.Fatalf("pre-flush stats: matches=%d edges=%d, want 1/0", st.ReidMatches, st.EdgesInserted)
	}
	if base.NumEdges() != 0 {
		t.Fatalf("edge landed before flush: %d", base.NumEdges())
	}

	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.flushes == 0 {
		t.Fatal("FlushContext never invoked the store's EdgeFlusher")
	}
	if base.NumEdges() != 1 {
		t.Errorf("edges after flush = %d, want 1", base.NumEdges())
	}
	if st := b.Stats(); st.EdgesInserted != 1 || st.SendErrors != 0 {
		t.Errorf("post-flush stats: edges=%d sendErrors=%d, want 1/0", st.EdgesInserted, st.SendErrors)
	}
}

// TestExpiredPoolEntriesFinishSpans proves the handoff span leak fix:
// informs that never match are finished with outcome=expired when the
// pool evicts them, instead of staying open forever.
func TestExpiredPoolEntriesFinishSpans(t *testing.T) {
	bus := transport.NewBus()
	cfg := nodeConfig("excam", trajstore.NewMemStore())
	cfg.Pool = reid.PoolConfig{PruneThreshold: 2}
	tracer := obs.NewTracer(clock.Fixed{T: epoch}, 16)
	cfg.Tracer = tracer
	n := newTestNode(t, bus, "excam", cfg)

	for i := 0; i < 3; i++ {
		n.handleInform(context.Background(), protocol.Inform{Event: informEvent(fmt.Sprintf("up#%d", i)), FromAddr: "up"})
	}

	// Three spans began; inserting the third pushed the pool over its
	// threshold of 2, expiring the oldest unmatched entry.
	if got := tracer.ActiveCount(); got != 2 {
		t.Errorf("active spans = %d, want 2 (one expired)", got)
	}
	if got := tracer.Finished(); got != 1 {
		t.Fatalf("finished spans = %d, want 1", got)
	}
	spans := tracer.Recent()
	if len(spans) != 1 {
		t.Fatalf("recent spans = %d", len(spans))
	}
	sp := spans[0]
	if sp.Trace != "up#0" {
		t.Errorf("expired span trace = %q, want the oldest inform", sp.Trace)
	}
	found := false
	for _, l := range sp.Attrs {
		if l.Name == "outcome" && l.Value == "expired" {
			found = true
		}
	}
	if !found {
		t.Errorf("span attrs = %v, want outcome=expired", sp.Attrs)
	}
}
