// Package camnode implements the per-camera node of Coral-Pie: the
// continuous processing that runs on every frame (paper Section 4.1) —
// detection, post-processing, SORT tracking, feature extraction, the
// inter-camera communication protocol, re-identification against the
// candidate pool, and the storage clients for the trajectory graph and
// raw frames.
//
// The node's core is the synchronous ProcessFrame path, driven either by
// the discrete-event simulation harness (deterministic experiments) or by
// the concurrent live pipeline in live.go (real deployments over TCP).
package camnode

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/feature"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/reid"
	"repro/internal/topology"
	"repro/internal/tracker"
	"repro/internal/transport"
	"repro/internal/vision"
)

// TrajStore is the trajectory storage client interface; the local
// *trajstore.Store, the remote *trajstore.Client, and the buffered
// *trajstore.BatchWriter all satisfy it.
type TrajStore interface {
	AddVertex(e protocol.DetectionEvent) (int64, error)
	AddEdge(from, to int64, weight float64) error
}

// EdgeQueuer is the optional asynchronous edge path. When the configured
// TrajStore implements it (trajstore.BatchWriter does), re-identification
// edges are queued for batched delivery instead of paying one synchronous
// RPC each; the done callback feeds the node's send_errors / edge
// accounting when the batch lands.
type EdgeQueuer interface {
	QueueEdge(from, to int64, weight float64, done func(error))
}

// TracedEdgeQueuer is EdgeQueuer with trace-context propagation: the
// store records its WAL group commit as a child of the camera's commit
// span. trajstore.BatchWriter implements it.
type TracedEdgeQueuer interface {
	QueueEdgeTraced(from, to int64, weight float64, tc protocol.TraceContext, done func(error))
}

// TracedEdgeWriter is the synchronous traced edge path, implemented by
// trajstore.Store and trajstore.Client.
type TracedEdgeWriter interface {
	AddEdgeTraced(from, to int64, weight float64, tc protocol.TraceContext) error
}

// EdgeFlusher is the optional drain hook for queued edges; FlushContext
// invokes it so end-of-stream leaves no edge buffered.
type EdgeFlusher interface {
	Flush(ctx context.Context) error
}

// FrameSink is the frame storage client interface (framestore.Client,
// framestore.MultiClient).
type FrameSink interface {
	StoreFrame(rec protocol.FrameRecord) error
}

// ContextFrameSink is implemented by frame sinks that accept the
// caller's context, so frame sends carry the ingest trace and honor its
// deadline. When the configured FrameSink implements it, the node
// prefers it over StoreFrame.
type ContextFrameSink interface {
	StoreFrameContext(ctx context.Context, rec protocol.FrameRecord) error
}

// Hooks are optional observation points used by the evaluation harness.
type Hooks struct {
	// OnEvent fires when the node generates a detection event, after
	// re-identification. matched reports whether re-id found the vehicle
	// in the candidate pool; dist is the Bhattacharyya distance when it
	// did.
	OnEvent func(e protocol.DetectionEvent, matched bool, matchedUpstream protocol.EventID, dist float64)
	// OnInformReceived fires when an informing notification lands in the
	// candidate pool.
	OnInformReceived func(e protocol.DetectionEvent, at time.Time)
	// OnFirstSeen fires the first time a ground-truth vehicle is detected
	// by this camera (simulation only; keyed by TruthID).
	OnFirstSeen func(truthID string, at time.Time)
}

// Config assembles a camera node.
type Config struct {
	CameraID   string
	Position   geo.Point
	HeadingDeg float64
	// TopologyServerAddr is the transport address of the topology server.
	TopologyServerAddr string

	Detector    vision.Detector
	PostProcess vision.PostProcessConfig
	Tracker     tracker.Config
	Matcher     reid.MatcherConfig
	Pool        reid.PoolConfig

	TrajStore  TrajStore
	FrameStore FrameSink // optional
	// StoreFrames controls whether raw frames are shipped to FrameStore.
	StoreFrames bool

	Clock clock.Clock
	Hooks Hooks
	// MaxPendingInforms bounds the memory of the informed-MDCS table used
	// by the confirming stage; 0 uses a default.
	MaxPendingInforms int

	// Registry receives the node's telemetry (coralpie_camnode_*,
	// labeled camera=<CameraID>). Nil uses obs.Default().
	Registry *obs.Registry
	// Tracer, when non-nil, records vehicle-handoff spans: a span opens
	// when an informing notification lands in this node's candidate
	// pool and closes when the vehicle is re-identified here or the
	// event is retired by a peer's confirmation.
	Tracer *obs.Tracer
}

// nodeMetrics mirror Stats onto the registry, pre-resolved per node.
type nodeMetrics struct {
	frames           *obs.Counter
	detectionsRaw    *obs.Counter
	detectionsKept   *obs.Counter
	events           *obs.Counter
	informsSent      *obs.Counter
	informsReceived  *obs.Counter
	confirmsSent     *obs.Counter
	confirmsReceived *obs.Counter
	retiresSent      *obs.Counter
	retiresReceived  *obs.Counter
	reidMatches      *obs.Counter
	reidMisses       *obs.Counter
	vertices         *obs.Counter
	edges            *obs.Counter
	sendErrors       *obs.Counter
	e2eCommit        *obs.Histogram
}

func newNodeMetrics(reg *obs.Registry, cameraID string) nodeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	l := []string{"camera", cameraID}
	c := func(name, help string) *obs.Counter { return reg.Counter(name, help, l...) }
	m := nodeMetrics{
		frames:           c("coralpie_camnode_frames_total", "frames processed"),
		detectionsRaw:    c("coralpie_camnode_detections_raw_total", "detector boxes before post-processing"),
		detectionsKept:   c("coralpie_camnode_detections_kept_total", "detections surviving post-processing"),
		events:           c("coralpie_camnode_events_total", "detection events generated"),
		informsSent:      c("coralpie_camnode_informs_sent_total", "informing notifications sent to the MDCS"),
		informsReceived:  c("coralpie_camnode_informs_received_total", "informing notifications added to the candidate pool"),
		confirmsSent:     c("coralpie_camnode_confirms_sent_total", "confirmations sent to predecessor cameras"),
		confirmsReceived: c("coralpie_camnode_confirms_received_total", "confirmations received from downstream cameras"),
		retiresSent:      c("coralpie_camnode_retires_sent_total", "retire notifications relayed to the MDCS"),
		retiresReceived:  c("coralpie_camnode_retires_received_total", "retire notifications received"),
		reidMatches:      c("coralpie_camnode_reid_matches_total", "events re-identified against the candidate pool"),
		reidMisses:       c("coralpie_camnode_reid_misses_total", "events with no candidate-pool match"),
		vertices:         c("coralpie_camnode_vertices_total", "trajectory-graph vertices inserted"),
		edges:            c("coralpie_camnode_edges_total", "trajectory-graph edges inserted"),
		sendErrors:       c("coralpie_camnode_send_errors_total", "failed sends and frame-store writes"),
		e2eCommit: reg.Histogram("coralpie_e2e_track_commit_seconds",
			"frame capture to trajectory edge-commit acknowledgement", nil, l...),
	}
	// The e2e commit latency is the paper's headline number, so it
	// carries trace exemplars: a bad bucket on /metrics links straight to
	// the handoff trace that produced it via /debug/trace.
	m.e2eCommit.EnableExemplars()
	return m
}

// Stats are the node's lifetime counters.
type Stats struct {
	FramesProcessed  int64
	DetectionsRaw    int64
	DetectionsKept   int64
	EventsGenerated  int64
	InformsSent      int64
	InformsReceived  int64
	ConfirmsSent     int64
	ConfirmsReceived int64
	RetiresSent      int64
	RetiresReceived  int64
	ReidMatches      int64
	VerticesInserted int64
	EdgesInserted    int64
	SendErrors       int64
}

// pendingInform remembers where an event was informed to, so the
// confirming stage can retire it everywhere else.
type pendingInform struct {
	eventID protocol.EventID
	sentTo  []protocol.CameraRef
}

// Node is one camera's processing stack.
type Node struct {
	cfg Config
	ep  transport.Endpoint
	top *topology.Client
	m   nodeMetrics

	mu       sync.Mutex
	tracker  *tracker.Tracker
	pool     *reid.Pool
	matcher  *reid.Matcher
	accum    map[int64]*feature.Accumulator
	pending  map[protocol.EventID]*pendingInform
	pendOrd  []protocol.EventID
	upstream map[protocol.EventID]string // informing sender addresses, for confirms
	upOrd    []protocol.EventID
	seen     map[string]bool // ground-truth vehicles already reported to OnFirstSeen
	stats    Stats
	maxPend  int
}

// New wires a node onto a transport endpoint. The endpoint's handler is
// installed by this call; the topology client shares the same endpoint.
func New(cfg Config, ep transport.Endpoint) (*Node, error) {
	if cfg.CameraID == "" {
		return nil, errors.New("camnode: camera id required")
	}
	if cfg.Detector == nil {
		return nil, errors.New("camnode: detector required")
	}
	if cfg.TrajStore == nil {
		return nil, errors.New("camnode: trajectory store required")
	}
	if cfg.Clock == nil {
		return nil, errors.New("camnode: clock required")
	}
	if ep == nil {
		return nil, errors.New("camnode: endpoint required")
	}
	if cfg.StoreFrames && cfg.FrameStore == nil {
		return nil, errors.New("camnode: StoreFrames set without a FrameStore")
	}
	tk, err := tracker.New(cfg.Tracker)
	if err != nil {
		return nil, err
	}
	poolCfg := cfg.Pool
	if cfg.Tracer != nil {
		// Finish handoff spans for entries the pool expires unmatched;
		// without this, informs that never match leak open spans forever.
		// The closure captures the tracer and camera ID (not the Node,
		// which does not exist yet) and runs under the pool lock.
		tracer, cam, prev := cfg.Tracer, cfg.CameraID, cfg.Pool.OnEvict
		poolCfg.OnEvict = func(e reid.Entry) {
			if prev != nil {
				prev(e)
			}
			if !e.Matched {
				tracer.Finish(string(e.Event.ID), "handoff:"+cam, "outcome", "expired")
			}
		}
	}
	pool, err := reid.NewPool(poolCfg)
	if err != nil {
		return nil, err
	}
	matcher, err := reid.NewMatcher(cfg.Matcher)
	if err != nil {
		return nil, err
	}
	top, err := topology.NewClient(topology.ClientConfig{
		CameraID:   cfg.CameraID,
		ServerAddr: cfg.TopologyServerAddr,
		Position:   cfg.Position,
		HeadingDeg: cfg.HeadingDeg,
	}, ep, cfg.Clock)
	if err != nil {
		return nil, err
	}
	maxPend := cfg.MaxPendingInforms
	if maxPend <= 0 {
		maxPend = 1024
	}
	n := &Node{
		cfg:      cfg,
		ep:       ep,
		top:      top,
		m:        newNodeMetrics(cfg.Registry, cfg.CameraID),
		tracker:  tk,
		pool:     pool,
		matcher:  matcher,
		accum:    make(map[int64]*feature.Accumulator),
		pending:  make(map[protocol.EventID]*pendingInform),
		upstream: make(map[protocol.EventID]string),
		seen:     make(map[string]bool),
		maxPend:  maxPend,
	}
	ep.SetHandler(n.HandleEnvelope)
	return n, nil
}

// CameraID returns the node's identity.
func (n *Node) CameraID() string { return n.cfg.CameraID }

// Topology returns the node's topology client (heartbeats, MDCS table).
func (n *Node) Topology() *topology.Client { return n.top }

// Pool returns the node's candidate pool (read-mostly; used by the
// evaluation harness).
func (n *Node) Pool() *reid.Pool { return n.pool }

// SetHooks replaces the node's observation hooks. Call before processing
// begins; hooks are read without the node lock.
func (n *Node) SetHooks(h Hooks) {
	n.cfg.Hooks = h
}

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// HandleEnvelope dispatches incoming transport messages. Installed as the
// endpoint handler by New; exported for harnesses that route manually.
// ctx is the endpoint's lifecycle context: replies triggered by this
// message (confirm/retire fan-out) are bounded by it.
func (n *Node) HandleEnvelope(ctx context.Context, env protocol.Envelope) {
	msg, err := protocol.Open(env)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case protocol.Inform:
		n.handleInform(ctx, m)
	case protocol.Confirm:
		n.handleConfirm(ctx, m)
	case protocol.Retire:
		n.handleRetire(m)
	case protocol.TopologyUpdate:
		n.top.ApplyUpdate(m)
	}
}

func (n *Node) handleInform(ctx context.Context, m protocol.Inform) {
	now := n.cfg.Clock.Now()
	n.m.informsReceived.Inc()
	if n.cfg.Tracer != nil {
		// Join the informing camera's trace when its span context rode in
		// on the envelope; without one this is a standalone span, exactly
		// as before.
		parent, _ := obs.SpanFromContext(ctx)
		n.cfg.Tracer.BeginIn(parent, string(m.Event.ID), "handoff:"+n.cfg.CameraID)
	}
	n.mu.Lock()
	n.stats.InformsReceived++
	if m.FromAddr != "" {
		// A redelivered inform refreshes the sender address but must not
		// re-append to the FIFO: a duplicate slot would later evict the
		// live map entry while the stale slot kept burning budget.
		if _, tracked := n.upstream[m.Event.ID]; !tracked {
			n.upOrd = append(n.upOrd, m.Event.ID)
		}
		n.upstream[m.Event.ID] = m.FromAddr
		for len(n.upOrd) > n.maxPend {
			old := n.upOrd[0]
			n.upOrd = n.upOrd[1:]
			delete(n.upstream, old)
		}
	}
	n.mu.Unlock()
	ev := m.Event
	n.pool.Add(ev, now)
	if n.cfg.Hooks.OnInformReceived != nil {
		n.cfg.Hooks.OnInformReceived(ev, now)
	}
}

// handleConfirm runs on the predecessor camera: one of its downstream
// cameras re-identified the vehicle, so every other informed camera can
// retire the event.
func (n *Node) handleConfirm(ctx context.Context, m protocol.Confirm) {
	n.m.confirmsReceived.Inc()
	n.mu.Lock()
	n.stats.ConfirmsReceived++
	pend, ok := n.pending[m.EventID]
	if ok {
		delete(n.pending, m.EventID)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	retire := protocol.Retire{EventID: m.EventID, ByCameraID: m.ByCameraID}
	for _, ref := range pend.sentTo {
		if ref.ID == m.ByCameraID || ref.Addr == "" {
			continue
		}
		n.send(ctx, ref.Addr, retire, &n.stats.RetiresSent, n.m.retiresSent)
	}
}

func (n *Node) handleRetire(m protocol.Retire) {
	n.m.retiresReceived.Inc()
	if n.cfg.Tracer != nil {
		n.cfg.Tracer.Finish(string(m.EventID), "handoff:"+n.cfg.CameraID,
			"outcome", "retired", "by", m.ByCameraID)
	}
	n.mu.Lock()
	n.stats.RetiresReceived++
	n.mu.Unlock()
	n.pool.MarkMatched(m.EventID)
}

// send seals and sends a message, counting errors instead of failing the
// pipeline (unreachable peers are repaired by topology management). The
// node lock is NOT held across Send: the in-process bus delivers
// synchronously and the confirming protocol can chain back into this
// node's handlers.
func (n *Node) send(ctx context.Context, addr string, msg any, counter *int64, obsCounter *obs.Counter) {
	env, err := protocol.Seal(msg)
	if err != nil {
		return
	}
	sendErr := n.ep.Send(ctx, addr, env)
	n.mu.Lock()
	if sendErr != nil {
		n.stats.SendErrors++
	} else if counter != nil {
		*counter++
	}
	n.mu.Unlock()
	if sendErr != nil {
		n.m.sendErrors.Inc()
	} else if obsCounter != nil {
		obsCounter.Inc()
	}
}

// ProcessFrame runs the full continuous-processing path on one frame
// with the transport's default send timeouts. See ProcessFrameContext.
func (n *Node) ProcessFrame(f *vision.Frame) error {
	return n.ProcessFrameContext(context.Background(), f)
}

// ProcessFrameContext runs the full continuous-processing path on one
// frame: detection, the three-step post-processing filter, SORT tracking
// with per-track signature accumulation, event generation for departed
// vehicles, re-identification, the communication protocol, and storage.
// Sends triggered by the frame are bounded by ctx.
func (n *Node) ProcessFrameContext(ctx context.Context, f *vision.Frame) error {
	var ft frameTiming
	if f != nil {
		ft.capture = f.Time
	}
	ft.detectStart = n.cfg.Clock.Now()
	kept, raw, err := n.detect(f)
	if err != nil {
		return err
	}
	ft.detectEnd = n.cfg.Clock.Now()
	return n.ingest(ctx, f, kept, raw, ft)
}

// frameTiming carries one frame's pipeline timestamps through to
// emitEvent, where they become the capture/detect/track spans of the
// event's trace and the start point of the end-to-end commit histogram.
// Zero fields (e.g. on the Flush path, which has no triggering frame)
// fall back to the event time.
type frameTiming struct {
	capture     time.Time
	detectStart time.Time
	detectEnd   time.Time
}

// detect runs the RPi-1 half of the pipeline: inference plus the
// three-step post-processing filter. It has no node state, so the live
// pipeline runs it concurrently with ingest.
func (n *Node) detect(f *vision.Frame) (kept []vision.Detection, rawCount int, err error) {
	if f == nil || f.Image == nil {
		return nil, 0, errors.New("camnode: nil frame")
	}
	raw, err := n.cfg.Detector.Detect(f)
	if err != nil {
		return nil, 0, fmt.Errorf("camnode: detect: %w", err)
	}
	return vision.PostProcess(raw, n.cfg.PostProcess), len(raw), nil
}

// ingest runs the RPi-2 half: tracking, feature accumulation, event
// generation, re-identification, communication, and storage.
func (n *Node) ingest(ctx context.Context, f *vision.Frame, kept []vision.Detection, rawCount int, ft frameTiming) error {
	n.m.frames.Inc()
	n.m.detectionsRaw.Add(int64(rawCount))
	n.m.detectionsKept.Add(int64(len(kept)))
	n.mu.Lock()
	n.stats.FramesProcessed++
	n.stats.DetectionsRaw += int64(rawCount)
	n.stats.DetectionsKept += int64(len(kept))

	res, err := n.tracker.Update(f.Seq, kept)
	if err != nil {
		n.mu.Unlock()
		return fmt.Errorf("camnode: track: %w", err)
	}

	// Accumulate per-track signatures and frame annotations.
	annotations := make([]protocol.BoxAnnotation, 0, len(res.Assignments))
	var firstSeen []string
	for _, a := range res.Assignments {
		det := kept[a.DetIndex]
		acc := n.accum[a.TrackID]
		if acc == nil {
			acc = feature.NewAccumulator()
			n.accum[a.TrackID] = acc
		}
		if err := acc.Add(f.Image, det.Box); err != nil {
			n.mu.Unlock()
			return fmt.Errorf("camnode: feature accumulate: %w", err)
		}
		annotations = append(annotations, protocol.BoxAnnotation{
			TrackID:    a.TrackID,
			X:          det.Box.X,
			Y:          det.Box.Y,
			W:          det.Box.W,
			H:          det.Box.H,
			Label:      det.Label.String(),
			Confidence: det.Confidence,
		})
		if det.TruthID != "" && !n.seen[det.TruthID] {
			n.seen[det.TruthID] = true
			firstSeen = append(firstSeen, det.TruthID)
		}
	}
	departed := n.tracker.ConfirmedDeparted(res.Departed)
	n.mu.Unlock()

	if n.cfg.Hooks.OnFirstSeen != nil {
		for _, id := range firstSeen {
			n.cfg.Hooks.OnFirstSeen(id, f.Time)
		}
	}

	for _, tr := range departed {
		if err := n.emitEvent(ctx, tr, ft); err != nil {
			return err
		}
	}

	if n.cfg.StoreFrames {
		rec := protocol.FrameRecord{
			CameraID:    n.cfg.CameraID,
			Seq:         f.Seq,
			Timestamp:   f.Time,
			Width:       f.Image.Width,
			Height:      f.Image.Height,
			Pixels:      f.Image.Pix,
			Annotations: annotations,
		}
		var err error
		if sink, ok := n.cfg.FrameStore.(ContextFrameSink); ok {
			// Context-aware sinks get the ingest context, so replicated
			// sends carry this frame's trace and respect its deadline.
			err = sink.StoreFrameContext(ctx, rec)
		} else {
			err = n.cfg.FrameStore.StoreFrame(rec)
		}
		if err != nil {
			// Frame storage is off the critical path; count and continue.
			n.m.sendErrors.Inc()
			n.mu.Lock()
			n.stats.SendErrors++
			n.mu.Unlock()
		}
	}
	return nil
}

// Flush retires all live tracks (end of stream) and emits their events
// with the transport's default send timeouts.
func (n *Node) Flush() error {
	return n.FlushContext(context.Background())
}

// FlushContext retires all live tracks (end of stream) and emits their
// events, bounding the resulting sends by ctx.
func (n *Node) FlushContext(ctx context.Context) error {
	n.mu.Lock()
	flushed := n.tracker.Flush()
	departed := n.tracker.ConfirmedDeparted(flushed)
	n.mu.Unlock()
	for _, tr := range departed {
		if err := n.emitEvent(ctx, tr, frameTiming{}); err != nil {
			return err
		}
	}
	// End of stream: drain any edges still sitting in a batched write
	// buffer so their results (and accounting) land before we return.
	if fl, ok := n.cfg.TrajStore.(EdgeFlusher); ok {
		if err := fl.Flush(ctx); err != nil {
			return fmt.Errorf("camnode: flush edge buffer: %w", err)
		}
	}
	return nil
}

// emitEvent turns a departed track into a detection event: signature and
// direction extraction, trajectory-graph vertex insertion,
// re-identification, the confirming stage, and the informing stage.
func (n *Node) emitEvent(ctx context.Context, tr *tracker.Track, ft frameTiming) error {
	now := n.cfg.Clock.Now()

	n.mu.Lock()
	acc := n.accum[tr.ID]
	delete(n.accum, tr.ID)
	n.mu.Unlock()
	if acc == nil {
		return nil // track never got a signature (should not happen)
	}
	hist := acc.Histogram()

	boxes := make([]feature.Centroid, 0, len(tr.Tracklet))
	truthID := ""
	for _, obs := range tr.Tracklet {
		boxes = append(boxes, feature.Centroid{X: obs.Box.CenterX(), Y: obs.Box.CenterY()})
		if obs.TruthID != "" {
			truthID = obs.TruthID
		}
	}
	dir := feature.EstimateDirection(boxes, n.cfg.HeadingDeg)

	ev := protocol.DetectionEvent{
		ID:        protocol.NewEventID(n.cfg.CameraID, tr.ID),
		CameraID:  n.cfg.CameraID,
		Timestamp: now,
		Direction: dir,
		Histogram: hist,
		TrackID:   tr.ID,
		TruthID:   truthID,
	}

	// (a) Insert the vertex; its ID travels inside the event. A store
	// outage must not stall the camera: the event is dropped (it cannot
	// travel without a vertex ID), the error is counted, and processing
	// continues — the store client redials with backoff, so inserts
	// resume when the server returns.
	vid, err := n.cfg.TrajStore.AddVertex(ev)
	if err != nil {
		n.m.sendErrors.Inc()
		n.mu.Lock()
		n.stats.SendErrors++
		n.mu.Unlock()
		return nil
	}
	ev.VertexID = vid
	n.m.events.Inc()
	n.m.vertices.Inc()
	n.mu.Lock()
	n.stats.EventsGenerated++
	n.stats.VerticesInserted++
	n.mu.Unlock()

	// Root this event's trace (trace ID = event ID) with the retroactive
	// capture → detect → track chain. The sampling decision taken here
	// follows the trace everywhere, including across the wire.
	var trackSC obs.SpanContext
	if tc := n.cfg.Tracer; tc != nil {
		capT, ds, de := ft.capture, ft.detectStart, ft.detectEnd
		if capT.IsZero() {
			capT = now
		}
		if ds.IsZero() {
			ds = now
		}
		if de.IsZero() {
			de = now
		}
		capSC := tc.RecordRoot(string(ev.ID), "capture", capT, ds, "camera", n.cfg.CameraID)
		detSC := tc.RecordChild(capSC, "detect", ds, de)
		trackSC = tc.RecordChild(detSC, "track", de, now)
	}

	// (b) Re-identify against the candidate pool.
	matched, matchEntry, dist := false, reid.Entry{}, 0.0
	if entry, d, ok := n.matcher.Match(hist, n.pool, now); ok {
		matched, matchEntry, dist = true, entry, d
	}
	if matched {
		up := matchEntry.Event
		// A re-identification happened whether or not the edge write
		// lands; keep the obs counter and Stats.ReidMatches in lockstep
		// instead of letting a store hiccup skew one but not the other.
		n.m.reidMatches.Inc()
		n.mu.Lock()
		n.stats.ReidMatches++
		n.mu.Unlock()
		// Grab the handoff span's context before Finish closes it: the
		// commit and confirm spans below hang off it, stitching this
		// camera's work into the upstream event's trace.
		var handoffSC obs.SpanContext
		if tc := n.cfg.Tracer; tc != nil {
			handoffSC, _ = tc.ActiveContext(string(up.ID), "handoff:"+n.cfg.CameraID)
			tc.Finish(string(up.ID), "handoff:"+n.cfg.CameraID,
				"outcome", "matched", "event", string(ev.ID))
		}
		n.insertEdge(up.VertexID, vid, dist, handoffSC, ft.capture)
		n.pool.MarkMatched(up.ID)
		// Confirming stage: notify the predecessor camera. The confirm
		// span's context rides on the envelope, so the predecessor's
		// retire fan-out joins the same trace.
		if addr := n.upstreamAddr(up); addr != "" {
			confirmCtx := ctx
			var confirmSC obs.SpanContext
			if tc := n.cfg.Tracer; tc != nil && handoffSC.Valid() {
				confirmSC = tc.StartChild(handoffSC, "confirm")
				if confirmSC.Valid() {
					confirmCtx = obs.ContextWithSpan(ctx, confirmSC)
				}
			}
			n.send(confirmCtx, addr, protocol.Confirm{
				EventID:        up.ID,
				ByCameraID:     n.cfg.CameraID,
				MatchedEventID: ev.ID,
				Distance:       dist,
			}, &n.stats.ConfirmsSent, n.m.confirmsSent)
			if n.cfg.Tracer != nil && confirmSC.Valid() {
				n.cfg.Tracer.EndSpan(confirmSC, "to", addr)
			}
		}
	} else {
		n.m.reidMisses.Inc()
	}

	// Informing stage: forward the event to the MDCS for its direction.
	// The inform span's context travels on each envelope, so receiving
	// cameras open their handoff spans inside this event's trace.
	if dir.Valid() {
		refs := n.top.Lookup(dir)
		if len(refs) > 0 {
			inform := protocol.Inform{Event: ev, FromAddr: n.ep.Addr()}
			informCtx := ctx
			var informSC obs.SpanContext
			if tc := n.cfg.Tracer; tc != nil && trackSC.Valid() {
				informSC = tc.StartChild(trackSC, "inform")
				if informSC.Valid() {
					informCtx = obs.ContextWithSpan(ctx, informSC)
				}
			}
			sent := make([]protocol.CameraRef, 0, len(refs))
			for _, ref := range refs {
				if ref.Addr == "" {
					continue
				}
				n.send(informCtx, ref.Addr, inform, &n.stats.InformsSent, n.m.informsSent)
				sent = append(sent, ref)
			}
			if n.cfg.Tracer != nil && informSC.Valid() {
				n.cfg.Tracer.EndSpan(informSC, "fanout", strconv.Itoa(len(sent)))
			}
			if len(sent) > 0 {
				n.rememberInform(ev.ID, sent)
			}
		}
	}

	if n.cfg.Hooks.OnEvent != nil {
		matchedID := protocol.EventID("")
		if matched {
			matchedID = matchEntry.Event.ID
		}
		n.cfg.Hooks.OnEvent(ev, matched, matchedID, dist)
	}
	return nil
}

// insertEdge writes a re-identification edge, preferring the queued
// batch path when the store offers one (the buffered writer retries
// transient failures before reporting). Either way the final result
// flows through edgeCommitted so Stats/obs accounting stays exact. When
// a handoff span context is available, a "commit" child span brackets
// queue-to-ack and its context travels to the store, which records the
// WAL group commit underneath it.
func (n *Node) insertEdge(from, to int64, weight float64, parent obs.SpanContext, capture time.Time) {
	var commitSC obs.SpanContext
	if n.cfg.Tracer != nil && parent.Valid() {
		commitSC = n.cfg.Tracer.StartChild(parent, "commit")
	}
	done := func(err error) { n.edgeCommitted(commitSC, capture, err) }
	if commitSC.Valid() && commitSC.Sampled {
		wire := protocol.TraceContext(commitSC)
		if q, ok := n.cfg.TrajStore.(TracedEdgeQueuer); ok {
			q.QueueEdgeTraced(from, to, weight, wire, done)
			return
		}
		if w, ok := n.cfg.TrajStore.(TracedEdgeWriter); ok {
			done(w.AddEdgeTraced(from, to, weight, wire))
			return
		}
	}
	if q, ok := n.cfg.TrajStore.(EdgeQueuer); ok {
		q.QueueEdge(from, to, weight, done)
		return
	}
	done(n.cfg.TrajStore.AddEdge(from, to, weight))
}

// edgeCommitted finishes the commit span and observes the end-to-end
// capture→ack latency before feeding the usual edge accounting. Like
// edgeResult it may run on the batch writer's flusher goroutine.
func (n *Node) edgeCommitted(commitSC obs.SpanContext, capture time.Time, err error) {
	if n.cfg.Tracer != nil && commitSC.Valid() {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		n.cfg.Tracer.EndSpan(commitSC, "outcome", outcome)
	}
	if err == nil && !capture.IsZero() {
		// The commit span context doubles as the exemplar: when this
		// commit was sampled, the latency bucket it lands in links back to
		// the full capture→commit trace.
		n.m.e2eCommit.ObserveWithExemplar(n.cfg.Clock.Now().Sub(capture).Seconds(), commitSC)
	}
	n.edgeResult(err)
}

// edgeResult records the outcome of one edge insert. It may run on the
// batch writer's flusher goroutine, so it takes the node lock itself. A
// failed edge counts as a send error — the trajectory graph is a remote
// peer like any other — instead of vanishing silently.
func (n *Node) edgeResult(err error) {
	if err != nil {
		n.m.sendErrors.Inc()
		n.mu.Lock()
		n.stats.SendErrors++
		n.mu.Unlock()
		return
	}
	n.m.edges.Inc()
	n.mu.Lock()
	n.stats.EdgesInserted++
	n.mu.Unlock()
}

// upstreamAddr resolves the reply address for a pool entry. The informing
// message recorded the sender address when the event arrived; events that
// came without one cannot be confirmed.
func (n *Node) upstreamAddr(e protocol.DetectionEvent) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.upstream[e.ID]
}

// rememberInform records where an event was informed, bounded FIFO. A
// repeat for an already-pending event replaces the recipient set without
// re-appending to the FIFO (see handleInform's duplicate handling).
func (n *Node) rememberInform(id protocol.EventID, sentTo []protocol.CameraRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, tracked := n.pending[id]; !tracked {
		n.pendOrd = append(n.pendOrd, id)
	}
	n.pending[id] = &pendingInform{eventID: id, sentTo: sentTo}
	for len(n.pendOrd) > n.maxPend {
		old := n.pendOrd[0]
		n.pendOrd = n.pendOrd[1:]
		delete(n.pending, old)
	}
}
