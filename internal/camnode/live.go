package camnode

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/pipeline"
	"repro/internal/vision"
)

// FrameSource produces camera frames for the live runner. Next returns
// io.EOF when the stream ends.
type FrameSource interface {
	Next() (*vision.Frame, error)
}

// liveJob is the unit flowing through the live pipeline.
type liveJob struct {
	frame *vision.Frame
	kept  []vision.Detection
	raw   int
	ft    frameTiming
}

// RunLive drains a frame source through a two-stage concurrent pipeline
// mirroring the paper's device split: stage one is detection +
// post-processing (the RPi 1 work), stage two is tracking, events,
// communication, and storage (the RPi 2 work). The detector must be safe
// for concurrent use with the node's message handlers.
//
// RunLive returns when the source is exhausted (after flushing live
// tracks), when ctx is cancelled (a graceful stop: in-flight frames
// drain, live tracks flush, and the return is nil), or on the first
// pipeline error.
func (n *Node) RunLive(ctx context.Context, src FrameSource) error {
	if src == nil {
		return errors.New("camnode: nil frame source")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(stage string, err error) {
		errMu.Lock()
		defer errMu.Unlock()
		if firstErr == nil {
			firstErr = fmt.Errorf("camnode: live stage %s: %w", stage, err)
		}
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr
	}
	runner, err := pipeline.NewRunner(pipeline.RunnerConfig[*liveJob]{
		Buffer:  2,
		OnError: setErr,
	},
		pipeline.Stage[*liveJob]{Name: "detect", Proc: func(j *liveJob) error {
			if j.frame != nil {
				j.ft.capture = j.frame.Time
			}
			j.ft.detectStart = n.cfg.Clock.Now()
			kept, raw, err := n.detect(j.frame)
			if err != nil {
				return err
			}
			j.ft.detectEnd = n.cfg.Clock.Now()
			j.kept, j.raw = kept, raw
			return nil
		}},
		pipeline.Stage[*liveJob]{Name: "ingest", Proc: func(j *liveJob) error {
			return n.ingest(ctx, j.frame, j.kept, j.raw, j.ft)
		}},
	)
	if err != nil {
		return err
	}

	for ctx.Err() == nil {
		f, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			runner.Close()
			return fmt.Errorf("camnode: frame source: %w", err)
		}
		if !runner.Submit(&liveJob{frame: f}) {
			break
		}
		if getErr() != nil {
			break
		}
	}
	runner.Close()
	if err := getErr(); err != nil {
		return err
	}
	// Cancellation is a graceful stop, not an error: flush live tracks
	// so their events are not lost, then report a clean exit.
	return n.Flush()
}
