package camnode

import (
	"context"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/reid"
	"repro/internal/tracker"
	"repro/internal/trajstore"
	"repro/internal/transport"
	"repro/internal/vision"
)

// TestCamnodeRidesOutTrajstoreOutage kills the trajectory store server
// mid-deployment and re-serves it on the same address. The camera node
// must keep processing frames during the outage (events are dropped and
// counted as send errors rather than stalling the pipeline), and the
// store client must redial and resume inserting once the server is back.
func TestCamnodeRidesOutTrajstoreOutage(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP integration test")
	}

	store := trajstore.NewMemStore()
	trajSrv, err := trajstore.Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := trajSrv.Addr()

	// Short per-call timeout so outage-time inserts fail fast instead of
	// holding each event for the default five seconds.
	trajClient, err := trajstore.DialContext(context.Background(), addr,
		trajstore.ClientConfig{CallTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = trajClient.Close() }()

	// The inter-camera side uses an in-process bus; only the store link
	// is real TCP, which is the link under test.
	bus := transport.NewBus()
	ep, err := bus.Endpoint("camA")
	if err != nil {
		t.Fatal(err)
	}
	node, err := New(Config{
		CameraID:           "camA",
		Position:           geo.Point{Lat: 33.7756, Lon: -84.3963},
		TopologyServerAddr: "topology", // never dialed: heartbeats not started
		Detector:           vision.PerfectDetector{},
		PostProcess:        vision.PostProcessConfig{MinConfidence: 0.2},
		Tracker:            tracker.DefaultConfig(),
		Matcher:            reid.DefaultMatcherConfig(),
		Pool:               reid.DefaultPoolConfig(),
		TrajStore:          trajClient,
		Clock:              clock.Real{},
	}, ep)
	if err != nil {
		t.Fatal(err)
	}

	stream := func(startSeq int64) {
		t.Helper()
		src := &tcpTestSource{camera: "camA", startSeq: startSeq}
		if err := node.RunLive(context.Background(), src); err != nil {
			t.Fatalf("RunLive(seq %d): %v", startSeq, err)
		}
	}

	// Healthy pass: the vehicle's departure event lands in the store.
	stream(0)
	if got := store.NumVertices(); got != 1 {
		t.Fatalf("vertices after healthy pass = %d, want 1", got)
	}
	if errs := node.Stats().SendErrors; errs != 0 {
		t.Fatalf("send errors before outage = %d, want 0", errs)
	}

	// Outage: the store server dies. The node must keep processing — the
	// pass completes, the event is dropped, and the error is counted.
	if err := trajSrv.Close(); err != nil {
		t.Fatal(err)
	}
	framesBefore := node.Stats().FramesProcessed
	stream(1000)
	st := node.Stats()
	if st.FramesProcessed <= framesBefore {
		t.Error("node stopped processing frames during the store outage")
	}
	if st.SendErrors == 0 {
		t.Error("store outage not reflected in the send-error counter")
	}
	if got := store.NumVertices(); got != 1 {
		t.Errorf("vertices after outage pass = %d, want 1 (event should be dropped)", got)
	}

	// Recovery: re-serve the same store on the same address. The client's
	// next insert redials and succeeds.
	trajSrv2, err := trajstore.Serve(store, addr)
	if err != nil {
		t.Fatalf("re-serve on %s: %v", addr, err)
	}
	defer func() { _ = trajSrv2.Close() }()

	errsDuringOutage := st.SendErrors
	stream(2000)
	if got := store.NumVertices(); got != 2 {
		t.Errorf("vertices after recovery pass = %d, want 2", got)
	}
	if errs := node.Stats().SendErrors; errs != errsDuringOutage {
		t.Errorf("send errors grew after recovery: %d -> %d", errsDuringOutage, errs)
	}
}
