package camnode

import (
	"context"
	"io"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/imaging"
	"repro/internal/reid"
	"repro/internal/roadnet"
	"repro/internal/topology"
	"repro/internal/tracker"
	"repro/internal/trajstore"
	"repro/internal/transport"
	"repro/internal/vision"
)

// TestLiveTCPEndToEnd wires two camera nodes, a topology server, and a
// trajectory store server over REAL TCP sockets, streams a synthetic
// vehicle through both cameras, and verifies the cross-process
// re-identification chain — the deployment shape of cmd/coral-node.
func TestLiveTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-TCP integration test")
	}

	// Road network: two intersections 150 m apart.
	graph, nodes, err := roadnet.Corridor(2, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}

	// Trajectory store server.
	store := trajstore.NewMemStore()
	trajSrv, err := trajstore.Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = trajSrv.Close() }()

	// Topology server.
	topoEP, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = topoEP.Close() }()
	topoSrv, err := topology.NewServer(graph, topoEP, clock.Real{}, topology.ServerConfig{
		LivenessTimeout:  2 * time.Second,
		SnapToNodeMeters: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := topoSrv.Start(context.Background(), 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = topoSrv.Close() }()

	// Two camera nodes.
	mkNode := func(id string, nodeID roadnet.NodeID) (*Node, *trajstore.Client) {
		t.Helper()
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ep.Close() })
		trajClient, err := trajstore.Dial(trajSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = trajClient.Close() })
		pos, err := graph.Node(nodeID)
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{
			CameraID:           id,
			Position:           pos.Pos,
			TopologyServerAddr: topoEP.Addr(),
			Detector:           vision.PerfectDetector{},
			PostProcess:        vision.PostProcessConfig{MinConfidence: 0.2},
			Tracker:            tracker.DefaultConfig(),
			Matcher:            reid.DefaultMatcherConfig(),
			Pool:               reid.DefaultPoolConfig(),
			TrajStore:          trajClient,
			Clock:              clock.Real{},
		}, ep)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Topology().StartHeartbeats(context.Background(), 150*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Topology().Close() })
		return n, trajClient
	}
	nodeA, _ := mkNode("camA", nodes[0])
	nodeB, _ := mkNode("camB", nodes[1])

	// Wait for both cameras to receive MDCS tables.
	deadline := time.Now().Add(5 * time.Second)
	for (nodeA.Topology().Version() == 0 || nodeB.Topology().Version() == 0) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if nodeA.Topology().Version() == 0 {
		t.Fatal("camA never received a topology update")
	}
	refs := nodeA.Topology().Lookup(geo.East)
	if len(refs) != 1 || refs[0].ID != "camB" {
		t.Fatalf("camA east MDCS = %v", refs)
	}

	// Stream the vehicle through A, then through B, via RunLive.
	streamVehicle := func(n *Node, startSeq int64) {
		t.Helper()
		src := &tcpTestSource{camera: n.CameraID(), startSeq: startSeq}
		if err := n.RunLive(context.Background(), src); err != nil {
			t.Fatalf("%s RunLive: %v", n.CameraID(), err)
		}
	}
	streamVehicle(nodeA, 0)

	// The informing message must land in B's pool before the vehicle
	// "arrives" there.
	deadline = time.Now().Add(5 * time.Second)
	for nodeB.Pool().Size() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if nodeB.Pool().Size() != 1 {
		t.Fatalf("camB pool size = %d", nodeB.Pool().Size())
	}

	streamVehicle(nodeB, 100)

	// Verify the cross-TCP re-identification chain in the remote store.
	deadline = time.Now().Add(5 * time.Second)
	for store.NumEdges() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if store.NumVertices() != 2 || store.NumEdges() != 1 {
		t.Fatalf("store: %d vertices, %d edges", store.NumVertices(), store.NumEdges())
	}
	if nodeB.Stats().ReidMatches != 1 {
		t.Errorf("camB reid matches = %d", nodeB.Stats().ReidMatches)
	}
	// And the confirming stage completed back at A.
	deadline = time.Now().Add(5 * time.Second)
	for nodeA.Stats().ConfirmsReceived == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if nodeA.Stats().ConfirmsReceived != 1 {
		t.Errorf("camA confirms received = %d", nodeA.Stats().ConfirmsReceived)
	}
}

// tcpTestSource renders a short synthetic pass of one red vehicle.
type tcpTestSource struct {
	camera   string
	startSeq int64
	i        int
}

func (s *tcpTestSource) Next() (*vision.Frame, error) {
	const moving = 15
	const empty = 6
	if s.i >= moving+empty {
		return nil, io.EOF
	}
	img := imaging.MustNewFrame(200, 100)
	img.Fill(imaging.Color{R: 40, G: 40, B: 40})
	f := &vision.Frame{
		CameraID: s.camera,
		Seq:      s.startSeq + int64(s.i),
		Time:     time.Now(),
		Image:    img,
	}
	if s.i < moving {
		box := imaging.Rect{X: 10 + s.i*10, Y: 40, W: 30, H: 20}
		img.FillRect(box, imaging.Red)
		f.Truth = []vision.TruthObject{{
			ID:    "veh-live",
			Label: vision.LabelCar,
			Box:   box,
		}}
	}
	s.i++
	return f, nil
}
