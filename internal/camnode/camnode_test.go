package camnode

import (
	"context"
	"io"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/imaging"
	"repro/internal/protocol"
	"repro/internal/reid"
	"repro/internal/tracker"
	"repro/internal/trajstore"
	"repro/internal/transport"
	"repro/internal/vision"
)

var epoch = time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)

const (
	frameW = 200
	frameH = 100
)

// makeFrame renders one synthetic frame: dark background plus an optional
// vehicle rectangle with ground truth.
func makeFrame(camera string, seq int64, vehicleX int, truthID string, color imaging.Color) *vision.Frame {
	img := imaging.MustNewFrame(frameW, frameH)
	img.Fill(imaging.Color{R: 40, G: 40, B: 40})
	f := &vision.Frame{
		CameraID: camera,
		Seq:      seq,
		Time:     epoch.Add(time.Duration(seq) * 100 * time.Millisecond),
		Image:    img,
	}
	if truthID != "" {
		box := imaging.Rect{X: vehicleX, Y: 40, W: 30, H: 20}
		img.FillRect(box, color)
		f.Truth = []vision.TruthObject{{ID: truthID, Label: vision.LabelCar, Box: box}}
	}
	return f
}

// nodeConfig returns a baseline config for tests.
func nodeConfig(camera string, store TrajStore) Config {
	return Config{
		CameraID:           camera,
		HeadingDeg:         0, // image-up is north; rightward motion is East
		TopologyServerAddr: "topo-server",
		Detector:           vision.PerfectDetector{},
		PostProcess:        vision.PostProcessConfig{MinConfidence: 0.2},
		Tracker:            tracker.DefaultConfig(),
		Matcher:            reid.DefaultMatcherConfig(),
		Pool:               reid.DefaultPoolConfig(),
		TrajStore:          store,
		Clock:              clock.Fixed{T: epoch},
	}
}

func newTestNode(t *testing.T, bus *transport.Bus, name string, cfg Config) *Node {
	t.Helper()
	ep, err := bus.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(cfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// driveVehicleThrough runs a vehicle left-to-right through the camera and
// then enough empty frames to trigger departure.
func driveVehicleThrough(t *testing.T, n *Node, truthID string, color imaging.Color, startSeq int64) int64 {
	t.Helper()
	seq := startSeq
	for x := 10; x <= 150; x += 10 {
		if err := n.ProcessFrame(makeFrame(n.CameraID(), seq, x, truthID, color)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	for i := 0; i < 6; i++ { // > MaxAge empty frames
		if err := n.ProcessFrame(makeFrame(n.CameraID(), seq, 0, "", color)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	return seq
}

func TestConfigValidation(t *testing.T) {
	bus := transport.NewBus()
	store := trajstore.NewMemStore()
	base := nodeConfig("cam", store)

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"missing camera id", func(c *Config) { c.CameraID = "" }},
		{"missing detector", func(c *Config) { c.Detector = nil }},
		{"missing store", func(c *Config) { c.TrajStore = nil }},
		{"missing clock", func(c *Config) { c.Clock = nil }},
		{"store frames without sink", func(c *Config) { c.StoreFrames = true }},
		{"bad tracker", func(c *Config) { c.Tracker.MaxAge = 0 }},
		{"bad matcher", func(c *Config) { c.Matcher.BhattThreshold = 0 }},
		{"bad pool", func(c *Config) { c.Pool.PruneThreshold = 0 }},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ep, err := bus.Endpoint(tc.name + string(rune('a'+i)))
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			tc.mutate(&cfg)
			if _, err := New(cfg, ep); err == nil {
				t.Errorf("config %q accepted", tc.name)
			}
		})
	}
	if _, err := New(base, nil); err == nil {
		t.Error("nil endpoint accepted")
	}
}

func TestSingleCameraGeneratesOneEvent(t *testing.T) {
	bus := transport.NewBus()
	store := trajstore.NewMemStore()
	var events []protocol.DetectionEvent
	cfg := nodeConfig("camA", store)
	cfg.Hooks.OnEvent = func(e protocol.DetectionEvent, matched bool, _ protocol.EventID, _ float64) {
		events = append(events, e)
		if matched {
			t.Error("nothing to match against")
		}
	}
	n := newTestNode(t, bus, "camA", cfg)

	driveVehicleThrough(t, n, "veh-1", imaging.Red, 0)

	if len(events) != 1 {
		t.Fatalf("events = %d, want 1 (de-duplication across %d detections)", len(events), 15)
	}
	ev := events[0]
	if ev.CameraID != "camA" || ev.TruthID != "veh-1" {
		t.Errorf("event = %+v", ev)
	}
	if ev.Direction != geo.East {
		t.Errorf("direction = %v, want East", ev.Direction)
	}
	if ev.VertexID == 0 {
		t.Error("event missing trajectory vertex")
	}
	if store.NumVertices() != 1 {
		t.Errorf("store has %d vertices", store.NumVertices())
	}
	st := n.Stats()
	if st.EventsGenerated != 1 || st.VerticesInserted != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.DetectionsKept != 15 {
		t.Errorf("kept = %d", st.DetectionsKept)
	}
}

// wireTwoCameras builds A -> B (and optionally C) with manual MDCS
// tables, sharing one trajectory store.
func wireTwoCameras(t *testing.T, withC bool) (bus *transport.Bus, store *trajstore.Store, a, b, c *Node) {
	t.Helper()
	bus = transport.NewBus()
	store = trajstore.NewMemStore()
	a = newTestNode(t, bus, "camA", nodeConfig("camA", store))
	b = newTestNode(t, bus, "camB", nodeConfig("camB", store))
	refs := []protocol.CameraRef{{ID: "camB", Addr: "camB"}}
	if withC {
		c = newTestNode(t, bus, "camC", nodeConfig("camC", store))
		refs = append(refs, protocol.CameraRef{ID: "camC", Addr: "camC"})
	}
	a.Topology().ApplyUpdate(protocol.TopologyUpdate{
		CameraID: "camA",
		Version:  1,
		MDCS:     map[geo.Direction][]protocol.CameraRef{geo.East: refs},
	})
	return bus, store, a, b, c
}

func TestInformingStage(t *testing.T) {
	_, _, a, b, _ := wireTwoCameras(t, false)

	var informs []protocol.DetectionEvent
	b.cfg.Hooks.OnInformReceived = func(e protocol.DetectionEvent, _ time.Time) {
		informs = append(informs, e)
	}

	driveVehicleThrough(t, a, "veh-1", imaging.Red, 0)

	if len(informs) != 1 {
		t.Fatalf("informs = %d", len(informs))
	}
	if informs[0].CameraID != "camA" {
		t.Errorf("inform from %q", informs[0].CameraID)
	}
	if b.Pool().Size() != 1 {
		t.Errorf("pool size = %d", b.Pool().Size())
	}
	if a.Stats().InformsSent != 1 || b.Stats().InformsReceived != 1 {
		t.Errorf("stats: A=%+v B=%+v", a.Stats(), b.Stats())
	}
}

func TestReidentificationAndConfirm(t *testing.T) {
	_, store, a, b, _ := wireTwoCameras(t, false)

	var matched bool
	var matchedUp protocol.EventID
	b.cfg.Hooks.OnEvent = func(_ protocol.DetectionEvent, m bool, up protocol.EventID, _ float64) {
		matched = m
		matchedUp = up
	}

	driveVehicleThrough(t, a, "veh-1", imaging.Red, 0)
	driveVehicleThrough(t, b, "veh-1", imaging.Red, 100)

	if !matched {
		t.Fatal("B never re-identified the vehicle")
	}
	if matchedUp == "" {
		t.Error("matched upstream event id missing")
	}
	if store.NumEdges() != 1 {
		t.Errorf("trajectory edges = %d, want 1", store.NumEdges())
	}
	if b.Stats().ConfirmsSent != 1 {
		t.Errorf("B confirms sent = %d", b.Stats().ConfirmsSent)
	}
	if a.Stats().ConfirmsReceived != 1 {
		t.Errorf("A confirms received = %d", a.Stats().ConfirmsReceived)
	}
	// B marked the upstream event matched in its own pool.
	if b.Pool().Unmatched() != 0 {
		t.Errorf("B pool unmatched = %d", b.Pool().Unmatched())
	}
	// Trajectory query sees A -> B.
	v, err := store.FindByEventID(matchedUp)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := store.Trajectory(v.ID, trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Errorf("trajectory = %v", paths)
	}
}

func TestConfirmTriggersRetireAtThirdCamera(t *testing.T) {
	_, _, a, b, c := wireTwoCameras(t, true)

	driveVehicleThrough(t, a, "veh-1", imaging.Red, 0)
	if b.Pool().Size() != 1 || c.Pool().Size() != 1 {
		t.Fatalf("pools B=%d C=%d", b.Pool().Size(), c.Pool().Size())
	}

	driveVehicleThrough(t, b, "veh-1", imaging.Red, 100)

	// A received B's confirm and retired the event at C.
	if a.Stats().RetiresSent != 1 {
		t.Errorf("A retires sent = %d", a.Stats().RetiresSent)
	}
	if c.Stats().RetiresReceived != 1 {
		t.Errorf("C retires received = %d", c.Stats().RetiresReceived)
	}
	if c.Pool().Unmatched() != 0 {
		t.Errorf("C pool unmatched = %d, want 0 after retire", c.Pool().Unmatched())
	}
	// The entry is annotated, not removed (lazy GC).
	if c.Pool().Size() != 1 {
		t.Errorf("C pool size = %d, want 1 (annotated, not pruned)", c.Pool().Size())
	}
}

func TestDistinctVehiclesDoNotCrossMatch(t *testing.T) {
	_, store, a, b, _ := wireTwoCameras(t, false)

	var bMatches int
	b.cfg.Hooks.OnEvent = func(_ protocol.DetectionEvent, m bool, _ protocol.EventID, _ float64) {
		if m {
			bMatches++
		}
	}

	// A sees a red vehicle; B then sees a blue one. Histograms differ, so
	// no match and no trajectory edge.
	driveVehicleThrough(t, a, "veh-red", imaging.Red, 0)
	driveVehicleThrough(t, b, "veh-blue", imaging.Blue, 100)

	if bMatches != 0 {
		t.Error("blue vehicle matched red signature")
	}
	if store.NumEdges() != 0 {
		t.Errorf("edges = %d, want 0", store.NumEdges())
	}
	if b.Pool().Unmatched() != 1 {
		t.Errorf("unmatched = %d, want the red event still pending", b.Pool().Unmatched())
	}
}

func TestFlushEmitsLiveTracks(t *testing.T) {
	bus := transport.NewBus()
	store := trajstore.NewMemStore()
	var events int
	cfg := nodeConfig("camA", store)
	cfg.Hooks.OnEvent = func(protocol.DetectionEvent, bool, protocol.EventID, float64) { events++ }
	n := newTestNode(t, bus, "camA", cfg)

	for seq := int64(0); seq < 5; seq++ {
		if err := n.ProcessFrame(makeFrame("camA", seq, 10+int(seq)*10, "veh-1", imaging.Red)); err != nil {
			t.Fatal(err)
		}
	}
	if events != 0 {
		t.Fatal("event emitted before departure")
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Errorf("events after flush = %d", events)
	}
}

func TestOnFirstSeenHook(t *testing.T) {
	bus := transport.NewBus()
	store := trajstore.NewMemStore()
	var seen []string
	var seenAt []time.Time
	cfg := nodeConfig("camA", store)
	cfg.Hooks.OnFirstSeen = func(id string, at time.Time) {
		seen = append(seen, id)
		seenAt = append(seenAt, at)
	}
	n := newTestNode(t, bus, "camA", cfg)
	driveVehicleThrough(t, n, "veh-7", imaging.Red, 0)
	if len(seen) != 1 || seen[0] != "veh-7" {
		t.Errorf("seen = %v", seen)
	}
	if !seenAt[0].Equal(epoch) {
		t.Errorf("seen at %v, want frame-0 time", seenAt[0])
	}
}

// sliceSource feeds pre-rendered frames.
type sliceSource struct {
	frames []*vision.Frame
	i      int
}

func (s *sliceSource) Next() (*vision.Frame, error) {
	if s.i >= len(s.frames) {
		return nil, io.EOF
	}
	f := s.frames[s.i]
	s.i++
	return f, nil
}

func TestRunLiveMatchesSequential(t *testing.T) {
	bus := transport.NewBus()
	store := trajstore.NewMemStore()
	var events int
	cfg := nodeConfig("camL", store)
	cfg.Hooks.OnEvent = func(protocol.DetectionEvent, bool, protocol.EventID, float64) { events++ }
	n := newTestNode(t, bus, "camL", cfg)

	var frames []*vision.Frame
	seq := int64(0)
	for x := 10; x <= 150; x += 10 {
		frames = append(frames, makeFrame("camL", seq, x, "veh-1", imaging.Red))
		seq++
	}
	for i := 0; i < 6; i++ {
		frames = append(frames, makeFrame("camL", seq, 0, "", imaging.Red))
		seq++
	}
	if err := n.RunLive(context.Background(), &sliceSource{frames: frames}); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Errorf("live events = %d, want 1", events)
	}
	if n.Stats().FramesProcessed != int64(len(frames)) {
		t.Errorf("frames processed = %d", n.Stats().FramesProcessed)
	}
}

func TestRunLiveNilSource(t *testing.T) {
	bus := transport.NewBus()
	n := newTestNode(t, bus, "camX", nodeConfig("camX", trajstore.NewMemStore()))
	if err := n.RunLive(context.Background(), nil); err == nil {
		t.Error("nil source accepted")
	}
}

type countingSink struct{ n int }

func (c *countingSink) StoreFrame(protocol.FrameRecord) error {
	c.n++
	return nil
}

func TestStoreFramesSendsRecords(t *testing.T) {
	bus := transport.NewBus()
	store := trajstore.NewMemStore()
	sink := &countingSink{}
	cfg := nodeConfig("camF", store)
	cfg.FrameStore = sink
	cfg.StoreFrames = true
	n := newTestNode(t, bus, "camF", cfg)
	for seq := int64(0); seq < 4; seq++ {
		if err := n.ProcessFrame(makeFrame("camF", seq, 20, "v", imaging.Red)); err != nil {
			t.Fatal(err)
		}
	}
	if sink.n != 4 {
		t.Errorf("stored %d frames", sink.n)
	}
}

func TestProcessFrameNil(t *testing.T) {
	bus := transport.NewBus()
	n := newTestNode(t, bus, "camN", nodeConfig("camN", trajstore.NewMemStore()))
	if err := n.ProcessFrame(nil); err == nil {
		t.Error("nil frame accepted")
	}
}
