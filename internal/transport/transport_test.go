package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/protocol"
)

func retireEnv(t *testing.T, id string) protocol.Envelope {
	t.Helper()
	env, err := protocol.Seal(protocol.Retire{EventID: protocol.EventID(id)})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestBusSynchronousDelivery(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var got []protocol.Envelope
	b.SetHandler(func(_ context.Context, env protocol.Envelope) { got = append(got, env) })
	if err := a.Send(context.Background(), "b", retireEnv(t, "x#1")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != protocol.TypeRetire {
		t.Errorf("got %v", got)
	}
}

func TestBusDuplicateEndpoint(t *testing.T) {
	bus := NewBus()
	if _, err := bus.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Endpoint("a"); err == nil {
		t.Error("duplicate endpoint should error")
	}
	if _, err := bus.Endpoint(""); err == nil {
		t.Error("empty name should error")
	}
}

func TestBusUnknownAddress(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), "ghost", retireEnv(t, "x#1")); !errors.Is(err, ErrUnknownAddress) {
		t.Errorf("want ErrUnknownAddress, got %v", err)
	}
}

func TestBusNoHandler(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), "b", retireEnv(t, "x#1")); !errors.Is(err, ErrNoHandler) {
		t.Errorf("want ErrNoHandler, got %v", err)
	}
}

func TestBusClosedEndpoint(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	b.SetHandler(func(context.Context, protocol.Envelope) {})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := a.Send(context.Background(), "b", retireEnv(t, "x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	// Sending to a closed endpoint fails with unknown address.
	if err := b.Send(context.Background(), "a", retireEnv(t, "y")); !errors.Is(err, ErrUnknownAddress) {
		t.Errorf("send to closed: %v", err)
	}
}

func TestSimBusLatency(t *testing.T) {
	sim := des.New(time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC))
	bus := NewSimBus(sim, 10*time.Millisecond)
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var deliveredAt time.Duration = -1
	b.SetHandler(func(context.Context, protocol.Envelope) { deliveredAt = sim.Now() })
	if err := a.Send(context.Background(), "b", retireEnv(t, "x")); err != nil {
		t.Fatal(err)
	}
	if deliveredAt != -1 {
		t.Error("delivery should be deferred to the simulator")
	}
	sim.Run()
	if deliveredAt != 10*time.Millisecond {
		t.Errorf("delivered at %v, want 10ms", deliveredAt)
	}
}

func TestSimBusInFlightMessageToFailedEndpoint(t *testing.T) {
	sim := des.New(time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC))
	bus := NewSimBus(sim, 10*time.Millisecond)
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	delivered := false
	b.SetHandler(func(context.Context, protocol.Envelope) { delivered = true })
	if err := a.Send(context.Background(), "b", retireEnv(t, "x")); err != nil {
		t.Fatal(err)
	}
	bus.Partition("b") // b dies while the message is in flight
	sim.Run()
	if delivered {
		t.Error("message delivered to a failed endpoint")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	var mu sync.Mutex
	var got []protocol.Envelope
	done := make(chan struct{}, 16)
	b.SetHandler(func(_ context.Context, env protocol.Envelope) {
		mu.Lock()
		got = append(got, env)
		mu.Unlock()
		done <- struct{}{}
	})

	for i := 0; i < 3; i++ {
		if err := a.Send(context.Background(), b.Addr(), retireEnv(t, "x#1")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for delivery")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Errorf("got %d messages", len(got))
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	gotA := make(chan protocol.Envelope, 1)
	gotB := make(chan protocol.Envelope, 1)
	a.SetHandler(func(_ context.Context, env protocol.Envelope) { gotA <- env })
	b.SetHandler(func(_ context.Context, env protocol.Envelope) { gotB <- env })

	if err := a.Send(context.Background(), b.Addr(), retireEnv(t, "to-b#1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(context.Background(), a.Addr(), retireEnv(t, "to-a#1")); err != nil {
		t.Fatal(err)
	}
	for _, ch := range []chan protocol.Envelope{gotA, gotB} {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out")
		}
	}
}

func TestTCPSendToDeadPeerFails(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	dead, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr()
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}
	// The dialer retries with backoff until the context expires, so bound
	// the attempt explicitly.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := a.Send(ctx, deadAddr, retireEnv(t, "x")); err == nil {
		t.Error("send to dead peer should eventually error")
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()

	b1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	got := make(chan protocol.Envelope, 8)
	b1.SetHandler(func(_ context.Context, env protocol.Envelope) { got <- env })
	if err := a.Send(context.Background(), addr, retireEnv(t, "first#1")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("first message not delivered")
	}
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the peer on the same address.
	b2, err := ListenTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b2.Close() }()
	b2.SetHandler(func(_ context.Context, env protocol.Envelope) { got <- env })

	// The cached connection is stale; Send must redial. The first send
	// may or may not detect staleness immediately (TCP buffering), so try
	// a few times.
	delivered := false
	for i := 0; i < 10 && !delivered; i++ {
		_ = a.Send(context.Background(), addr, retireEnv(t, "second#1"))
		select {
		case <-got:
			delivered = true
		case <-time.After(300 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("message not delivered after peer restart")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := a.Send(context.Background(), "127.0.0.1:1", retireEnv(t, "x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	recv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = recv.Close() }()
	var count sync.WaitGroup
	const total = 40
	count.Add(total)
	recv.SetHandler(func(context.Context, protocol.Envelope) { count.Done() })

	sender, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sender.Close() }()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < total/4; j++ {
				if err := sender.Send(context.Background(), recv.Addr(), retireEnv(t, "c#1")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	done := make(chan struct{})
	go func() {
		count.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("not all concurrent messages arrived")
	}
}
