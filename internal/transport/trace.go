package transport

import (
	"context"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// injectTrace stamps the caller's span context (if any) onto the
// envelope, unless the envelope already carries one — a sender that set
// env.Trace explicitly knows better than the ambient context.
func injectTrace(ctx context.Context, env *protocol.Envelope) {
	if env.Trace != nil {
		return
	}
	if sc, ok := obs.SpanFromContext(ctx); ok {
		tc := protocol.TraceContext(sc)
		env.Trace = &tc
	}
}

// extractTrace returns base carrying the envelope's span context, if
// any, so handlers can continue the sender's trace.
func extractTrace(base context.Context, env protocol.Envelope) context.Context {
	if env.Trace == nil || !env.Trace.Valid() {
		return base
	}
	return obs.ContextWithSpan(base, obs.SpanContext(*env.Trace))
}
