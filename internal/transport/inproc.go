package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rpc"
	"repro/internal/rpc/faultinject"
)

// Bus is an in-process network. Endpoints register by name; Send routes
// envelopes through the same rpc middleware chain as the TCP transport
// (metrics, trace inject, fault injection) to the destination's
// handler, either synchronously or — when the bus is attached to a
// discrete-event simulator — after a simulated network latency.
type Bus struct {
	mu        sync.Mutex
	endpoints map[string]*busEndpoint
	parted    map[string]*busEndpoint
	sim       *des.Simulator
	latency   time.Duration
	faults    rpc.ClientInterceptor
	m         *endpointMetrics

	// ccall is the send chain bound once around transmit (see TCP.ccall).
	ccall  rpc.Handler
	schain rpc.ServerInterceptor
}

// NewBus returns a bus that delivers synchronously (zero latency) on the
// caller's goroutine.
func NewBus() *Bus {
	b := &Bus{
		endpoints: make(map[string]*busEndpoint),
		parted:    make(map[string]*busEndpoint),
		m:         newEndpointMetrics(nil, "bus"),
	}
	b.initChains()
	return b
}

// NewSimBus returns a bus that schedules deliveries on the simulator,
// latency after each send. All endpoint handlers then run on the
// simulator's goroutine, which is what makes large-scale experiments
// deterministic.
func NewSimBus(sim *des.Simulator, latency time.Duration) *Bus {
	b := &Bus{
		endpoints: make(map[string]*busEndpoint),
		parted:    make(map[string]*busEndpoint),
		sim:       sim,
		latency:   latency,
		m:         newEndpointMetrics(nil, "bus"),
	}
	b.initChains()
	return b
}

// initChains assembles the fixed middleware chains. The fault stage
// reads the current interceptor per message, so fault injection can be
// (re)configured on a live bus.
func (b *Bus) initChains() {
	b.ccall = rpc.BindClient(b.transmit, b.countSend, rpc.WithTraceInject(), b.faultStage)
	b.schain = rpc.ChainServer(rpc.WithTraceExtract())
}

// Use re-homes the bus's telemetry onto reg (coralpie_transport_* with
// transport="bus", plus per-peer send counters). Call before traffic
// flows; counts accumulated on the previous handles do not carry over.
func (b *Bus) Use(reg *obs.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = newEndpointMetrics(reg, "bus")
}

// Endpoint registers (or returns an error for a duplicate) endpoint name.
func (b *Bus) Endpoint(name string) (Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("transport: empty endpoint name")
	}
	if _, ok := b.endpoints[name]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already registered", name)
	}
	if _, ok := b.parted[name]; ok {
		return nil, fmt.Errorf("transport: endpoint %q is partitioned, not free", name)
	}
	ep := &busEndpoint{bus: b, name: name}
	b.endpoints[name] = ep
	return ep, nil
}

// Partition detaches the named endpoint from the bus without closing
// it, simulating a network or camera failure: subsequent sends to it
// fail, and sends from it fail too — a failed camera neither receives
// nor emits traffic (in particular, its heartbeats stop reaching the
// topology server and the fleet monitor). The endpoint is parked, not
// destroyed; Heal reattaches it with its handler intact.
func (b *Bus) Partition(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ep, ok := b.endpoints[name]; ok {
		delete(b.endpoints, name)
		b.parted[name] = ep
	}
}

// Heal reattaches a partitioned endpoint, simulating a node or link
// recovery: traffic to and from it flows again and its handler is the
// one it had at partition time. Healing a name that was never
// partitioned (or was closed for good) is an error.
func (b *Bus) Heal(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ep, ok := b.parted[name]
	if !ok {
		return fmt.Errorf("transport: endpoint %q is not partitioned", name)
	}
	delete(b.parted, name)
	b.endpoints[name] = ep
	return nil
}

// Attached reports whether the endpoint is currently on the bus (it
// exists and is not partitioned). The fleet health plane uses this to
// decide whether a simulated node's heartbeat can reach the monitor.
func (b *Bus) Attached(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.endpoints[name]
	return ok
}

// remove drops the endpoint entirely (attached or parked); Close uses
// it so a closed endpoint's name cannot be healed back.
func (b *Bus) remove(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.endpoints, name)
	delete(b.parted, name)
}

// InjectFaults installs deterministic fault injection (drop, latency,
// error) on every send through the bus, replacing any previous fault
// middleware; a config with no enabled fault clears it. Dropped
// messages are counted in Dropped() and coralpie_transport_lost_total.
func (b *Bus) InjectFaults(cfg faultinject.Config) error {
	if !cfg.Enabled() {
		b.mu.Lock()
		b.faults = nil
		b.mu.Unlock()
		return nil
	}
	user := cfg.OnDrop
	cfg.OnDrop = func() {
		b.countDrop()
		if user != nil {
			user()
		}
	}
	ic, err := faultinject.New(cfg)
	if err != nil {
		return err
	}
	b.mu.Lock()
	b.faults = ic
	b.mu.Unlock()
	return nil
}

// SetLossRate makes the bus silently drop each message with the given
// probability — now a thin wrapper over the faultinject middleware,
// kept for its validation contract and existing callers. The rng must
// be dedicated to the bus. Rate 0 (the default) disables loss.
func (b *Bus) SetLossRate(rate float64, rng *rand.Rand) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("transport: loss rate %v out of [0,1)", rate)
	}
	if rate > 0 && rng == nil {
		return fmt.Errorf("transport: loss rate needs an RNG")
	}
	return b.InjectFaults(faultinject.Config{DropRate: rate, RNG: rng})
}

// Dropped returns how many messages fault injection has discarded. The
// count is backed by the bus's telemetry counter, so it is also exported
// as coralpie_transport_lost_total once a registry is attached.
func (b *Bus) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m.lost.Value()
}

func (b *Bus) countDrop() {
	b.mu.Lock()
	m := b.m
	b.mu.Unlock()
	m.lost.Inc()
}

// countSend counts every message entering the bus — including ones the
// fault stage then drops, matching the loss model's historical
// accounting (a dropped datagram was still sent).
func (b *Bus) countSend(ctx context.Context, req *rpc.Request, next rpc.Handler) (*rpc.Response, error) {
	env := req.Body.(*protocol.Envelope)
	b.mu.Lock()
	m := b.m
	m.sends.Inc()
	m.bytesOut.Add(int64(len(env.Payload)))
	peer := m.peer("bus", req.Addr)
	b.mu.Unlock()
	if peer != nil {
		peer.Inc()
	}
	return next(ctx, req)
}

// faultStage applies the currently installed fault middleware, if any.
func (b *Bus) faultStage(ctx context.Context, req *rpc.Request, next rpc.Handler) (*rpc.Response, error) {
	b.mu.Lock()
	f := b.faults
	b.mu.Unlock()
	if f == nil {
		return next(ctx, req)
	}
	return f(ctx, req, next)
}

// transmit is the base handler under the send chain: route to the
// destination handler, now or on the simulator.
func (b *Bus) transmit(ctx context.Context, req *rpc.Request) (*rpc.Response, error) {
	env := *req.Body.(*protocol.Envelope)
	to := req.Addr
	b.mu.Lock()
	m := b.m
	ep, ok := b.endpoints[to]
	var h Handler
	if ok {
		h = ep.handler
	}
	sim := b.sim
	latency := b.latency
	b.mu.Unlock()

	if !ok {
		m.sendErrors.Inc()
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddress, to)
	}
	if h == nil {
		m.sendErrors.Inc()
		return nil, fmt.Errorf("%w: %q", ErrNoHandler, to)
	}
	if sim == nil {
		if err := rpc.Sleep(ctx, req.Delay); err != nil {
			return nil, err
		}
		m.delivered.Inc()
		b.dispatch(ctx, h, env)
		return &rpc.Response{}, nil
	}
	sim.Schedule(latency+req.Delay, func() {
		// Re-check at delivery time: the endpoint may have failed while
		// the message was in flight. The sender's context does not travel
		// with the simulated in-flight message (it may be done by the
		// time the message lands), so delivery runs under Background —
		// only the envelope's trace context crosses the simulated wire.
		b.mu.Lock()
		cur, stillThere := b.endpoints[to]
		var handler Handler
		if stillThere {
			handler = cur.handler
		}
		b.mu.Unlock()
		if handler != nil {
			m.delivered.Inc()
			b.dispatch(context.Background(), handler, env)
		}
	})
	return &rpc.Response{}, nil
}

// dispatch runs the handler under the server-side chain (trace
// extraction), so bus handlers see the same middleware contract as TCP
// handlers.
func (b *Bus) dispatch(base context.Context, h Handler, env protocol.Envelope) {
	req := &rpc.Request{Method: string(env.Type), Body: &env, OneWay: true}
	_, _ = b.schain(base, req, func(ctx context.Context, r *rpc.Request) (*rpc.Response, error) {
		h(ctx, *r.Body.(*protocol.Envelope))
		return &rpc.Response{}, nil
	})
}

type busEndpoint struct {
	bus    *Bus
	name   string
	mu     sync.Mutex
	closed bool

	handler Handler
}

var _ Endpoint = (*busEndpoint)(nil)

func (e *busEndpoint) Addr() string { return e.name }

func (e *busEndpoint) SetHandler(h Handler) {
	e.bus.mu.Lock()
	defer e.bus.mu.Unlock()
	e.handler = h
}

func (e *busEndpoint) Send(ctx context.Context, addr string, env protocol.Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !e.bus.Attached(e.name) {
		return fmt.Errorf("%w: %q is partitioned", ErrClosed, e.name)
	}
	req := &rpc.Request{Method: string(env.Type), Addr: addr, Body: &env, OneWay: true}
	_, err := e.bus.ccall(ctx, req)
	return err
}

func (e *busEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.bus.remove(e.name)
	return nil
}
