package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Bus is an in-process network. Endpoints register by name; Send routes
// envelopes to the destination's handler, either synchronously or — when
// the bus is attached to a discrete-event simulator — after a simulated
// network latency.
type Bus struct {
	mu        sync.Mutex
	endpoints map[string]*busEndpoint
	sim       *des.Simulator
	latency   time.Duration
	lossRate  float64
	lossRNG   *rand.Rand
	m         *endpointMetrics
}

// NewBus returns a bus that delivers synchronously (zero latency) on the
// caller's goroutine.
func NewBus() *Bus {
	return &Bus{
		endpoints: make(map[string]*busEndpoint),
		m:         newEndpointMetrics(nil, "bus"),
	}
}

// NewSimBus returns a bus that schedules deliveries on the simulator,
// latency after each send. All endpoint handlers then run on the
// simulator's goroutine, which is what makes large-scale experiments
// deterministic.
func NewSimBus(sim *des.Simulator, latency time.Duration) *Bus {
	return &Bus{
		endpoints: make(map[string]*busEndpoint),
		sim:       sim,
		latency:   latency,
		m:         newEndpointMetrics(nil, "bus"),
	}
}

// Use re-homes the bus's telemetry onto reg (coralpie_transport_* with
// transport="bus", plus per-peer send counters). Call before traffic
// flows; counts accumulated on the previous handles do not carry over.
func (b *Bus) Use(reg *obs.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = newEndpointMetrics(reg, "bus")
}

// Endpoint registers (or returns an error for a duplicate) endpoint name.
func (b *Bus) Endpoint(name string) (Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("transport: empty endpoint name")
	}
	if _, ok := b.endpoints[name]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already registered", name)
	}
	ep := &busEndpoint{bus: b, name: name}
	b.endpoints[name] = ep
	return ep, nil
}

// Partition drops the named endpoint from the bus without closing it,
// simulating a network or camera failure: subsequent sends to it fail,
// and sends from it fail too — a failed camera neither receives nor
// emits traffic (in particular, its heartbeats stop reaching the
// topology server).
func (b *Bus) Partition(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.endpoints, name)
}

// attached reports whether the endpoint is still on the bus.
func (b *Bus) attached(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.endpoints[name]
	return ok
}

// SetLossRate makes the bus silently drop each message with the given
// probability, for failure-injection tests. The rng must be dedicated to
// the bus. Rate 0 (the default) disables loss.
func (b *Bus) SetLossRate(rate float64, rng *rand.Rand) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("transport: loss rate %v out of [0,1)", rate)
	}
	if rate > 0 && rng == nil {
		return fmt.Errorf("transport: loss rate needs an RNG")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lossRate = rate
	b.lossRNG = rng
	return nil
}

// Dropped returns how many messages the loss model has discarded. The
// count is backed by the bus's telemetry counter, so it is also exported
// as coralpie_transport_lost_total once a registry is attached.
func (b *Bus) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m.lost.Value()
}

func (b *Bus) deliver(ctx context.Context, to string, env protocol.Envelope) error {
	b.mu.Lock()
	m := b.m
	m.sends.Inc()
	m.bytesOut.Add(int64(len(env.Payload)))
	if peer := m.peer("bus", to); peer != nil {
		peer.Inc()
	}
	if b.lossRate > 0 && b.lossRNG.Float64() < b.lossRate {
		m.lost.Inc()
		b.mu.Unlock()
		return nil // silently lost, like a dropped datagram
	}
	ep, ok := b.endpoints[to]
	var h Handler
	if ok {
		h = ep.handler
	}
	sim := b.sim
	latency := b.latency
	b.mu.Unlock()

	if !ok {
		m.sendErrors.Inc()
		return fmt.Errorf("%w: %q", ErrUnknownAddress, to)
	}
	if h == nil {
		m.sendErrors.Inc()
		return fmt.Errorf("%w: %q", ErrNoHandler, to)
	}
	if sim == nil {
		m.delivered.Inc()
		h(extractTrace(ctx, env), env)
		return nil
	}
	sim.Schedule(latency, func() {
		// Re-check at delivery time: the endpoint may have failed while
		// the message was in flight. The sender's context does not travel
		// with the simulated in-flight message (it may be done by the
		// time the message lands), so delivery runs under Background —
		// only the envelope's trace context crosses the simulated wire.
		b.mu.Lock()
		cur, stillThere := b.endpoints[to]
		var handler Handler
		if stillThere {
			handler = cur.handler
		}
		b.mu.Unlock()
		if handler != nil {
			m.delivered.Inc()
			handler(extractTrace(context.Background(), env), env)
		}
	})
	return nil
}

type busEndpoint struct {
	bus    *Bus
	name   string
	mu     sync.Mutex
	closed bool

	handler Handler
}

var _ Endpoint = (*busEndpoint)(nil)

func (e *busEndpoint) Addr() string { return e.name }

func (e *busEndpoint) SetHandler(h Handler) {
	e.bus.mu.Lock()
	defer e.bus.mu.Unlock()
	e.handler = h
}

func (e *busEndpoint) Send(ctx context.Context, addr string, env protocol.Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !e.bus.attached(e.name) {
		return fmt.Errorf("%w: %q is partitioned", ErrClosed, e.name)
	}
	injectTrace(ctx, &env)
	return e.bus.deliver(ctx, addr, env)
}

func (e *busEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.bus.Partition(e.name)
	return nil
}
