// Package transport moves protocol envelopes between Coral-Pie components.
// Two implementations share one interface: an in-process bus used by the
// deterministic simulation harness (optionally routed through the
// discrete-event simulator with a configurable network latency), and a
// TCP transport for real distributed deployments, standing in for the
// paper's ZeroMQ sockets.
//
// Every blocking operation is context-aware: Send honors the caller's
// context (falling back to DefaultSendTimeout when the context carries no
// deadline), and handlers receive a context that is cancelled when the
// endpoint shuts down, so downstream work can stop promptly during
// teardown.
package transport

import (
	"context"
	"errors"
	"time"

	"repro/internal/protocol"
)

// Handler consumes an incoming envelope. Implementations are invoked
// sequentially per connection; a handler must not block for long and
// should abandon work when ctx is cancelled (the endpoint is shutting
// down).
type Handler func(ctx context.Context, env protocol.Envelope)

// Endpoint is one addressable party on a network.
type Endpoint interface {
	// Addr is the address peers use to reach this endpoint.
	Addr() string
	// SetHandler installs the incoming-message callback. It must be
	// called before any peer sends to this endpoint.
	SetHandler(h Handler)
	// Send delivers an envelope to a peer address. The context bounds
	// the whole operation (dial, retries, write); implementations apply
	// DefaultSendTimeout when ctx has no deadline, so a stalled peer can
	// never block the caller forever.
	Send(ctx context.Context, addr string, env protocol.Envelope) error
	// Close releases resources and stops background goroutines
	// immediately (hard close). TCP endpoints additionally offer
	// Shutdown(ctx) for a graceful drain.
	Close() error
}

// Errors shared by transport implementations.
var (
	ErrClosed         = errors.New("transport: endpoint closed")
	ErrUnknownAddress = errors.New("transport: unknown address")
	ErrNoHandler      = errors.New("transport: destination has no handler")
)

// DefaultSendTimeout bounds a Send whose context carries no deadline.
const DefaultSendTimeout = 5 * time.Second
