// Package transport moves protocol envelopes between Coral-Pie components.
// Two implementations share one interface: an in-process bus used by the
// deterministic simulation harness (optionally routed through the
// discrete-event simulator with a configurable network latency), and a
// TCP transport for real distributed deployments, standing in for the
// paper's ZeroMQ sockets.
package transport

import (
	"errors"

	"repro/internal/protocol"
)

// Handler consumes an incoming envelope. Implementations are invoked
// sequentially per endpoint; a handler must not block for long.
type Handler func(env protocol.Envelope)

// Endpoint is one addressable party on a network.
type Endpoint interface {
	// Addr is the address peers use to reach this endpoint.
	Addr() string
	// SetHandler installs the incoming-message callback. It must be
	// called before any peer sends to this endpoint.
	SetHandler(h Handler)
	// Send delivers an envelope to a peer address.
	Send(addr string, env protocol.Envelope) error
	// Close releases resources and stops background goroutines.
	Close() error
}

// Errors shared by transport implementations.
var (
	ErrClosed         = errors.New("transport: endpoint closed")
	ErrUnknownAddress = errors.New("transport: unknown address")
	ErrNoHandler      = errors.New("transport: destination has no handler")
)
