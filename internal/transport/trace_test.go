package transport

import (
	"context"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/obs"
	"repro/internal/protocol"
)

var testSpan = obs.SpanContext{
	TraceID:  "cam0#1",
	SpanID:   "cam0-7",
	ParentID: "cam0-3",
	Sampled:  true,
}

func TestBusTracePropagation(t *testing.T) {
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var got obs.SpanContext
	var ok bool
	b.SetHandler(func(ctx context.Context, env protocol.Envelope) {
		got, ok = obs.SpanFromContext(ctx)
	})

	ctx := obs.ContextWithSpan(context.Background(), testSpan)
	if err := a.Send(ctx, "b", retireEnv(t, "cam0#1")); err != nil {
		t.Fatal(err)
	}
	if !ok || got != testSpan {
		t.Fatalf("handler ctx span = %+v, %v; want %+v", got, ok, testSpan)
	}
}

func TestSimBusTracePropagation(t *testing.T) {
	sim := des.New(time.Unix(0, 0).UTC())
	bus := NewSimBus(sim, 2*time.Millisecond)
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var got obs.SpanContext
	var ok bool
	b.SetHandler(func(ctx context.Context, env protocol.Envelope) {
		got, ok = obs.SpanFromContext(ctx)
	})

	ctx := obs.ContextWithSpan(context.Background(), testSpan)
	if err := a.Send(ctx, "b", retireEnv(t, "cam0#1")); err != nil {
		t.Fatal(err)
	}
	// The delivery is scheduled; the trace must cross via the envelope,
	// not the (long-gone) caller context.
	sim.RunFor(10 * time.Millisecond)
	if !ok || got != testSpan {
		t.Fatalf("handler ctx span = %+v, %v; want %+v", got, ok, testSpan)
	}
}

func TestTCPTracePropagation(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	type result struct {
		sc obs.SpanContext
		ok bool
	}
	done := make(chan result, 1)
	b.SetHandler(func(ctx context.Context, env protocol.Envelope) {
		sc, ok := obs.SpanFromContext(ctx)
		done <- result{sc, ok}
	})

	ctx := obs.ContextWithSpan(context.Background(), testSpan)
	if err := a.Send(ctx, b.Addr(), retireEnv(t, "cam0#1")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if !r.ok || r.sc != testSpan {
			t.Fatalf("handler ctx span = %+v, %v; want %+v", r.sc, r.ok, testSpan)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
}

func TestInjectTraceKeepsExplicitContext(t *testing.T) {
	// A message that already carries a trace context (e.g. forwarded)
	// must not have it overwritten by the sender's ambient span. Since
	// injection now lives in the rpc middleware chain, exercise it
	// through a full bus send.
	bus := NewBus()
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var got obs.SpanContext
	var ok bool
	b.SetHandler(func(ctx context.Context, env protocol.Envelope) {
		got, ok = obs.SpanFromContext(ctx)
	})

	explicit := obs.SpanContext{TraceID: "cam9#9", SpanID: "cam9-1", Sampled: true}
	env := retireEnv(t, "cam0#1")
	wire := protocol.TraceContext(explicit)
	env.Trace = &wire

	ctx := obs.ContextWithSpan(context.Background(), testSpan)
	if err := a.Send(ctx, "b", env); err != nil {
		t.Fatal(err)
	}
	if !ok || got != explicit {
		t.Fatalf("handler ctx span = %+v, %v; want the explicit %+v", got, ok, explicit)
	}

	// And with no ambient span, nothing is attached.
	got, ok = obs.SpanContext{}, false
	env2 := retireEnv(t, "cam0#1")
	if err := a.Send(context.Background(), "b", env2); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("trace attached from empty context: %+v", got)
	}
}
