package transport

import (
	"context"
	"sync"
	"testing"

	"repro/internal/protocol"
	"repro/internal/rpc"
)

// BenchmarkRPCMiddlewareOverhead measures what the default client
// middleware chain (deadline, trace inject, metrics, retry) costs per
// Send over loopback TCP, against the bare transmit path with no
// middleware at all. The acceptance bar for the rpc layering is <10%
// overhead on loopback.
//
// Sends are paced: every batchSize envelopes the sender waits for the
// receiver to drain. Unpaced one-way sends race ahead until the kernel
// socket buffer fills, at which point per-op time measures reader
// wakeup scheduling — bimodal, ±30% between runs — instead of send
// cost. Pacing keeps both sub-benchmarks in the same flow regime so
// their difference is the middleware cost.
func BenchmarkRPCMiddlewareOverhead(b *testing.B) {
	const batchSize = 64

	newPair := func(b *testing.B) (*TCP, *TCP, func(int)) {
		b.Helper()
		a, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		dst, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			_ = a.Close()
			b.Fatal(err)
		}
		// Count deliveries so the sender can wait for the last envelope:
		// sends are one-way, and closing before delivery would make runs
		// measure different amounts of work.
		var mu sync.Mutex
		seen := 0
		cond := sync.NewCond(&mu)
		dst.SetHandler(func(ctx context.Context, env protocol.Envelope) {
			mu.Lock()
			seen++
			cond.Signal()
			mu.Unlock()
		})
		wait := func(n int) {
			mu.Lock()
			for seen < n {
				cond.Wait()
			}
			mu.Unlock()
		}
		b.Cleanup(func() {
			_ = a.Close()
			_ = dst.Close()
		})
		return a, dst, wait
	}

	env := protocol.Envelope{Type: "bench", Payload: []byte(`{"k":"v","n":12345}`)}

	b.Run("bare", func(b *testing.B) {
		a, dst, wait := newPair(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := env
			req := &rpc.Request{Method: string(e.Type), Addr: dst.Addr(), Body: &e, OneWay: true}
			if _, err := a.transmit(ctx, req); err != nil {
				b.Fatal(err)
			}
			if i%batchSize == batchSize-1 {
				wait(i + 1)
			}
		}
		wait(b.N)
	})

	b.Run("chain", func(b *testing.B) {
		a, dst, wait := newPair(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Send(ctx, dst.Addr(), env); err != nil {
				b.Fatal(err)
			}
			if i%batchSize == batchSize-1 {
				wait(i + 1)
			}
		}
		wait(b.N)
	})
}
