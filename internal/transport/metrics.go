package transport

import (
	"repro/internal/obs"
)

// endpointMetrics are one transport instance's counters. Every instance
// owns standalone counters by default, so e.g. Bus.Dropped() never mixes
// in another bus's drops; binding a registry via Use re-homes the
// handles onto registry-backed metrics (named coralpie_transport_*) for
// HTTP exposition.
type endpointMetrics struct {
	reg *obs.Registry // nil when standalone

	sends            *obs.Counter   // envelopes submitted for delivery
	delivered        *obs.Counter   // envelopes handed to a handler
	lost             *obs.Counter   // envelopes discarded by the loss model
	sendErrors       *obs.Counter   // failed sends (unknown peer, no handler, dial/write errors)
	redials          *obs.Counter   // TCP dials (first connect and reconnects)
	received         *obs.Counter   // envelopes read off inbound connections
	bytesOut         *obs.Counter   // payload bytes submitted
	bytesIn          *obs.Counter   // payload bytes received
	deadlineExceeded *obs.Counter   // sends/drains aborted by a context or socket deadline
	retries          *obs.Counter   // sends retried after a stale cached connection
	retryExhausted   *obs.Counter   // sends that failed after the whole retry budget
	drain            *obs.Histogram // graceful-shutdown drain duration

	peerSends map[string]*obs.Counter // registry-bound only
}

func newEndpointMetrics(reg *obs.Registry, kind string) *endpointMetrics {
	m := &endpointMetrics{reg: reg, peerSends: make(map[string]*obs.Counter)}
	if reg == nil {
		m.sends = new(obs.Counter)
		m.delivered = new(obs.Counter)
		m.lost = new(obs.Counter)
		m.sendErrors = new(obs.Counter)
		m.redials = new(obs.Counter)
		m.received = new(obs.Counter)
		m.bytesOut = new(obs.Counter)
		m.bytesIn = new(obs.Counter)
		m.deadlineExceeded = new(obs.Counter)
		m.retries = new(obs.Counter)
		m.retryExhausted = new(obs.Counter)
		m.drain = new(obs.Histogram)
		return m
	}
	label := []string{"transport", kind}
	m.sends = reg.Counter("coralpie_transport_sends_total",
		"envelopes submitted for delivery", label...)
	m.delivered = reg.Counter("coralpie_transport_delivered_total",
		"envelopes handed to a destination handler", label...)
	m.lost = reg.Counter("coralpie_transport_lost_total",
		"envelopes discarded by the loss model", label...)
	m.sendErrors = reg.Counter("coralpie_transport_send_errors_total",
		"sends that failed", label...)
	m.redials = reg.Counter("coralpie_transport_dials_total",
		"outgoing TCP dials, including reconnects", label...)
	m.received = reg.Counter("coralpie_transport_received_total",
		"envelopes read from peers", label...)
	m.bytesOut = reg.Counter("coralpie_transport_bytes_out_total",
		"payload bytes submitted", label...)
	m.bytesIn = reg.Counter("coralpie_transport_bytes_in_total",
		"payload bytes received", label...)
	m.deadlineExceeded = reg.Counter("coralpie_transport_deadline_exceeded_total",
		"sends or shutdown drains aborted by a context or socket deadline", label...)
	m.retries = reg.Counter("coralpie_transport_retries_total",
		"sends retried after a stale cached connection", label...)
	m.retryExhausted = reg.Counter("coralpie_transport_retry_exhausted_total",
		"sends that failed after exhausting their retry budget", label...)
	m.drain = reg.Histogram("coralpie_transport_shutdown_drain_seconds",
		"graceful-shutdown drain duration", nil, label...)
	return m
}

// peer returns the per-peer send counter, or nil when standalone.
// Callers must serialize access (the owning transport's lock).
func (m *endpointMetrics) peer(kind, addr string) *obs.Counter {
	if m.reg == nil {
		return nil
	}
	if c, ok := m.peerSends[addr]; ok {
		return c
	}
	c := m.reg.Counter("coralpie_transport_peer_sends_total",
		"envelopes sent per destination peer", "transport", kind, "peer", addr)
	m.peerSends[addr] = c
	return c
}
