package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// TCPConfig tunes a TCP endpoint's deadlines and dial-retry policy.
// Zero values take the defaults documented per field.
type TCPConfig struct {
	// DialTimeout bounds one connection attempt (default 2s). The whole
	// dial-with-retry sequence is bounded by the Send context.
	DialTimeout time.Duration
	// SendTimeout is the Send budget applied when the caller's context
	// carries no deadline (default DefaultSendTimeout).
	SendTimeout time.Duration
	// DialBackoffBase is the first retry delay after a failed dial
	// (default 50ms). Subsequent delays double, with jitter.
	DialBackoffBase time.Duration
	// DialBackoffMax caps the retry delay (default 1s).
	DialBackoffMax time.Duration
	// IdleTimeout, when positive, is a read deadline applied to inbound
	// connections between envelopes; idle peers are dropped (they
	// reconnect transparently on their next Send). Zero disables it.
	IdleTimeout time.Duration
}

func (c *TCPConfig) applyDefaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = DefaultSendTimeout
	}
	if c.DialBackoffBase <= 0 {
		c.DialBackoffBase = 50 * time.Millisecond
	}
	if c.DialBackoffMax <= 0 {
		c.DialBackoffMax = time.Second
	}
}

// TCP is an Endpoint over real TCP sockets: a listener that decodes
// length-prefixed protocol envelopes, and a cache of outgoing connections
// that redials with capped exponential backoff. Handlers may be invoked
// concurrently (one goroutine per inbound connection) and must be safe
// for concurrent use; they receive a context cancelled at shutdown.
type TCP struct {
	ln  net.Listener
	cfg TCPConfig

	// rootCtx is passed to handlers; cancelled on Close/Shutdown so
	// in-flight handler work can stop promptly.
	rootCtx context.Context
	cancel  context.CancelFunc

	mu      sync.Mutex
	handler Handler
	conns   map[string]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool
	m       *endpointMetrics

	wg        sync.WaitGroup // accept + read loops
	handlerWG sync.WaitGroup // in-flight handler invocations
}

var _ Endpoint = (*TCP)(nil)

// ListenTCP starts an endpoint listening on addr (use "127.0.0.1:0" for an
// ephemeral port) with default deadlines.
func ListenTCP(addr string) (*TCP, error) {
	return ListenTCPConfig(addr, TCPConfig{})
}

// ListenTCPConfig starts an endpoint with explicit deadline/backoff
// tuning.
func ListenTCPConfig(addr string, cfg TCPConfig) (*TCP, error) {
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCP{
		ln:      ln,
		cfg:     cfg,
		rootCtx: ctx,
		cancel:  cancel,
		conns:   make(map[string]net.Conn),
		inbound: make(map[net.Conn]struct{}),
		m:       newEndpointMetrics(nil, "tcp"),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Use re-homes the endpoint's telemetry onto reg (coralpie_transport_*
// with transport="tcp", plus per-peer send counters). Call before
// traffic flows; counts on the previous handles do not carry over.
func (t *TCP) Use(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = newEndpointMetrics(reg, "tcp")
}

// Addr returns the bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetHandler implements Endpoint.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		if t.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t.cfg.IdleTimeout))
		}
		env, err := protocol.ReadEnvelope(conn)
		if err != nil {
			return // EOF, peer reset, idle timeout, or framing error
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return // draining: stop dispatching new envelopes
		}
		h := t.handler
		m := t.m
		if h != nil {
			t.handlerWG.Add(1)
		}
		t.mu.Unlock()
		m.received.Inc()
		m.bytesIn.Add(int64(len(env.Payload)))
		if h != nil {
			m.delivered.Inc()
			h(extractTrace(t.rootCtx, env), env)
			t.handlerWG.Done()
		}
	}
}

// Send writes the envelope to addr over a cached connection, dialing on
// demand with capped exponential backoff. The context bounds the whole
// operation; without a deadline, SendTimeout applies.
func (t *TCP) Send(ctx context.Context, addr string, env protocol.Envelope) error {
	injectTrace(ctx, &env)
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.cfg.SendTimeout)
		defer cancel()
	}
	err := t.send(ctx, addr, env)
	t.mu.Lock()
	m := t.m
	t.mu.Unlock()
	if err != nil {
		m.sendErrors.Inc()
		if isDeadlineError(err) {
			m.deadlineExceeded.Inc()
		}
	} else {
		m.sends.Inc()
		m.bytesOut.Add(int64(len(env.Payload)))
		t.mu.Lock()
		peer := m.peer("tcp", addr)
		t.mu.Unlock()
		if peer != nil {
			peer.Inc()
		}
	}
	return err
}

// isDeadlineError reports whether err stems from a context deadline or a
// socket timeout.
func isDeadlineError(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (t *TCP) send(ctx context.Context, addr string, env protocol.Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	conn := t.conns[addr]
	t.mu.Unlock()

	if conn != nil {
		if err := t.writeTo(ctx, conn, addr, env); err == nil {
			return nil
		}
		// Stale connection: drop it and redial below.
		t.dropConn(addr, conn)
	}

	conn, err := t.dialWithBackoff(ctx, addr)
	if err != nil {
		return err
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return ErrClosed
	}
	if existing, ok := t.conns[addr]; ok {
		// A concurrent Send won the dial race; reuse its connection.
		t.mu.Unlock()
		_ = conn.Close()
		if err := t.writeTo(ctx, existing, addr, env); err == nil {
			return nil
		}
		t.dropConn(addr, existing)
		return fmt.Errorf("transport: send %s: connection lost", addr)
	}
	t.conns[addr] = conn
	t.mu.Unlock()

	if err := t.writeTo(ctx, conn, addr, env); err != nil {
		t.dropConn(addr, conn)
		return err
	}
	return nil
}

// dialWithBackoff dials addr, retrying with capped exponential backoff
// plus jitter until the context expires. Transient listener restarts
// (e.g. a store server rebooting) are therefore ridden out instead of
// failing the first Send.
func (t *TCP) dialWithBackoff(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: t.cfg.DialTimeout}
	backoff := t.cfg.DialBackoffBase
	for {
		t.mu.Lock()
		closed := t.closed
		m := t.m
		t.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		m.redials.Inc()
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("transport: dial %s: %w (last attempt: %v)", addr, ctx.Err(), err)
		}
		// Full jitter in [backoff/2, backoff) decorrelates concurrent
		// senders hammering a restarting peer.
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("transport: dial %s: %w (last attempt: %v)", addr, ctx.Err(), err)
		case <-timer.C:
		}
		backoff *= 2
		if backoff > t.cfg.DialBackoffMax {
			backoff = t.cfg.DialBackoffMax
		}
	}
}

// writeTo serializes writes per connection via the connection-map lock to
// keep frames from interleaving. The write deadline comes from ctx, so a
// peer that accepts but never drains cannot block the caller forever.
func (t *TCP) writeTo(ctx context.Context, conn net.Conn, addr string, env protocol.Envelope) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[addr] != conn && t.conns[addr] != nil {
		conn = t.conns[addr]
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetWriteDeadline(deadline)
	}
	if err := protocol.WriteEnvelope(conn, env); err != nil {
		return fmt.Errorf("transport: send %s: %w", addr, err)
	}
	return nil
}

func (t *TCP) dropConn(addr string, conn net.Conn) {
	t.mu.Lock()
	if t.conns[addr] == conn {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	_ = conn.Close()
}

// Shutdown gracefully stops the endpoint: it stops accepting and
// dispatching, waits for in-flight handlers to return until ctx is done,
// then hard-closes every connection and joins the background goroutines.
// The drain duration is recorded in
// coralpie_transport_shutdown_drain_seconds.
func (t *TCP) Shutdown(ctx context.Context) error {
	start := time.Now()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	m := t.m
	t.mu.Unlock()

	lnErr := t.ln.Close() // no new inbound connections

	// Drain in-flight handlers, bounded by ctx.
	drained := make(chan struct{})
	go func() {
		t.handlerWG.Wait()
		close(drained)
	}()
	var drainErr error
	select {
	case <-drained:
	case <-ctx.Done():
		drainErr = fmt.Errorf("transport: shutdown drain: %w", ctx.Err())
		m.deadlineExceeded.Inc()
	}

	t.closeConnsAndJoin()
	m.drain.Observe(time.Since(start).Seconds())
	if drainErr != nil {
		return drainErr
	}
	if lnErr != nil && !errors.Is(lnErr, io.ErrClosedPipe) {
		return fmt.Errorf("transport: close listener: %w", lnErr)
	}
	return nil
}

// closeConnsAndJoin hard-closes every connection, cancels the handler
// context, and waits for the accept/read goroutines.
func (t *TCP) closeConnsAndJoin() {
	t.cancel()
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inbound))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.conns = make(map[string]net.Conn)
	t.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
}

// Close hard-stops the listener, closes every connection, and waits for
// the background goroutines to exit without draining handlers.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	err := t.ln.Close()
	t.closeConnsAndJoin()
	if err != nil && !errors.Is(err, io.ErrClosedPipe) {
		return fmt.Errorf("transport: close listener: %w", err)
	}
	return nil
}
