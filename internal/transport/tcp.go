package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// dialTimeout bounds outgoing connection establishment.
const dialTimeout = 5 * time.Second

// TCP is an Endpoint over real TCP sockets: a listener that decodes
// length-prefixed protocol envelopes, and a cache of outgoing connections
// that redials on failure. Handlers may be invoked concurrently (one
// goroutine per inbound connection) and must be safe for concurrent use.
type TCP struct {
	ln net.Listener

	mu      sync.Mutex
	handler Handler
	conns   map[string]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool
	m       *endpointMetrics

	wg sync.WaitGroup
}

var _ Endpoint = (*TCP)(nil)

// ListenTCP starts an endpoint listening on addr (use "127.0.0.1:0" for an
// ephemeral port).
func ListenTCP(addr string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		ln:      ln,
		conns:   make(map[string]net.Conn),
		inbound: make(map[net.Conn]struct{}),
		m:       newEndpointMetrics(nil, "tcp"),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Use re-homes the endpoint's telemetry onto reg (coralpie_transport_*
// with transport="tcp", plus per-peer send counters). Call before
// traffic flows; counts on the previous handles do not carry over.
func (t *TCP) Use(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = newEndpointMetrics(reg, "tcp")
}

// Addr returns the bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetHandler implements Endpoint.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		env, err := protocol.ReadEnvelope(conn)
		if err != nil {
			return // EOF, peer reset, or framing error: drop the connection
		}
		t.mu.Lock()
		h := t.handler
		m := t.m
		t.mu.Unlock()
		m.received.Inc()
		m.bytesIn.Add(int64(len(env.Payload)))
		if h != nil {
			m.delivered.Inc()
			h(env)
		}
	}
}

// Send writes the envelope to addr over a cached connection, dialing on
// demand. A stale cached connection is redialed once.
func (t *TCP) Send(addr string, env protocol.Envelope) error {
	err := t.send(addr, env)
	t.mu.Lock()
	m := t.m
	t.mu.Unlock()
	if err != nil {
		m.sendErrors.Inc()
	} else {
		m.sends.Inc()
		m.bytesOut.Add(int64(len(env.Payload)))
		t.mu.Lock()
		peer := m.peer("tcp", addr)
		t.mu.Unlock()
		if peer != nil {
			peer.Inc()
		}
	}
	return err
}

func (t *TCP) send(addr string, env protocol.Envelope) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	conn := t.conns[addr]
	m := t.m
	t.mu.Unlock()

	if conn != nil {
		if err := t.writeTo(conn, addr, env); err == nil {
			return nil
		}
		// Stale connection: drop it and redial below.
		t.dropConn(addr, conn)
	}

	m.redials.Inc()
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", addr, err)
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return ErrClosed
	}
	if existing, ok := t.conns[addr]; ok {
		// A concurrent Send won the dial race; reuse its connection.
		t.mu.Unlock()
		_ = conn.Close()
		if err := t.writeTo(existing, addr, env); err == nil {
			return nil
		}
		t.dropConn(addr, existing)
		return fmt.Errorf("transport: send %s: connection lost", addr)
	}
	t.conns[addr] = conn
	t.mu.Unlock()

	if err := t.writeTo(conn, addr, env); err != nil {
		t.dropConn(addr, conn)
		return err
	}
	return nil
}

// writeTo serializes writes per connection via the connection-map lock to
// keep frames from interleaving.
func (t *TCP) writeTo(conn net.Conn, addr string, env protocol.Envelope) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[addr] != conn && t.conns[addr] != nil {
		conn = t.conns[addr]
	}
	if err := protocol.WriteEnvelope(conn, env); err != nil {
		return fmt.Errorf("transport: send %s: %w", addr, err)
	}
	return nil
}

func (t *TCP) dropConn(addr string, conn net.Conn) {
	t.mu.Lock()
	if t.conns[addr] == conn {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	_ = conn.Close()
}

// Close stops the listener, closes every connection, and waits for the
// background goroutines to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inbound))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.conns = make(map[string]net.Conn)
	t.mu.Unlock()

	err := t.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	if err != nil && !errors.Is(err, io.ErrClosedPipe) {
		return fmt.Errorf("transport: close listener: %w", err)
	}
	return nil
}
