package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rpc"
)

// TCPConfig tunes a TCP endpoint's deadlines, dial-retry policy, and
// middleware. Zero values take the defaults documented per field.
type TCPConfig struct {
	// DialTimeout bounds one connection attempt (default 2s). The whole
	// dial-with-retry sequence is bounded by the Send context.
	DialTimeout time.Duration
	// SendTimeout is the Send budget applied when the caller's context
	// carries no deadline (default DefaultSendTimeout).
	SendTimeout time.Duration
	// DialBackoffBase is the first retry delay after a failed dial
	// (default 50ms). Subsequent delays double, with jitter.
	DialBackoffBase time.Duration
	// DialBackoffMax caps the retry delay (default 1s).
	DialBackoffMax time.Duration
	// IdleTimeout, when positive, is a read deadline applied to inbound
	// connections between envelopes; idle peers are dropped (they
	// reconnect transparently on their next Send). Zero disables it.
	IdleTimeout time.Duration
	// RetryBudget is how many times one Send may retry after a stale
	// cached connection fails (default 1, the historical redial-once
	// behavior; negative disables retries).
	RetryBudget int
	// ClientInterceptors are appended to the default outbound chain
	// (deadline, trace inject, metrics) ahead of the retry stage — e.g.
	// a faultinject middleware.
	ClientInterceptors []rpc.ClientInterceptor
	// ServerInterceptors wrap inbound handler dispatch, after trace
	// extraction.
	ServerInterceptors []rpc.ServerInterceptor
}

func (c *TCPConfig) applyDefaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = DefaultSendTimeout
	}
	if c.DialBackoffBase <= 0 {
		c.DialBackoffBase = 50 * time.Millisecond
	}
	if c.DialBackoffMax <= 0 {
		c.DialBackoffMax = time.Second
	}
}

// TCPConfigFromFlags maps the shared -rpc-* flag block onto a
// TCPConfig, so every binary tunes its transport the same way.
func TCPConfigFromFlags(f *rpc.Flags) TCPConfig {
	return TCPConfig{
		DialTimeout:     f.DialTimeout,
		SendTimeout:     f.CallTimeout,
		DialBackoffBase: f.BackoffBase,
		DialBackoffMax:  f.BackoffMax,
		RetryBudget:     f.RetryBudget,
	}
}

// TCP is an Endpoint over real TCP sockets: a listener that decodes
// length-prefixed protocol envelopes, and a cache of outgoing
// connections. Outbound sends and inbound dispatch both run through rpc
// interceptor chains (deadline, trace inject/extract, metrics, retry);
// the dial/redial policy is the shared rpc backoff. Handlers may be
// invoked concurrently (one goroutine per inbound connection) and must
// be safe for concurrent use; they receive a context cancelled at
// shutdown.
type TCP struct {
	ln  net.Listener
	cfg TCPConfig

	// ccall is the outbound chain bound once around transmit — per-call
	// chain assembly would allocate a closure per interceptor per send.
	ccall  rpc.Handler
	schain rpc.ServerInterceptor

	// rootCtx is passed to handlers; cancelled on Close/Shutdown so
	// in-flight handler work can stop promptly.
	rootCtx context.Context
	cancel  context.CancelFunc

	mu         sync.Mutex
	handler    Handler
	conns      map[string]net.Conn
	inbound    map[net.Conn]struct{}
	wdeadlines map[net.Conn]time.Time // last write deadline armed per conn
	closed     bool
	m          *endpointMetrics

	wg        sync.WaitGroup // accept + read loops
	handlerWG sync.WaitGroup // in-flight handler invocations
}

var _ Endpoint = (*TCP)(nil)

// ListenTCP starts an endpoint listening on addr (use "127.0.0.1:0" for an
// ephemeral port) with default deadlines.
func ListenTCP(addr string) (*TCP, error) {
	return ListenTCPConfig(addr, TCPConfig{})
}

// ListenTCPConfig starts an endpoint with explicit deadline/backoff/
// middleware tuning.
func ListenTCPConfig(addr string, cfg TCPConfig) (*TCP, error) {
	cfg.applyDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCP{
		ln:         ln,
		cfg:        cfg,
		rootCtx:    ctx,
		cancel:     cancel,
		conns:      make(map[string]net.Conn),
		inbound:    make(map[net.Conn]struct{}),
		wdeadlines: make(map[net.Conn]time.Time),
		m:          newEndpointMetrics(nil, "tcp"),
	}
	// Outbound chain, outermost first: default deadline, trace inject,
	// metrics (outside retry: a send that succeeds on a redial counts
	// once), user middleware, retry. The base handler is the socket
	// write itself.
	client := append([]rpc.ClientInterceptor{
		rpc.WithDefaultDeadline(cfg.SendTimeout),
		rpc.WithTraceInject(),
		t.countSend,
	}, cfg.ClientInterceptors...)
	client = append(client, rpc.WithRetry(rpc.RetryConfig{
		Budget:      cfg.RetryBudget,
		OnRetry:     func() { t.metric().retries.Inc() },
		OnExhausted: func() { t.metric().retryExhausted.Inc() },
	}))
	t.ccall = rpc.BindClient(t.transmit, client...)
	t.schain = rpc.ChainServer(append([]rpc.ServerInterceptor{rpc.WithTraceExtract()}, cfg.ServerInterceptors...)...)
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Use re-homes the endpoint's telemetry onto reg (coralpie_transport_*
// with transport="tcp", plus per-peer send counters). Call before
// traffic flows; counts on the previous handles do not carry over.
func (t *TCP) Use(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = newEndpointMetrics(reg, "tcp")
}

// metric returns the current telemetry handles.
func (t *TCP) metric() *endpointMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m
}

// Addr returns the bound listen address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetHandler implements Endpoint.
func (t *TCP) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		if t.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t.cfg.IdleTimeout))
		}
		env, err := protocol.ReadEnvelope(conn)
		if err != nil {
			return // EOF, peer reset, idle timeout, or framing error
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return // draining: stop dispatching new envelopes
		}
		h := t.handler
		m := t.m
		if h != nil {
			t.handlerWG.Add(1)
		}
		t.mu.Unlock()
		m.received.Inc()
		m.bytesIn.Add(int64(len(env.Payload)))
		if h != nil {
			m.delivered.Inc()
			t.dispatch(h, env)
			t.handlerWG.Done()
		}
	}
}

// dispatch runs one inbound envelope through the server chain (trace
// extraction plus any configured middleware) and into the handler.
func (t *TCP) dispatch(h Handler, env protocol.Envelope) {
	req := &rpc.Request{Method: string(env.Type), Body: &env, OneWay: true}
	_, _ = t.schain(t.rootCtx, req, func(ctx context.Context, r *rpc.Request) (*rpc.Response, error) {
		h(ctx, *r.Body.(*protocol.Envelope))
		return &rpc.Response{}, nil
	})
}

// Send writes the envelope to addr through the outbound middleware
// chain, over a cached connection, dialing on demand with the shared
// capped-backoff policy. The context bounds the whole operation;
// without a deadline, SendTimeout applies.
func (t *TCP) Send(ctx context.Context, addr string, env protocol.Envelope) error {
	req := &rpc.Request{Method: string(env.Type), Addr: addr, Body: &env, OneWay: true}
	_, err := t.ccall(ctx, req)
	return err
}

// countSend is the transport's metrics middleware: exactly one success
// or one error is counted per Send, whatever the retry stage below it
// does.
func (t *TCP) countSend(ctx context.Context, req *rpc.Request, next rpc.Handler) (*rpc.Response, error) {
	resp, err := next(ctx, req)
	m := t.metric()
	if err != nil {
		m.sendErrors.Inc()
		if rpc.IsDeadlineError(err) {
			m.deadlineExceeded.Inc()
		}
		return resp, err
	}
	env := req.Body.(*protocol.Envelope)
	m.sends.Inc()
	m.bytesOut.Add(int64(len(env.Payload)))
	t.mu.Lock()
	peer := m.peer("tcp", req.Addr)
	t.mu.Unlock()
	if peer != nil {
		peer.Inc()
	}
	return resp, nil
}

// transmit is the base handler under the outbound chain: one write
// attempt. A stale cached connection is dropped and the error marked
// retryable, so the retry stage redials; a failure on a fresh
// connection is terminal.
func (t *TCP) transmit(ctx context.Context, req *rpc.Request) (*rpc.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Delay > 0 {
		// Injected fault latency; consume it so retries don't pay twice.
		delay := req.Delay
		req.Delay = 0
		if err := rpc.Sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	addr := req.Addr
	env := *req.Body.(*protocol.Envelope)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	conn := t.conns[addr]
	t.mu.Unlock()

	if conn != nil {
		if err := t.writeTo(ctx, conn, addr, env); err != nil {
			t.dropConn(addr, conn)
			return nil, rpc.MarkRetryable(err)
		}
		return &rpc.Response{}, nil
	}

	conn, err := t.dial(ctx, addr)
	if err != nil {
		return nil, err
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[addr]; ok {
		// A concurrent Send won the dial race; reuse its connection.
		t.mu.Unlock()
		_ = conn.Close()
		if err := t.writeTo(ctx, existing, addr, env); err == nil {
			return &rpc.Response{}, nil
		}
		t.dropConn(addr, existing)
		return nil, fmt.Errorf("transport: send %s: connection lost", addr)
	}
	t.conns[addr] = conn
	t.mu.Unlock()

	if err := t.writeTo(ctx, conn, addr, env); err != nil {
		t.dropConn(addr, conn)
		return nil, err
	}
	return &rpc.Response{}, nil
}

// dial connects to addr through the shared jittered-backoff policy,
// counting every attempt in the redial counter and aborting when the
// endpoint closes mid-backoff.
func (t *TCP) dial(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: t.cfg.DialTimeout}
	return rpc.DialWithBackoff(ctx, addr,
		func(c context.Context) (net.Conn, error) { return d.DialContext(c, "tcp", addr) },
		rpc.BackoffConfig{Base: t.cfg.DialBackoffBase, Max: t.cfg.DialBackoffMax},
		rpc.DialHooks{
			OnAttempt: func() { t.metric().redials.Inc() },
			Abort: func() error {
				t.mu.Lock()
				closed := t.closed
				t.mu.Unlock()
				if closed {
					return ErrClosed
				}
				return nil
			},
		})
}

// writeTo serializes writes per connection via the connection-map lock to
// keep frames from interleaving. The write deadline comes from ctx, so a
// peer that accepts but never drains cannot block the caller forever.
func (t *TCP) writeTo(ctx context.Context, conn net.Conn, addr string, env protocol.Envelope) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[addr] != conn && t.conns[addr] != nil {
		conn = t.conns[addr]
	}
	t.armWriteDeadlineLocked(conn, ctx)
	if err := protocol.WriteEnvelope(conn, env); err != nil {
		return fmt.Errorf("transport: send %s: %w", addr, err)
	}
	return nil
}

// armWriteDeadlineLocked applies ctx's deadline to the socket with
// coarse granularity: the kernel deadline is re-armed only when the
// requested one is tighter than what is armed, or later by more than
// 1/8 of the remaining budget. Steady-state sends carry a rolling
// now+SendTimeout deadline that advances a few microseconds per call,
// so this skips the per-write deadline update on the hot path; the cost
// is that a write blocked on a dead peer may fail up to 12.5% of its
// budget early — never late.
func (t *TCP) armWriteDeadlineLocked(conn net.Conn, ctx context.Context) {
	deadline, ok := ctx.Deadline()
	cur, armed := t.wdeadlines[conn]
	if !ok {
		if armed {
			_ = conn.SetWriteDeadline(time.Time{})
			delete(t.wdeadlines, conn)
		}
		return
	}
	if armed && !deadline.Before(cur) && deadline.Sub(cur) <= time.Until(deadline)/8 {
		return
	}
	_ = conn.SetWriteDeadline(deadline)
	t.wdeadlines[conn] = deadline
}

func (t *TCP) dropConn(addr string, conn net.Conn) {
	t.mu.Lock()
	if t.conns[addr] == conn {
		delete(t.conns, addr)
	}
	delete(t.wdeadlines, conn)
	t.mu.Unlock()
	_ = conn.Close()
}

// Shutdown gracefully stops the endpoint: it stops accepting and
// dispatching, waits for in-flight handlers to return until ctx is done,
// then hard-closes every connection and joins the background goroutines.
// The drain duration is recorded in
// coralpie_transport_shutdown_drain_seconds.
func (t *TCP) Shutdown(ctx context.Context) error {
	start := time.Now()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	m := t.m
	t.mu.Unlock()

	lnErr := t.ln.Close() // no new inbound connections

	// Drain in-flight handlers, bounded by ctx.
	drained := make(chan struct{})
	go func() {
		t.handlerWG.Wait()
		close(drained)
	}()
	var drainErr error
	select {
	case <-drained:
	case <-ctx.Done():
		drainErr = fmt.Errorf("transport: shutdown drain: %w", ctx.Err())
		m.deadlineExceeded.Inc()
	}

	t.closeConnsAndJoin()
	m.drain.Observe(time.Since(start).Seconds())
	if drainErr != nil {
		return drainErr
	}
	if lnErr != nil && !errors.Is(lnErr, io.ErrClosedPipe) {
		return fmt.Errorf("transport: close listener: %w", lnErr)
	}
	return nil
}

// closeConnsAndJoin hard-closes every connection, cancels the handler
// context, and waits for the accept/read goroutines.
func (t *TCP) closeConnsAndJoin() {
	t.cancel()
	t.mu.Lock()
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inbound))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.conns = make(map[string]net.Conn)
	t.wdeadlines = make(map[net.Conn]time.Time)
	t.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
}

// Close hard-stops the listener, closes every connection, and waits for
// the background goroutines to exit without draining handlers.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	err := t.ln.Close()
	t.closeConnsAndJoin()
	if err != nil && !errors.Is(err, io.ErrClosedPipe) {
		return fmt.Errorf("transport: close listener: %w", err)
	}
	return nil
}
