package transport

import (
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

// TestTCPSendDeadlineStalledPeer covers the write path against a peer
// that accepts connections but never drains them: once the kernel
// buffers fill, Send must fail with a deadline error within the context
// budget instead of blocking forever.
func TestTCPSendDeadlineStalledPeer(t *testing.T) {
	// A raw listener that accepts and then ignores the connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var connMu sync.Mutex
	var conns []net.Conn
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			conns = append(conns, c) // hold the conn open, never read
			connMu.Unlock()
		}
	}()
	defer func() {
		_ = ln.Close()
		<-acceptDone
		connMu.Lock()
		defer connMu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
	}()

	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()

	// Big envelopes fill the socket buffers quickly. The payload must be
	// valid JSON (Envelope.Payload is a json.RawMessage).
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = 'a'
	}
	big[0], big[len(big)-1] = '"', '"'
	env := protocol.Envelope{Type: protocol.TypeRetire, Payload: big}

	start := time.Now()
	var sendErr error
	for i := 0; i < 32; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		sendErr = a.Send(ctx, ln.Addr().String(), env)
		cancel()
		if sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("sends to a never-draining peer kept succeeding; write path has no deadline")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	a.mu.Lock()
	deadlines := a.m.deadlineExceeded.Value()
	a.mu.Unlock()
	if deadlines == 0 {
		t.Errorf("deadlineExceeded counter = 0, want > 0 (err: %v)", sendErr)
	}
}

// TestTCPDialBackoffRidesOutRestart verifies the dialer retries with
// backoff: the destination's listener only appears after the first
// attempts have failed, and Send still succeeds within its context.
func TestTCPDialBackoffRidesOutRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()

	// Reserve an address, then free it so the first dials fail.
	tmp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := tmp.Addr().String()
	_ = tmp.Close()

	got := make(chan protocol.Envelope, 1)
	ready := make(chan *TCP, 1)
	go func() {
		time.Sleep(400 * time.Millisecond)
		b, err := ListenTCP(addr)
		if err != nil {
			return // port raced away; Send will fail and the test reports it
		}
		b.SetHandler(func(_ context.Context, env protocol.Envelope) { got <- env })
		ready <- b
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Send(ctx, addr, retireEnv(t, "late#1")); err != nil {
		t.Fatalf("send across delayed listener start: %v", err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered after backoff dial")
	}
	select {
	case b := <-ready:
		_ = b.Close()
	default:
	}
}

// TestTCPShutdownDrainsAndLeaksNoGoroutines asserts the graceful
// lifecycle: Shutdown waits for an in-flight handler, and after it
// returns no transport goroutines remain.
func TestTCPShutdownDrainsAndLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	handled := make(chan struct{})
	b.SetHandler(func(ctx context.Context, env protocol.Envelope) {
		close(entered)
		<-release
		close(handled)
	})
	if err := a.Send(context.Background(), b.Addr(), retireEnv(t, "x#1")); err != nil {
		t.Fatal(err)
	}
	<-entered

	// Shutdown must block on the in-flight handler, then finish.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- b.Shutdown(ctx)
	}()
	select {
	case <-done:
		t.Fatal("Shutdown returned while a handler was in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-handled
	if b.m.drain.Count() == 0 {
		t.Error("shutdown drain histogram recorded nothing")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// All transport goroutines must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines: before=%d after=%d\n%s", before, after, buf[:n])
	}
}

// TestTCPShutdownDeadlineForcesClose covers the hard-close fallback: a
// handler that never returns cannot hold Shutdown past its context.
func TestTCPShutdownDeadlineForcesClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	b.SetHandler(func(ctx context.Context, env protocol.Envelope) {
		close(entered)
		<-ctx.Done() // only the shutdown cancellation releases this handler
	})
	if err := a.Send(context.Background(), b.Addr(), retireEnv(t, "x#1")); err != nil {
		t.Fatal(err)
	}
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = b.Shutdown(ctx)
	if err == nil {
		t.Error("Shutdown should report the missed drain deadline")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("Shutdown took %v despite a 200ms drain deadline", elapsed)
	}
}
