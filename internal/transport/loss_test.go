package transport

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/protocol"
)

func TestSetLossRateValidation(t *testing.T) {
	bus := NewBus()
	if err := bus.SetLossRate(-0.1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative rate accepted")
	}
	if err := bus.SetLossRate(1.0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("rate 1.0 accepted")
	}
	if err := bus.SetLossRate(0.5, nil); err == nil {
		t.Error("missing rng accepted")
	}
	if err := bus.SetLossRate(0, nil); err != nil {
		t.Errorf("disabling loss: %v", err)
	}
}

func TestLossRateDropsApproximately(t *testing.T) {
	sim := des.New(time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC))
	bus := NewSimBus(sim, time.Millisecond)
	if err := bus.SetLossRate(0.3, rand.New(rand.NewSource(9))); err != nil {
		t.Fatal(err)
	}
	a, err := bus.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	b.SetHandler(func(context.Context, protocol.Envelope) { received++ })
	const n = 2000
	env, err := protocol.Seal(protocol.Retire{EventID: "x#1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := a.Send(context.Background(), "b", env); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	rate := float64(n-received) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("observed loss %v, want ~0.3", rate)
	}
	if bus.Dropped() != int64(n-received) {
		t.Errorf("Dropped() = %d, want %d", bus.Dropped(), n-received)
	}
}
