package transport

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// TestDroppedCounterConcurrent hammers Send from many goroutines while
// SetLossRate flips the loss model on and off and Dropped is polled —
// the exact interleaving the simulation harness produces when a sweep
// reconfigures loss mid-run. Run under -race; it also checks the
// counter-backed accounting: every message is either delivered or
// counted as dropped, with nothing lost twice.
func TestDroppedCounterConcurrent(t *testing.T) {
	bus := NewBus()
	reg := obs.NewRegistry()
	bus.Use(reg)

	sink, err := bus.Endpoint("sink")
	if err != nil {
		t.Fatal(err)
	}
	var deliveredMu sync.Mutex
	delivered := 0
	sink.SetHandler(func(context.Context, protocol.Envelope) {
		deliveredMu.Lock()
		delivered++
		deliveredMu.Unlock()
	})

	env, err := protocol.Seal(protocol.Retire{EventID: "x#1"})
	if err != nil {
		t.Fatal(err)
	}

	const (
		senders    = 8
		perSender  = 500
		totalSends = senders * perSender
	)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep, err := bus.Endpoint(string(rune('a' + s)))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perSender; i++ {
				if err := ep.Send(context.Background(), "sink", env); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	// Concurrently flip the loss model and poll the counter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			if err := bus.SetLossRate(0.5, rng); err != nil {
				t.Error(err)
				return
			}
			_ = bus.Dropped()
			if err := bus.SetLossRate(0, nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	deliveredMu.Lock()
	got := delivered
	deliveredMu.Unlock()
	dropped := bus.Dropped()
	if int64(got)+dropped != totalSends {
		t.Fatalf("delivered %d + dropped %d != sent %d", got, dropped, totalSends)
	}

	// Deterministic tail: with loss pinned at ~1, sends must be counted
	// as dropped, and the counter must move.
	if err := bus.SetLossRate(0.99, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	ep, err := bus.Endpoint("tail")
	if err != nil {
		t.Fatal(err)
	}
	const tail = 200
	for i := 0; i < tail; i++ {
		if err := ep.Send(context.Background(), "sink", env); err != nil {
			t.Fatal(err)
		}
	}
	deliveredMu.Lock()
	got = delivered
	deliveredMu.Unlock()
	dropped = bus.Dropped()
	if int64(got)+dropped != totalSends+tail {
		t.Fatalf("delivered %d + dropped %d != sent %d", got, dropped, totalSends+tail)
	}
	if dropped == 0 {
		t.Error("expected the loss model to drop at least one message")
	}

	// The registry-backed counters must agree with the bus's view.
	var lost, sends int64
	for _, fam := range reg.Snapshot().Families {
		switch fam.Name {
		case "coralpie_transport_lost_total":
			lost = fam.Metrics[0].Value
		case "coralpie_transport_sends_total":
			sends = fam.Metrics[0].Value
		}
	}
	if lost != dropped {
		t.Errorf("registry lost = %d, Dropped() = %d", lost, dropped)
	}
	if sends != totalSends+tail {
		t.Errorf("registry sends = %d, want %d", sends, totalSends+tail)
	}
}
