package topology

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Client is the camera-side half of topology management: it sends
// periodic heartbeats to the topology server and maintains the camera's
// MDCS table from pushed updates. It corresponds to the Connection
// Manager's server-facing duties in the paper's Figure 7.
type Client struct {
	cameraID   string
	serverAddr string
	position   geo.Point
	headingDeg float64
	ep         transport.Endpoint
	clk        clock.Clock

	mu       sync.Mutex
	version  int64
	table    map[geo.Direction][]protocol.CameraRef
	onUpdate func(version int64)

	stop chan struct{}
	done chan struct{}
}

// ClientConfig collects the identity a camera reports to the server.
type ClientConfig struct {
	CameraID   string
	ServerAddr string
	Position   geo.Point
	HeadingDeg float64
}

// NewClient builds a client that sends through ep (whose handler is owned
// by the caller — route TopologyUpdate envelopes to ApplyUpdate).
func NewClient(cfg ClientConfig, ep transport.Endpoint, clk clock.Clock) (*Client, error) {
	if cfg.CameraID == "" {
		return nil, fmt.Errorf("topology: camera id required")
	}
	if cfg.ServerAddr == "" {
		return nil, fmt.Errorf("topology: server address required")
	}
	if ep == nil || clk == nil {
		return nil, fmt.Errorf("topology: endpoint and clock required")
	}
	return &Client{
		cameraID:   cfg.CameraID,
		serverAddr: cfg.ServerAddr,
		position:   cfg.Position,
		headingDeg: cfg.HeadingDeg,
		ep:         ep,
		clk:        clk,
		table:      make(map[geo.Direction][]protocol.CameraRef),
	}, nil
}

// OnUpdate registers a callback invoked (outside the client lock) after
// each applied topology update.
func (c *Client) OnUpdate(fn func(version int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onUpdate = fn
}

// SendHeartbeat sends one heartbeat with the transport's default send
// timeout.
func (c *Client) SendHeartbeat() error {
	return c.SendHeartbeatContext(context.Background())
}

// SendHeartbeatContext sends one heartbeat to the topology server,
// bounded by ctx.
func (c *Client) SendHeartbeatContext(ctx context.Context) error {
	env, err := protocol.Seal(protocol.Heartbeat{
		CameraID:   c.cameraID,
		Position:   c.position,
		HeadingDeg: c.headingDeg,
		Addr:       c.ep.Addr(),
		Time:       c.clk.Now(),
	})
	if err != nil {
		return err
	}
	if err := c.ep.Send(ctx, c.serverAddr, env); err != nil {
		return fmt.Errorf("topology: heartbeat: %w", err)
	}
	return nil
}

// ApplyUpdate installs a pushed MDCS table, discarding stale versions.
func (c *Client) ApplyUpdate(u protocol.TopologyUpdate) {
	if u.CameraID != c.cameraID {
		return
	}
	c.mu.Lock()
	if u.Version <= c.version {
		c.mu.Unlock()
		return
	}
	c.version = u.Version
	table := make(map[geo.Direction][]protocol.CameraRef, len(u.MDCS))
	for dir, refs := range u.MDCS {
		table[dir] = append([]protocol.CameraRef(nil), refs...)
	}
	c.table = table
	fn := c.onUpdate
	c.mu.Unlock()
	if fn != nil {
		fn(u.Version)
	}
}

// Lookup returns the downstream cameras for a moving direction (a copy;
// empty when the direction has no downstream camera or no table arrived
// yet).
func (c *Client) Lookup(d geo.Direction) []protocol.CameraRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	refs := c.table[d]
	out := make([]protocol.CameraRef, len(refs))
	copy(out, refs)
	return out
}

// Table returns a copy of the whole MDCS table.
func (c *Client) Table() map[geo.Direction][]protocol.CameraRef {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[geo.Direction][]protocol.CameraRef, len(c.table))
	for dir, refs := range c.table {
		out[dir] = append([]protocol.CameraRef(nil), refs...)
	}
	return out
}

// Version returns the applied table version (0 before the first update).
func (c *Client) Version() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// CameraID returns the camera identity this client reports.
func (c *Client) CameraID() string { return c.cameraID }

// StartHeartbeats launches a real-time heartbeat loop that exits when
// ctx is cancelled (or on Close). Simulation harnesses call
// SendHeartbeat from a simulator ticker instead.
func (c *Client) StartHeartbeats(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("topology: heartbeat interval %v must be positive", interval)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return fmt.Errorf("topology: heartbeats already started")
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.heartbeatLoop(ctx, interval, c.stop, c.done)
	return nil
}

func (c *Client) heartbeatLoop(ctx context.Context, interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	// Send one immediately so registration does not wait a full interval.
	_ = c.SendHeartbeatContext(ctx)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			_ = c.SendHeartbeatContext(ctx)
		case <-ctx.Done():
			return
		case <-stop:
			return
		}
	}
}

// Close stops the heartbeat loop if one is running.
func (c *Client) Close() error {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}
