package topology

import (
	"context"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/protocol"
	"repro/internal/roadnet"
	"repro/internal/transport"
)

// TestMovingCameraReplacement exercises the moving-camera extension: a
// known camera whose heartbeat position drifts past the threshold is
// re-placed in the road graph and the affected peers are healed.
func TestMovingCameraReplacement(t *testing.T) {
	sim := des.New(epoch)
	bus := transport.NewSimBus(sim, time.Millisecond)
	graph, ids, err := roadnet.Corridor(4, 200, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := bus.Endpoint("srv")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultServerConfig()
	cfg.MoveThresholdMeters = 50
	srv, err := NewServer(graph, ep, clock.Func(sim.Time), cfg)
	if err != nil {
		t.Fatal(err)
	}

	posOf := func(i int) geo.Point {
		t.Helper()
		n, err := graph.Node(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		return n.Pos
	}

	// A static observer camera at node 0 and the mover at node 1.
	obs := registerClient(t, bus, sim, "obs", posOf(0))
	srv.HandleHeartbeat(protocol.Heartbeat{CameraID: "obs", Position: posOf(0), Addr: "obs", Time: sim.Time()})
	srv.HandleHeartbeat(protocol.Heartbeat{CameraID: "mover", Position: posOf(1), Addr: "mover", Time: sim.Time()})
	sim.RunFor(time.Second)

	place, err := graph.CameraPlaceOf("mover")
	if err != nil || place.AtNode != ids[1] {
		t.Fatalf("initial placement = %+v err %v", place, err)
	}
	if refs := obs.Lookup(geo.East); len(refs) != 1 || refs[0].ID != "mover" {
		t.Fatalf("obs east MDCS = %v", refs)
	}

	// Small drift below threshold: no re-placement.
	srv.HandleHeartbeat(protocol.Heartbeat{CameraID: "mover", Position: posOf(1).Lerp(posOf(2), 0.1), Addr: "mover", Time: sim.Time()})
	sim.RunFor(time.Second)
	place, err = graph.CameraPlaceOf("mover")
	if err != nil || place.AtNode != ids[1] {
		t.Fatalf("sub-threshold drift moved the camera: %+v", place)
	}

	// Large move to node 3.
	srv.HandleHeartbeat(protocol.Heartbeat{CameraID: "mover", Position: posOf(3), Addr: "mover", Time: sim.Time()})
	sim.RunFor(time.Second)
	place, err = graph.CameraPlaceOf("mover")
	if err != nil {
		t.Fatal(err)
	}
	if place.OnEdge() || place.AtNode != ids[3] {
		t.Errorf("post-move placement = %+v, want node %d", place, ids[3])
	}
	// The observer's MDCS still reaches the mover — now via the longer
	// path (the corridor has no other cameras).
	if refs := obs.Lookup(geo.East); len(refs) != 1 || refs[0].ID != "mover" {
		t.Errorf("obs east MDCS after move = %v", refs)
	}
}

// registerClient wires a topology client whose endpoint routes updates.
func registerClient(t *testing.T, bus *transport.Bus, sim *des.Simulator, id string, pos geo.Point) *Client {
	t.Helper()
	ep, err := bus.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{CameraID: id, ServerAddr: "srv", Position: pos}, ep, clock.Func(sim.Time))
	if err != nil {
		t.Fatal(err)
	}
	ep.SetHandler(func(_ context.Context, env protocol.Envelope) {
		msg, err := protocol.Open(env)
		if err != nil {
			return
		}
		if u, ok := msg.(protocol.TopologyUpdate); ok {
			cl.ApplyUpdate(u)
		}
	})
	return cl
}

// TestMovingCameraDisabledByDefault: without a threshold, position drift
// never re-places a camera.
func TestMovingCameraDisabledByDefault(t *testing.T) {
	sim := des.New(epoch)
	bus := transport.NewSimBus(sim, time.Millisecond)
	graph, ids, err := roadnet.Corridor(3, 200, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := bus.Endpoint("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(graph, ep, clock.Func(sim.Time), DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	n0, err := graph.Node(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	n2, err := graph.Node(ids[2])
	if err != nil {
		t.Fatal(err)
	}
	srv.HandleHeartbeat(protocol.Heartbeat{CameraID: "cam", Position: n0.Pos, Addr: "cam", Time: sim.Time()})
	srv.HandleHeartbeat(protocol.Heartbeat{CameraID: "cam", Position: n2.Pos, Addr: "cam", Time: sim.Time()})
	place, err := graph.CameraPlaceOf("cam")
	if err != nil || place.AtNode != ids[0] {
		t.Errorf("camera moved with the feature disabled: %+v err %v", place, err)
	}
}
