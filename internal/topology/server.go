// Package topology implements Coral-Pie's camera topology management
// (paper Sections 3.3 and 4.3): the cloud-hosted topology server that
// registers cameras from their heartbeats, detects failures by heartbeat
// loss, recomputes each camera's minimum downstream camera set (MDCS), and
// pushes updates to the affected cameras; and the camera-side client that
// sends heartbeats and maintains the local MDCS table.
package topology

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/roadnet"
	"repro/internal/transport"
)

// ServerConfig parameterizes the topology server.
type ServerConfig struct {
	// LivenessTimeout is how long a camera may be silent before the
	// server declares it failed. The paper observes recovery within 2x
	// the heartbeat interval, so the default pairs a 2x multiplier with
	// whatever heartbeat interval the deployment uses.
	LivenessTimeout time.Duration
	// SnapToNodeMeters is the radius within which a camera's reported
	// position is considered "at" an intersection; farther positions are
	// projected onto the nearest lane (paper Section 4.3).
	SnapToNodeMeters float64
	// MoveThresholdMeters, when positive, enables moving-camera support
	// (paper Section 2 footnote): a known camera whose heartbeat position
	// drifts farther than this is re-placed in the road graph and the
	// affected MDCS tables are recomputed. Zero disables re-placement.
	MoveThresholdMeters float64
	// Registry receives the server's telemetry (coralpie_topology_*):
	// the live-camera gauge, heartbeat counters and lag histogram,
	// liveness evictions, and MDCS pushes. Nil uses obs.Default().
	Registry *obs.Registry
}

// serverMetrics are the topology server's pre-resolved handles.
type serverMetrics struct {
	liveCameras   *obs.Gauge
	heartbeats    *obs.Counter
	registrations *obs.Counter
	evictions     *obs.Counter
	pushes        *obs.Counter
	pushErrors    *obs.Counter
	heartbeatLag  *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return serverMetrics{
		liveCameras: reg.Gauge("coralpie_topology_live_cameras",
			"cameras currently registered and within their liveness lease"),
		heartbeats: reg.Counter("coralpie_topology_heartbeats_total",
			"heartbeat messages processed"),
		registrations: reg.Counter("coralpie_topology_registrations_total",
			"new cameras placed in the road graph"),
		evictions: reg.Counter("coralpie_topology_evictions_total",
			"cameras removed after missing their liveness lease"),
		pushes: reg.Counter("coralpie_topology_pushes_total",
			"MDCS table updates pushed to cameras"),
		pushErrors: reg.Counter("coralpie_topology_push_errors_total",
			"MDCS pushes that failed to send"),
		heartbeatLag: reg.Histogram("coralpie_topology_heartbeat_lag_seconds",
			"gap between successive heartbeats of a registered camera", nil),
	}
}

// DefaultServerConfig pairs a 2-second heartbeat with a 2x liveness
// multiplier.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		LivenessTimeout:  4 * time.Second,
		SnapToNodeMeters: 30,
	}
}

// camState is the server's view of one registered camera.
type camState struct {
	addr      string
	heading   float64
	position  geo.Point
	lastSeen  time.Time
	version   int64
	lastTable map[geo.Direction][]protocol.CameraRef
}

// Server is the camera topology server. It is driven by incoming
// heartbeat envelopes plus periodic CheckLiveness calls (from a goroutine
// in real deployments, from a simulator ticker in experiments).
type Server struct {
	cfg ServerConfig
	clk clock.Clock
	ep  transport.Endpoint
	m   serverMetrics

	mu    sync.Mutex
	graph *roadnet.Graph
	cams  map[string]*camState

	stop chan struct{}
	done chan struct{}
}

// NewServer wraps a road-network graph (which the server takes ownership
// of; install no cameras beforehand) and a transport endpoint to push
// updates through. The endpoint's handler is installed by this call.
func NewServer(graph *roadnet.Graph, ep transport.Endpoint, clk clock.Clock, cfg ServerConfig) (*Server, error) {
	if graph == nil || ep == nil || clk == nil {
		return nil, fmt.Errorf("topology: graph, endpoint and clock are required")
	}
	if cfg.LivenessTimeout <= 0 {
		return nil, fmt.Errorf("topology: liveness timeout %v must be positive", cfg.LivenessTimeout)
	}
	if cfg.SnapToNodeMeters < 0 {
		return nil, fmt.Errorf("topology: snap radius %v must be non-negative", cfg.SnapToNodeMeters)
	}
	s := &Server{
		cfg:   cfg,
		clk:   clk,
		ep:    ep,
		m:     newServerMetrics(cfg.Registry),
		graph: graph,
		cams:  make(map[string]*camState),
	}
	ep.SetHandler(s.handleEnvelope)
	return s, nil
}

func (s *Server) handleEnvelope(ctx context.Context, env protocol.Envelope) {
	msg, err := protocol.Open(env)
	if err != nil {
		return // drop undecodable messages
	}
	if hb, ok := msg.(protocol.Heartbeat); ok {
		s.HandleHeartbeatContext(ctx, hb)
	}
}

// HandleHeartbeat registers a new camera or renews an existing lease
// with the transport's default push timeout.
func (s *Server) HandleHeartbeat(hb protocol.Heartbeat) {
	s.HandleHeartbeatContext(context.Background(), hb)
}

// HandleHeartbeatContext registers a new camera or renews an existing
// lease. Registration places the camera in the road graph (snapping to
// the nearest intersection or projecting onto the nearest lane),
// recomputes the MDCS of every affected camera, and pushes updates. The
// resulting MDCS pushes are bounded by ctx.
func (s *Server) HandleHeartbeatContext(ctx context.Context, hb protocol.Heartbeat) {
	if hb.CameraID == "" {
		return
	}
	now := s.clk.Now()
	s.m.heartbeats.Inc()

	s.mu.Lock()
	cam, known := s.cams[hb.CameraID]
	if known {
		s.m.heartbeatLag.ObserveDuration(now.Sub(cam.lastSeen))
		cam.lastSeen = now
		cam.addr = hb.Addr
		cam.heading = hb.HeadingDeg
		moved := s.cfg.MoveThresholdMeters > 0 &&
			cam.position.DistanceMeters(hb.Position) > s.cfg.MoveThresholdMeters
		if !moved {
			s.mu.Unlock()
			return
		}
		// Moving camera: re-place it and heal the affected tables.
		_ = s.graph.RemoveCamera(hb.CameraID)
		if err := s.placeLocked(hb); err != nil {
			// The new position is unplaceable; drop the camera entirely
			// so the rest of the network routes around it.
			delete(s.cams, hb.CameraID)
			s.m.liveCameras.Set(int64(len(s.cams)))
			pushes := s.recomputeLocked()
			s.mu.Unlock()
			s.push(ctx, pushes)
			return
		}
		cam.position = hb.Position
		pushes := s.recomputeLocked()
		s.mu.Unlock()
		s.push(ctx, pushes)
		return
	}
	// New camera: place it in the graph.
	if err := s.placeLocked(hb); err != nil {
		s.mu.Unlock()
		return // unplaceable (e.g. intersection already equipped)
	}
	s.cams[hb.CameraID] = &camState{
		addr:     hb.Addr,
		heading:  hb.HeadingDeg,
		position: hb.Position,
		lastSeen: now,
	}
	s.m.registrations.Inc()
	s.m.liveCameras.Set(int64(len(s.cams)))
	pushes := s.recomputeLocked()
	s.mu.Unlock()

	s.push(ctx, pushes)
}

// placeLocked inserts a camera into the road graph from its reported
// position. Caller holds s.mu.
func (s *Server) placeLocked(hb protocol.Heartbeat) error {
	nearest, err := s.graph.NearestNode(hb.Position)
	if err != nil {
		return err
	}
	node, err := s.graph.Node(nearest)
	if err != nil {
		return err
	}
	if node.Pos.DistanceMeters(hb.Position) <= s.cfg.SnapToNodeMeters && node.CameraID == "" {
		return s.graph.PlaceCameraAtNode(hb.CameraID, nearest)
	}
	from, to, frac, err := s.nearestEdgeLocked(hb.Position)
	if err != nil {
		return err
	}
	return s.graph.PlaceCameraOnEdge(hb.CameraID, from, to, frac)
}

// nearestEdgeLocked projects a position onto the closest lane and returns
// the lane plus the clamped fractional position. Caller holds s.mu.
func (s *Server) nearestEdgeLocked(pos geo.Point) (roadnet.NodeID, roadnet.NodeID, float64, error) {
	bestDist := -1.0
	var bestFrom, bestTo roadnet.NodeID
	bestFrac := 0.5
	for _, from := range s.graph.NodeIDs() {
		fromNode, err := s.graph.Node(from)
		if err != nil {
			continue
		}
		for _, to := range s.graph.OutNeighbors(from) {
			toNode, err := s.graph.Node(to)
			if err != nil {
				continue
			}
			frac, dist := projectOntoSegment(pos, fromNode.Pos, toNode.Pos)
			if bestDist < 0 || dist < bestDist {
				bestDist, bestFrom, bestTo, bestFrac = dist, from, to, frac
			}
		}
	}
	if bestDist < 0 {
		return 0, 0, 0, fmt.Errorf("topology: no lanes to place camera on")
	}
	// Clamp away from the endpoints so the placement is a valid edge
	// fraction.
	if bestFrac < 0.05 {
		bestFrac = 0.05
	}
	if bestFrac > 0.95 {
		bestFrac = 0.95
	}
	return bestFrom, bestTo, bestFrac, nil
}

// projectOntoSegment returns the fractional position of the projection of
// p onto segment ab and the distance from p to that projection, using a
// local planar approximation.
func projectOntoSegment(p, a, b geo.Point) (frac, distMeters float64) {
	// Planar coordinates in meters relative to a.
	ax, ay := 0.0, 0.0
	bx := a.DistanceMeters(geo.Point{Lat: a.Lat, Lon: b.Lon})
	if b.Lon < a.Lon {
		bx = -bx
	}
	by := a.DistanceMeters(geo.Point{Lat: b.Lat, Lon: a.Lon})
	if b.Lat < a.Lat {
		by = -by
	}
	px := a.DistanceMeters(geo.Point{Lat: a.Lat, Lon: p.Lon})
	if p.Lon < a.Lon {
		px = -px
	}
	py := a.DistanceMeters(geo.Point{Lat: p.Lat, Lon: a.Lon})
	if p.Lat < a.Lat {
		py = -py
	}
	dx, dy := bx-ax, by-ay
	lenSq := dx*dx + dy*dy
	if lenSq == 0 {
		return 0, math.Hypot(px-ax, py-ay)
	}
	t := ((px-ax)*dx + (py-ay)*dy) / lenSq
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	qx, qy := ax+t*dx, ay+t*dy
	return t, math.Hypot(px-qx, py-qy)
}

// CheckLiveness scans leases with the transport's default push timeout.
// See CheckLivenessContext.
func (s *Server) CheckLiveness() []string {
	return s.CheckLivenessContext(context.Background())
}

// CheckLivenessContext scans leases against the clock and removes
// cameras whose lease expired, recomputing and pushing MDCS updates to
// the affected survivors (pushes bounded by ctx). It returns the IDs of
// the cameras it removed.
func (s *Server) CheckLivenessContext(ctx context.Context) []string {
	now := s.clk.Now()

	s.mu.Lock()
	var dead []string
	for id, cam := range s.cams {
		if now.Sub(cam.lastSeen) > s.cfg.LivenessTimeout {
			dead = append(dead, id)
		}
	}
	sort.Strings(dead)
	for _, id := range dead {
		delete(s.cams, id)
		_ = s.graph.RemoveCamera(id) // the camera is known to be placed
	}
	var pushes []pendingPush
	if len(dead) > 0 {
		s.m.evictions.Add(int64(len(dead)))
		s.m.liveCameras.Set(int64(len(s.cams)))
		pushes = s.recomputeLocked()
	}
	s.mu.Unlock()

	s.push(ctx, pushes)
	return dead
}

// pendingPush is an update ready to send once the lock is released.
type pendingPush struct {
	addr   string
	update protocol.TopologyUpdate
}

// recomputeLocked recomputes every camera's MDCS table, bumps versions
// for those that changed, and returns the updates to push. Cameras are
// visited in sorted ID order so the push sequence — and therefore the
// delivery interleaving on a discrete-event simulator — is a pure
// function of the camera set, not of map iteration. Caller holds s.mu.
func (s *Server) recomputeLocked() []pendingPush {
	ids := make([]string, 0, len(s.cams))
	for id := range s.cams {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var pushes []pendingPush
	for _, id := range ids {
		cam := s.cams[id]
		raw, err := s.graph.MDCSAll(id)
		if err != nil {
			continue
		}
		table := make(map[geo.Direction][]protocol.CameraRef, len(raw))
		for dir, peers := range raw {
			refs := make([]protocol.CameraRef, 0, len(peers))
			for _, peer := range peers {
				ref := protocol.CameraRef{ID: peer}
				if pc, ok := s.cams[peer]; ok {
					ref.Addr = pc.addr
				}
				refs = append(refs, ref)
			}
			table[dir] = refs
		}
		if tablesEqual(cam.lastTable, table) {
			continue
		}
		cam.version++
		cam.lastTable = table
		pushes = append(pushes, pendingPush{
			addr: cam.addr,
			update: protocol.TopologyUpdate{
				CameraID: id,
				Version:  cam.version,
				MDCS:     table,
			},
		})
	}
	return pushes
}

func tablesEqual(a, b map[geo.Direction][]protocol.CameraRef) bool {
	if len(a) != len(b) {
		return false
	}
	for dir, av := range a {
		bv, ok := b[dir]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func (s *Server) push(ctx context.Context, pushes []pendingPush) {
	for _, p := range pushes {
		if p.addr == "" {
			continue
		}
		env, err := protocol.Seal(p.update)
		if err != nil {
			continue
		}
		// Unreachable cameras are handled by liveness; count the failure.
		// The transport applies its default send timeout when ctx has no
		// deadline, so a dead camera cannot stall the push fan-out.
		if err := s.ep.Send(ctx, p.addr, env); err != nil {
			s.m.pushErrors.Inc()
		} else {
			s.m.pushes.Inc()
		}
	}
}

// Cameras returns the IDs of the currently registered cameras in sorted
// order, for observability.
func (s *Server) Cameras() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.cams))
	for id := range s.cams {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// MDCSVersion returns the last pushed table version for a camera (0 if
// none).
func (s *Server) MDCSVersion(cameraID string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cam, ok := s.cams[cameraID]; ok {
		return cam.version
	}
	return 0
}

// Start launches a background liveness-check loop for real deployments;
// the loop exits when ctx is cancelled (or on Shutdown/Close). Use
// CheckLiveness directly when driving the server from a simulator.
func (s *Server) Start(ctx context.Context, checkInterval time.Duration) error {
	if checkInterval <= 0 {
		return fmt.Errorf("topology: check interval %v must be positive", checkInterval)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return fmt.Errorf("topology: server already started")
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.livenessLoop(ctx, checkInterval, s.stop, s.done)
	return nil
}

func (s *Server) livenessLoop(ctx context.Context, interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.CheckLivenessContext(ctx)
		case <-ctx.Done():
			return
		case <-stop:
			return
		}
	}
}

// Shutdown stops the liveness loop (if started) and waits for it to
// exit, bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return nil
	}
	close(stop)
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("topology: shutdown: %w", ctx.Err())
	}
}

// Close stops the liveness loop (if started) and waits for it to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}
