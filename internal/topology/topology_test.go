package topology

import (
	"context"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/protocol"
	"repro/internal/roadnet"
	"repro/internal/transport"
)

var epoch = time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)

// harness wires a topology server and n camera clients over a simulated
// bus with 5 ms network latency.
type harness struct {
	t       *testing.T
	sim     *des.Simulator
	bus     *transport.Bus
	server  *Server
	graph   *roadnet.Graph
	sites   []roadnet.NodeID
	clients map[string]*Client
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	sim := des.New(epoch)
	bus := transport.NewSimBus(sim, 5*time.Millisecond)
	graph, sites, err := roadnet.Campus()
	if err != nil {
		t.Fatal(err)
	}
	ep, err := bus.Endpoint("topology-server")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(graph, ep, clock.Func(sim.Time), DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		t:       t,
		sim:     sim,
		bus:     bus,
		server:  srv,
		graph:   graph,
		sites:   sites,
		clients: make(map[string]*Client),
	}
}

// addCamera registers a client for the i-th campus site and returns it.
func (h *harness) addCamera(name string, site int) *Client {
	h.t.Helper()
	node, err := h.graph.Node(h.sites[site])
	if err != nil {
		h.t.Fatal(err)
	}
	ep, err := h.bus.Endpoint(name)
	if err != nil {
		h.t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{
		CameraID:   name,
		ServerAddr: "topology-server",
		Position:   node.Pos,
	}, ep, clock.Func(h.sim.Time))
	if err != nil {
		h.t.Fatal(err)
	}
	ep.SetHandler(func(_ context.Context, env protocol.Envelope) {
		msg, err := protocol.Open(env)
		if err != nil {
			return
		}
		if u, ok := msg.(protocol.TopologyUpdate); ok {
			cl.ApplyUpdate(u)
		}
	})
	h.clients[name] = cl
	return cl
}

func TestServerValidation(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("s")
	if err != nil {
		t.Fatal(err)
	}
	g := roadnet.NewGraph()
	if _, err := NewServer(nil, ep, clock.Real{}, DefaultServerConfig()); err == nil {
		t.Error("nil graph accepted")
	}
	bad := DefaultServerConfig()
	bad.LivenessTimeout = 0
	if _, err := NewServer(g, ep, clock.Real{}, bad); err == nil {
		t.Error("zero liveness timeout accepted")
	}
	bad = DefaultServerConfig()
	bad.SnapToNodeMeters = -1
	if _, err := NewServer(g, ep, clock.Real{}, bad); err == nil {
		t.Error("negative snap radius accepted")
	}
}

func TestClientValidation(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(ClientConfig{ServerAddr: "s"}, ep, clock.Real{}); err == nil {
		t.Error("missing camera id accepted")
	}
	if _, err := NewClient(ClientConfig{CameraID: "c"}, ep, clock.Real{}); err == nil {
		t.Error("missing server addr accepted")
	}
	if _, err := NewClient(ClientConfig{CameraID: "c", ServerAddr: "s"}, nil, clock.Real{}); err == nil {
		t.Error("nil endpoint accepted")
	}
}

func TestRegistrationPushesMDCS(t *testing.T) {
	h := newHarness(t)
	// Three cameras in a row on the campus grid's top row (sites 0,1,2).
	a := h.addCamera("camA", 0)
	b := h.addCamera("camB", 1)
	c := h.addCamera("camC", 2)
	for _, cl := range []*Client{a, b, c} {
		if err := cl.SendHeartbeat(); err != nil {
			t.Fatal(err)
		}
		h.sim.RunFor(20 * time.Millisecond)
	}
	h.sim.RunFor(100 * time.Millisecond)

	// camB sits between camA and camC: east -> camC, west -> camA.
	refs := b.Lookup(geo.East)
	if len(refs) != 1 || refs[0].ID != "camC" {
		t.Errorf("camB east MDCS = %v", refs)
	}
	refs = b.Lookup(geo.West)
	if len(refs) != 1 || refs[0].ID != "camA" {
		t.Errorf("camB west MDCS = %v", refs)
	}
	if refs[0].Addr != "camA" {
		t.Errorf("MDCS ref should carry the peer address, got %q", refs[0].Addr)
	}
	if b.Version() == 0 {
		t.Error("client never received an update")
	}
}

func TestNewCameraUpdatesAffectedPeers(t *testing.T) {
	h := newHarness(t)
	a := h.addCamera("camA", 0)
	c := h.addCamera("camC", 2)
	if err := a.SendHeartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := c.SendHeartbeat(); err != nil {
		t.Fatal(err)
	}
	h.sim.RunFor(100 * time.Millisecond)
	if refs := a.Lookup(geo.East); len(refs) != 1 || refs[0].ID != "camC" {
		t.Fatalf("before: camA east = %v", refs)
	}

	// camB joins between them; camA's east MDCS must switch to camB.
	b := h.addCamera("camB", 1)
	if err := b.SendHeartbeat(); err != nil {
		t.Fatal(err)
	}
	h.sim.RunFor(100 * time.Millisecond)
	if refs := a.Lookup(geo.East); len(refs) != 1 || refs[0].ID != "camB" {
		t.Errorf("after join: camA east = %v", refs)
	}
	if refs := b.Lookup(geo.East); len(refs) != 1 || refs[0].ID != "camC" {
		t.Errorf("camB east = %v", refs)
	}
}

func TestHeartbeatLossTriggersHealing(t *testing.T) {
	h := newHarness(t)
	a := h.addCamera("camA", 0)
	b := h.addCamera("camB", 1)
	c := h.addCamera("camC", 2)

	// Heartbeats every 2 s from every camera; liveness timeout is 4 s.
	for _, cl := range []*Client{a, b, c} {
		cl := cl
		h.sim.Every(2*time.Second, func() { _ = cl.SendHeartbeat() })
	}
	h.sim.Every(time.Second, func() { h.server.CheckLiveness() })
	h.sim.RunFor(5 * time.Second)
	if refs := a.Lookup(geo.East); len(refs) != 1 || refs[0].ID != "camB" {
		t.Fatalf("setup: camA east = %v", refs)
	}

	// Kill camB: partition it so its heartbeats stop.
	h.bus.Partition("camB")
	killedAt := h.sim.Now()
	h.sim.RunFor(10 * time.Second)

	if refs := a.Lookup(geo.East); len(refs) != 1 || refs[0].ID != "camC" {
		t.Errorf("after failure: camA east = %v, want camC", refs)
	}
	if got := h.server.Cameras(); len(got) != 2 {
		t.Errorf("server still tracks %v", got)
	}
	_ = killedAt // recovery-time measurement is exercised by the Figure 11 experiment
}

func TestStaleUpdateDiscarded(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("cam")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{CameraID: "cam", ServerAddr: "srv"}, ep, clock.Fixed{T: epoch})
	if err != nil {
		t.Fatal(err)
	}
	cl.ApplyUpdate(protocol.TopologyUpdate{CameraID: "cam", Version: 5, MDCS: map[geo.Direction][]protocol.CameraRef{
		geo.East: {{ID: "x"}},
	}})
	cl.ApplyUpdate(protocol.TopologyUpdate{CameraID: "cam", Version: 3, MDCS: map[geo.Direction][]protocol.CameraRef{
		geo.East: {{ID: "stale"}},
	}})
	if refs := cl.Lookup(geo.East); len(refs) != 1 || refs[0].ID != "x" {
		t.Errorf("stale update applied: %v", refs)
	}
	// Updates addressed to another camera are ignored.
	cl.ApplyUpdate(protocol.TopologyUpdate{CameraID: "other", Version: 9})
	if cl.Version() != 5 {
		t.Errorf("version = %d", cl.Version())
	}
}

func TestOnUpdateCallback(t *testing.T) {
	bus := transport.NewBus()
	ep, err := bus.Endpoint("cam")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{CameraID: "cam", ServerAddr: "srv"}, ep, clock.Fixed{T: epoch})
	if err != nil {
		t.Fatal(err)
	}
	var versions []int64
	cl.OnUpdate(func(v int64) { versions = append(versions, v) })
	cl.ApplyUpdate(protocol.TopologyUpdate{CameraID: "cam", Version: 1})
	cl.ApplyUpdate(protocol.TopologyUpdate{CameraID: "cam", Version: 2})
	cl.ApplyUpdate(protocol.TopologyUpdate{CameraID: "cam", Version: 2}) // duplicate
	if len(versions) != 2 || versions[0] != 1 || versions[1] != 2 {
		t.Errorf("callback versions = %v", versions)
	}
}

func TestEdgeCameraPlacementFromHeartbeat(t *testing.T) {
	// A camera reporting a position mid-lane (far from any intersection)
	// must be placed on the lane.
	sim := des.New(epoch)
	bus := transport.NewSimBus(sim, time.Millisecond)
	g, ids, err := roadnet.Corridor(2, 400, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	nodeA, err := g.Node(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := g.Node(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	ep, err := bus.Endpoint("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(g, ep, clock.Func(sim.Time), DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	mid := nodeA.Pos.Lerp(nodeB.Pos, 0.5)
	srv.HandleHeartbeat(protocol.Heartbeat{CameraID: "midcam", Position: mid, Addr: "midcam", Time: sim.Time()})
	place, err := g.CameraPlaceOf("midcam")
	if err != nil {
		t.Fatalf("camera not placed: %v", err)
	}
	if !place.OnEdge() {
		t.Errorf("mid-lane camera placed at node: %+v", place)
	}
	if place.Frac < 0.4 || place.Frac > 0.6 {
		t.Errorf("frac = %v, want ~0.5", place.Frac)
	}
}

func TestRealTimeLoops(t *testing.T) {
	// Smoke-test the goroutine-based heartbeat and liveness loops with
	// the real clock over a short wall-clock window.
	bus := transport.NewBus()
	g, ids, err := roadnet.Corridor(3, 100, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	sep, err := bus.Endpoint("srv")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{LivenessTimeout: 200 * time.Millisecond, SnapToNodeMeters: 30}
	srv, err := NewServer(g, sep, clock.Real{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background(), 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background(), 50*time.Millisecond); err == nil {
		t.Error("double start accepted")
	}
	defer func() { _ = srv.Close() }()

	node, err := g.Node(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	cep, err := bus.Endpoint("cam")
	if err != nil {
		t.Fatal(err)
	}
	cep.SetHandler(func(context.Context, protocol.Envelope) {})
	cl, err := NewClient(ClientConfig{CameraID: "cam", ServerAddr: "srv", Position: node.Pos}, cep, clock.Real{})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.StartHeartbeats(context.Background(), 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Cameras()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if len(srv.Cameras()) != 1 {
		t.Fatal("camera never registered")
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	// After heartbeats stop, liveness expires the camera.
	deadline = time.Now().Add(3 * time.Second)
	for len(srv.Cameras()) != 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.Cameras(); len(got) != 0 {
		t.Errorf("camera not expired: %v", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMDCSVersionAccessor(t *testing.T) {
	h := newHarness(t)
	if v := h.server.MDCSVersion("nope"); v != 0 {
		t.Errorf("unknown camera version = %d", v)
	}
	a := h.addCamera("camA", 0)
	b := h.addCamera("camB", 1)
	_ = a.SendHeartbeat()
	_ = b.SendHeartbeat()
	h.sim.RunFor(time.Second)
	if v := h.server.MDCSVersion("camA"); v == 0 {
		t.Error("camA should have a pushed version")
	}
}
