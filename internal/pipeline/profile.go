// Package pipeline models Coral-Pie's per-camera continuous processing:
// the three-stage pipeline on RPi 1 (fetch, load+resize, inference) and
// the three-stage pipeline on RPi 2 (load, track+extract, communicate/
// re-identify/store) from paper Figures 5 and 6. It provides the Table-1
// device timing profile, a deterministic tandem-queue timing model used to
// reproduce the paper's throughput numbers, and a generic concurrent
// pipeline runner used by the real camera node.
package pipeline

import "time"

// DeviceProfile holds the measured sub-task service times for one
// camera's dedicated hardware. Field values default to the paper's
// Table 1 (Raspberry Pi 3B+ / Coral EdgeTPU).
type DeviceProfile struct {
	// RPi 1 sub-tasks.
	Fetch         time.Duration
	Load          time.Duration
	Resize        time.Duration
	Inference     time.Duration
	PostInference time.Duration
	RPi1ToRPi2    time.Duration

	// RPi 2 sub-tasks.
	LoadRPi2          time.Duration
	Track             time.Duration
	FeatureExtraction time.Duration
	Communication     time.Duration
	VehicleReid       time.Duration

	// Off-critical-path storage sub-tasks.
	TrajStoreVertex time.Duration
	TrajStoreEdge   time.Duration
	FrameStorage    time.Duration
}

// PaperRPi3Profile returns the paper's Table-1 latency summary.
func PaperRPi3Profile() DeviceProfile {
	return DeviceProfile{
		Fetch:             67 * time.Millisecond,
		Load:              94 * time.Millisecond,
		Resize:            2 * time.Millisecond,
		Inference:         93 * time.Millisecond,
		PostInference:     1 * time.Millisecond,
		RPi1ToRPi2:        1 * time.Millisecond,
		LoadRPi2:          94 * time.Millisecond, // same Load sub-task as RPi 1 (Section 4.1.2)
		Track:             10 * time.Millisecond,
		FeatureExtraction: 4 * time.Millisecond,
		Communication:     2 * time.Millisecond,
		VehicleReid:       12 * time.Millisecond,
		TrajStoreVertex:   28 * time.Millisecond,
		TrajStoreEdge:     30 * time.Millisecond,
		FrameStorage:      1 * time.Millisecond,
	}
}

// StageSpec is one pipeline stage in the timing model.
type StageSpec struct {
	Name    string
	Service time.Duration
}

// RPi1Stages maps the profile onto the paper's three-stage RPi 1 pipeline
// (Figure 5): fetch; load+resize; inference+post-processing.
func (p DeviceProfile) RPi1Stages() []StageSpec {
	return []StageSpec{
		{Name: "fetch", Service: p.Fetch},
		{Name: "load+resize", Service: p.Load + p.Resize},
		{Name: "inference+post", Service: p.Inference + p.PostInference + p.RPi1ToRPi2},
	}
}

// RPi2Stages maps the profile onto the paper's three-stage RPi 2 pipeline
// (Figure 6): load; track+extract; communication/re-id/storage client.
func (p DeviceProfile) RPi2Stages() []StageSpec {
	return []StageSpec{
		{Name: "load", Service: p.LoadRPi2},
		{Name: "track+extract", Service: p.Track + p.FeatureExtraction},
		{Name: "comm+reid+store", Service: p.Communication + p.VehicleReid + p.FrameStorage},
	}
}

// DualDeviceStages is the full six-stage pipelined mapping across both
// devices used by the prototype.
func (p DeviceProfile) DualDeviceStages() []StageSpec {
	return append(p.RPi1Stages(), p.RPi2Stages()...)
}

// SingleDeviceStages models the rejected design (Section 4.1.5) of
// mapping every sub-task onto one RPi: the same work but the pipeline
// cannot overlap stages across devices, so all sub-tasks contend on one
// processor — modeled as a single stage whose service time is the sum of
// every critical-path sub-task.
func (p DeviceProfile) SingleDeviceStages() []StageSpec {
	total := p.Fetch + p.Load + p.Resize + p.Inference + p.PostInference +
		p.Track + p.FeatureExtraction + p.Communication + p.VehicleReid + p.FrameStorage
	return []StageSpec{{Name: "single-rpi", Service: total}}
}

// CriticalPathTotal sums every critical-path sub-task, i.e. the per-frame
// cost of a naive sequential execution.
func (p DeviceProfile) CriticalPathTotal() time.Duration {
	var total time.Duration
	for _, s := range p.DualDeviceStages() {
		total += s.Service
	}
	return total
}
