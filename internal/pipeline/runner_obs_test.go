package pipeline

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// snapshotValue digs one counter/gauge value out of a registry snapshot.
func snapshotValue(t *testing.T, reg *obs.Registry, name string, labels ...obs.Label) (int64, bool) {
	t.Helper()
	for _, fam := range reg.Snapshot().Families {
		if fam.Name != name {
			continue
		}
	metric:
		for _, m := range fam.Metrics {
			for _, want := range labels {
				found := false
				for _, l := range m.Labels {
					if l == want {
						found = true
						break
					}
				}
				if !found {
					continue metric
				}
			}
			return m.Value, true
		}
	}
	return 0, false
}

func TestRunnerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	boom := errors.New("boom")
	r, err := NewRunner(RunnerConfig[int]{
		Obs:       reg,
		ObsLabels: []string{"camera", "cam0"},
		Clock:     clock.Fixed{T: time.Unix(1, 0)},
	},
		Stage[int]{Name: "detect", Proc: func(j int) error {
			if j == 2 {
				return boom
			}
			return nil
		}},
		Stage[int]{Name: "ingest", Proc: func(int) error { return nil }},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{1, 2, 3, 4} {
		if !r.Submit(j) {
			t.Fatalf("submit %d failed", j)
		}
	}
	r.Close()

	camLabel := obs.Label{Name: "camera", Value: "cam0"}
	if v, _ := snapshotValue(t, reg, "coralpie_pipeline_submitted_total", camLabel); v != 4 {
		t.Errorf("submitted = %d, want 4", v)
	}
	if v, _ := snapshotValue(t, reg, "coralpie_pipeline_completed_total", camLabel); v != 3 {
		t.Errorf("completed = %d, want 3", v)
	}
	if v, _ := snapshotValue(t, reg, "coralpie_pipeline_stage_errors_total",
		camLabel, obs.Label{Name: "stage", Value: "detect"}); v != 1 {
		t.Errorf("detect errors = %d, want 1", v)
	}
	if v, _ := snapshotValue(t, reg, "coralpie_pipeline_inflight", camLabel); v != 0 {
		t.Errorf("inflight after drain = %d, want 0", v)
	}
	// Per-stage service histograms exist and saw every job that reached
	// the stage: 4 at detect, 3 at ingest.
	for _, fam := range reg.Snapshot().Families {
		if fam.Name != "coralpie_pipeline_stage_seconds" {
			continue
		}
		for _, m := range fam.Metrics {
			want := uint64(4)
			for _, l := range m.Labels {
				if l.Name == "stage" && l.Value == "ingest" {
					want = 3
				}
			}
			if m.Count != want {
				t.Errorf("stage %v service count = %d, want %d", m.Labels, m.Count, want)
			}
		}
	}
}

func TestTrySubmitRejectionCounted(t *testing.T) {
	reg := obs.NewRegistry()
	block := make(chan struct{})
	r, err := NewRunner(RunnerConfig[int]{Obs: reg},
		Stage[int]{Name: "slow", Proc: func(int) error { <-block; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the stage (1 running) and the buffer (1 queued), then overflow.
	rejects := 0
	for i := 0; i < 8; i++ {
		if !r.TrySubmit(i) {
			rejects++
		}
	}
	if rejects == 0 {
		t.Fatal("expected at least one back-pressure rejection")
	}
	if v, _ := snapshotValue(t, reg, "coralpie_pipeline_rejected_total"); v != int64(rejects) {
		t.Errorf("rejected counter = %d, want %d", v, rejects)
	}
	close(block)
	r.Close()
}

// The per-job instrumentation path must not allocate: submit, two timed
// stages, and the sink accounting all ride on pre-resolved atomics.
func BenchmarkRunnerInstrumentedSubmit(b *testing.B) {
	reg := obs.NewRegistry()
	r, err := NewRunner(RunnerConfig[*struct{}]{
		Buffer: 64,
		Obs:    reg,
		Sink:   func(*struct{}) {},
	},
		Stage[*struct{}]{Name: "detect", Proc: func(*struct{}) error { return nil }},
		Stage[*struct{}]{Name: "ingest", Proc: func(*struct{}) error { return nil }},
	)
	if err != nil {
		b.Fatal(err)
	}
	job := &struct{}{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Submit(job)
	}
	b.StopTimer()
	r.Close()
}

// BenchmarkRunnerBareSubmit is the uninstrumented baseline for
// BenchmarkRunnerInstrumentedSubmit.
func BenchmarkRunnerBareSubmit(b *testing.B) {
	r, err := NewRunner(RunnerConfig[*struct{}]{
		Buffer: 64,
		Sink:   func(*struct{}) {},
	},
		Stage[*struct{}]{Name: "detect", Proc: func(*struct{}) error { return nil }},
		Stage[*struct{}]{Name: "ingest", Proc: func(*struct{}) error { return nil }},
	)
	if err != nil {
		b.Fatal(err)
	}
	job := &struct{}{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Submit(job)
	}
	b.StopTimer()
	r.Close()
}
