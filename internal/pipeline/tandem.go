package pipeline

import (
	"fmt"
	"time"
)

// TandemResult summarizes a tandem-queue pipeline simulation.
type TandemResult struct {
	Frames int
	// Makespan is the completion time of the last frame.
	Makespan time.Duration
	// ThroughputFPS is frames divided by makespan.
	ThroughputFPS float64
	// MeanLatency is the average end-to-end (arrival to completion)
	// per-frame latency.
	MeanLatency time.Duration
	// MaxLatency is the worst per-frame latency.
	MaxLatency time.Duration
	// Utilization is each stage's busy fraction over the makespan.
	Utilization []float64
	// BottleneckStage is the index of the stage with the highest
	// utilization.
	BottleneckStage int
}

// SimulateTandem runs frames through a tandem queue of stages: each stage
// processes one frame at a time in FIFO order with unbounded buffering
// between stages; frame i arrives at i×interarrival. The classic
// recurrence start[s][i] = max(finish[s−1][i], finish[s][i−1]) makes the
// simulation exact and deterministic.
func SimulateTandem(stages []StageSpec, interarrival time.Duration, frames int) (TandemResult, error) {
	if len(stages) == 0 {
		return TandemResult{}, fmt.Errorf("pipeline: no stages")
	}
	if frames < 1 {
		return TandemResult{}, fmt.Errorf("pipeline: frames %d must be >= 1", frames)
	}
	if interarrival <= 0 {
		return TandemResult{}, fmt.Errorf("pipeline: interarrival %v must be positive", interarrival)
	}
	for _, s := range stages {
		if s.Service < 0 {
			return TandemResult{}, fmt.Errorf("pipeline: stage %q has negative service time", s.Name)
		}
	}

	nStages := len(stages)
	prevFinish := make([]time.Duration, nStages) // finish[s][i-1]
	busy := make([]time.Duration, nStages)
	var totalLatency, maxLatency, makespan time.Duration

	for i := 0; i < frames; i++ {
		arrival := time.Duration(i) * interarrival
		inAt := arrival
		for s := 0; s < nStages; s++ {
			start := inAt
			if prevFinish[s] > start {
				start = prevFinish[s]
			}
			finish := start + stages[s].Service
			busy[s] += stages[s].Service
			prevFinish[s] = finish
			inAt = finish
		}
		latency := inAt - arrival
		totalLatency += latency
		if latency > maxLatency {
			maxLatency = latency
		}
		if inAt > makespan {
			makespan = inAt
		}
	}

	res := TandemResult{
		Frames:      frames,
		Makespan:    makespan,
		MeanLatency: totalLatency / time.Duration(frames),
		MaxLatency:  maxLatency,
		Utilization: make([]float64, nStages),
	}
	if makespan > 0 {
		res.ThroughputFPS = float64(frames) / makespan.Seconds()
	}
	best := 0
	for s := range stages {
		res.Utilization[s] = float64(busy[s]) / float64(makespan)
		if res.Utilization[s] > res.Utilization[best] {
			best = s
		}
	}
	res.BottleneckStage = best
	return res, nil
}

// SequentialThroughputFPS is the frame rate of executing every stage
// back-to-back with no pipelining.
func SequentialThroughputFPS(stages []StageSpec) float64 {
	var total time.Duration
	for _, s := range stages {
		total += s.Service
	}
	if total <= 0 {
		return 0
	}
	return 1 / total.Seconds()
}
