package pipeline

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/obs"
)

// Stage is one named processing step in a concurrent pipeline. The
// function mutates the job in place; returning an error drops the job
// after the error callback fires.
type Stage[T any] struct {
	Name string
	Proc func(T) error
}

// stageObs holds one stage's pre-resolved metric handles so the per-job
// path touches only atomics (no registry lookups, no allocation).
type stageObs struct {
	service *obs.Histogram
	errors  *obs.Counter
}

// Runner executes stages concurrently, one goroutine per stage connected
// by channels — the shape of the paper's per-RPi pipelines where each
// stage is an independent thread. Jobs flow in submission order.
type Runner[T any] struct {
	stages  []Stage[T]
	in      chan T
	wg      sync.WaitGroup
	sink    func(T)
	onError func(stage string, err error)

	clk       clock.Clock
	stageObs  []stageObs
	submitted *obs.Counter
	rejected  *obs.Counter // TrySubmit back-pressure drops
	completed *obs.Counter
	inflight  *obs.Gauge

	mu     sync.Mutex
	closed bool
}

// RunnerConfig configures a Runner.
type RunnerConfig[T any] struct {
	// Buffer is the channel capacity between stages. The paper's RPi
	// pipelines hold one frame per stage; the default of 1 mirrors that.
	Buffer int
	// Sink receives jobs that completed every stage. Optional.
	Sink func(T)
	// OnError is invoked when a stage rejects a job. Optional.
	OnError func(stage string, err error)
	// Obs, when non-nil, instruments the runner: per-stage service-time
	// histograms and error counters, plus submit/reject/complete
	// counters and an in-flight gauge, all under
	// coralpie_pipeline_*. Handles are resolved once here so the per-job
	// path adds no allocation.
	Obs *obs.Registry
	// ObsLabels are extra label pairs (e.g. "camera", "cam3") attached
	// to every metric this runner registers.
	ObsLabels []string
	// Clock supplies service-time timestamps; the discrete-event
	// harness injects its virtual clock here so telemetry stays
	// deterministic. Defaults to the real clock.
	Clock clock.Clock
}

// NewRunner starts the stage goroutines and returns the runner.
func NewRunner[T any](cfg RunnerConfig[T], stages ...Stage[T]) (*Runner[T], error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	for i, s := range stages {
		if s.Proc == nil {
			return nil, fmt.Errorf("pipeline: stage %d (%q) has nil proc", i, s.Name)
		}
	}
	buffer := cfg.Buffer
	if buffer < 1 {
		buffer = 1
	}
	r := &Runner[T]{
		stages:  stages,
		in:      make(chan T, buffer),
		sink:    cfg.Sink,
		onError: cfg.OnError,
		clk:     cfg.Clock,
	}
	if r.clk == nil {
		r.clk = clock.Real{}
	}
	if cfg.Obs != nil {
		base := cfg.ObsLabels
		r.submitted = cfg.Obs.Counter("coralpie_pipeline_submitted_total",
			"jobs accepted into the pipeline", base...)
		r.rejected = cfg.Obs.Counter("coralpie_pipeline_rejected_total",
			"jobs refused by TrySubmit back-pressure", base...)
		r.completed = cfg.Obs.Counter("coralpie_pipeline_completed_total",
			"jobs that passed every stage", base...)
		r.inflight = cfg.Obs.Gauge("coralpie_pipeline_inflight",
			"jobs currently inside the pipeline", base...)
		r.stageObs = make([]stageObs, len(stages))
		for i, st := range stages {
			labels := append(append([]string(nil), base...), "stage", st.Name)
			r.stageObs[i] = stageObs{
				service: cfg.Obs.Histogram("coralpie_pipeline_stage_seconds",
					"per-stage service time", nil, labels...),
				errors: cfg.Obs.Counter("coralpie_pipeline_stage_errors_total",
					"jobs dropped by a stage error", labels...),
			}
		}
	}

	prev := r.in
	for i, st := range stages {
		i, st := i, st
		out := make(chan T, buffer)
		inCh := prev
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer close(out)
			for job := range inCh {
				err := r.runStage(i, st, job)
				if err != nil {
					if r.onError != nil {
						r.onError(st.Name, err)
					}
					continue
				}
				out <- job
			}
		}()
		prev = out
	}
	final := prev
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for job := range final {
			if r.completed != nil {
				r.completed.Inc()
				r.inflight.Dec()
			}
			if r.sink != nil {
				r.sink(job)
			}
		}
	}()
	return r, nil
}

// runStage executes one stage on one job, timing it when instrumented.
func (r *Runner[T]) runStage(i int, st Stage[T], job T) error {
	if r.stageObs == nil {
		return st.Proc(job)
	}
	start := r.clk.Now()
	err := st.Proc(job)
	r.stageObs[i].service.ObserveDuration(r.clk.Now().Sub(start))
	if err != nil {
		r.stageObs[i].errors.Inc()
		r.inflight.Dec()
	}
	return err
}

// Submit enqueues a job, blocking if the first stage is busy (camera
// back-pressure). It reports false after Close.
func (r *Runner[T]) Submit(job T) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	// Hold the lock through the send so Close cannot close the channel
	// between the check and the send.
	defer r.mu.Unlock()
	r.in <- job
	if r.submitted != nil {
		r.submitted.Inc()
		r.inflight.Inc()
	}
	return true
}

// TrySubmit enqueues a job only if the first stage has buffer space,
// modeling a camera that drops frames when the pipeline is saturated.
func (r *Runner[T]) TrySubmit(job T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	select {
	case r.in <- job:
		if r.submitted != nil {
			r.submitted.Inc()
			r.inflight.Inc()
		}
		return true
	default:
		if r.rejected != nil {
			r.rejected.Inc()
		}
		return false
	}
}

// Close drains the pipeline and waits for every stage to finish.
func (r *Runner[T]) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.in)
	r.mu.Unlock()
	r.wg.Wait()
}
