package pipeline

import (
	"fmt"
	"sync"
)

// Stage is one named processing step in a concurrent pipeline. The
// function mutates the job in place; returning an error drops the job
// after the error callback fires.
type Stage[T any] struct {
	Name string
	Proc func(T) error
}

// Runner executes stages concurrently, one goroutine per stage connected
// by channels — the shape of the paper's per-RPi pipelines where each
// stage is an independent thread. Jobs flow in submission order.
type Runner[T any] struct {
	stages  []Stage[T]
	in      chan T
	wg      sync.WaitGroup
	sink    func(T)
	onError func(stage string, err error)

	mu     sync.Mutex
	closed bool
}

// RunnerConfig configures a Runner.
type RunnerConfig[T any] struct {
	// Buffer is the channel capacity between stages. The paper's RPi
	// pipelines hold one frame per stage; the default of 1 mirrors that.
	Buffer int
	// Sink receives jobs that completed every stage. Optional.
	Sink func(T)
	// OnError is invoked when a stage rejects a job. Optional.
	OnError func(stage string, err error)
}

// NewRunner starts the stage goroutines and returns the runner.
func NewRunner[T any](cfg RunnerConfig[T], stages ...Stage[T]) (*Runner[T], error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	for i, s := range stages {
		if s.Proc == nil {
			return nil, fmt.Errorf("pipeline: stage %d (%q) has nil proc", i, s.Name)
		}
	}
	buffer := cfg.Buffer
	if buffer < 1 {
		buffer = 1
	}
	r := &Runner[T]{
		stages:  stages,
		in:      make(chan T, buffer),
		sink:    cfg.Sink,
		onError: cfg.OnError,
	}

	prev := r.in
	for _, st := range stages {
		st := st
		out := make(chan T, buffer)
		inCh := prev
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer close(out)
			for job := range inCh {
				if err := st.Proc(job); err != nil {
					if r.onError != nil {
						r.onError(st.Name, err)
					}
					continue
				}
				out <- job
			}
		}()
		prev = out
	}
	final := prev
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for job := range final {
			if r.sink != nil {
				r.sink(job)
			}
		}
	}()
	return r, nil
}

// Submit enqueues a job, blocking if the first stage is busy (camera
// back-pressure). It reports false after Close.
func (r *Runner[T]) Submit(job T) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	// Hold the lock through the send so Close cannot close the channel
	// between the check and the send.
	defer r.mu.Unlock()
	r.in <- job
	return true
}

// TrySubmit enqueues a job only if the first stage has buffer space,
// modeling a camera that drops frames when the pipeline is saturated.
func (r *Runner[T]) TrySubmit(job T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	select {
	case r.in <- job:
		return true
	default:
		return false
	}
}

// Close drains the pipeline and waits for every stage to finish.
func (r *Runner[T]) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.in)
	r.mu.Unlock()
	r.wg.Wait()
}
