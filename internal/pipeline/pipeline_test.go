package pipeline

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestPaperProfileStageMapping(t *testing.T) {
	p := PaperRPi3Profile()
	rpi1 := p.RPi1Stages()
	if len(rpi1) != 3 {
		t.Fatalf("RPi1 stages = %d", len(rpi1))
	}
	// Load is the slowest stage on RPi 1 (94+2 = 96 ms), which the paper
	// identifies as the pipeline bottleneck.
	if rpi1[1].Service != 96*time.Millisecond {
		t.Errorf("load+resize = %v", rpi1[1].Service)
	}
	if rpi1[2].Service != 95*time.Millisecond {
		t.Errorf("inference stage = %v", rpi1[2].Service)
	}
	if len(p.RPi2Stages()) != 3 || len(p.DualDeviceStages()) != 6 {
		t.Error("stage counts wrong")
	}
	if p.CriticalPathTotal() < 300*time.Millisecond {
		t.Errorf("critical path = %v, expected > 300ms", p.CriticalPathTotal())
	}
}

func TestSimulateTandemValidation(t *testing.T) {
	if _, err := SimulateTandem(nil, time.Millisecond, 10); err == nil {
		t.Error("no stages accepted")
	}
	stages := []StageSpec{{Name: "a", Service: time.Millisecond}}
	if _, err := SimulateTandem(stages, 0, 10); err == nil {
		t.Error("zero interarrival accepted")
	}
	if _, err := SimulateTandem(stages, time.Millisecond, 0); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := SimulateTandem([]StageSpec{{Service: -1}}, time.Millisecond, 1); err == nil {
		t.Error("negative service accepted")
	}
}

func TestTandemThroughputBoundedBySlowestStage(t *testing.T) {
	// The paper: with Load (~96 ms) as the slowest stage and a 15 FPS
	// source, the pipeline sustains ~10.4 FPS.
	p := PaperRPi3Profile()
	res, err := SimulateTandem(p.DualDeviceStages(), time.Second/15, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputFPS < 10.0 || res.ThroughputFPS > 10.9 {
		t.Errorf("throughput = %.2f FPS, want ~10.4", res.ThroughputFPS)
	}
	// The bottleneck is one of the two Load stages.
	name := p.DualDeviceStages()[res.BottleneckStage].Name
	if name != "load+resize" && name != "load" {
		t.Errorf("bottleneck = %q", name)
	}
}

func TestTandemFastSourceDoesNotExceedArrivalRate(t *testing.T) {
	stages := []StageSpec{{Name: "s", Service: 10 * time.Millisecond}}
	res, err := SimulateTandem(stages, 100*time.Millisecond, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputFPS > 10.1 {
		t.Errorf("throughput %.2f exceeds arrival rate", res.ThroughputFPS)
	}
	// Underloaded: latency equals the service time.
	if res.MeanLatency != 10*time.Millisecond {
		t.Errorf("mean latency = %v", res.MeanLatency)
	}
}

func TestTandemSequentialComparison(t *testing.T) {
	p := PaperRPi3Profile()
	seq := SequentialThroughputFPS(p.DualDeviceStages())
	res, err := SimulateTandem(p.DualDeviceStages(), time.Second/15, 2000)
	if err != nil {
		t.Fatal(err)
	}
	speedup := res.ThroughputFPS / seq
	// The paper reports ~5x over naive sequential execution; the exact
	// factor depends on which sub-tasks are counted, so accept a band.
	if speedup < 2.5 || speedup > 6.5 {
		t.Errorf("pipelined speedup = %.2fx (pipelined %.2f, sequential %.2f)",
			speedup, res.ThroughputFPS, seq)
	}
}

func TestTandemUtilization(t *testing.T) {
	stages := []StageSpec{
		{Name: "fast", Service: 1 * time.Millisecond},
		{Name: "slow", Service: 10 * time.Millisecond},
	}
	res, err := SimulateTandem(stages, time.Millisecond, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.BottleneckStage != 1 {
		t.Errorf("bottleneck = %d", res.BottleneckStage)
	}
	if res.Utilization[1] < 0.95 {
		t.Errorf("slow stage utilization = %v", res.Utilization[1])
	}
	if res.Utilization[0] > 0.2 {
		t.Errorf("fast stage utilization = %v", res.Utilization[0])
	}
	if math.Abs(res.ThroughputFPS-100) > 5 {
		t.Errorf("throughput = %v, want ~100", res.ThroughputFPS)
	}
}

func TestSingleDeviceAblationBreaksLatencyBound(t *testing.T) {
	// Section 4.1.5: all sub-tasks on one RPi breaks the 100 ms bound
	// and roughly halves the frame rate versus the dual-device mapping.
	p := PaperRPi3Profile()
	single, err := SimulateTandem(p.SingleDeviceStages(), time.Second/15, 500)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := SimulateTandem(p.DualDeviceStages(), time.Second/15, 500)
	if err != nil {
		t.Fatal(err)
	}
	if single.ThroughputFPS >= dual.ThroughputFPS/2 {
		t.Errorf("single-device %.2f FPS vs dual %.2f FPS: ablation should show a big gap",
			single.ThroughputFPS, dual.ThroughputFPS)
	}
}

type job struct {
	id    int
	trace []string
	mu    sync.Mutex
}

func (j *job) visit(stage string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.trace = append(j.trace, stage)
}

func TestRunnerProcessesInOrder(t *testing.T) {
	var mu sync.Mutex
	var completed []int
	done := make(chan struct{})
	const n = 20
	r, err := NewRunner(RunnerConfig[*job]{
		Sink: func(j *job) {
			mu.Lock()
			completed = append(completed, j.id)
			if len(completed) == n {
				close(done)
			}
			mu.Unlock()
		},
	},
		Stage[*job]{Name: "a", Proc: func(j *job) error { j.visit("a"); return nil }},
		Stage[*job]{Name: "b", Proc: func(j *job) error { j.visit("b"); return nil }},
		Stage[*job]{Name: "c", Proc: func(j *job) error { j.visit("c"); return nil }},
	)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*job, n)
	for i := 0; i < n; i++ {
		jobs[i] = &job{id: i}
		if !r.Submit(jobs[i]) {
			t.Fatal("submit rejected")
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline stalled")
	}
	r.Close()
	mu.Lock()
	defer mu.Unlock()
	for i, id := range completed {
		if id != i {
			t.Fatalf("completion order %v", completed)
		}
	}
	for _, j := range jobs {
		if len(j.trace) != 3 || j.trace[0] != "a" || j.trace[2] != "c" {
			t.Fatalf("job %d trace %v", j.id, j.trace)
		}
	}
}

func TestRunnerErrorDropsJob(t *testing.T) {
	var mu sync.Mutex
	var sunk, failures int
	r, err := NewRunner(RunnerConfig[*job]{
		Sink: func(*job) { mu.Lock(); sunk++; mu.Unlock() },
		OnError: func(stage string, err error) {
			mu.Lock()
			failures++
			mu.Unlock()
			if stage != "filter" {
				t.Errorf("error from stage %q", stage)
			}
		},
	},
		Stage[*job]{Name: "filter", Proc: func(j *job) error {
			if j.id%2 == 0 {
				return errors.New("rejected")
			}
			return nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Submit(&job{id: i})
	}
	r.Close()
	mu.Lock()
	defer mu.Unlock()
	if sunk != 5 || failures != 5 {
		t.Errorf("sunk=%d failures=%d", sunk, failures)
	}
}

func TestRunnerSubmitAfterClose(t *testing.T) {
	r, err := NewRunner(RunnerConfig[*job]{},
		Stage[*job]{Name: "a", Proc: func(*job) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if r.Submit(&job{}) {
		t.Error("submit after close accepted")
	}
	if r.TrySubmit(&job{}) {
		t.Error("try-submit after close accepted")
	}
}

func TestRunnerTrySubmitBackpressure(t *testing.T) {
	block := make(chan struct{})
	r, err := NewRunner(RunnerConfig[*job]{Buffer: 1},
		Stage[*job]{Name: "slow", Proc: func(*job) error { <-block; return nil }})
	if err != nil {
		t.Fatal(err)
	}
	// Fill: one job in the stage, one in the buffer.
	r.Submit(&job{id: 0})
	dropped := false
	for i := 1; i < 10; i++ {
		if !r.TrySubmit(&job{id: i}) {
			dropped = true
			break
		}
	}
	if !dropped {
		t.Error("TrySubmit never applied backpressure")
	}
	close(block)
	r.Close()
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(RunnerConfig[*job]{}); err == nil {
		t.Error("no stages accepted")
	}
	if _, err := NewRunner(RunnerConfig[*job]{}, Stage[*job]{Name: "nil"}); err == nil {
		t.Error("nil proc accepted")
	}
}
