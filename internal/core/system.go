// Package core assembles a complete Coral-Pie deployment: the world
// simulator, one camera node per camera, the camera topology server, the
// trajectory graph store, and the frame store, all wired over a simulated
// network on a discrete-event simulator. It is the paper's end-to-end
// system in deterministic, laptop-runnable form; the cmd/ binaries
// assemble the same components over real TCP.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/camnode"
	"repro/internal/clock"
	"repro/internal/des"
	"repro/internal/fleet"
	"repro/internal/framestore"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/reid"
	"repro/internal/roadnet"
	"repro/internal/rpc/faultinject"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/tracker"
	"repro/internal/trajstore"
	"repro/internal/transport"
	"repro/internal/vision"
)

// topologyAddr is the simulated bus address of the topology server.
const topologyAddr = "topology-server"

// framestoreAddr is the simulated bus address of the frame store.
const framestoreAddr = "frame-store"

// Config assembles a simulated deployment.
type Config struct {
	// Graph is the road network (cameras are registered via heartbeats,
	// so supply it without cameras).
	Graph *roadnet.Graph
	// Epoch anchors virtual time to wall-clock timestamps.
	Epoch time.Time
	// NetworkLatency is the one-way message latency on the simulated
	// network (the paper measures 2 ms on the campus LAN).
	NetworkLatency time.Duration
	// MessageLossRate drops each network message with this probability,
	// for failure-injection studies. Zero disables loss. Shorthand for
	// Fault.DropRate (which wins when both are set).
	MessageLossRate float64
	// Fault configures deterministic network-fault injection (drop,
	// latency, error) on the simulated bus. When Fault.RNG is nil the
	// fault stream is derived from Seed, so same-seed runs inject the
	// same faults.
	Fault faultinject.Config
	// HeartbeatInterval is the camera heartbeat period (paper: 2 s / 5 s).
	HeartbeatInterval time.Duration
	// LivenessMultiple sets the server's liveness timeout as a multiple
	// of the heartbeat interval (default 2).
	LivenessMultiple int
	// LivenessCheckInterval is how often the server scans leases
	// (default: HeartbeatInterval / 2).
	LivenessCheckInterval time.Duration

	// EnableMonitor runs an in-process fleet monitor: every component
	// (cameras, topology server, trajectory store, frame-store replicas)
	// gets a heartbeat agent on a simulator ticker, and the monitor
	// sweeps liveness on LivenessCheckInterval. Everything runs on the
	// simulator's virtual clock, so dead-node detection times and alert
	// transitions are byte-identical across same-seed runs.
	EnableMonitor bool
	// MonitorLivenessMultiple sets the fleet monitor's liveness timeout
	// as a multiple of HeartbeatInterval (default 3 — one more beat of
	// slack than the topology server's lease timeout, so the data-plane
	// handoff reacts before the health plane pages anyone).
	MonitorLivenessMultiple int
	// AlertRules are the fleet monitor's metric alert rules, evaluated
	// on every sweep against the system registry (carried by the
	// topology server's heartbeat — components share one registry in
	// simulation, so exactly one agent reports it).
	AlertRules []fleet.Rule

	// DetectorFactory builds the pluggable detector per camera. Default:
	// the calibrated SimDetector seeded per camera.
	DetectorFactory func(cameraID string) (vision.Detector, error)
	// Seed drives all randomness derived by the system.
	Seed int64

	// Registry receives all coralpie_* telemetry from the system's
	// components. Nil allocates a fresh registry per system (NOT the
	// process-wide obs.Default()), so two same-seed runs produce
	// byte-identical metric snapshots and concurrent systems in tests
	// never share counters.
	Registry *obs.Registry

	// TraceSampleEvery records every Nth trace root (0 or 1 records all).
	// The decision is made per root, so a sampled trace keeps every one of
	// its spans. Span IDs come from a per-system sequence, so two
	// same-seed runs allocate byte-identical trace topologies.
	TraceSampleEvery int

	// Vision-stack parameters (zero values use the paper prototype's).
	Tracker     tracker.Config
	Matcher     reid.MatcherConfig
	Pool        reid.PoolConfig
	PostProcess vision.PostProcessConfig

	// StoreFrames ships raw frames to the frame store (off by default:
	// frame storage is not on the critical path and slows large sweeps).
	StoreFrames bool
	// FrameReplicas runs N frame-store servers (at bus addresses
	// "frame-store-0" … "frame-store-<N-1>") and fans every camera's
	// frames out to all of them through framestore.MultiClient, so a
	// single store failure (FailFrameStore) loses no evidence. 0 or 1
	// keeps the single store at "frame-store".
	FrameReplicas int
	// Camera geometry overrides (zero values use sim defaults).
	CameraFPS    float64
	CameraWidth  int
	CameraHeight int
	PxPerMeter   float64
	// BrightnessJitter gives each camera a deterministic per-camera
	// exposure offset in [-BrightnessJitter, +BrightnessJitter],
	// modeling the cross-camera appearance differences that make
	// color-histogram re-identification imperfect.
	BrightnessJitter int
}

// applyDefaults fills zero values with the paper prototype's parameters.
func (c *Config) applyDefaults() {
	if c.Epoch.IsZero() {
		c.Epoch = time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)
	}
	if c.NetworkLatency <= 0 {
		c.NetworkLatency = 2 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.LivenessMultiple <= 0 {
		c.LivenessMultiple = 2
	}
	if c.LivenessCheckInterval <= 0 {
		c.LivenessCheckInterval = c.HeartbeatInterval / 2
	}
	if c.MonitorLivenessMultiple <= 0 {
		c.MonitorLivenessMultiple = 3
	}
	if c.Tracker == (tracker.Config{}) {
		c.Tracker = tracker.DefaultConfig()
	}
	if c.Matcher == (reid.MatcherConfig{}) {
		c.Matcher = reid.DefaultMatcherConfig()
	}
	if c.Pool.PruneThreshold == 0 && c.Pool.OnEvict == nil {
		c.Pool = reid.DefaultPoolConfig()
	}
	if c.PostProcess.MinConfidence == 0 {
		c.PostProcess.MinConfidence = vision.DefaultMinConfidence
	}
	if c.CameraFPS <= 0 {
		c.CameraFPS = 15
	}
}

// cameraRig bundles one camera's moving parts.
type cameraRig struct {
	node      *camnode.Node
	camera    *sim.Camera
	client    *topology.Client
	heartbeat *des.Ticker
	endpoint  transport.Endpoint
	agent     *fleet.Agent
	procErrs  int
}

// System is a running simulated deployment.
type System struct {
	cfg        Config
	sim        *des.Simulator
	bus        *transport.Bus
	world      *sim.World
	topo       *topology.Server
	traj       *trajstore.Store
	frames     []*framestore.Store
	frameAddrs []string

	rigs     map[string]*cameraRig
	liveness *des.Ticker
	started  bool
	stopped  bool
	ctx      context.Context

	monitor      *fleet.Monitor
	fleetAgents  map[string]*fleet.Agent // service agents by node ID
	fleetTickers []*des.Ticker
	monitorSweep *des.Ticker

	reg    *obs.Registry
	tracer *obs.Tracer
	drain  *obs.Histogram
}

// NewSystem wires the shared services (topology server, stores, network)
// and returns a system ready for AddCamera/AddVehicle.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Graph == nil {
		return nil, errors.New("core: road graph required")
	}
	cfg.applyDefaults()

	dsim := des.New(cfg.Epoch)
	simClock := clock.Func(dsim.Time)
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := obs.NewTracerWith(obs.TracerConfig{
		Clock:       simClock,
		Capacity:    4096,
		SampleEvery: cfg.TraceSampleEvery,
	})

	bus := transport.NewSimBus(dsim, cfg.NetworkLatency)
	bus.Use(reg)
	fault := cfg.Fault
	if fault.DropRate == 0 {
		fault.DropRate = cfg.MessageLossRate
	}
	if fault.DropRate != 0 || fault.Enabled() {
		if fault.RNG == nil {
			// Same seed derivation the retired loss model used, so
			// existing seeded loss studies reproduce bit-for-bit.
			fault.RNG = rand.New(rand.NewSource(cfg.Seed ^ 0x10552a7e))
		}
		if err := bus.InjectFaults(fault); err != nil {
			return nil, err
		}
	}
	world, err := sim.NewWorld(sim.WorldConfig{Sim: dsim, Graph: cfg.Graph})
	if err != nil {
		return nil, err
	}

	topoEP, err := bus.Endpoint(topologyAddr)
	if err != nil {
		return nil, err
	}
	topoSrv, err := topology.NewServer(cfg.Graph, topoEP, simClock, topology.ServerConfig{
		LivenessTimeout:  time.Duration(cfg.LivenessMultiple) * cfg.HeartbeatInterval,
		SnapToNodeMeters: 30,
		Registry:         reg,
	})
	if err != nil {
		return nil, err
	}

	traj := trajstore.NewMemStore()
	traj.Instrument(reg, simClock)
	traj.UseTracer(tracer)

	// One frame store by default; FrameReplicas > 1 runs N independent
	// stores so replicated puts have somewhere to land.
	frameAddrs := []string{framestoreAddr}
	if cfg.FrameReplicas > 1 {
		frameAddrs = make([]string, cfg.FrameReplicas)
		for i := range frameAddrs {
			frameAddrs[i] = fmt.Sprintf("%s-%d", framestoreAddr, i)
		}
	}
	frames := make([]*framestore.Store, len(frameAddrs))
	for i, addr := range frameAddrs {
		st, err := framestore.OpenStore("")
		if err != nil {
			return nil, err
		}
		st.Instrument(reg, simClock)
		st.UseTracer(tracer)
		ep, err := bus.Endpoint(addr)
		if err != nil {
			return nil, err
		}
		if _, err := framestore.NewServer(st, ep); err != nil {
			return nil, err
		}
		frames[i] = st
	}

	s := &System{
		cfg:         cfg,
		sim:         dsim,
		bus:         bus,
		world:       world,
		topo:        topoSrv,
		traj:        traj,
		frames:      frames,
		frameAddrs:  frameAddrs,
		rigs:        make(map[string]*cameraRig),
		fleetAgents: make(map[string]*fleet.Agent),
		ctx:         context.Background(),
		reg:         reg,
		tracer:      tracer,
		drain: reg.Histogram("coralpie_system_shutdown_drain_seconds",
			"graceful system shutdown duration", nil),
	}
	if cfg.EnableMonitor {
		s.monitor = fleet.NewMonitor(fleet.MonitorConfig{
			Clock:           simClock,
			LivenessTimeout: time.Duration(cfg.MonitorLivenessMultiple) * cfg.HeartbeatInterval,
			Rules:           cfg.AlertRules,
			Registry:        reg,
		})
		// Service agents. Components share the system registry, so the
		// topology server's heartbeat carries the metric snapshot and
		// every other agent omits it — federating the same registry once
		// per agent would multiply every counter by the fleet size.
		s.fleetAgents[topologyAddr] = s.newFleetAgent(topologyAddr, "topology-server", topologyAddr, false)
		s.fleetAgents["trajstore"] = s.newFleetAgent("trajstore", "trajstore", "", true)
		for _, addr := range frameAddrs {
			s.fleetAgents[addr] = s.newFleetAgent(addr, "framestore", addr, true)
		}
	}
	return s, nil
}

// newFleetAgent builds one simulated component's heartbeat agent. Its
// send path delivers straight into the in-process monitor, but only
// while busAddr (when non-empty) is attached to the bus — a partitioned
// node's heartbeats fail exactly like its data traffic.
func (s *System) newFleetAgent(nodeID, component, busAddr string, omitMetrics bool) *fleet.Agent {
	return fleet.NewAgent(fleet.AgentConfig{
		NodeID:      nodeID,
		Component:   component,
		Clock:       clock.Func(s.sim.Time),
		Registry:    s.reg,
		OmitMetrics: omitMetrics,
		Send: func(ctx context.Context, hb *fleet.Heartbeat) error {
			if busAddr != "" && !s.bus.Attached(busAddr) {
				return fmt.Errorf("core: %q is partitioned", busAddr)
			}
			return s.monitor.Ingest(hb)
		},
	})
}

// Sim exposes the simulator (for custom scheduling in experiments).
func (s *System) Sim() *des.Simulator { return s.sim }

// World exposes the world model.
func (s *System) World() *sim.World { return s.world }

// TrajStore exposes the shared trajectory graph.
func (s *System) TrajStore() *trajstore.Store { return s.traj }

// FrameStore exposes the first (or only) frame store.
func (s *System) FrameStore() *framestore.Store { return s.frames[0] }

// FrameStores exposes every frame-store replica, in address order.
func (s *System) FrameStores() []*framestore.Store { return s.frames }

// FailFrameStore kills frame-store replica i: the bus partitions its
// address, so frame sends to it fail while the other replicas keep
// receiving. Use with Config.FrameReplicas > 1 for outage studies.
func (s *System) FailFrameStore(i int) error {
	if i < 0 || i >= len(s.frameAddrs) {
		return fmt.Errorf("core: frame store %d not found (%d replicas)", i, len(s.frameAddrs))
	}
	s.bus.Partition(s.frameAddrs[i])
	return nil
}

// TopologyServer exposes the topology server.
func (s *System) TopologyServer() *topology.Server { return s.topo }

// Telemetry exposes the system's metric registry: every component's
// coralpie_* metrics land here. Serve it with obs.NewMux, render it with
// WritePrometheus, or inspect it with Snapshot.
func (s *System) Telemetry() *obs.Registry { return s.reg }

// Tracer exposes the system's handoff span tracer.
func (s *System) Tracer() *obs.Tracer { return s.tracer }

// Node returns a camera's processing node.
func (s *System) Node(cameraID string) (*camnode.Node, error) {
	rig, ok := s.rigs[cameraID]
	if !ok {
		return nil, fmt.Errorf("core: camera %q not found", cameraID)
	}
	return rig.node, nil
}

// CameraIDs lists the installed cameras in sorted order.
func (s *System) CameraIDs() []string {
	out := make([]string, 0, len(s.rigs))
	for id := range s.rigs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AddCameraAt installs a camera at a road-network node, wiring its
// processing node, simulated camera, and heartbeats.
func (s *System) AddCameraAt(cameraID string, node roadnet.NodeID, headingDeg float64) error {
	n, err := s.cfg.Graph.Node(node)
	if err != nil {
		return err
	}
	return s.AddCamera(cameraID, n.Pos, headingDeg)
}

// AddCamera installs a camera at an arbitrary position (the topology
// server snaps it to the nearest intersection or lane).
func (s *System) AddCamera(cameraID string, pos geo.Point, headingDeg float64) error {
	if _, ok := s.rigs[cameraID]; ok {
		return fmt.Errorf("core: camera %q already exists", cameraID)
	}
	ep, err := s.bus.Endpoint(cameraID)
	if err != nil {
		return err
	}

	detector := s.cfg.DetectorFactory
	if detector == nil {
		detector = func(id string) (vision.Detector, error) {
			return vision.NewSimDetector(vision.DefaultSimDetectorConfig(s.cfg.Seed ^ int64(hash64(id))))
		}
	}
	det, err := detector(cameraID)
	if err != nil {
		return err
	}

	nodeCfg := camnode.Config{
		CameraID:           cameraID,
		Position:           pos,
		HeadingDeg:         headingDeg,
		TopologyServerAddr: topologyAddr,
		Detector:           det,
		PostProcess:        s.cfg.PostProcess,
		Tracker:            s.cfg.Tracker,
		Matcher:            s.cfg.Matcher,
		Pool:               s.cfg.Pool,
		TrajStore:          s.traj,
		Clock:              clock.Func(s.sim.Time),
		Registry:           s.reg,
		Tracer:             s.tracer,
	}
	if s.cfg.StoreFrames {
		if len(s.frameAddrs) > 1 {
			mc, err := framestore.NewMultiClient(ep, s.frameAddrs, framestore.MultiClientConfig{
				Registry: s.reg,
			})
			if err != nil {
				return err
			}
			nodeCfg.FrameStore = mc
		} else {
			fsClient, err := framestore.NewClient(ep, s.frameAddrs[0])
			if err != nil {
				return err
			}
			nodeCfg.FrameStore = fsClient
		}
		nodeCfg.StoreFrames = true
	}
	camNode, err := camnode.New(nodeCfg, ep)
	if err != nil {
		return err
	}

	rig := &cameraRig{node: camNode, client: camNode.Topology(), endpoint: ep}
	camSpec := sim.DefaultCameraSpec(cameraID, pos, headingDeg)
	camSpec.FPS = s.cfg.CameraFPS
	if s.cfg.CameraWidth > 0 {
		camSpec.Width = s.cfg.CameraWidth
	}
	if s.cfg.CameraHeight > 0 {
		camSpec.Height = s.cfg.CameraHeight
	}
	if s.cfg.PxPerMeter > 0 {
		camSpec.PxPerMeter = s.cfg.PxPerMeter
	}
	if j := s.cfg.BrightnessJitter; j > 0 {
		camSpec.BrightnessOffset = int(hash64(cameraID)%uint64(2*j+1)) - j
	}
	camera, err := s.world.AddCamera(camSpec, func(f *vision.Frame) {
		if err := camNode.ProcessFrame(f); err != nil {
			rig.procErrs++
		}
	})
	if err != nil {
		return err
	}
	rig.camera = camera
	if s.monitor != nil {
		rig.agent = s.newFleetAgent(cameraID, "coral-node", cameraID, true)
	}
	s.rigs[cameraID] = rig

	if s.started {
		s.startRig(rig)
	}
	return nil
}

func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// startRig begins a camera's heartbeats and frames. The first heartbeat
// fires immediately so registration precedes the first frames. The
// fleet heartbeat rides the same ticker as the topology lease renewal:
// one failure mode (FailCamera stops the ticker, the partition blocks
// the send) silences both planes together, as it would on real
// hardware.
func (s *System) startRig(rig *cameraRig) {
	beat := func() {
		_ = rig.client.SendHeartbeat()
		if rig.agent != nil {
			_ = rig.agent.Push(s.ctx)
		}
	}
	beat()
	rig.heartbeat = s.sim.Every(s.cfg.HeartbeatInterval, beat)
}

// Start begins heartbeats, liveness checks, and camera frames. Call
// after the initial cameras are installed. ctx is the system's root
// lifecycle context: once it is cancelled, Run stops advancing virtual
// time at its next chunk boundary (nil means Background).
func (s *System) Start(ctx context.Context) {
	if s.started {
		return
	}
	if ctx != nil {
		s.ctx = ctx
	}
	s.started = true
	// Deterministic order: iterating the rig map directly would register
	// cameras (and so order their telemetry) differently run to run.
	for _, id := range s.CameraIDs() {
		s.startRig(s.rigs[id])
	}
	s.liveness = s.sim.Every(s.cfg.LivenessCheckInterval, func() {
		s.topo.CheckLiveness()
	})
	if s.monitor != nil {
		// Service agents start in sorted node order, then the monitor
		// sweep: a fixed event order is what makes liveness transitions
		// and alert sequences byte-identical across same-seed runs.
		ids := make([]string, 0, len(s.fleetAgents))
		for id := range s.fleetAgents {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			ag := s.fleetAgents[id]
			_ = ag.Push(s.ctx)
			s.fleetTickers = append(s.fleetTickers, s.sim.Every(s.cfg.HeartbeatInterval, func() {
				_ = ag.Push(s.ctx)
			}))
		}
		s.monitorSweep = s.sim.Every(s.cfg.LivenessCheckInterval, func() {
			s.monitor.Sweep()
		})
	}
	// Let registration and the first topology push settle before frames
	// start flowing.
	s.sim.Schedule(4*s.cfg.NetworkLatency, func() {
		s.world.StartCameras()
	})
}

// Run advances the simulation by d. The advance is chunked so a
// cancelled root context (from Start) stops the run at the next chunk
// boundary instead of simulating the full span; chunking is identical
// across runs, so determinism is preserved.
func (s *System) Run(d time.Duration) {
	const chunks = 16
	chunk := d / chunks
	if chunk <= 0 {
		chunk = d
	}
	for remaining := d; remaining > 0; remaining -= chunk {
		if s.ctx.Err() != nil {
			return
		}
		step := chunk
		if remaining < step {
			step = remaining
		}
		s.sim.RunFor(step)
	}
}

// FailCamera kills a camera: frames stop, heartbeats stop, and the
// network partitions it. The topology server notices via heartbeat loss.
func (s *System) FailCamera(cameraID string) error {
	rig, ok := s.rigs[cameraID]
	if !ok {
		return fmt.Errorf("core: camera %q not found", cameraID)
	}
	if rig.heartbeat != nil {
		rig.heartbeat.Stop()
	}
	if err := s.world.StopCamera(cameraID); err != nil {
		return err
	}
	s.bus.Partition(cameraID)
	return nil
}

// RecoverCamera reverses FailCamera: the bus heals the camera's
// partition, its simulated frames resume, and its heartbeats (topology
// lease and fleet) restart — so the topology server re-registers it and
// the fleet monitor transitions it back to alive, resolving its
// node_down alert on the next sweep.
func (s *System) RecoverCamera(cameraID string) error {
	rig, ok := s.rigs[cameraID]
	if !ok {
		return fmt.Errorf("core: camera %q not found", cameraID)
	}
	if err := s.bus.Heal(cameraID); err != nil {
		return err
	}
	if err := s.world.StartCamera(cameraID); err != nil {
		return err
	}
	if s.started && !s.stopped {
		s.startRig(rig)
	}
	return nil
}

// RecoverFrameStore reverses FailFrameStore: replica i's partition
// heals, so frame puts and its fleet heartbeats flow again.
func (s *System) RecoverFrameStore(i int) error {
	if i < 0 || i >= len(s.frameAddrs) {
		return fmt.Errorf("core: frame store %d not found (%d replicas)", i, len(s.frameAddrs))
	}
	return s.bus.Heal(s.frameAddrs[i])
}

// Monitor exposes the fleet monitor, or nil unless Config.EnableMonitor
// was set.
func (s *System) Monitor() *fleet.Monitor { return s.monitor }

// FlushAll retires all live tracks on every camera, emitting their
// events; call at the end of a bounded experiment.
func (s *System) FlushAll() error {
	for _, id := range s.CameraIDs() {
		if err := s.rigs[id].node.Flush(); err != nil {
			return fmt.Errorf("core: flush %s: %w", id, err)
		}
	}
	return nil
}

// Stop halts tickers and cameras so the simulator can drain. Idempotent.
func (s *System) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, id := range s.CameraIDs() {
		if hb := s.rigs[id].heartbeat; hb != nil {
			hb.Stop()
		}
	}
	if s.liveness != nil {
		s.liveness.Stop()
	}
	for _, t := range s.fleetTickers {
		t.Stop()
	}
	if s.monitorSweep != nil {
		s.monitorSweep.Stop()
	}
	s.world.StopCameras()
}

// Shutdown tears the deployment down gracefully: tickers and cameras
// stop, every camera's live tracks are flushed so their events are not
// lost, and the stores are closed (flushing the trajectory WAL and the
// per-camera frame logs when the stores are disk-backed). The total
// drain duration is recorded in coralpie_system_shutdown_drain_seconds.
// ctx bounds the flush: if it is already expired the flush is skipped
// and its error returned. Idempotent; later calls are no-ops.
func (s *System) Shutdown(ctx context.Context) error {
	start := time.Now()
	s.Stop()
	var firstErr error
	if err := ctx.Err(); err != nil {
		firstErr = fmt.Errorf("core: shutdown: %w", err)
	} else if err := s.FlushAll(); err != nil {
		firstErr = err
	}
	if err := s.traj.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	for _, st := range s.frames {
		if err := st.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.drain.Observe(time.Since(start).Seconds())
	return firstErr
}
