package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/camnode"
	"repro/internal/geo"
	"repro/internal/protocol"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trajstore"
	"repro/internal/vision"
)

// corridorSystem builds a 5-intersection corridor (150 m spacing) with
// cameras on intersections 0, 2, 4 and a perfect detector for protocol-
// level tests.
func corridorSystem(t *testing.T, perfect bool) (*System, []roadnet.NodeID) {
	t.Helper()
	g, ids, err := roadnet.Corridor(5, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, Seed: 42}
	if perfect {
		cfg.DetectorFactory = func(string) (vision.Detector, error) {
			return vision.PerfectDetector{}, nil
		}
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4} {
		if err := sys.AddCameraAt(camID(i), ids[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	return sys, ids
}

func camID(i int) string { return "cam" + string(rune('A'+i)) }

func addVehicle(t *testing.T, sys *System, id string, colorIdx int, route []roadnet.NodeID, depart time.Duration) {
	t.Helper()
	err := sys.World().AddVehicle(sim.VehicleSpec{
		ID:       id,
		Color:    sim.PaletteColor(colorIdx),
		SpeedMPS: 15,
		Route:    route,
		Depart:   depart,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("missing graph accepted")
	}
}

func TestEndToEndSingleVehicle(t *testing.T) {
	sys, ids := corridorSystem(t, true)
	addVehicle(t, sys, "veh-1", 0, ids, 5*time.Second)

	sys.Start(context.Background())
	sys.Run(90 * time.Second)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Each of the three cameras generated exactly one event.
	store := sys.TrajStore()
	if store.NumVertices() != 3 {
		t.Fatalf("vertices = %d, want 3", store.NumVertices())
	}
	// Re-identification chained them: camA -> camC -> camE.
	if store.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", store.NumEdges())
	}
	v, err := store.FindByEventID(firstEventID(t, store, camID(0)))
	if err != nil {
		t.Fatal(err)
	}
	paths, err := store.Trajectory(v.ID, trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Fatalf("trajectory = %v", paths)
	}
	wantCams := []string{camID(0), camID(2), camID(4)}
	for i, vid := range paths[0] {
		vv, err := store.Vertex(vid)
		if err != nil {
			t.Fatal(err)
		}
		if vv.Event.CameraID != wantCams[i] {
			t.Errorf("hop %d at %q, want %q", i, vv.Event.CameraID, wantCams[i])
		}
		if vv.Event.TruthID != "veh-1" {
			t.Errorf("hop %d truth %q", i, vv.Event.TruthID)
		}
	}

	// Communication protocol counters: A informed C, C informed E; C and
	// E confirmed upstream.
	nodeA, err := sys.Node(camID(0))
	if err != nil {
		t.Fatal(err)
	}
	nodeC, err := sys.Node(camID(2))
	if err != nil {
		t.Fatal(err)
	}
	nodeE, err := sys.Node(camID(4))
	if err != nil {
		t.Fatal(err)
	}
	if nodeA.Stats().InformsSent != 1 {
		t.Errorf("A informs sent = %d", nodeA.Stats().InformsSent)
	}
	if nodeC.Stats().InformsReceived != 1 || nodeC.Stats().ConfirmsSent != 1 {
		t.Errorf("C stats = %+v", nodeC.Stats())
	}
	if nodeE.Stats().ReidMatches != 1 {
		t.Errorf("E reid matches = %d", nodeE.Stats().ReidMatches)
	}
	if nodeA.Stats().ConfirmsReceived != 1 {
		t.Errorf("A confirms received = %d", nodeA.Stats().ConfirmsReceived)
	}
}

// firstEventID fetches the event ID of the only event from a camera.
func firstEventID(t *testing.T, store *trajstore.Store, camera string) protocol.EventID {
	t.Helper()
	for vid := int64(1); ; vid++ {
		v, err := store.Vertex(vid)
		if err != nil {
			t.Fatalf("no event found for %s", camera)
		}
		if v.Event.CameraID == camera {
			return v.Event.ID
		}
	}
}

func TestEndToEndTwoVehiclesKeepIdentities(t *testing.T) {
	sys, ids := corridorSystem(t, true)
	addVehicle(t, sys, "veh-red", 0, ids, 2*time.Second)
	addVehicle(t, sys, "veh-blue", 1, ids, 12*time.Second)

	sys.Start(context.Background())
	sys.Run(2 * time.Minute)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}

	store := sys.TrajStore()
	if store.NumVertices() != 6 {
		t.Fatalf("vertices = %d, want 6", store.NumVertices())
	}
	if store.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", store.NumEdges())
	}
	// Every edge links same-vehicle events.
	for vid := int64(1); vid <= 6; vid++ {
		v, err := store.Vertex(vid)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range store.OutEdges(vid) {
			to, err := store.Vertex(e.To)
			if err != nil {
				t.Fatal(err)
			}
			if to.Event.TruthID != v.Event.TruthID {
				t.Errorf("edge %d->%d crosses identities %q -> %q",
					e.From, e.To, v.Event.TruthID, to.Event.TruthID)
			}
		}
	}
}

func TestInformArrivesBeforeVehicle(t *testing.T) {
	// The property behind Figure 10(a): the informing message reaches the
	// downstream camera well before the vehicle does.
	sys, ids := corridorSystem(t, true)
	addVehicle(t, sys, "veh-1", 0, ids, 5*time.Second)

	var informAt, vehicleAt time.Duration
	nodeC, err := sys.Node(camID(2))
	if err != nil {
		t.Fatal(err)
	}
	epoch := sys.Sim().Epoch()
	nodeC.SetHooks(camnode.Hooks{
		OnInformReceived: func(_ protocol.DetectionEvent, at time.Time) {
			if informAt == 0 {
				informAt = at.Sub(epoch)
			}
		},
		OnFirstSeen: func(_ string, at time.Time) {
			if vehicleAt == 0 {
				vehicleAt = at.Sub(epoch)
			}
		},
	})

	sys.Start(context.Background())
	sys.Run(90 * time.Second)
	sys.Stop()

	if informAt == 0 || vehicleAt == 0 {
		t.Fatalf("informAt=%v vehicleAt=%v", informAt, vehicleAt)
	}
	if informAt >= vehicleAt {
		t.Errorf("inform at %v should precede vehicle arrival at %v", informAt, vehicleAt)
	}
	// The gap should be dominated by the inter-camera travel time
	// (300 m at 15 m/s = 20 s), not by network latency.
	if gap := vehicleAt - informAt; gap < 5*time.Second {
		t.Errorf("gap = %v, expected several seconds of head start", gap)
	}
}

func TestSelfHealingAfterCameraFailure(t *testing.T) {
	sys, ids := corridorSystem(t, true)

	sys.Start(context.Background())
	sys.Run(10 * time.Second) // let registration and MDCS pushes settle

	nodeA, err := sys.Node(camID(0))
	if err != nil {
		t.Fatal(err)
	}
	// Before the failure, camA's east MDCS is camC.
	refs := nodeA.Topology().Lookup(geo.East)
	if len(refs) != 1 || refs[0].ID != camID(2) {
		t.Fatalf("pre-failure MDCS = %v", refs)
	}

	if err := sys.FailCamera(camID(2)); err != nil {
		t.Fatal(err)
	}
	sys.Run(15 * time.Second) // heartbeat loss + healing

	refs = nodeA.Topology().Lookup(geo.East)
	if len(refs) != 1 || refs[0].ID != camID(4) {
		t.Errorf("post-failure MDCS = %v, want camE", refs)
	}

	// A vehicle driving through now chains A -> E directly.
	addVehicle(t, sys, "veh-1", 0, ids, sys.Sim().Now()+2*time.Second)
	sys.Run(2 * time.Minute)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}
	store := sys.TrajStore()
	if store.NumVertices() != 2 {
		t.Fatalf("vertices = %d, want 2 (camC is dead)", store.NumVertices())
	}
	if store.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 (A -> E)", store.NumEdges())
	}
	if err := sys.FailCamera("ghost"); err == nil {
		t.Error("unknown camera accepted")
	}
}

func TestAddCameraWhileRunning(t *testing.T) {
	sys, ids := corridorSystem(t, true)
	sys.Start(context.Background())
	sys.Run(10 * time.Second)

	// camB joins mid-run between A and C; A's MDCS must switch to it.
	if err := sys.AddCameraAt("camB", ids[1], 0); err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Second)
	nodeA, err := sys.Node(camID(0))
	if err != nil {
		t.Fatal(err)
	}
	refs := nodeA.Topology().Lookup(geo.East)
	if len(refs) != 1 || refs[0].ID != "camB" {
		t.Errorf("MDCS after join = %v", refs)
	}
	sys.Stop()
}

func TestDuplicateCameraRejected(t *testing.T) {
	sys, ids := corridorSystem(t, true)
	if err := sys.AddCameraAt(camID(0), ids[1], 0); err == nil {
		t.Error("duplicate camera accepted")
	}
	if _, err := sys.Node("ghost"); err == nil {
		t.Error("unknown node lookup accepted")
	}
}

func TestStoreFramesIntegration(t *testing.T) {
	g, ids, err := roadnet.Corridor(2, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Graph:       g,
		Seed:        1,
		StoreFrames: true,
		DetectorFactory: func(string) (vision.Detector, error) {
			return vision.PerfectDetector{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddCameraAt("camA", ids[0], 0); err != nil {
		t.Fatal(err)
	}
	sys.Start(context.Background())
	sys.Run(3 * time.Second)
	sys.Stop()
	if got := sys.FrameStore().Count("camA"); got < 30 {
		t.Errorf("frame store holds %d frames", got)
	}
}

func TestFrameReplicationSurvivesOutage(t *testing.T) {
	g, ids, err := roadnet.Corridor(2, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Graph:         g,
		Seed:          1,
		StoreFrames:   true,
		FrameReplicas: 2,
		DetectorFactory: func(string) (vision.Detector, error) {
			return vision.PerfectDetector{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddCameraAt("camA", ids[0], 0); err != nil {
		t.Fatal(err)
	}
	sys.Start(context.Background())
	sys.Run(2 * time.Second)

	// Both replicas saw identical traffic before the outage.
	stores := sys.FrameStores()
	if len(stores) != 2 {
		t.Fatalf("FrameStores() returned %d stores, want 2", len(stores))
	}
	before := stores[0].Count("camA")
	if before == 0 || before != stores[1].Count("camA") {
		t.Fatalf("replicas diverge before outage: %d vs %d",
			before, stores[1].Count("camA"))
	}

	// Kill replica 0 mid-run: the camera keeps streaming and every frame
	// must still land on the survivor.
	if err := sys.FailFrameStore(0); err != nil {
		t.Fatal(err)
	}
	sys.Run(2 * time.Second)
	sys.Stop()

	if got := stores[0].Count("camA"); got != before {
		t.Errorf("dead replica grew from %d to %d frames", before, got)
	}
	after := stores[1].Count("camA")
	if after <= before {
		t.Errorf("survivor stalled at %d frames (had %d before outage)", after, before)
	}
}
