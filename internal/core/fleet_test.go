package core

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/vision"
)

func buildMonitoredSystem(t *testing.T, seed int64) (*System, []string) {
	t.Helper()
	g, ids, err := roadnet.Corridor(3, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Graph:         g,
		Seed:          seed,
		StoreFrames:   true,
		FrameReplicas: 2,
		EnableMonitor: true,
		DetectorFactory: func(string) (vision.Detector, error) {
			return vision.PerfectDetector{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cams := make([]string, 0, 3)
	for i, node := range ids {
		if err := sys.AddCameraAt(camID(i), node, 0); err != nil {
			t.Fatal(err)
		}
		cams = append(cams, camID(i))
	}
	addVehicle(t, sys, "veh-0", 0, ids, 5*time.Second)
	return sys, cams
}

// fetch reads one path off the monitor's registered HTTP handlers.
func fetchCluster(t *testing.T, m *fleet.Monitor, path string) []byte {
	t.Helper()
	mux := http.NewServeMux()
	m.RegisterHTTP(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestFleetMonitorSeesFailureAndRecovery walks the full health-plane
// lifecycle on virtual time: all nodes alive, a camera and a frame
// store die and are declared dead with node_down firing, then both
// recover and the alerts resolve.
func TestFleetMonitorSeesFailureAndRecovery(t *testing.T) {
	sys, cams := buildMonitoredSystem(t, 5)
	m := sys.Monitor()
	if m == nil {
		t.Fatal("EnableMonitor did not attach a monitor")
	}
	sys.Start(context.Background())
	sys.Run(10 * time.Second)

	// 3 cameras + topology server + trajstore + 2 frame stores.
	sum := m.Summary()
	if sum.Alive != 7 || sum.Dead != 0 {
		t.Fatalf("alive/dead = %d/%d, want 7/0 (%+v)", sum.Alive, sum.Dead, sum.Nodes)
	}

	if err := sys.FailCamera(cams[1]); err != nil {
		t.Fatal(err)
	}
	if err := sys.FailFrameStore(0); err != nil {
		t.Fatal(err)
	}
	sys.Run(15 * time.Second) // past liveness timeout (3× heartbeat)

	sum = m.Summary()
	if sum.Alive != 5 || sum.Dead != 2 {
		t.Fatalf("alive/dead after failures = %d/%d (%+v)", sum.Alive, sum.Dead, sum.Nodes)
	}
	active, _ := m.Alerts()
	firing := 0
	for _, a := range active {
		if a.Rule == fleet.NodeDownRule && a.State == fleet.AlertFiring {
			firing++
		}
	}
	if firing != 2 {
		t.Fatalf("node_down firing = %d, want 2 (%+v)", firing, active)
	}

	if err := sys.RecoverCamera(cams[1]); err != nil {
		t.Fatal(err)
	}
	if err := sys.RecoverFrameStore(0); err != nil {
		t.Fatal(err)
	}
	sys.Run(15 * time.Second)

	sum = m.Summary()
	if sum.Alive != 7 || sum.Dead != 0 {
		t.Fatalf("alive/dead after recovery = %d/%d (%+v)", sum.Alive, sum.Dead, sum.Nodes)
	}
	active, hist := m.Alerts()
	for _, a := range active {
		if a.Rule == fleet.NodeDownRule && a.State == fleet.AlertFiring {
			t.Fatalf("node_down still firing after recovery: %+v", a)
		}
	}
	// 2 fires + 2 resolves.
	if len(hist) != 4 {
		t.Fatalf("alert history = %+v, want 4 transitions", hist)
	}
	sys.Stop()
}

// TestClusterViewDeterministic is the health plane's reproducibility
// contract: two same-seed runs with the same failure/recovery schedule
// serve byte-identical /cluster and /cluster/alerts responses — node
// liveness timelines and alert transition sequences are pure functions
// of the seed.
func TestClusterViewDeterministic(t *testing.T) {
	run := func() ([]byte, []byte) {
		sys, cams := buildMonitoredSystem(t, 77)
		sys.Start(context.Background())
		sys.Sim().Schedule(20*time.Second, func() {
			_ = sys.FailCamera(cams[2])
			_ = sys.FailFrameStore(1)
		})
		sys.Sim().Schedule(50*time.Second, func() {
			_ = sys.RecoverCamera(cams[2])
			_ = sys.RecoverFrameStore(1)
		})
		sys.Run(sys.World().LastVehicleDone() + 40*time.Second)
		sys.Stop()
		m := sys.Monitor()
		return fetchCluster(t, m, "/cluster"), fetchCluster(t, m, "/cluster/alerts")
	}
	c1, a1 := run()
	c2, a2 := run()
	if len(c1) == 0 || !bytes.Contains(c1, []byte(`"nodes"`)) {
		t.Fatalf("suspicious /cluster body:\n%s", c1)
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("same-seed /cluster differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", c1, c2)
	}
	if !bytes.Equal(a1, a2) {
		t.Errorf("same-seed /cluster/alerts differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a1, a2)
	}
	// The schedule above produced real transitions, so determinism was
	// proven on a non-trivial timeline.
	if !bytes.Contains(a1, []byte(fleet.NodeDownRule)) {
		t.Errorf("no node_down transitions in alert history:\n%s", a1)
	}
}

// TestFederationFromSim asserts /cluster/metrics carries the shared sim
// registry exactly once: only the topology server's agent snapshots the
// registry (every sim component shares it), so fleet rollups must equal
// the registry's own values rather than a fleet-size multiple.
func TestFederationFromSim(t *testing.T) {
	sys, _ := buildMonitoredSystem(t, 9)
	sys.Start(context.Background())
	sys.Run(sys.World().LastVehicleDone() + 10*time.Second)
	sys.Stop()
	// The last periodic heartbeat is up to one interval staler than the
	// registry; push a final snapshot so the comparison is exact.
	for _, ag := range sys.fleetAgents {
		_ = ag.Push(context.Background())
	}

	direct, ok := metricValue(sys.Telemetry(), "coralpie_camnode_frames_total")
	if !ok || direct == 0 {
		t.Fatalf("no frames captured in sim registry (present=%v)", ok)
	}
	fed := sys.Monitor().FederateSnapshot()
	var rollup int64
	found := false
	for _, fam := range fed.Families {
		if fam.Name != "coralpie_camnode_frames_total" {
			continue
		}
		for _, ms := range fam.Metrics {
			for _, l := range ms.Labels {
				if l.Name == "node" && l.Value == fleet.FleetNode {
					rollup += ms.Value
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no fleet rollup for coralpie_camnode_frames_total")
	}
	if rollup != direct {
		t.Fatalf("fleet rollup = %d, registry = %d (double counting?)", rollup, direct)
	}
}
