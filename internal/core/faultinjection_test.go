package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/rpc/faultinject"
	"repro/internal/vision"
)

// TestSystemSurvivesLossyNetwork injects 10% message loss and checks the
// system degrades gracefully: no panics or deadlocks, every camera keeps
// generating events, and topology management recovers from lost
// heartbeats and updates (a camera falsely expired by a lost heartbeat
// re-registers on its next one).
func TestSystemSurvivesLossyNetwork(t *testing.T) {
	g, ids, err := roadnet.Corridor(5, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Graph:           g,
		Seed:            21,
		MessageLossRate: 0.10,
		DetectorFactory: func(string) (vision.Detector, error) {
			return vision.PerfectDetector{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4} {
		if err := sys.AddCameraAt(camID(i), ids[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < 4; v++ {
		addVehicle(t, sys, "veh-"+string(rune('0'+v)), v, ids, time.Duration(v)*15*time.Second)
	}
	sys.Start(context.Background())
	sys.Run(sys.World().LastVehicleDone() + 30*time.Second)
	// The run may end inside an eviction window: a camera whose last
	// couple of heartbeats were all lost is expired and has not yet had a
	// heartbeat through to re-register. Healing is the property under
	// test, so give it a few heartbeat cycles rather than sampling the
	// racy instant at the cutoff.
	for i := 0; i < 5 && len(sys.TopologyServer().Cameras()) < 3; i++ {
		sys.Run(2 * sys.cfg.HeartbeatInterval)
	}
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Despite loss, every camera saw every vehicle and produced events.
	for _, i := range []int{0, 2, 4} {
		node, err := sys.Node(camID(i))
		if err != nil {
			t.Fatal(err)
		}
		st := node.Stats()
		if st.EventsGenerated < 4 {
			t.Errorf("%s generated %d events, want >= 4", camID(i), st.EventsGenerated)
		}
	}
	// The store holds all 12 events; some re-id edges may be missing
	// (lost informs), but a clear majority should have survived 10% loss.
	store := sys.TrajStore()
	if store.NumVertices() < 12 {
		t.Errorf("vertices = %d, want >= 12", store.NumVertices())
	}
	if store.NumEdges() < 4 {
		t.Errorf("edges = %d: loss should not destroy most re-identification", store.NumEdges())
	}
	// All three cameras are still registered (lost heartbeats healed).
	if got := len(sys.TopologyServer().Cameras()); got != 3 {
		t.Errorf("registered cameras = %d, want 3", got)
	}
}

func TestLossRateValidationInConfig(t *testing.T) {
	g, _, err := roadnet.Corridor(2, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(Config{Graph: g, MessageLossRate: 1.5}); err == nil {
		t.Error("loss rate > 1 accepted")
	}
	if _, err := NewSystem(Config{Graph: g, Fault: faultinject.Config{ErrorRate: 2}}); err == nil {
		t.Error("error rate > 1 accepted")
	}
}

// TestFaultInjectionDeterministic runs the same seeded simulation twice
// with every fault class enabled (drop, error, latency with jitter) and
// requires byte-identical Prometheus renderings: the injected fault
// stream must be a pure function of the seed, so robustness experiments
// stay reproducible.
func TestFaultInjectionDeterministic(t *testing.T) {
	render := func() []byte {
		g, ids, err := roadnet.Corridor(3, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(Config{
			Graph: g,
			Seed:  99,
			Fault: faultinject.Config{
				DropRate:      0.05,
				ErrorRate:     0.02,
				Latency:       500 * time.Microsecond,
				LatencyJitter: time.Millisecond,
			},
			DetectorFactory: func(string) (vision.Detector, error) {
				return vision.PerfectDetector{}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, node := range ids {
			if err := sys.AddCameraAt(camID(i), node, 0); err != nil {
				t.Fatal(err)
			}
		}
		for v := 0; v < 2; v++ {
			addVehicle(t, sys, "veh-"+string(rune('0'+v)), v, ids, time.Duration(v)*15*time.Second)
		}
		sys.Start(context.Background())
		sys.Run(sys.World().LastVehicleDone() + 10*time.Second)
		sys.Stop()
		if err := sys.FlushAll(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sys.Telemetry().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("empty metric rendering")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed faulty runs rendered different metrics:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
