package core

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestSystemShutdownNoGoroutineLeak drives a deployment under a
// cancellable root context, cancels it mid-run, and asserts the full
// teardown: Run stops advancing at the cancellation, Shutdown flushes
// and closes cleanly (and is idempotent), and no goroutines survive.
func TestSystemShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	sys, ids := corridorSystem(t, true)
	addVehicle(t, sys, "veh-1", 0, ids, 5*time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	sys.Start(ctx)
	sys.Run(30 * time.Second)
	simAtCancel := sys.Sim().Now()
	cancel()

	// A cancelled root context makes further advances no-ops.
	sys.Run(60 * time.Second)
	if advanced := sys.Sim().Now() - simAtCancel; advanced >= 60*time.Second {
		t.Errorf("Run advanced %v after the root context was cancelled", advanced)
	}

	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := sys.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Idempotent: a second shutdown is a no-op, not a double close.
	if err := sys.Shutdown(shutdownCtx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}

	// The drain duration must have been recorded for telemetry.
	snap := sys.Telemetry().Snapshot()
	found := false
	for _, fam := range snap.Families {
		if fam.Name != "coralpie_system_shutdown_drain_seconds" {
			continue
		}
		for _, m := range fam.Metrics {
			if m.Count > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("shutdown drain histogram recorded nothing")
	}

	// Everything the system ran is sim-scheduled or joined by Shutdown:
	// no goroutines may outlive it.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines: before=%d after=%d\n%s", before, after, buf[:n])
	}
}
