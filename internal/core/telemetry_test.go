package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/vision"
)

// metricValue returns a counter/gauge value from a snapshot, summed over
// label children, and whether the family exists at all.
func metricValue(reg *obs.Registry, name string) (int64, bool) {
	for _, fam := range reg.Snapshot().Families {
		if fam.Name != name {
			continue
		}
		var total int64
		for _, m := range fam.Metrics {
			total += m.Value
		}
		return total, true
	}
	return 0, false
}

func buildTelemetrySystem(t *testing.T, seed int64) (*System, []string) {
	t.Helper()
	return buildTelemetrySystemWithSampling(t, seed, 0)
}

func buildTelemetrySystemWithSampling(t *testing.T, seed int64, sampleEvery int) (*System, []string) {
	t.Helper()
	g, ids, err := roadnet.Corridor(3, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{
		Graph:            g,
		Seed:             seed,
		TraceSampleEvery: sampleEvery,
		DetectorFactory: func(string) (vision.Detector, error) {
			return vision.PerfectDetector{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cams := make([]string, 0, 3)
	for i, node := range ids {
		if err := sys.AddCameraAt(camID(i), node, 0); err != nil {
			t.Fatal(err)
		}
		cams = append(cams, camID(i))
	}
	for v := 0; v < 2; v++ {
		addVehicle(t, sys, "veh-"+string(rune('0'+v)), v, ids, time.Duration(v)*10*time.Second)
	}
	return sys, cams
}

// TestFailCameraMovesTelemetry asserts the topology server's telemetry
// follows a camera failure: the live-camera gauge drops and the eviction
// counter rises once heartbeat loss is detected.
func TestFailCameraMovesTelemetry(t *testing.T) {
	sys, cams := buildTelemetrySystem(t, 7)
	reg := sys.Telemetry()
	sys.Start(context.Background())
	sys.Run(10 * time.Second)

	live, ok := metricValue(reg, "coralpie_topology_live_cameras")
	if !ok || live != int64(len(cams)) {
		t.Fatalf("live cameras gauge = %d (present=%v), want %d", live, ok, len(cams))
	}
	if ev, _ := metricValue(reg, "coralpie_topology_evictions_total"); ev != 0 {
		t.Fatalf("evictions before failure = %d, want 0", ev)
	}

	if err := sys.FailCamera(cams[1]); err != nil {
		t.Fatal(err)
	}
	// Liveness timeout is 2 heartbeats (4s); run well past it.
	sys.Run(10 * time.Second)

	live, _ = metricValue(reg, "coralpie_topology_live_cameras")
	if live != int64(len(cams)-1) {
		t.Errorf("live cameras gauge after failure = %d, want %d", live, len(cams)-1)
	}
	ev, _ := metricValue(reg, "coralpie_topology_evictions_total")
	if ev != 1 {
		t.Errorf("evictions after failure = %d, want 1", ev)
	}
	sys.Stop()
}

// TestTelemetryDeterministic runs the same seeded simulation twice and
// requires byte-identical Prometheus renderings: metric state must be a
// pure function of the seed, never of map iteration or goroutine timing.
func TestTelemetryDeterministic(t *testing.T) {
	render := func() []byte {
		sys, _ := buildTelemetrySystem(t, 99)
		sys.Start(context.Background())
		sys.Run(sys.World().LastVehicleDone() + 10*time.Second)
		sys.Stop()
		if err := sys.FlushAll(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sys.Telemetry().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("empty metric rendering")
	}
	if !bytes.Equal(a, b) {
		t.Errorf("same-seed runs rendered different metrics:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
