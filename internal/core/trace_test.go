package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// attrValue returns a span attribute by name.
func attrValue(sp obs.Span, name string) string {
	for _, l := range sp.Attrs {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// collectNames flattens a span tree into the set of span names reached
// from its roots.
func collectNames(nodes []*obs.TraceNode, into map[string]*obs.TraceNode) {
	for _, n := range nodes {
		into[n.Name] = n
		collectNames(n.Children, into)
	}
}

// findHandoffTrace scans the tracer for a single trace that tells the
// whole cross-camera story: rooted at one camera's capture and carrying
// the handoff, confirm, commit, and WAL-commit spans recorded at the
// re-identifying camera and the store.
func findHandoffTrace(tr *obs.Tracer) (string, []*obs.TraceNode) {
	for _, id := range tr.Traces() {
		roots := tr.AssembleTrace(id)
		if len(roots) != 1 || roots[0].Name != "capture" {
			continue
		}
		names := make(map[string]*obs.TraceNode)
		collectNames(roots, names)
		need := []string{"capture", "detect", "track", "inform", "confirm", "commit", "wal_commit"}
		ok := true
		for _, n := range need {
			if names[n] == nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// The handoff span is keyed by the receiving camera; require it to
		// be a different node than the one that captured the root frame.
		rootCam := attrValue(roots[0].Span, "camera")
		for name := range names {
			if cam, found := strings.CutPrefix(name, "handoff:"); found && cam != rootCam {
				return id, roots
			}
		}
	}
	return "", nil
}

// TestCrossCameraHandoffTrace runs the simulated deployment and asserts
// at least one vehicle handoff produced a single trace spanning frame
// capture on one camera through detect, track, inform, the receiving
// camera's handoff/confirm/commit, and the store's WAL commit — and that
// the trace is retrievable over /debug/trace, exported via the JSONL
// sink, and accompanied by a non-empty end-to-end latency histogram.
func TestCrossCameraHandoffTrace(t *testing.T) {
	sys, _ := buildTelemetrySystem(t, 99)
	var jsonl bytes.Buffer
	exporter := obs.NewJSONLWriter(&jsonl)
	sys.Tracer().SetSink(exporter.Export)

	sys.Start(context.Background())
	sys.Run(sys.World().LastVehicleDone() + 10*time.Second)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}

	traceID, roots := findHandoffTrace(sys.Tracer())
	if traceID == "" {
		t.Fatalf("no complete cross-camera handoff trace among %d traces: %v",
			len(sys.Tracer().Traces()), sys.Tracer().Traces())
	}

	// The tree must be connected: wal_commit hangs off commit, which
	// hangs off the handoff span, which joins the capture-rooted trace.
	names := make(map[string]*obs.TraceNode)
	collectNames(roots, names)
	commit := names["commit"]
	walOK := false
	for _, c := range commit.Children {
		if c.Name == "wal_commit" {
			walOK = true
		}
	}
	if !walOK {
		t.Errorf("wal_commit is not a child of commit: %+v", commit.Children)
	}
	if names["inform"].ParentID != names["track"].SpanID {
		t.Errorf("inform parented to %q, want track %q", names["inform"].ParentID, names["track"].SpanID)
	}

	// /debug/trace?id= serves the same assembled tree.
	mux := obs.NewMuxWith(obs.MuxConfig{Registry: sys.Telemetry(), Tracer: sys.Tracer()})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/trace?id=" + url.QueryEscape(traceID))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status = %d", resp.StatusCode)
	}
	var body struct {
		TraceID string           `json:"traceId"`
		Roots   []*obs.TraceNode `json:"roots"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /debug/trace: %v", err)
	}
	if body.TraceID != traceID || len(body.Roots) != 1 || body.Roots[0].Name != "capture" {
		t.Fatalf("/debug/trace returned %+v", body)
	}

	// The JSONL sink saw every recorded span, including this trace's.
	if exporter.Count() == 0 || exporter.Err() != nil {
		t.Fatalf("JSONL exporter count=%d err=%v", exporter.Count(), exporter.Err())
	}
	if !strings.Contains(jsonl.String(), `"trace":"`+traceID+`"`) {
		t.Error("exported JSONL is missing the handoff trace's spans")
	}

	// The end-to-end capture→commit histogram observed the commits.
	var prom bytes.Buffer
	if err := sys.Telemetry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	counts := regexp.MustCompile(`coralpie_e2e_track_commit_seconds_count\{[^}]*\} (\d+)`).
		FindAllStringSubmatch(prom.String(), -1)
	var total int64
	for _, m := range counts {
		n, _ := strconv.ParseInt(m[1], 10, 64)
		total += n
	}
	if total == 0 {
		t.Error("coralpie_e2e_track_commit_seconds histogram is empty")
	}
}

// renderTopology serializes every trace's span tree — names, span IDs,
// parent IDs, in ring order — so two runs can be compared structurally.
func renderTopology(tr *obs.Tracer) string {
	var b strings.Builder
	var walk func(n *obs.TraceNode, depth int)
	walk = func(n *obs.TraceNode, depth int) {
		fmt.Fprintf(&b, "%s%s id=%s parent=%s\n",
			strings.Repeat("  ", depth), n.Name, n.SpanID, n.ParentID)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, id := range tr.Traces() {
		fmt.Fprintf(&b, "trace %s\n", id)
		for _, root := range tr.AssembleTrace(id) {
			walk(root, 1)
		}
	}
	return b.String()
}

// TestTraceTopologyDeterministic runs the same seeded simulation twice
// and requires identical trace topologies, span IDs included: span
// allocation must be a pure function of the seed.
func TestTraceTopologyDeterministic(t *testing.T) {
	run := func() string {
		sys, _ := buildTelemetrySystem(t, 99)
		sys.Start(context.Background())
		sys.Run(sys.World().LastVehicleDone() + 10*time.Second)
		sys.Stop()
		if err := sys.FlushAll(); err != nil {
			t.Fatal(err)
		}
		return renderTopology(sys.Tracer())
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("no traces recorded")
	}
	if a != b {
		t.Errorf("same-seed runs produced different trace topologies:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestTraceSampling asserts SampleEvery thins whole traces, not
// individual spans: the sampled run records a strict, non-empty subset
// of the full run's traces.
func TestTraceSampling(t *testing.T) {
	g := func(sampleEvery int) int {
		sys, _ := buildTelemetrySystemWithSampling(t, 99, sampleEvery)
		sys.Start(context.Background())
		sys.Run(sys.World().LastVehicleDone() + 10*time.Second)
		sys.Stop()
		if err := sys.FlushAll(); err != nil {
			t.Fatal(err)
		}
		return len(sys.Tracer().Traces())
	}
	all, sampled := g(1), g(3)
	if all == 0 {
		t.Fatal("no traces with sampling disabled")
	}
	if sampled >= all {
		t.Errorf("SampleEvery=3 recorded %d traces, want fewer than %d", sampled, all)
	}
	if sampled == 0 {
		t.Error("SampleEvery=3 recorded no traces at all")
	}
}
