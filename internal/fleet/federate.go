package fleet

import (
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// FleetNode is the synthetic node label value of federated rollup
// series on /cluster/metrics.
const FleetNode = "fleet"

// FederateSnapshot merges the most recent metric snapshot of every
// known node into one obs.Snapshot suitable for WriteSnapshotPrometheus.
// Each per-node series gains a node="<id>" label (series that already
// carry a node label, like coralpie_build_info, keep theirs), and each
// family additionally gets node="fleet" rollup series with the node
// label stripped:
//
//   - counters: summed across nodes
//   - gauges: the value from the node with the latest SentAt heartbeat
//     (ties keep the first node in ID order)
//   - histograms: bucket-wise merged counts plus summed count/sum, but
//     only across nodes whose bucket bounds agree with the first node's;
//     disagreeing nodes keep their per-node series and are left out of
//     the rollup. Exemplars stay on per-node series only.
//
// Dead nodes keep contributing their last reported snapshot — the
// rollup describes everything the monitor knows, and liveness is
// /cluster's job, not /cluster/metrics'.
func (m *Monitor) FederateSnapshot() obs.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()

	type rollup struct {
		labels  []obs.Label // node label stripped
		value   int64       // counters: running sum; gauges: latest
		gaugeAt time.Time   // SentAt backing the current gauge value
		count   uint64
		sum     float64
		buckets []obs.BucketCount
		skip    bool // histogram bucket bounds disagreed
	}
	type famAgg struct {
		help    string
		typ     obs.MetricType
		series  []obs.MetricSnapshot // per-node series, in append order
		rollups map[string]*rollup
		keys    []string // sorted rollup keys
	}
	fams := make(map[string]*famAgg)
	var famNames []string

	for _, id := range m.nodeIDs {
		n := m.nodes[id]
		if n.hb.Metrics == nil {
			continue
		}
		for _, fam := range n.hb.Metrics.Families {
			agg, ok := fams[fam.Name]
			if !ok {
				agg = &famAgg{help: fam.Help, typ: fam.Type, rollups: make(map[string]*rollup)}
				fams[fam.Name] = agg
				famNames = append(famNames, fam.Name)
			}
			if agg.typ != fam.Type {
				// Same family name exposed with different types by
				// different builds; keep the first type's series only.
				continue
			}
			for _, ms := range fam.Metrics {
				series := ms
				series.Labels = withNodeLabel(ms.Labels, id)
				agg.series = append(agg.series, series)

				stripped := withoutNodeLabel(ms.Labels)
				key := labelKey(stripped)
				r, ok := agg.rollups[key]
				if !ok {
					r = &rollup{labels: stripped}
					agg.rollups[key] = r
					agg.keys = insertSorted(agg.keys, key)
				}
				switch fam.Type {
				case obs.TypeCounter:
					r.value += ms.Value
				case obs.TypeGauge:
					if r.gaugeAt.IsZero() || n.hb.SentAt.After(r.gaugeAt) {
						r.value = ms.Value
						r.gaugeAt = n.hb.SentAt
					}
				case obs.TypeHistogram:
					if r.skip {
						continue
					}
					if r.buckets == nil {
						r.buckets = append([]obs.BucketCount(nil), ms.Buckets...)
						r.count = ms.Count
						r.sum = ms.Sum
						continue
					}
					if !sameBounds(r.buckets, ms.Buckets) {
						r.skip = true
						r.buckets = nil
						continue
					}
					for i := range r.buckets {
						r.buckets[i].Count += ms.Buckets[i].Count
					}
					r.count += ms.Count
					r.sum += ms.Sum
				}
			}
		}
	}

	sort.Strings(famNames)
	snap := obs.Snapshot{Families: make([]obs.FamilySnapshot, 0, len(famNames))}
	for _, name := range famNames {
		agg := fams[name]
		fs := obs.FamilySnapshot{Name: name, Help: agg.help, Type: agg.typ}
		sort.SliceStable(agg.series, func(a, b int) bool {
			return labelKey(agg.series[a].Labels) < labelKey(agg.series[b].Labels)
		})
		fs.Metrics = append(fs.Metrics, agg.series...)
		for _, key := range agg.keys {
			r := agg.rollups[key]
			if r.skip {
				continue
			}
			ms := obs.MetricSnapshot{Labels: withNodeLabel(r.labels, FleetNode)}
			switch agg.typ {
			case obs.TypeCounter, obs.TypeGauge:
				ms.Value = r.value
			case obs.TypeHistogram:
				ms.Count = r.count
				ms.Sum = r.sum
				ms.Buckets = r.buckets
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// withNodeLabel returns labels plus node=<id> in sorted key position;
// labels that already carry a node key are returned copied, unchanged.
func withNodeLabel(labels []obs.Label, id string) []obs.Label {
	for _, l := range labels {
		if l.Name == "node" {
			return append([]obs.Label(nil), labels...)
		}
	}
	out := make([]obs.Label, 0, len(labels)+1)
	inserted := false
	for _, l := range labels {
		if !inserted && l.Name > "node" {
			out = append(out, obs.Label{Name: "node", Value: id})
			inserted = true
		}
		out = append(out, l)
	}
	if !inserted {
		out = append(out, obs.Label{Name: "node", Value: id})
	}
	return out
}

// withoutNodeLabel returns labels with any node pair removed.
func withoutNodeLabel(labels []obs.Label) []obs.Label {
	out := make([]obs.Label, 0, len(labels))
	for _, l := range labels {
		if l.Name != "node" {
			out = append(out, l)
		}
	}
	return out
}

// labelKey fingerprints a label list for sorting and rollup grouping.
func labelKey(labels []obs.Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\x00')
		b.WriteString(l.Value)
		b.WriteByte('\x00')
	}
	return b.String()
}

// sameBounds reports whether two bucket lists share upper bounds.
func sameBounds(a, b []obs.BucketCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].UpperBound != b[i].UpperBound {
			return false
		}
	}
	return true
}
