package fleet

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestConcurrentIngestSweepFederate hammers one monitor from many
// goroutines — pushers, sweepers, and readers — under the race detector
// (it is part of make race-stress). Correctness bar: no races, and every
// accepted heartbeat is accounted for.
func TestConcurrentIngestSweepFederate(t *testing.T) {
	m := NewMonitor(MonitorConfig{
		LivenessTimeout: 50 * time.Millisecond,
		Registry:        obs.NewRegistry(),
		Rules: []Rule{{
			Name: "busy", Metric: "coralpie_pushes_total",
			Kind: RuleThreshold, Op: ">", Value: 5,
		}},
	})

	const nodes, pushes = 8, 50
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			reg := obs.NewRegistry()
			c := reg.Counter("coralpie_pushes_total", "")
			for i := 0; i < pushes; i++ {
				c.Inc()
				snap := reg.Snapshot()
				_ = m.Ingest(&Heartbeat{
					NodeID:  fmt.Sprintf("node-%d", n),
					Seq:     uint64(i + 1),
					Metrics: &snap,
				})
			}
		}(n)
	}
	done := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					m.Sweep()
					_ = m.Summary()
					_ = m.FederateSnapshot()
					_, _ = m.Alerts()
				}
			}
		}()
	}
	go func() {
		defer close(done)
		// Wait for the pushers (first `nodes` wg members) by counting
		// total accepted heartbeats instead of a second WaitGroup.
		for {
			sum := m.Summary()
			var total uint64
			for _, n := range sum.Nodes {
				total += n.Heartbeats
			}
			if total == nodes*pushes {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	sum := m.Summary()
	if len(sum.Nodes) != nodes {
		t.Fatalf("nodes = %d, want %d", len(sum.Nodes), nodes)
	}
	for _, n := range sum.Nodes {
		if n.Heartbeats != pushes {
			t.Fatalf("node %s heartbeats = %d, want %d", n.NodeID, n.Heartbeats, pushes)
		}
	}
	// Every node crossed the alert threshold by the end; a final sweep
	// must fire all of them.
	m.Sweep()
	active, _ := m.Alerts()
	for _, n := range sum.Nodes {
		if alertState(active, "busy", n.NodeID) != AlertFiring {
			t.Fatalf("busy alert not firing for %s: %+v", n.NodeID, active)
		}
	}
}

// TestConcurrentAgentStartStop exercises the agent's background loop
// lifecycle under race: Start, concurrent pushes, idempotent Stop.
func TestConcurrentAgentStartStop(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var agents []*Agent
	for i := 0; i < 4; i++ {
		a := NewAgent(AgentConfig{
			NodeID:      fmt.Sprintf("n%d", i),
			Registry:    obs.NewRegistry(),
			OmitMetrics: true,
			Send: func(ctx context.Context, hb *Heartbeat) error {
				return m.Ingest(hb)
			},
		})
		a.Start(ctx, time.Millisecond)
		agents = append(agents, a)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(m.Nodes()) < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(m.Nodes()); got != 4 {
		t.Fatalf("nodes after start = %d, want 4", got)
	}
	var wg sync.WaitGroup
	for _, a := range agents {
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(a *Agent) { defer wg.Done(); a.Stop() }(a)
		}
	}
	wg.Wait()
}
