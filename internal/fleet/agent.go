package fleet

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// SendFunc delivers one heartbeat to the monitor. Real binaries bind a
// Client.Push; the DES runner binds an in-proc bus send so partitioned
// nodes' heartbeats fail exactly like their data traffic.
type SendFunc func(ctx context.Context, hb *Heartbeat) error

// AgentConfig configures NewAgent.
type AgentConfig struct {
	// NodeID is this node's fleet-unique identity (required).
	NodeID string
	// Component names the kind of node (coral-node, trajstore-server...).
	Component string
	// Clock stamps heartbeats; nil means real time.
	Clock clock.Clock
	// Registry is snapshotted into each heartbeat and receives the
	// agent's own send/error counters; nil uses Default().
	Registry *obs.Registry
	// OmitMetrics sends heartbeats without a registry snapshot. The DES
	// runner sets it: simulated components share one registry, and
	// federating the same snapshot once per agent would multiply every
	// counter by the fleet size.
	OmitMetrics bool
	// Checks are evaluated into every heartbeat — the same list the
	// node's /healthz?v=json serves, so the monitor sees exactly what
	// the node reports locally.
	Checks []obs.NamedCheck
	// Send delivers heartbeats (required).
	Send SendFunc
}

// Agent builds and pushes one node's heartbeats. Safe for concurrent
// use.
type Agent struct {
	cfg   AgentConfig
	begin time.Time
	seq   atomic.Uint64
	sent  *obs.Counter
	errs  *obs.Counter

	stopOnce sync.Once
	stopped  chan struct{}
}

// NewAgent builds an agent; it panics on a missing NodeID or Send
// (wiring-time programmer errors).
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.NodeID == "" {
		panic(errors.New("fleet: agent needs a node id"))
	}
	if cfg.Send == nil {
		panic(errors.New("fleet: agent needs a send function"))
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	return &Agent{
		cfg:   cfg,
		begin: cfg.Clock.Now(),
		sent: reg.Counter("coralpie_fleet_heartbeats_sent_total",
			"heartbeats pushed to the fleet monitor", "node", cfg.NodeID),
		errs: reg.Counter("coralpie_fleet_heartbeat_errors_total",
			"heartbeat pushes that failed", "node", cfg.NodeID),
		stopped: make(chan struct{}),
	}
}

// Heartbeat assembles the next heartbeat: sequence number, uptime,
// check results, and (unless omitted) the registry snapshot.
func (a *Agent) Heartbeat() *Heartbeat {
	now := a.cfg.Clock.Now()
	hb := &Heartbeat{
		NodeID:        a.cfg.NodeID,
		Component:     a.cfg.Component,
		Seq:           a.seq.Add(1),
		SentAt:        now,
		UptimeSeconds: now.Sub(a.begin).Seconds(),
		GoVersion:     runtime.Version(),
		Checks:        checksFromObs(obs.RunChecks(a.cfg.Checks)),
	}
	if !a.cfg.OmitMetrics {
		reg := a.cfg.Registry
		if reg == nil {
			reg = obs.Default()
		}
		snap := reg.Snapshot()
		hb.Metrics = &snap
	}
	return hb
}

// Push sends one heartbeat now, bounded by ctx, and counts the outcome.
func (a *Agent) Push(ctx context.Context) error {
	err := a.cfg.Send(ctx, a.Heartbeat())
	if err != nil {
		a.errs.Inc()
		return err
	}
	a.sent.Inc()
	return nil
}

// Start pushes a heartbeat immediately and then every interval on a
// background goroutine, until Stop is called or ctx is canceled. Push
// failures are counted and swallowed — a node must keep serving when
// the health plane is down. Real binaries use Start; the DES runner
// drives Push from simulator tickers instead.
func (a *Agent) Start(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		_ = a.Push(ctx)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = a.Push(ctx)
			case <-ctx.Done():
				return
			case <-a.stopped:
				return
			}
		}
	}()
}

// Stop ends the Start loop. Idempotent.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stopped) })
}
