package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWirePushRoundTrip(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})
	srv, err := Serve(m, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := Dial(srv.Addr(), ClientConfig{Registry: obs.NewRegistry()})
	defer c.Close()

	reg := obs.NewRegistry()
	reg.Counter("coralpie_frames_total", "").Add(42)
	snap := reg.Snapshot()
	hb := &Heartbeat{
		NodeID:    "cam1",
		Component: "coral-node",
		Seq:       1,
		SentAt:    time.Unix(100, 0),
		Checks:    []ComponentCheck{{Component: "pipeline", OK: true}},
		Metrics:   &snap,
	}
	if err := c.Push(context.Background(), hb); err != nil {
		t.Fatal(err)
	}

	sum := m.Summary()
	if len(sum.Nodes) != 1 || sum.Nodes[0].NodeID != "cam1" || sum.Nodes[0].State != NodeAlive {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.Nodes[0].Checks) != 1 || sum.Nodes[0].Checks[0].Component != "pipeline" {
		t.Fatalf("checks did not survive the wire: %+v", sum.Nodes[0].Checks)
	}
	// The metric snapshot crossed the wire intact.
	fed := m.FederateSnapshot()
	if ms, ok := series(fed, "coralpie_frames_total", "node", "cam1"); !ok || ms.Value != 42 {
		t.Fatalf("federated series = %+v ok=%v", ms, ok)
	}
}

func TestWireRejectsAnonymousHeartbeat(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})
	srv, err := Serve(m, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := Dial(srv.Addr(), ClientConfig{Registry: obs.NewRegistry()})
	defer c.Close()
	if err := c.Push(context.Background(), &Heartbeat{}); err == nil {
		t.Fatal("push without node id accepted")
	}
	if len(m.Nodes()) != 0 {
		t.Fatalf("rejected heartbeat registered a node: %v", m.Nodes())
	}
}

// TestWireLazyDialSurvivesDownMonitor is the degraded-mode contract: a
// node whose monitor is unreachable gets push errors, not a crash, and
// recovers as soon as the monitor appears on the same address.
func TestWireLazyDialSurvivesDownMonitor(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})
	srv, err := Serve(m, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	_ = srv.Close() // monitor goes away before the first push

	c := Dial(addr, ClientConfig{
		CallTimeout: 500 * time.Millisecond,
		Registry:    obs.NewRegistry(),
	})
	defer c.Close()
	if err := c.Push(context.Background(), &Heartbeat{NodeID: "cam1"}); err == nil {
		t.Fatal("push to a dead monitor succeeded")
	}

	// Monitor comes back on the same address: the cached-dial client
	// reconnects within the push.
	srv2, err := Serve(m, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if err := c.Push(context.Background(), &Heartbeat{NodeID: "cam1"}); err != nil {
		t.Fatalf("push after monitor recovery: %v", err)
	}
	if got := m.Nodes(); len(got) != 1 || got[0] != "cam1" {
		t.Fatalf("nodes = %v", got)
	}
}

func TestAgentPushesThroughWire(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})
	srv, err := Serve(m, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := Dial(srv.Addr(), ClientConfig{Registry: obs.NewRegistry()})
	defer c.Close()

	agentReg := obs.NewRegistry()
	agentReg.Counter("coralpie_frames_total", "").Add(3)
	a := NewAgent(AgentConfig{
		NodeID:    "cam9",
		Component: "coral-node",
		Registry:  agentReg,
		Checks:    []obs.NamedCheck{{Name: "pipeline", Check: nil}},
		Send:      c.Push,
	})
	if err := a.Push(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Push(context.Background()); err != nil {
		t.Fatal(err)
	}

	sum := m.Summary()
	if len(sum.Nodes) != 1 || sum.Nodes[0].Heartbeats != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Nodes[0].Component != "coral-node" || len(sum.Nodes[0].Checks) != 1 {
		t.Fatalf("node row = %+v", sum.Nodes[0])
	}
	// The agent counts its own sends in its registry.
	if v := counterValue(t, agentReg, "coralpie_fleet_heartbeats_sent_total"); v != 2 {
		t.Fatalf("sent counter = %d, want 2", v)
	}
}
