package fleet

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

// Flags is the shared fleet flag block every binary registers, so all
// of them join the health plane the same way:
//
//	-monitor            heartbeat address of a coral-monitor (empty = off)
//	-node-id            fleet-unique node identity
//	-heartbeat-interval how often to push heartbeats
type Flags struct {
	Monitor  string
	NodeID   string
	Interval time.Duration
}

// RegisterFlags registers the shared fleet flag block on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Monitor, "monitor", "",
		"fleet monitor heartbeat address (host:port); empty disables heartbeats")
	fs.StringVar(&f.NodeID, "node-id", "",
		"fleet-unique node identity (default <component>-<hostname>)")
	fs.DurationVar(&f.Interval, "heartbeat-interval", 5*time.Second,
		"fleet heartbeat push interval")
	return f
}

// ResolveNodeID returns the explicit -node-id, or <component>-<hostname>.
func (f *Flags) ResolveNodeID(component string) string {
	if f.NodeID != "" {
		return f.NodeID
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	return component + "-" + host
}

// Start joins the health plane when -monitor is set: it dials the
// monitor (lazily — an unreachable monitor only fails pushes, never the
// node), builds an agent snapshotting reg and evaluating checks, and
// starts the push loop. It returns a stop function (always non-nil) and
// whether heartbeats are enabled.
func (f *Flags) Start(ctx context.Context, component string, reg *obs.Registry, checks []obs.NamedCheck, logger *obs.Logger) (stop func(), enabled bool) {
	if f.Monitor == "" {
		return func() {}, false
	}
	client := Dial(f.Monitor, ClientConfig{Registry: reg})
	agent := NewAgent(AgentConfig{
		NodeID:    f.ResolveNodeID(component),
		Component: component,
		Registry:  reg,
		Checks:    checks,
		Send: func(ctx context.Context, hb *Heartbeat) error {
			return client.Push(ctx, hb)
		},
	})
	agent.Start(ctx, f.Interval)
	if logger != nil {
		logger.Info("fleet heartbeats started",
			"monitor", f.Monitor,
			"node", f.ResolveNodeID(component),
			"interval", fmt.Sprint(f.Interval))
	}
	return func() {
		agent.Stop()
		_ = client.Close()
	}, true
}

// RuleFlag is a repeatable -alert flag value collecting parsed alert
// rules: -alert 'drops=rate(coralpie_transport_lost_total)>0.5'.
type RuleFlag struct {
	Rules []Rule
}

// String implements flag.Value.
func (r *RuleFlag) String() string {
	if r == nil || len(r.Rules) == 0 {
		return ""
	}
	return fmt.Sprintf("%d rules", len(r.Rules))
}

// Set implements flag.Value by parsing one rule per occurrence.
func (r *RuleFlag) Set(s string) error {
	rule, err := ParseRule(s)
	if err != nil {
		return err
	}
	r.Rules = append(r.Rules, rule)
	return nil
}
