// Package fleet is Coral-Pie's cluster-wide health plane. Every node of
// a geo-distributed deployment — camera nodes, the topology server, the
// trajectory and frame stores — periodically pushes a compact heartbeat
// (identity, uptime, per-component readiness, and its obs.Registry
// snapshot) to a Monitor, which tracks per-node liveness by missed
// heartbeats, federates the per-node metrics into fleet rollups, and
// evaluates a small declarative alert-rule engine. The monitor serves
// the whole-deployment view over HTTP: /cluster (JSON summary),
// /cluster/metrics (Prometheus text with a node label), and
// /cluster/alerts (firing/resolved alert state and history).
//
// Heartbeats travel over the shared internal/rpc layer, so pushes get
// the same deadline, retry, metrics, and trace middleware as every
// other Coral-Pie wire protocol. In the discrete-event simulation the
// monitor runs in-process against the simulator's virtual clock, so
// dead-node detection and alert transitions are byte-identical across
// same-seed runs.
package fleet

import (
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// ComponentCheck is one component's readiness as carried by a
// heartbeat. It mirrors obs.CheckResult field-for-field so the agent
// can forward /healthz results without copying code.
type ComponentCheck struct {
	Component string `json:"component"`
	OK        bool   `json:"ok"`
	Err       string `json:"err,omitempty"`
}

// Heartbeat is one node's periodic report to the monitor.
type Heartbeat struct {
	// NodeID is the fleet-unique node identity (-node-id).
	NodeID string `json:"nodeId"`
	// Component names what kind of node this is (coral-node,
	// trajstore-server, ...).
	Component string `json:"component,omitempty"`
	// Seq increments per push from one agent, so the monitor can spot
	// restarts (sequence reset) and out-of-order delivery.
	Seq uint64 `json:"seq"`
	// SentAt is the node's clock at push time.
	SentAt time.Time `json:"sentAt"`
	// UptimeSeconds is how long the agent has been running.
	UptimeSeconds float64 `json:"uptimeSeconds,omitempty"`
	// GoVersion identifies the toolchain the node was built with.
	GoVersion string `json:"goVersion,omitempty"`
	// Checks carries the node's per-component readiness — the same
	// results its own /healthz?v=json reports.
	Checks []ComponentCheck `json:"checks,omitempty"`
	// Metrics is the node's registry snapshot, federated by the
	// monitor into the /cluster/metrics rollup. Nil is allowed: the
	// node still participates in liveness and check-based alerting.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// checksFromObs converts /healthz check results into wire form.
func checksFromObs(results []obs.CheckResult) []ComponentCheck {
	if len(results) == 0 {
		return nil
	}
	out := make([]ComponentCheck, len(results))
	for i, r := range results {
		out[i] = ComponentCheck{Component: r.Component, OK: r.OK, Err: r.Err}
	}
	return out
}

// pushRequest is the client -> monitor wire frame.
type pushRequest struct {
	Op        string                 `json:"op"`
	Heartbeat *Heartbeat             `json:"heartbeat,omitempty"`
	Trace     *protocol.TraceContext `json:"trace,omitempty"`
}

// TraceContext and SetTraceContext implement rpc.TraceCarrier, so the
// shared trace middleware can stitch heartbeat pushes into node traces.
func (r *pushRequest) TraceContext() *protocol.TraceContext      { return r.Trace }
func (r *pushRequest) SetTraceContext(tc *protocol.TraceContext) { r.Trace = tc }

// pushResponse is the monitor -> client reply frame.
type pushResponse struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}
