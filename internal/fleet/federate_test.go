package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// ingestNode snapshots reg into a heartbeat from node, stamped at.
func ingestNode(t *testing.T, m *Monitor, node string, reg *obs.Registry, at time.Time) {
	t.Helper()
	snap := reg.Snapshot()
	if err := m.Ingest(&Heartbeat{NodeID: node, SentAt: at, Metrics: &snap}); err != nil {
		t.Fatal(err)
	}
}

// series finds one metric in a federated snapshot by family name and
// exact label pairs.
func series(snap obs.Snapshot, family string, labels ...string) (obs.MetricSnapshot, bool) {
	for _, fam := range snap.Families {
		if fam.Name != family {
			continue
		}
	children:
		for _, m := range fam.Metrics {
			if len(m.Labels)*2 != len(labels) {
				continue
			}
			for i, l := range m.Labels {
				if l.Name != labels[2*i] || l.Value != labels[2*i+1] {
					continue children
				}
			}
			return m, true
		}
	}
	return obs.MetricSnapshot{}, false
}

func TestFederateCountersSumAcrossNodes(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	regA.Counter("coralpie_frames_total", "frames").Add(7)
	regB.Counter("coralpie_frames_total", "frames").Add(5)
	// A labeled child on one node only still lands in the rollup.
	regA.Counter("coralpie_sends_total", "sends", "peer", "cam2").Add(3)

	ingestNode(t, m, "nodeA", regA, time.Unix(10, 0))
	ingestNode(t, m, "nodeB", regB, time.Unix(10, 0))
	snap := m.FederateSnapshot()

	if ms, ok := series(snap, "coralpie_frames_total", "node", "nodeA"); !ok || ms.Value != 7 {
		t.Fatalf("nodeA series = %+v ok=%v", ms, ok)
	}
	if ms, ok := series(snap, "coralpie_frames_total", "node", "nodeB"); !ok || ms.Value != 5 {
		t.Fatalf("nodeB series = %+v ok=%v", ms, ok)
	}
	if ms, ok := series(snap, "coralpie_frames_total", "node", FleetNode); !ok || ms.Value != 12 {
		t.Fatalf("fleet rollup = %+v ok=%v, want 12", ms, ok)
	}
	if ms, ok := series(snap, "coralpie_sends_total", "node", FleetNode, "peer", "cam2"); !ok || ms.Value != 3 {
		t.Fatalf("labeled rollup = %+v ok=%v, want 3", ms, ok)
	}
}

func TestFederateGaugeTakesLatest(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	regA.Gauge("coralpie_queue_depth", "").Set(4)
	regB.Gauge("coralpie_queue_depth", "").Set(9)

	// nodeB's heartbeat is older, so nodeA's gauge value wins the rollup.
	ingestNode(t, m, "nodeA", regA, time.Unix(20, 0))
	ingestNode(t, m, "nodeB", regB, time.Unix(10, 0))
	snap := m.FederateSnapshot()

	if ms, ok := series(snap, "coralpie_queue_depth", "node", FleetNode); !ok || ms.Value != 4 {
		t.Fatalf("gauge rollup = %+v ok=%v, want latest (4)", ms, ok)
	}
}

func TestFederateHistogramsMergeBuckets(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})

	bounds := []float64{0.1, 1}
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	hA := regA.Histogram("coralpie_latency_seconds", "", bounds)
	hA.Observe(0.05)
	hA.Observe(0.5)
	hB := regB.Histogram("coralpie_latency_seconds", "", bounds)
	hB.Observe(0.05)
	hB.Observe(5)

	ingestNode(t, m, "nodeA", regA, time.Unix(10, 0))
	ingestNode(t, m, "nodeB", regB, time.Unix(10, 0))
	snap := m.FederateSnapshot()

	ms, ok := series(snap, "coralpie_latency_seconds", "node", FleetNode)
	if !ok {
		t.Fatal("no histogram rollup")
	}
	if ms.Count != 4 {
		t.Fatalf("rollup count = %d, want 4", ms.Count)
	}
	if got, want := ms.Sum, 0.05+0.5+0.05+5; got != want {
		t.Fatalf("rollup sum = %g, want %g", got, want)
	}
	// Cumulative buckets: le=0.1 -> 2, le=1 -> 3, le=+Inf -> 4.
	wantCounts := []uint64{2, 3, 4}
	if len(ms.Buckets) != len(wantCounts) {
		t.Fatalf("rollup buckets = %+v", ms.Buckets)
	}
	for i, want := range wantCounts {
		if ms.Buckets[i].Count != want {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, ms.Buckets[i].Count, want, ms.Buckets)
		}
	}
}

func TestFederateSkipsMismatchedBucketBounds(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	regA.Histogram("coralpie_latency_seconds", "", []float64{0.1, 1}).Observe(0.5)
	regB.Histogram("coralpie_latency_seconds", "", []float64{0.25, 2}).Observe(0.5)

	ingestNode(t, m, "nodeA", regA, time.Unix(10, 0))
	ingestNode(t, m, "nodeB", regB, time.Unix(10, 0))
	snap := m.FederateSnapshot()

	// Per-node series survive; the unmergeable rollup is omitted.
	if _, ok := series(snap, "coralpie_latency_seconds", "node", "nodeA"); !ok {
		t.Fatal("nodeA series lost")
	}
	if _, ok := series(snap, "coralpie_latency_seconds", "node", "nodeB"); !ok {
		t.Fatal("nodeB series lost")
	}
	if ms, ok := series(snap, "coralpie_latency_seconds", "node", FleetNode); ok {
		t.Fatalf("rollup produced despite disagreeing bounds: %+v", ms)
	}
}

func TestFederateKeepsExistingNodeLabel(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})

	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "edge-7", "coral-node")
	ingestNode(t, m, "nodeA", reg, time.Unix(10, 0))
	snap := m.FederateSnapshot()

	// The series' own node label survives — federation must not rewrite
	// it to the ingesting node's ID ("nodeA").
	found, rewritten := false, false
	for _, fam := range snap.Families {
		if fam.Name != "coralpie_build_info" {
			continue
		}
		for _, ms := range fam.Metrics {
			for _, l := range ms.Labels {
				if l.Name != "node" {
					continue
				}
				switch l.Value {
				case "edge-7":
					found = true
				case FleetNode: // the rollup series is fine
				default:
					rewritten = true
				}
			}
		}
	}
	if !found {
		t.Fatal("build_info series with its own node label missing from federation")
	}
	if rewritten {
		t.Fatal("build_info node label rewritten to the ingesting node's ID")
	}
}

func TestFederatedSnapshotRendersWithNodeLabels(t *testing.T) {
	m := NewMonitor(MonitorConfig{Registry: obs.NewRegistry()})

	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	regA.Counter("coralpie_frames_total", "frames").Add(1)
	regB.Counter("coralpie_frames_total", "frames").Add(2)
	ingestNode(t, m, "a", regA, time.Unix(10, 0))
	ingestNode(t, m, "b", regB, time.Unix(10, 0))

	var buf strings.Builder
	if err := obs.WriteSnapshotPrometheus(&buf, m.FederateSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	mustContain(t, out, `coralpie_frames_total{node="a"} 1`)
	mustContain(t, out, `coralpie_frames_total{node="b"} 2`)
	mustContain(t, out, `coralpie_frames_total{node="fleet"} 3`)
}
