package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

func TestParseRule(t *testing.T) {
	cases := []struct {
		in   string
		want Rule
		bad  bool
	}{
		{in: "rpc-errors=coralpie_rpc_errors_total>=10", want: Rule{
			Name: "rpc-errors", Metric: "coralpie_rpc_errors_total",
			Kind: RuleThreshold, Op: ">=", Value: 10,
		}},
		{in: "drops=rate(coralpie_transport_lost_total)>0.5", want: Rule{
			Name: "drops", Metric: "coralpie_transport_lost_total",
			Kind: RuleRate, Op: ">", Value: 0.5,
		}},
		{in: "low=coralpie_fleet_nodes<2", want: Rule{
			Name: "low", Metric: "coralpie_fleet_nodes",
			Kind: RuleThreshold, Op: "<", Value: 2,
		}},
		{in: "slack=coralpie_queue_depth<=0", want: Rule{
			Name: "slack", Metric: "coralpie_queue_depth",
			Kind: RuleThreshold, Op: "<=", Value: 0,
		}},
		{in: "", bad: true},
		{in: "noequals>5", bad: true},                   // "=" missing entirely
		{in: "x=metric", bad: true},                     // no operator
		{in: "x=rate(metric>5", bad: true},              // unclosed rate(
		{in: "x=metric>notanumber", bad: true},          // bad operand
		{in: "metric>=10", bad: true},                   // ">=" consumed the "="
		{in: "=coralpie_rpc_errors_total>1", bad: true}, // empty name
	}
	for _, tc := range cases {
		got, err := ParseRule(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseRule(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestRuleFlagAccumulates(t *testing.T) {
	var rf RuleFlag
	for _, s := range []string{
		"a=coralpie_x_total>1",
		"b=rate(coralpie_y_total)>=0.5",
	} {
		if err := rf.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	if len(rf.Rules) != 2 || rf.Rules[0].Name != "a" || rf.Rules[1].Kind != RuleRate {
		t.Fatalf("rules = %+v", rf.Rules)
	}
	if err := rf.Set("broken"); err == nil {
		t.Fatal("bad rule accepted by flag")
	}
}

// snapshotWith builds a heartbeat carrying one counter family at the
// given value.
func snapshotWith(node string, metric string, value int64) *Heartbeat {
	reg := obs.NewRegistry()
	c := reg.Counter(metric, "")
	c.Add(value)
	snap := reg.Snapshot()
	return &Heartbeat{NodeID: node, Metrics: &snap}
}

func TestThresholdRuleFiresAndResolves(t *testing.T) {
	now := time.Unix(100, 0)
	clk := &stepClock{t: now}
	m := NewMonitor(MonitorConfig{
		Clock:           clk,
		LivenessTimeout: time.Hour, // liveness out of the way
		Rules: []Rule{{
			Name: "errs", Metric: "coralpie_rpc_errors_total",
			Kind: RuleThreshold, Op: ">=", Value: 5,
		}},
		Registry: obs.NewRegistry(),
	})

	if err := m.Ingest(snapshotWith("n1", "coralpie_rpc_errors_total", 3)); err != nil {
		t.Fatal(err)
	}
	m.Sweep()
	if active, _ := m.Alerts(); alertState(active, "errs", "n1") != "" {
		t.Fatalf("alert fired below threshold: %+v", active)
	}

	clk.advance(time.Second)
	if err := m.Ingest(snapshotWith("n1", "coralpie_rpc_errors_total", 5)); err != nil {
		t.Fatal(err)
	}
	m.Sweep()
	active, hist := m.Alerts()
	if alertState(active, "errs", "n1") != AlertFiring {
		t.Fatalf("alert not firing at threshold: %+v", active)
	}
	if len(hist) != 1 || hist[0].State != AlertFiring || hist[0].Seq != 1 {
		t.Fatalf("history = %+v", hist)
	}

	// A second sweep while still over: no new transition.
	clk.advance(time.Second)
	m.Sweep()
	if _, hist = m.Alerts(); len(hist) != 1 {
		t.Fatalf("still-firing sweep grew history: %+v", hist)
	}

	clk.advance(time.Second)
	if err := m.Ingest(snapshotWith("n1", "coralpie_rpc_errors_total", 2)); err != nil {
		t.Fatal(err)
	}
	m.Sweep()
	active, hist = m.Alerts()
	if alertState(active, "errs", "n1") != AlertResolved {
		t.Fatalf("alert not resolved after drop: %+v", active)
	}
	if len(hist) != 2 || hist[1].State != AlertResolved || hist[1].Seq != 2 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestRateRuleMeasuresPerSecond(t *testing.T) {
	clk := &stepClock{t: time.Unix(100, 0)}
	m := NewMonitor(MonitorConfig{
		Clock:           clk,
		LivenessTimeout: time.Hour,
		Rules: []Rule{{
			Name: "drops", Metric: "coralpie_lost_total",
			Kind: RuleRate, Op: ">", Value: 0.5,
		}},
		Registry: obs.NewRegistry(),
	})

	// First sample only seeds the rate window — no alert possible.
	_ = m.Ingest(snapshotWith("n1", "coralpie_lost_total", 100))
	m.Sweep()
	if active, _ := m.Alerts(); alertState(active, "drops", "n1") != "" {
		t.Fatalf("rate alert on first sample: %+v", active)
	}

	// +10 over 10s = 1/s > 0.5: fires.
	clk.advance(10 * time.Second)
	_ = m.Ingest(snapshotWith("n1", "coralpie_lost_total", 110))
	m.Sweep()
	active, _ := m.Alerts()
	if alertState(active, "drops", "n1") != AlertFiring {
		t.Fatalf("rate alert not firing at 1/s: %+v", active)
	}
	if v := alertValue(active, "drops", "n1"); v != 1 {
		t.Fatalf("rate value = %g, want 1", v)
	}

	// +1 over 10s = 0.1/s: resolves.
	clk.advance(10 * time.Second)
	_ = m.Ingest(snapshotWith("n1", "coralpie_lost_total", 111))
	m.Sweep()
	if active, _ = m.Alerts(); alertState(active, "drops", "n1") != AlertResolved {
		t.Fatalf("rate alert not resolved at 0.1/s: %+v", active)
	}

	// Counter reset (node restart): negative delta clamps to 0, never
	// fires a "decrease" alert.
	clk.advance(10 * time.Second)
	_ = m.Ingest(snapshotWith("n1", "coralpie_lost_total", 3))
	m.Sweep()
	if active, _ = m.Alerts(); alertState(active, "drops", "n1") != AlertResolved {
		t.Fatalf("counter reset re-fired rate alert: %+v", active)
	}
}

func TestInvalidRulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMonitor accepted an invalid rule")
		}
	}()
	NewMonitor(MonitorConfig{
		Registry: obs.NewRegistry(),
		Rules:    []Rule{{Name: "x", Metric: "m", Kind: "nope", Op: ">"}},
	})
}

// stepClock is a manually advanced clock for deterministic sweeps.
type stepClock struct{ t time.Time }

func (c *stepClock) Now() time.Time          { return c.t }
func (c *stepClock) advance(d time.Duration) { c.t = c.t.Add(d) }

var _ clock.Clock = (*stepClock)(nil)

func alertState(alerts []Alert, rule, node string) AlertState {
	for _, a := range alerts {
		if a.Rule == rule && a.Node == node {
			return a.State
		}
	}
	return ""
}

func alertValue(alerts []Alert, rule, node string) float64 {
	for _, a := range alerts {
		if a.Rule == rule && a.Node == node {
			return a.Value
		}
	}
	return -1
}

func mustContain(t *testing.T, s, sub string) {
	t.Helper()
	if !strings.Contains(s, sub) {
		t.Fatalf("%q missing from:\n%s", sub, s)
	}
}
