package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// RuleKind discriminates how a rule reads its metric.
type RuleKind string

const (
	// RuleThreshold compares the metric's instantaneous value (counter
	// and gauge values, histogram observation counts).
	RuleThreshold RuleKind = "threshold"
	// RuleRate compares the metric's per-second rate of change between
	// consecutive monitor sweeps. Counters are the usual subject;
	// negative rates (counter reset after a node restart) are clamped
	// to zero rather than firing "decrease" alerts.
	RuleRate RuleKind = "rate"
)

// Rule is one declarative alert rule, evaluated per node on every
// monitor sweep against that node's most recent metric snapshot. A
// node with no snapshot (or without the metric) is skipped.
type Rule struct {
	// Name identifies the rule in alerts and transitions.
	Name string `json:"name"`
	// Metric is the family to read, e.g. coralpie_transport_lost_total.
	// All children of the family are summed.
	Metric string `json:"metric"`
	// Kind selects threshold or rate-of-change evaluation.
	Kind RuleKind `json:"kind"`
	// Op is the comparison: one of > >= < <=.
	Op string `json:"op"`
	// Value is the comparison operand; the rule fires while
	// "observed Op Value" holds.
	Value float64 `json:"value"`
}

// Validate reports the first problem with the rule, or nil.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("fleet: rule needs a name")
	}
	if r.Metric == "" {
		return fmt.Errorf("fleet: rule %s needs a metric", r.Name)
	}
	switch r.Kind {
	case RuleThreshold, RuleRate:
	default:
		return fmt.Errorf("fleet: rule %s: unknown kind %q", r.Name, r.Kind)
	}
	switch r.Op {
	case ">", ">=", "<", "<=":
	default:
		return fmt.Errorf("fleet: rule %s: unknown op %q", r.Name, r.Op)
	}
	return nil
}

// exceeded reports whether v trips the rule.
func (r Rule) exceeded(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Value
	case ">=":
		return v >= r.Value
	case "<":
		return v < r.Value
	case "<=":
		return v <= r.Value
	}
	return false
}

// ParseRule parses the compact rule grammar used by -alert flags:
//
//	<name>=<metric><op><value>          threshold rule
//	<name>=rate(<metric>)<op><value>    rate-of-change rule (per second)
//
// Examples:
//
//	drops=rate(coralpie_transport_lost_total)>0.5
//	rpc-errors=coralpie_rpc_errors_total>=10
func ParseRule(s string) (Rule, error) {
	name, expr, ok := strings.Cut(s, "=")
	// An op character directly after the cut means "=" belonged to
	// ">=/<=" and there was no name at all.
	if !ok || name == "" || strings.ContainsAny(name, "<>") {
		return Rule{}, fmt.Errorf("fleet: bad rule %q, want name=metric<op>value", s)
	}
	rule := Rule{Name: name, Kind: RuleThreshold}
	if rest, found := strings.CutPrefix(expr, "rate("); found {
		metric, tail, ok := strings.Cut(rest, ")")
		if !ok {
			return Rule{}, fmt.Errorf("fleet: bad rule %q: unclosed rate(", s)
		}
		rule.Kind = RuleRate
		rule.Metric = metric
		expr = tail
	} else {
		i := strings.IndexAny(expr, "<>")
		if i < 0 {
			return Rule{}, fmt.Errorf("fleet: bad rule %q: no comparison operator", s)
		}
		rule.Metric = expr[:i]
		expr = expr[i:]
	}
	op := ""
	for _, cand := range []string{">=", "<=", ">", "<"} {
		if strings.HasPrefix(expr, cand) {
			op = cand
			break
		}
	}
	if op == "" {
		return Rule{}, fmt.Errorf("fleet: bad rule %q: no comparison operator", s)
	}
	rule.Op = op
	v, err := strconv.ParseFloat(strings.TrimSpace(expr[len(op):]), 64)
	if err != nil {
		return Rule{}, fmt.Errorf("fleet: bad rule %q: %w", s, err)
	}
	rule.Value = v
	if err := rule.Validate(); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

// AlertState is the lifecycle state of one alert instance.
type AlertState string

const (
	// AlertFiring means the alert's condition currently holds.
	AlertFiring AlertState = "firing"
	// AlertResolved means the condition held earlier and has cleared.
	AlertResolved AlertState = "resolved"
)

// Alert is one (rule, node) alert instance's current state.
type Alert struct {
	Rule  string     `json:"rule"`
	Node  string     `json:"node,omitempty"`
	State AlertState `json:"state"`
	// Since is when the alert last changed state.
	Since time.Time `json:"since"`
	// Value is the observation that produced the current state.
	Value float64 `json:"value"`
	// Reason is a human-readable summary of the condition.
	Reason string `json:"reason,omitempty"`
}

// AlertTransition is one firing/resolved edge in the alert history.
type AlertTransition struct {
	// Seq orders transitions globally (monotonic per monitor).
	Seq int       `json:"seq"`
	At  time.Time `json:"at"`
	Alert
}

// ratePoint remembers one (rule, node) sample for rate evaluation.
type ratePoint struct {
	value float64
	at    time.Time
}

// alertEngine owns alert state: active (rule, node) alerts, the bounded
// transition history, and the previous samples rate rules difference
// against. It is not safe for concurrent use; the Monitor serializes
// access under its lock.
type alertEngine struct {
	rules      []Rule
	active     map[string]*Alert
	keys       []string // sorted keys of active, for deterministic render
	history    []AlertTransition
	maxHistory int
	seq        int
	prev       map[string]ratePoint

	transitions *obs.Counter
	firing      *obs.Gauge
}

func newAlertEngine(rules []Rule, maxHistory int, transitions *obs.Counter, firing *obs.Gauge) *alertEngine {
	if maxHistory <= 0 {
		maxHistory = 1024
	}
	return &alertEngine{
		rules:       rules,
		active:      make(map[string]*Alert),
		maxHistory:  maxHistory,
		prev:        make(map[string]ratePoint),
		transitions: transitions,
		firing:      firing,
	}
}

func alertKey(rule, node string) string { return rule + "\x00" + node }

// setState drives one (rule, node) alert to firing or not, recording a
// transition when the state actually changes. It returns the transition
// taken, or nil for a no-op.
func (e *alertEngine) setState(rule, node string, firing bool, value float64, reason string, now time.Time) *AlertTransition {
	key := alertKey(rule, node)
	cur, exists := e.active[key]
	switch {
	case firing && (!exists || cur.State != AlertFiring):
		if !exists {
			cur = &Alert{Rule: rule, Node: node}
			e.active[key] = cur
			e.keys = insertSorted(e.keys, key)
		}
		cur.State = AlertFiring
		cur.Since = now
		cur.Value = value
		cur.Reason = reason
		e.firing.Inc()
		return e.recordTransition(*cur, now)
	case !firing && exists && cur.State == AlertFiring:
		cur.State = AlertResolved
		cur.Since = now
		cur.Value = value
		cur.Reason = reason
		e.firing.Dec()
		return e.recordTransition(*cur, now)
	case exists && cur.State == AlertFiring:
		// Still firing: refresh the observation, keep Since.
		cur.Value = value
		cur.Reason = reason
	}
	return nil
}

func (e *alertEngine) recordTransition(a Alert, now time.Time) *AlertTransition {
	e.seq++
	tr := AlertTransition{Seq: e.seq, At: now, Alert: a}
	e.history = append(e.history, tr)
	if over := len(e.history) - e.maxHistory; over > 0 {
		e.history = append(e.history[:0], e.history[over:]...)
	}
	e.transitions.Inc()
	return &tr
}

// evaluate runs every metric rule against every node's latest snapshot.
// nodes must be sorted by ID and snapshots may be nil. Returns the
// transitions taken this pass, in evaluation order.
func (e *alertEngine) evaluate(nodes []*nodeEntry, now time.Time) []AlertTransition {
	var taken []AlertTransition
	for _, rule := range e.rules {
		for _, n := range nodes {
			if n.hb.Metrics == nil {
				continue
			}
			raw, ok := sampleFamily(n.hb.Metrics, rule.Metric)
			if !ok {
				continue
			}
			v := raw
			if rule.Kind == RuleRate {
				key := alertKey(rule.Name, n.hb.NodeID)
				prev, seen := e.prev[key]
				e.prev[key] = ratePoint{value: raw, at: now}
				if !seen || now.Sub(prev.at) <= 0 {
					continue
				}
				v = (raw - prev.value) / now.Sub(prev.at).Seconds()
				if v < 0 {
					v = 0 // counter reset after restart
				}
			}
			reason := fmt.Sprintf("%s(%s) = %g, want not %s %g",
				rule.Kind, rule.Metric, v, rule.Op, rule.Value)
			if tr := e.setState(rule.Name, n.hb.NodeID, rule.exceeded(v), v, reason, now); tr != nil {
				taken = append(taken, *tr)
			}
		}
	}
	return taken
}

// alerts returns the active alert instances sorted by (rule, node).
func (e *alertEngine) alerts() []Alert {
	out := make([]Alert, 0, len(e.keys))
	for _, key := range e.keys {
		out = append(out, *e.active[key])
	}
	return out
}

// sampleFamily sums a family's children in snap: counter and gauge
// values, or histogram observation counts.
func sampleFamily(snap *obs.Snapshot, name string) (float64, bool) {
	for _, fam := range snap.Families {
		if fam.Name != name {
			continue
		}
		var total float64
		for _, m := range fam.Metrics {
			if fam.Type == obs.TypeHistogram {
				total += float64(m.Count)
			} else {
				total += float64(m.Value)
			}
		}
		return total, true
	}
	return 0, false
}

// insertSorted inserts s into sorted (keeping order) if not present.
func insertSorted(sorted []string, s string) []string {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sorted) && sorted[lo] == s {
		return sorted
	}
	sorted = append(sorted, "")
	copy(sorted[lo+1:], sorted[lo:])
	sorted[lo] = s
	return sorted
}
