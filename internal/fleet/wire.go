package fleet

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/obs"
	"repro/internal/rpc"
)

// opHeartbeat is the single op of the heartbeat wire protocol.
const opHeartbeat = "heartbeat"

// maxWireBytes bounds one request/response frame. Heartbeats carry full
// registry snapshots, so the cap matches the store protocols' 8MB.
const maxWireBytes = 8 << 20

func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("fleet: marshal frame: %w", err)
	}
	if len(data) > maxWireBytes {
		return fmt.Errorf("fleet: frame too large: %d", len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("fleet: write frame: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("fleet: write frame: %w", err)
	}
	return nil
}

func readFrame(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("fleet: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxWireBytes {
		return fmt.Errorf("fleet: frame too large: %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("fleet: read frame: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("fleet: decode frame: %w", err)
	}
	return nil
}

// wireCodec adapts the length-prefixed-JSON heartbeat frames to the
// generic rpc server, the same shape as the store protocols.
type wireCodec struct{}

func (wireCodec) ReadRequest(r io.Reader) (*rpc.Request, error) {
	var req pushRequest
	if err := readFrame(r, &req); err != nil {
		return nil, err
	}
	return &rpc.Request{Method: req.Op, Body: &req}, nil
}

func (wireCodec) WriteResponse(w io.Writer, _ *rpc.Request, resp *rpc.Response, herr error) error {
	if herr != nil {
		return writeFrame(w, pushResponse{Err: herr.Error()})
	}
	return writeFrame(w, *resp.Body.(*pushResponse))
}

// ServerOptions tunes a heartbeat server beyond the defaults.
type ServerOptions struct {
	// WriteTimeout bounds each response write (0 = none).
	WriteTimeout time.Duration
	// Interceptors wrap request handling, after trace extraction.
	Interceptors []rpc.ServerInterceptor
	// Logger, when non-nil, logs each call with its trace.
	Logger *obs.Logger
}

// Server receives heartbeats over TCP and feeds them to a Monitor.
type Server struct {
	monitor *Monitor
	rs      *rpc.Server
}

// Serve starts a heartbeat server for the monitor on addr (use
// "127.0.0.1:0" for an ephemeral port).
func Serve(m *Monitor, addr string) (*Server, error) {
	return ServeWith(m, addr, ServerOptions{})
}

// ServeWith starts a heartbeat server with explicit middleware/timeout
// tuning.
func ServeWith(m *Monitor, addr string, opts ServerOptions) (*Server, error) {
	if m == nil {
		return nil, errors.New("fleet: nil monitor")
	}
	s := &Server{monitor: m}
	ics := opts.Interceptors
	if opts.Logger != nil {
		ics = append([]rpc.ServerInterceptor{rpc.WithServerLogging(opts.Logger)}, ics...)
	}
	rs, err := rpc.NewServer(addr, wireCodec{}, s.dispatch, rpc.ServerConfig{
		WriteTimeout: opts.WriteTimeout,
		Interceptors: ics,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	s.rs = rs
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.rs.Addr() }

// dispatch is the base handler under the server chain.
func (s *Server) dispatch(_ context.Context, req *rpc.Request) (*rpc.Response, error) {
	wreq := req.Body.(*pushRequest)
	resp := pushResponse{OK: true}
	switch wreq.Op {
	case opHeartbeat:
		if err := s.monitor.Ingest(wreq.Heartbeat); err != nil {
			resp = pushResponse{Err: err.Error()}
		}
	default:
		resp = pushResponse{Err: fmt.Sprintf("unknown op %q", wreq.Op)}
	}
	return &rpc.Response{Body: &resp}, nil
}

// Shutdown gracefully stops the server, letting in-flight pushes finish
// until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.rs.Shutdown(ctx) }

// Close stops accepting and closes connections immediately.
func (s *Server) Close() error { return s.rs.Close() }

// ClientConfig tunes the heartbeat client. The zero value selects the
// defaults noted per field.
type ClientConfig struct {
	// CallTimeout bounds one push when the caller's context carries no
	// deadline of its own. Default 5s.
	CallTimeout time.Duration
	// DialBackoffBase is the first retry delay after a failed dial
	// (default 50ms); DialBackoffMax caps the growth (default 1s).
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
	// RetryBudget is how many times one push may retry after its cached
	// connection proves stale (default 1; negative disables retries).
	RetryBudget int
	// Registry receives the client's coralpie_rpc_* telemetry
	// (component="fleet_client"); nil keeps standalone handles.
	Registry *obs.Registry
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if cfg.DialBackoffBase <= 0 {
		cfg.DialBackoffBase = 50 * time.Millisecond
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = time.Second
	}
	return cfg
}

// Client pushes heartbeats to a monitor over TCP. It is safe for
// concurrent use; pushes run through the shared rpc middleware chain
// (default deadline, trace inject, metrics, retry) and ride out monitor
// restarts by redialing within the push deadline.
type Client struct {
	cc   *rpc.ClientConn
	call rpc.Handler
	m    *rpc.Metrics
}

// Dial prepares a heartbeat client for addr. The dial is lazy: a
// monitor that is down at node start just makes the first pushes fail
// (and be counted), which is the desired degraded mode — nodes must not
// crash because the health plane is unreachable.
func Dial(addr string, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		cc: rpc.NewClientConn(addr, rpc.BackoffConfig{
			Base: cfg.DialBackoffBase,
			Max:  cfg.DialBackoffMax,
		}),
		m: rpc.NewMetrics(cfg.Registry, "component", "fleet_client"),
	}
	chain := []rpc.ClientInterceptor{
		rpc.WithDefaultDeadline(cfg.CallTimeout),
		rpc.WithTraceInject(),
		rpc.WithMetrics(c.m),
		rpc.WithRetry(c.m.RetryHooks(rpc.RetryConfig{Budget: cfg.RetryBudget})),
	}
	c.call = rpc.BindClient(c.roundTrip, chain...)
	return c
}

// Push sends one heartbeat, bounded by ctx (or the default call
// timeout).
func (c *Client) Push(ctx context.Context, hb *Heartbeat) error {
	wreq := pushRequest{Op: opHeartbeat, Heartbeat: hb}
	req := &rpc.Request{Method: opHeartbeat, Addr: c.cc.Addr(), Body: &wreq}
	_, err := c.call(ctx, req)
	return err
}

// roundTrip is the base handler under the middleware chain.
func (c *Client) roundTrip(ctx context.Context, req *rpc.Request) (*rpc.Response, error) {
	var wresp pushResponse
	err := c.cc.Call(ctx, func(conn net.Conn) error {
		if err := writeFrame(conn, req.Body.(*pushRequest)); err != nil {
			return err
		}
		return readFrame(conn, &wresp)
	})
	if err != nil {
		return nil, err
	}
	if !wresp.OK {
		return nil, fmt.Errorf("fleet: monitor rejected heartbeat: %s", wresp.Err)
	}
	return &rpc.Response{Body: &wresp}, nil
}

// Metrics exposes the client's rpc telemetry handles.
func (c *Client) Metrics() *rpc.Metrics { return c.m }

// Close closes the client connection.
func (c *Client) Close() error { return c.cc.Close() }
