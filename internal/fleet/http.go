package fleet

import (
	"encoding/json"
	"net/http"

	"repro/internal/obs"
)

// RegisterHTTP mounts the monitor's cluster endpoints on mux:
//
//   - /cluster          — JSON ClusterSummary: per-node liveness, check
//     results, and the liveness transition history
//   - /cluster/metrics  — the federated fleet view in Prometheus text:
//     every node's series labeled node="<id>" plus node="fleet" rollups
//   - /cluster/alerts   — JSON alert state: active instances sorted by
//     (rule, node) and the firing/resolved transition history
//
// Binaries hang these off the same obs mux that serves /metrics and
// /healthz, so one listener exposes both the node's own telemetry and
// the whole-fleet view when it hosts a monitor.
func (m *Monitor) RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.Summary())
	})
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WriteSnapshotPrometheus(w, m.FederateSnapshot())
	})
	mux.HandleFunc("/cluster/alerts", func(w http.ResponseWriter, r *http.Request) {
		active, history := m.Alerts()
		writeJSON(w, struct {
			Active  []Alert           `json:"active"`
			History []AlertTransition `json:"history,omitempty"`
		}{Active: active, History: history})
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
