package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
)

// NodeState is a node's liveness as judged by the monitor.
type NodeState string

const (
	// NodeAlive means the node's heartbeats are arriving on time.
	NodeAlive NodeState = "alive"
	// NodeDead means the node has missed enough heartbeats to be
	// presumed down (or never recovered after a sequence reset).
	NodeDead NodeState = "dead"
)

// Transition is one liveness state change the monitor observed.
type Transition struct {
	// Seq orders transitions globally (monotonic per monitor).
	Seq    int       `json:"seq"`
	NodeID string    `json:"nodeId"`
	From   NodeState `json:"from,omitempty"`
	To     NodeState `json:"to"`
	At     time.Time `json:"at"`
}

// NodeDownRule names the built-in liveness alert the monitor raises for
// every node it declares dead, without any configured rules.
const NodeDownRule = "node_down"

// MonitorConfig configures NewMonitor. The zero value works: real
// clock, 10s liveness timeout, no rules, default registry.
type MonitorConfig struct {
	// Clock stamps ingests, sweeps, and transitions. The DES runner
	// injects the simulator's virtual clock here so the whole liveness
	// and alert timeline is reproducible. Nil means real time.
	Clock clock.Clock
	// LivenessTimeout is how long after the last heartbeat a node is
	// declared dead. Deployments usually set it to a small multiple of
	// the fleet's heartbeat interval. Zero means 10s.
	LivenessTimeout time.Duration
	// Rules are the metric alert rules evaluated on every sweep.
	Rules []Rule
	// Registry receives the monitor's own telemetry; nil uses Default().
	Registry *obs.Registry
	// Logger receives liveness and alert transition lines; nil is quiet.
	Logger *obs.Logger
	// MaxTransitions bounds both the liveness and the alert transition
	// histories (oldest dropped). Zero means 1024.
	MaxTransitions int
}

// Monitor is the fleet's health authority: it ingests heartbeats,
// judges liveness, federates metrics, and evaluates alert rules. All
// methods are safe for concurrent use.
type Monitor struct {
	clk     clock.Clock
	timeout time.Duration
	log     *obs.Logger

	mu          sync.Mutex
	nodes       map[string]*nodeEntry
	nodeIDs     []string // sorted keys of nodes
	transitions []Transition
	maxHistory  int
	seq         int
	engine      *alertEngine

	// Self-telemetry.
	heartbeats  *obs.Counter
	rejects     *obs.Counter
	transCount  *obs.Counter
	aliveGauge  *obs.Gauge
	deadGauge   *obs.Gauge
	alertsFired *obs.Gauge
}

// nodeEntry is the monitor's record of one node.
type nodeEntry struct {
	hb         Heartbeat // most recent heartbeat
	firstSeen  time.Time
	lastSeen   time.Time
	state      NodeState
	heartbeats uint64 // accepted pushes
}

// NewMonitor builds a monitor; see MonitorConfig. Invalid rules panic —
// callers are expected to have run ParseRule or Rule.Validate.
func NewMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.LivenessTimeout <= 0 {
		cfg.LivenessTimeout = 10 * time.Second
	}
	if cfg.MaxTransitions <= 0 {
		cfg.MaxTransitions = 1024
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	for _, r := range cfg.Rules {
		if err := r.Validate(); err != nil {
			panic(err)
		}
	}
	log := cfg.Logger
	if log != nil {
		log = log.WithComponent("fleet-monitor").WithClock(cfg.Clock)
	}
	m := &Monitor{
		clk:        cfg.Clock,
		timeout:    cfg.LivenessTimeout,
		log:        log,
		nodes:      make(map[string]*nodeEntry),
		maxHistory: cfg.MaxTransitions,
		heartbeats: reg.Counter("coralpie_fleet_heartbeats_total",
			"heartbeats accepted by the monitor"),
		rejects: reg.Counter("coralpie_fleet_heartbeat_rejects_total",
			"heartbeats rejected by the monitor (missing node id)"),
		transCount: reg.Counter("coralpie_fleet_transitions_total",
			"node liveness state transitions observed by the monitor"),
		aliveGauge: reg.Gauge("coralpie_fleet_nodes", "fleet nodes by liveness state",
			"state", string(NodeAlive)),
		deadGauge: reg.Gauge("coralpie_fleet_nodes", "fleet nodes by liveness state",
			"state", string(NodeDead)),
		alertsFired: reg.Gauge("coralpie_fleet_alerts_firing",
			"alert instances currently firing"),
	}
	m.engine = newAlertEngine(cfg.Rules,
		cfg.MaxTransitions,
		reg.Counter("coralpie_fleet_alert_transitions_total",
			"alert firing/resolved transitions"),
		m.alertsFired)
	return m
}

// Ingest accepts one heartbeat. A heartbeat from a dead (or unknown)
// node immediately transitions it to alive — recovery is detected at
// push time, not at the next sweep.
func (m *Monitor) Ingest(hb *Heartbeat) error {
	if hb == nil || hb.NodeID == "" {
		m.rejects.Inc()
		return fmt.Errorf("fleet: heartbeat without node id")
	}
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[hb.NodeID]
	if !ok {
		n = &nodeEntry{firstSeen: now}
		m.nodes[hb.NodeID] = n
		m.nodeIDs = insertSorted(m.nodeIDs, hb.NodeID)
	}
	n.hb = *hb
	n.lastSeen = now
	n.heartbeats++
	m.heartbeats.Inc()
	if n.state != NodeAlive {
		m.transition(n, hb.NodeID, NodeAlive, now)
	}
	return nil
}

// Sweep is one liveness pass: any alive node whose last heartbeat is
// older than the liveness timeout transitions to dead, the built-in
// node_down alert is raised or cleared per node, and the configured
// metric rules are evaluated. Real deployments call it on a ticker;
// the DES runner calls it from a simulator ticker so detection times
// are virtual. It returns the number of nodes currently alive.
func (m *Monitor) Sweep() int {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	alive := 0
	for _, id := range m.nodeIDs {
		n := m.nodes[id]
		if n.state == NodeAlive && now.Sub(n.lastSeen) > m.timeout {
			m.transition(n, id, NodeDead, now)
		}
		if n.state == NodeAlive {
			alive++
		}
		down := n.state == NodeDead
		silent := now.Sub(n.lastSeen).Seconds()
		reason := fmt.Sprintf("no heartbeat from %s for %gs (timeout %gs)",
			id, silent, m.timeout.Seconds())
		if !down {
			reason = fmt.Sprintf("heartbeat from %s %gs ago", id, silent)
		}
		if tr := m.engine.setState(NodeDownRule, id, down, silent, reason, now); tr != nil {
			m.logAlert(*tr)
		}
	}
	for _, tr := range m.engine.evaluate(m.sortedNodes(), now) {
		m.logAlert(tr)
	}
	return alive
}

// transition moves n to state, recording and logging the edge. Caller
// holds m.mu.
func (m *Monitor) transition(n *nodeEntry, id string, to NodeState, now time.Time) {
	from := n.state
	n.state = to
	m.seq++
	m.transitions = append(m.transitions, Transition{
		Seq: m.seq, NodeID: id, From: from, To: to, At: now,
	})
	if over := len(m.transitions) - m.maxHistory; over > 0 {
		m.transitions = append(m.transitions[:0], m.transitions[over:]...)
	}
	m.transCount.Inc()
	switch to {
	case NodeAlive:
		m.aliveGauge.Inc()
		if from == NodeDead {
			m.deadGauge.Dec()
		}
	case NodeDead:
		m.deadGauge.Inc()
		m.aliveGauge.Dec()
	}
	if m.log != nil {
		m.log.Info("node liveness transition",
			"node", id, "from", string(from), "to", string(to))
	}
}

func (m *Monitor) logAlert(tr AlertTransition) {
	if m.log == nil {
		return
	}
	m.log.Warn("alert "+string(tr.State),
		"rule", tr.Rule, "node", tr.Node, "reason", tr.Reason)
}

// sortedNodes returns node entries in NodeID order. Caller holds m.mu.
func (m *Monitor) sortedNodes() []*nodeEntry {
	out := make([]*nodeEntry, 0, len(m.nodeIDs))
	for _, id := range m.nodeIDs {
		out = append(out, m.nodes[id])
	}
	return out
}

// NodeSummary is one node's row in the cluster summary.
type NodeSummary struct {
	NodeID        string           `json:"nodeId"`
	Component     string           `json:"component,omitempty"`
	State         NodeState        `json:"state"`
	FirstSeen     time.Time        `json:"firstSeen"`
	LastSeen      time.Time        `json:"lastSeen"`
	SilentSeconds float64          `json:"silentSeconds"`
	Heartbeats    uint64           `json:"heartbeats"`
	UptimeSeconds float64          `json:"uptimeSeconds,omitempty"`
	GoVersion     string           `json:"goVersion,omitempty"`
	Checks        []ComponentCheck `json:"checks,omitempty"`
}

// ClusterSummary is the monitor's whole-deployment view, served as JSON
// on /cluster. Nodes are sorted by ID and transitions by sequence, so
// two monitors fed the same timeline render byte-identical summaries.
type ClusterSummary struct {
	Now         time.Time     `json:"now"`
	Alive       int           `json:"alive"`
	Dead        int           `json:"dead"`
	Nodes       []NodeSummary `json:"nodes"`
	Transitions []Transition  `json:"transitions,omitempty"`
	Alerts      []Alert       `json:"alerts,omitempty"`
}

// Summary assembles the current cluster view without sweeping.
func (m *Monitor) Summary() ClusterSummary {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	sum := ClusterSummary{
		Now:         now,
		Nodes:       make([]NodeSummary, 0, len(m.nodeIDs)),
		Transitions: append([]Transition(nil), m.transitions...),
		Alerts:      m.engine.alerts(),
	}
	for _, id := range m.nodeIDs {
		n := m.nodes[id]
		if n.state == NodeAlive {
			sum.Alive++
		} else {
			sum.Dead++
		}
		sum.Nodes = append(sum.Nodes, NodeSummary{
			NodeID:        id,
			Component:     n.hb.Component,
			State:         n.state,
			FirstSeen:     n.firstSeen,
			LastSeen:      n.lastSeen,
			SilentSeconds: now.Sub(n.lastSeen).Seconds(),
			Heartbeats:    n.heartbeats,
			UptimeSeconds: n.hb.UptimeSeconds,
			GoVersion:     n.hb.GoVersion,
			Checks:        n.hb.Checks,
		})
	}
	return sum
}

// Alerts returns the active alert instances sorted by (rule, node),
// plus the bounded alert transition history in sequence order.
func (m *Monitor) Alerts() ([]Alert, []AlertTransition) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.engine.alerts(), append([]AlertTransition(nil), m.engine.history...)
}

// Transitions returns the bounded liveness transition history.
func (m *Monitor) Transitions() []Transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Transition(nil), m.transitions...)
}

// Nodes returns the known node IDs, sorted.
func (m *Monitor) Nodes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.nodeIDs...)
}

// sortTransitions is a helper for tests comparing histories from
// different monitors.
func sortTransitions(ts []Transition) {
	sort.Slice(ts, func(a, b int) bool { return ts[a].Seq < ts[b].Seq })
}
