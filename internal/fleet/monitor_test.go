package fleet

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestLivenessLifecycle(t *testing.T) {
	clk := &stepClock{t: time.Unix(1000, 0)}
	reg := obs.NewRegistry()
	m := NewMonitor(MonitorConfig{
		Clock:           clk,
		LivenessTimeout: 6 * time.Second,
		Registry:        reg,
	})

	if err := m.Ingest(&Heartbeat{NodeID: "cam1", Component: "coral-node"}); err != nil {
		t.Fatal(err)
	}
	_ = m.Ingest(&Heartbeat{NodeID: "cam0"})
	if got := m.Nodes(); len(got) != 2 || got[0] != "cam0" || got[1] != "cam1" {
		t.Fatalf("nodes = %v, want sorted [cam0 cam1]", got)
	}
	if alive := m.Sweep(); alive != 2 {
		t.Fatalf("alive = %d, want 2", alive)
	}

	// cam0 keeps beating, cam1 goes silent past the timeout.
	clk.advance(4 * time.Second)
	_ = m.Ingest(&Heartbeat{NodeID: "cam0"})
	clk.advance(4 * time.Second)
	_ = m.Ingest(&Heartbeat{NodeID: "cam0"})
	if alive := m.Sweep(); alive != 1 {
		t.Fatalf("alive after silence = %d, want 1", alive)
	}

	sum := m.Summary()
	if sum.Alive != 1 || sum.Dead != 1 {
		t.Fatalf("summary alive/dead = %d/%d", sum.Alive, sum.Dead)
	}
	if sum.Nodes[1].NodeID != "cam1" || sum.Nodes[1].State != NodeDead {
		t.Fatalf("cam1 row = %+v", sum.Nodes[1])
	}

	// The built-in node_down alert fires for the dead node only.
	active, _ := m.Alerts()
	if alertState(active, NodeDownRule, "cam1") != AlertFiring {
		t.Fatalf("node_down not firing for cam1: %+v", active)
	}
	if alertState(active, NodeDownRule, "cam0") == AlertFiring {
		t.Fatalf("node_down firing for live cam0: %+v", active)
	}

	// Recovery is detected at push time, and the alert resolves on the
	// next sweep.
	clk.advance(time.Second)
	_ = m.Ingest(&Heartbeat{NodeID: "cam1"})
	if sum := m.Summary(); sum.Dead != 0 {
		t.Fatalf("dead after recovery push = %d, want 0", sum.Dead)
	}
	m.Sweep()
	active, hist := m.Alerts()
	if alertState(active, NodeDownRule, "cam1") != AlertResolved {
		t.Fatalf("node_down not resolved: %+v", active)
	}
	if len(hist) != 2 {
		t.Fatalf("alert history = %+v, want fire+resolve", hist)
	}

	// Liveness transitions: cam0 alive, cam1 alive, cam1 dead, cam1 alive.
	trs := m.Transitions()
	if len(trs) != 4 {
		t.Fatalf("transitions = %+v", trs)
	}
	for i, want := range []struct {
		node string
		to   NodeState
	}{{"cam1", NodeAlive}, {"cam0", NodeAlive}, {"cam1", NodeDead}, {"cam1", NodeAlive}} {
		if trs[i].NodeID != want.node || trs[i].To != want.to || trs[i].Seq != i+1 {
			t.Fatalf("transition %d = %+v, want %v->%v", i, trs[i], want.node, want.to)
		}
	}
}

func TestIngestRejectsAnonymousHeartbeat(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(MonitorConfig{Registry: reg})
	if err := m.Ingest(&Heartbeat{}); err == nil {
		t.Fatal("heartbeat without node id accepted")
	}
	if err := m.Ingest(nil); err == nil {
		t.Fatal("nil heartbeat accepted")
	}
	if v := counterValue(t, reg, "coralpie_fleet_heartbeat_rejects_total"); v != 2 {
		t.Fatalf("rejects counter = %d, want 2", v)
	}
}

func TestTransitionHistoryBounded(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	m := NewMonitor(MonitorConfig{
		Clock:           clk,
		LivenessTimeout: time.Second,
		Registry:        obs.NewRegistry(),
		MaxTransitions:  4,
	})
	// Flap one node: each cycle is one dead + one alive transition.
	_ = m.Ingest(&Heartbeat{NodeID: "n"})
	for i := 0; i < 10; i++ {
		clk.advance(2 * time.Second)
		m.Sweep()
		_ = m.Ingest(&Heartbeat{NodeID: "n"})
	}
	trs := m.Transitions()
	if len(trs) != 4 {
		t.Fatalf("history length = %d, want bound 4", len(trs))
	}
	// Oldest dropped: sequence numbers keep counting.
	if trs[0].Seq <= 1 {
		t.Fatalf("oldest surviving seq = %d, want > 1", trs[0].Seq)
	}
	for i := 1; i < len(trs); i++ {
		if trs[i].Seq != trs[i-1].Seq+1 {
			t.Fatalf("non-contiguous history: %+v", trs)
		}
	}
}

func TestMonitorGauges(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	reg := obs.NewRegistry()
	m := NewMonitor(MonitorConfig{
		Clock:           clk,
		LivenessTimeout: time.Second,
		Registry:        reg,
	})
	_ = m.Ingest(&Heartbeat{NodeID: "a"})
	_ = m.Ingest(&Heartbeat{NodeID: "b"})
	if v := gaugeValue(t, reg, "coralpie_fleet_nodes", "state", string(NodeAlive)); v != 2 {
		t.Fatalf("alive gauge = %d, want 2", v)
	}
	clk.advance(5 * time.Second)
	_ = m.Ingest(&Heartbeat{NodeID: "b"})
	m.Sweep()
	if v := gaugeValue(t, reg, "coralpie_fleet_nodes", "state", string(NodeAlive)); v != 1 {
		t.Fatalf("alive gauge after death = %d, want 1", v)
	}
	if v := gaugeValue(t, reg, "coralpie_fleet_nodes", "state", string(NodeDead)); v != 1 {
		t.Fatalf("dead gauge = %d, want 1", v)
	}
	if v := gaugeValue(t, reg, "coralpie_fleet_alerts_firing"); v != 1 {
		t.Fatalf("firing gauge = %d, want 1", v)
	}
}

// counterValue sums a family's children in reg.
func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, fam := range reg.Snapshot().Families {
		if fam.Name != name {
			continue
		}
		var total int64
		for _, m := range fam.Metrics {
			total += m.Value
		}
		return total
	}
	t.Fatalf("family %s not registered", name)
	return 0
}

// gaugeValue reads one labeled child exactly.
func gaugeValue(t *testing.T, reg *obs.Registry, name string, labels ...string) int64 {
	t.Helper()
	for _, fam := range reg.Snapshot().Families {
		if fam.Name != name {
			continue
		}
	children:
		for _, m := range fam.Metrics {
			if len(m.Labels)*2 != len(labels) {
				continue
			}
			for i, l := range m.Labels {
				if l.Name != labels[2*i] || l.Value != labels[2*i+1] {
					continue children
				}
			}
			return m.Value
		}
	}
	t.Fatalf("series %s%v not registered", name, labels)
	return 0
}
