package obs

import (
	"fmt"
	"strings"
)

// LintMetricNames checks every family in snap against the repo's metric
// naming conventions and returns one message per violation (empty means
// clean). The conventions, enforced by make lint-metrics over the
// registries each binary actually wires:
//
//   - every family is prefixed coralpie_
//   - counters end in _total
//   - histograms end in _seconds or _bytes (the two units we record)
//   - gauges do not end in _total (that suffix promises monotonicity)
//   - no family ends in _bucket, _sum, or _count — those suffixes are
//     synthesized by the histogram text exposition and would collide
func LintMetricNames(snap Snapshot) []string {
	var violations []string
	for _, fam := range snap.Families {
		name := fam.Name
		if !strings.HasPrefix(name, "coralpie_") {
			violations = append(violations,
				fmt.Sprintf("%s: missing coralpie_ prefix", name))
		}
		for _, reserved := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, reserved) {
				violations = append(violations,
					fmt.Sprintf("%s: reserved histogram suffix %s", name, reserved))
			}
		}
		switch fam.Type {
		case TypeCounter:
			if !strings.HasSuffix(name, "_total") {
				violations = append(violations,
					fmt.Sprintf("%s: counter must end in _total", name))
			}
		case TypeHistogram:
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				violations = append(violations,
					fmt.Sprintf("%s: histogram must end in _seconds or _bytes", name))
			}
		case TypeGauge:
			if strings.HasSuffix(name, "_total") {
				violations = append(violations,
					fmt.Sprintf("%s: gauge must not end in _total", name))
			}
		}
	}
	return violations
}
