package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// HealthCheck reports nil while its subsystem is serving.
type HealthCheck func() error

// NewMux builds the telemetry HTTP handler:
//
//   - /metrics    — Prometheus text exposition of reg
//   - /healthz    — 200 "ok" while every check passes, 503 otherwise
//   - /debug/obs  — JSON snapshot: metrics plus recent/active spans
//
// reg may be nil (Default is used); tr may be nil (span fields are
// omitted).
func NewMux(reg *Registry, tr *Tracer, checks ...HealthCheck) *http.ServeMux {
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		for _, check := range checks {
			if err := check(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		type debugState struct {
			Metrics     Snapshot `json:"metrics"`
			Spans       []Span   `json:"spans,omitempty"`
			ActiveSpans int      `json:"active_spans,omitempty"`
		}
		state := debugState{Metrics: reg.Snapshot()}
		if tr != nil {
			state.Spans = tr.Recent()
			state.ActiveSpans = tr.ActiveCount()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(state)
	})
	return mux
}

// Server is a running telemetry HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for handler on addr ("host:0" picks an
// ephemeral port; read it back with Addr). It returns once the listener
// is bound; requests are served on a background goroutine.
func Serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
