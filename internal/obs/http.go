package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HealthCheck reports nil while its subsystem is serving.
type HealthCheck func() error

// NamedCheck is a HealthCheck attributed to one component, so /healthz
// can report per-component readiness and the fleet heartbeat can carry
// the same results to the monitor.
type NamedCheck struct {
	Name  string
	Check HealthCheck
}

// CheckResult is one component's readiness at evaluation time.
type CheckResult struct {
	Component string `json:"component"`
	OK        bool   `json:"ok"`
	Err       string `json:"err,omitempty"`
}

// RunChecks evaluates every named check once. Results keep registration
// order; a nil check function reports ok.
func RunChecks(checks []NamedCheck) []CheckResult {
	out := make([]CheckResult, 0, len(checks))
	for _, c := range checks {
		res := CheckResult{Component: c.Name, OK: true}
		if c.Check != nil {
			if err := c.Check(); err != nil {
				res.OK = false
				res.Err = err.Error()
			}
		}
		out = append(out, res)
	}
	return out
}

// MuxConfig configures NewMuxWith.
type MuxConfig struct {
	// Registry backs /metrics and /debug/obs; nil uses Default().
	Registry *Registry
	// Tracer backs the span half of /debug/obs and all of
	// /debug/trace; nil omits spans and 404s /debug/trace.
	Tracer *Tracer
	// PProf mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose stack traces and symbol names, so
	// binaries gate this behind an explicit -obs-pprof flag.
	PProf bool
	// Checks back /healthz; with none, /healthz always reports ok.
	Checks []HealthCheck
	// NamedChecks back /healthz too, and additionally power its
	// ?v=json mode: per-component readiness results. Binaries pass the
	// same slice to their fleet heartbeat agent, so what the monitor
	// sees is exactly what /healthz reports.
	NamedChecks []NamedCheck
}

// NewMux builds the telemetry HTTP handler:
//
//   - /metrics      — Prometheus text exposition of reg
//   - /healthz      — 200 "ok" while every check passes, 503 otherwise
//   - /debug/obs    — JSON snapshot: metrics plus recent/active spans
//   - /debug/trace  — assembled span tree for ?id=<trace>, or the list
//     of known trace IDs without ?id (404 when no tracer is attached)
//
// reg may be nil (Default is used); tr may be nil (span fields are
// omitted). NewMuxWith additionally offers opt-in pprof handlers.
func NewMux(reg *Registry, tr *Tracer, checks ...HealthCheck) *http.ServeMux {
	return NewMuxWith(MuxConfig{Registry: reg, Tracer: tr, Checks: checks})
}

// NewMuxWith is NewMux with full configuration; see MuxConfig.
func NewMuxWith(cfg MuxConfig) *http.ServeMux {
	reg := cfg.Registry
	if reg == nil {
		reg = Default()
	}
	tr := cfg.Tracer
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		results := RunChecks(cfg.NamedChecks)
		healthy := true
		for _, res := range results {
			healthy = healthy && res.OK
		}
		var anonErr error
		for _, check := range cfg.Checks {
			if err := check(); err != nil {
				healthy = false
				anonErr = err
				break
			}
		}
		if r.URL.Query().Get("v") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if !healthy {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				OK         bool          `json:"ok"`
				Components []CheckResult `json:"components,omitempty"`
			}{OK: healthy, Components: results})
			return
		}
		if !healthy {
			msg := "unhealthy"
			if anonErr != nil {
				msg = anonErr.Error()
			} else {
				for _, res := range results {
					if !res.OK {
						msg = res.Component + ": " + res.Err
						break
					}
				}
			}
			http.Error(w, msg, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		type debugState struct {
			Metrics     Snapshot `json:"metrics"`
			Spans       []Span   `json:"spans,omitempty"`
			ActiveSpans int      `json:"active_spans,omitempty"`
		}
		state := debugState{Metrics: reg.Snapshot()}
		if tr != nil {
			state.Spans = tr.Recent()
			state.ActiveSpans = tr.ActiveCount()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(state)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		id := r.URL.Query().Get("id")
		if id == "" {
			_ = enc.Encode(struct {
				Traces []string `json:"traces"`
			}{Traces: tr.Traces()})
			return
		}
		roots := tr.AssembleTrace(id)
		if len(roots) == 0 {
			http.Error(w, fmt.Sprintf("no spans for trace %q", id), http.StatusNotFound)
			return
		}
		_ = enc.Encode(struct {
			TraceID string       `json:"traceId"`
			Roots   []*TraceNode `json:"roots"`
		}{TraceID: id, Roots: roots})
	})
	if cfg.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a running telemetry HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for handler on addr ("host:0" picks an
// ephemeral port; read it back with Addr). It returns once the listener
// is bound; requests are served on a background goroutine. The server
// carries explicit read timeouts so a stalled client cannot pin a
// handler goroutine forever.
func Serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting connections and waits for in-flight
// requests until ctx expires, then hard-closes whatever remains. It
// follows the repo-wide graceful-shutdown convention: best effort
// within the deadline, guaranteed teardown after it.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		_ = s.srv.Close()
	}
	return err
}

// Close stops the listener and in-flight handlers immediately.
func (s *Server) Close() error { return s.srv.Close() }
