package obs

import (
	"strings"
	"testing"
	"time"
)

func TestExemplarRequiresOptIn(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("coralpie_test_seconds", "", []float64{0.1, 1})
	sc := SpanContext{TraceID: "tr-1", SpanID: "sp-1", Sampled: true}

	h.ObserveWithExemplar(0.05, sc)
	if h.Exemplar() != nil {
		t.Fatal("exemplar captured without EnableExemplars")
	}
	if h.Count() != 1 {
		t.Fatalf("observation dropped: count = %d", h.Count())
	}

	h.EnableExemplars()
	h.ObserveWithExemplar(0.05, SpanContext{TraceID: "tr-2", SpanID: "sp-2"})
	if h.Exemplar() != nil {
		t.Fatal("unsampled context must not become an exemplar")
	}
	h.ObserveWithExemplar(0.05, SpanContext{Sampled: true})
	if h.Exemplar() != nil {
		t.Fatal("invalid (empty) context must not become an exemplar")
	}

	h.ObserveWithExemplar(0.05, sc)
	ex := h.Exemplar()
	if ex == nil || ex.TraceID != "tr-1" || ex.SpanID != "sp-1" || ex.Value != 0.05 {
		t.Fatalf("exemplar = %+v, want tr-1/sp-1 @ 0.05", ex)
	}
}

func TestExemplarRendersOnMatchingBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("coralpie_test_seconds", "latency", []float64{0.1, 1, 10})
	h.EnableExemplars()
	h.Observe(0.05)
	h.ObserveWithExemplar(0.5, SpanContext{TraceID: "evt-3", SpanID: "cam1-7", Sampled: true})

	var b strings.Builder
	if err := WriteSnapshotPrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// The exemplar value 0.5 falls in the le="1" bucket — and only there.
	want := `coralpie_test_seconds_bucket{le="1"} 2 # {trace_id="evt-3",span_id="cam1-7"} 0.5`
	if !strings.Contains(out, want) {
		t.Fatalf("missing exemplar annotation %q in:\n%s", want, out)
	}
	if strings.Count(out, "# {trace_id=") != 1 {
		t.Fatalf("exemplar must annotate exactly one bucket:\n%s", out)
	}
}

// TestExemplarResolvesViaDebugTrace is the end-to-end contract: the
// trace ID an exemplar carries must be resolvable by the same tracer
// that backs /debug/trace, so an operator can jump from a latency
// bucket to the trace behind it.
func TestExemplarResolvesViaDebugTrace(t *testing.T) {
	tr := NewTracerWith(TracerConfig{Capacity: 16, IDPrefix: "t-"})
	t0 := time.Unix(0, 0)
	sc := tr.RecordRoot("commit-1", "e2e_commit", t0, t0.Add(90*time.Millisecond))
	if !sc.Sampled {
		t.Fatal("root span unexpectedly unsampled")
	}

	reg := NewRegistry()
	h := reg.Histogram("coralpie_e2e_track_commit_seconds", "", []float64{0.1, 1})
	h.EnableExemplars()
	h.ObserveWithExemplar(0.09, sc)

	ex := h.Exemplar()
	if ex == nil {
		t.Fatal("no exemplar captured")
	}
	roots := tr.AssembleTrace(ex.TraceID)
	if len(roots) == 0 {
		t.Fatalf("trace %q from exemplar not resolvable by tracer", ex.TraceID)
	}
	if roots[0].Span.SpanID != ex.SpanID {
		t.Fatalf("span %q not the trace root %q", ex.SpanID, roots[0].Span.SpanID)
	}
}
