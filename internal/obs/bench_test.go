package obs

import (
	"testing"
	"time"
)

// The instrumentation hot path must stay effectively free: an
// uncontended Counter.Inc is one atomic add (target < 20ns), and
// neither counters nor histograms may allocate per observation. Future
// PRs can diff these numbers to catch overhead regressions.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("coralpie_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("coralpie_bench_par_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("coralpie_bench_gauge", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("coralpie_bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkHistogramObserveDuration(b *testing.B) {
	h := NewRegistry().Histogram("coralpie_bench_dur_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(3 * time.Millisecond)
	}
}

func TestCounterIncDoesNotAllocate(t *testing.T) {
	c := NewRegistry().Counter("coralpie_noalloc_total", "")
	if n := testing.AllocsPerRun(1000, c.Inc); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", n)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	h := NewRegistry().Histogram("coralpie_noalloc_seconds", "", nil)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.001) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

func TestGaugeDoesNotAllocate(t *testing.T) {
	g := NewRegistry().Gauge("coralpie_noalloc_gauge", "")
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v per op, want 0", n)
	}
}
