package obs

import "runtime"

// RegisterBuildInfo registers the coralpie_build_info gauge on reg: a
// constant-1 gauge whose labels identify what is running where (fleet
// node identity, binary/component name, Go toolchain version). Every
// binary registers it at startup, so the monitor's federated view can
// answer "which build is cam3 running?" without shelling into the node.
func RegisterBuildInfo(reg *Registry, node, component string) *Gauge {
	if reg == nil {
		reg = Default()
	}
	g := reg.Gauge("coralpie_build_info",
		"build and runtime identity of this process (value is always 1)",
		"node", node, "component", component, "goversion", runtime.Version())
	g.Set(1)
	return g
}
