package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// LogLevel orders log severities.
type LogLevel int

// Log levels, least to most severe.
const (
	LevelDebug LogLevel = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's canonical lowercase name.
func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel parses a level name ("debug", "info", "warn", "error"),
// case-insensitively.
func ParseLevel(s string) (LogLevel, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
	}
}

// LogFormat selects the output encoding of a Logger.
type LogFormat int

// Log output formats.
const (
	// FormatText emits "<RFC3339Nano> LEVEL message key=value ...".
	FormatText LogFormat = iota
	// FormatJSON emits one JSON object per line with "ts", "level",
	// "msg", and one member per field (keys sorted — deterministic).
	FormatJSON
)

// ParseLogFormat parses a format name ("text" or "json").
func ParseLogFormat(s string) (LogFormat, error) {
	switch strings.ToLower(s) {
	case "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	default:
		return FormatText, fmt.Errorf("obs: unknown log format %q", s)
	}
}

// Logger is a leveled, structured logger. Derived loggers from With /
// WithComponent / WithTrace share the parent's writer, mutex, level,
// and format, adding bound fields; a line is the bound fields followed
// by the per-call pairs. Loggers are safe for concurrent use.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  LogLevel
	format LogFormat
	clk    clock.Clock
	fields []Label
}

// NewLogger returns a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level LogLevel, format LogFormat) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, format: format, clk: clock.Real{}}
}

// WithClock returns a derived logger stamping lines from clk (nil
// restores real time). Mostly for tests and simulations.
func (l *Logger) WithClock(clk clock.Clock) *Logger {
	if clk == nil {
		clk = clock.Real{}
	}
	d := *l
	d.clk = clk
	return &d
}

// With returns a derived logger with the given key/value pairs bound to
// every line. A trailing key without a value gets "".
func (l *Logger) With(kv ...string) *Logger {
	if len(kv) == 0 {
		return l
	}
	d := *l
	d.fields = append(append([]Label(nil), l.fields...), labelsOf(kv)...)
	return &d
}

// WithComponent binds the conventional "component" field.
func (l *Logger) WithComponent(name string) *Logger {
	return l.With("component", name)
}

// WithTrace binds the conventional "trace_id" field from a span
// context; an invalid context returns l unchanged.
func (l *Logger) WithTrace(sc SpanContext) *Logger {
	if sc.TraceID == "" {
		return l
	}
	return l.With("trace_id", sc.TraceID)
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level LogLevel) bool { return level >= l.level }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...string) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...string) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...string) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...string) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level LogLevel, msg string, kv []string) {
	if level < l.level {
		return
	}
	ts := l.clk.Now().UTC().Format(time.RFC3339Nano)
	pairs := append(append([]Label(nil), l.fields...), labelsOf(kv)...)

	var line []byte
	switch l.format {
	case FormatJSON:
		obj := make(map[string]string, len(pairs)+3)
		obj["ts"] = ts
		obj["level"] = level.String()
		obj["msg"] = msg
		for _, p := range pairs {
			obj[p.Name] = p.Value
		}
		buf, err := json.Marshal(obj) // map keys marshal sorted
		if err != nil {
			return
		}
		line = append(buf, '\n')
	default:
		var b strings.Builder
		b.WriteString(ts)
		b.WriteByte(' ')
		b.WriteString(strings.ToUpper(level.String()))
		b.WriteByte(' ')
		b.WriteString(quoteIfNeeded(msg))
		for _, p := range pairs {
			b.WriteByte(' ')
			b.WriteString(p.Name)
			b.WriteByte('=')
			b.WriteString(quoteIfNeeded(p.Value))
		}
		b.WriteByte('\n')
		line = []byte(b.String())
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(line)
}

// quoteIfNeeded quotes values that would break text-format tokenizing.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

// defaultLogger is the process-wide logger, used by library code (e.g.
// trajstore WAL recovery) that has no logger injected. Binaries replace
// it early in main via SetDefaultLogger.
var defaultLogger atomic.Pointer[Logger]

func init() {
	defaultLogger.Store(NewLogger(os.Stderr, LevelInfo, FormatText))
}

// DefaultLogger returns the process-wide logger.
func DefaultLogger() *Logger { return defaultLogger.Load() }

// SetDefaultLogger replaces the process-wide logger; nil is ignored.
func SetDefaultLogger(l *Logger) {
	if l != nil {
		defaultLogger.Store(l)
	}
}

// InitDefaultLogger parses -log-level / -log-format flag values, installs
// a stderr logger as the process default, and returns it so binaries can
// bind their component name.
func InitDefaultLogger(level, format string) (*Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	f, err := ParseLogFormat(format)
	if err != nil {
		return nil, err
	}
	l := NewLogger(os.Stderr, lvl, f)
	SetDefaultLogger(l)
	return l, nil
}
