package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("coralpie_test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("coralpie_test_gauge", "a gauge")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	g.Inc()
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestGetOrCreateReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("coralpie_x_total", "", "peer", "p1", "dir", "out")
	b := r.Counter("coralpie_x_total", "", "dir", "out", "peer", "p1") // label order irrelevant
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	c := r.Counter("coralpie_x_total", "", "peer", "p2", "dir", "out")
	if a == c {
		t.Fatal("different labels should return distinct counters")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("coralpie_mixed", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	r.Gauge("coralpie_mixed", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for name %q", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("coralpie_lat_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.565", h.Sum())
	}
	snap := r.Snapshot()
	m := snap.Families[0].Metrics[0]
	wantCum := []uint64{2, 3, 4, 5} // le=0.01 (0.005 and boundary 0.01), 0.1, 1, +Inf
	if len(m.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(m.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if m.Buckets[i].Count != want {
			t.Errorf("bucket[%d] = %d, want %d", i, m.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(m.Buckets[len(m.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket should be +Inf")
	}
	if m.Buckets[len(m.Buckets)-1].Count != m.Count {
		t.Error("+Inf bucket must equal total count")
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("coralpie_d_seconds", "", nil)
	h.ObserveDuration(250 * time.Millisecond)
	if math.Abs(h.Sum()-0.25) > 1e-12 {
		t.Fatalf("sum = %v, want 0.25", h.Sum())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("coralpie_msgs_total", "messages", "peer", `a"b\c`).Add(3)
	r.Gauge("coralpie_live", "live things").Set(2)
	h := r.Histogram("coralpie_lag_seconds", "lag", []float64{0.5, 1})
	h.Observe(0.4)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE coralpie_live gauge\ncoralpie_live 2\n",
		"# TYPE coralpie_msgs_total counter\n",
		`coralpie_msgs_total{peer="a\"b\\c"} 3`,
		`coralpie_lag_seconds_bucket{le="0.5"} 1`,
		`coralpie_lag_seconds_bucket{le="1"} 1`,
		`coralpie_lag_seconds_bucket{le="+Inf"} 2`,
		"coralpie_lag_seconds_sum 2.4",
		"coralpie_lag_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rendering twice must be byte-identical (deterministic ordering).
	var buf2 bytes.Buffer
	_ = r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("two renders of the same registry differ")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("coralpie_conc_total", "", "worker", string(rune('a'+i%4)))
			h := r.Histogram("coralpie_conc_seconds", "", nil)
			g := r.Gauge("coralpie_conc_gauge", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-4)
				g.Add(1)
				g.Add(-1)
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, fam := range snap.Families {
		switch fam.Name {
		case "coralpie_conc_total":
			for _, m := range fam.Metrics {
				total += m.Value
			}
		case "coralpie_conc_seconds":
			if fam.Metrics[0].Count != 8000 {
				t.Errorf("histogram count = %d, want 8000", fam.Metrics[0].Count)
			}
		}
	}
	if total != 8000 {
		t.Errorf("counter total = %d, want 8000", total)
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return a stable registry")
	}
}
