package obs

import (
	"fmt"
	"strings"
	"testing"
)

// unescapeLabel reverses the text-exposition label escaping, as a
// Prometheus scraper would when parsing the quoted value.
func unescapeLabel(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("dangling backslash in %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("unknown escape \\%c in %q", s[i], s)
		}
	}
	return b.String(), nil
}

func TestLabelEscapingRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`back\slash`,
		"new\nline",
		`quo"te`,
		`all\of"them` + "\n" + `at\\once`,
		`trailing\`,
		"\n",
	}
	for _, original := range hostile {
		escaped := escapeLabel(original)
		if strings.ContainsAny(escaped, "\n") {
			t.Errorf("escapeLabel(%q) = %q still contains a raw newline", original, escaped)
		}
		back, err := unescapeLabel(escaped)
		if err != nil {
			t.Errorf("unescape(%q): %v", escaped, err)
			continue
		}
		if back != original {
			t.Errorf("round trip %q -> %q -> %q", original, escaped, back)
		}
	}
}

func TestHostileLabelsRenderParseably(t *testing.T) {
	reg := NewRegistry()
	hostile := `evil"value` + "\n" + `with\stuff`
	reg.Counter("coralpie_test_total", "counts", "tag", hostile).Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Exactly: name, one escaped label, value — all on one line.
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "coralpie_test_total{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("sample line missing in:\n%s", out)
	}
	open := strings.Index(line, `{tag="`)
	close := strings.LastIndex(line, `"}`)
	if open < 0 || close < 0 {
		t.Fatalf("malformed sample line %q", line)
	}
	back, err := unescapeLabel(line[open+len(`{tag="`) : close])
	if err != nil {
		t.Fatalf("rendered label does not parse: %v", err)
	}
	if back != hostile {
		t.Fatalf("rendered label round trip = %q, want %q", back, hostile)
	}
}

func TestHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("coralpie_test_total", "line one\nline two \\ done").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP coralpie_test_total line one\nline two \\ done`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("help not escaped, want %q in:\n%s", want, b.String())
	}
}
