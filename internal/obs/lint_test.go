package obs

import (
	"strings"
	"testing"
)

func TestLintMetricNames(t *testing.T) {
	cases := []struct {
		name    string
		build   func(r *Registry)
		wantHit string // substring of the expected violation, "" = clean
	}{
		{"clean counter", func(r *Registry) {
			r.Counter("coralpie_frames_total", "").Inc()
		}, ""},
		{"clean histogram seconds", func(r *Registry) {
			r.Histogram("coralpie_latency_seconds", "", []float64{1}).Observe(0.5)
		}, ""},
		{"clean histogram bytes", func(r *Registry) {
			r.Histogram("coralpie_payload_bytes", "", []float64{1024}).Observe(10)
		}, ""},
		{"clean gauge", func(r *Registry) {
			r.Gauge("coralpie_queue_depth", "").Set(3)
		}, ""},
		{"missing prefix", func(r *Registry) {
			r.Counter("frames_total", "").Inc()
		}, "missing coralpie_ prefix"},
		{"counter without _total", func(r *Registry) {
			r.Counter("coralpie_frames", "").Inc()
		}, "counter must end in _total"},
		{"histogram with bad unit", func(r *Registry) {
			r.Histogram("coralpie_latency_ms", "", []float64{1}).Observe(1)
		}, "histogram must end in _seconds or _bytes"},
		{"gauge ending in _total", func(r *Registry) {
			r.Gauge("coralpie_live_total", "").Set(1)
		}, "gauge must not end in _total"},
		{"reserved suffix", func(r *Registry) {
			r.Gauge("coralpie_queue_count", "").Set(1)
		}, "reserved histogram suffix _count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			tc.build(reg)
			got := LintMetricNames(reg.Snapshot())
			if tc.wantHit == "" {
				if len(got) != 0 {
					t.Fatalf("unexpected violations: %v", got)
				}
				return
			}
			if len(got) == 0 {
				t.Fatalf("violation %q not reported", tc.wantHit)
			}
			found := false
			for _, v := range got {
				found = found || strings.Contains(v, tc.wantHit)
			}
			if !found {
				t.Fatalf("violations %v do not mention %q", got, tc.wantHit)
			}
		})
	}
}
