package obs

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// Span is one completed traced interval. Spans are keyed by a trace ID —
// in Coral-Pie, the detection-event ID that travels with a vehicle
// handoff from the informing camera through the MDCS to the
// re-identifying camera — plus a span name identifying the leg. SpanID
// and ParentID link spans into a tree: every span carries its own ID and
// (except for roots) the ID of the span that caused it, possibly on
// another node.
type Span struct {
	Trace    string    `json:"trace"`
	Name     string    `json:"name"`
	SpanID   string    `json:"spanId,omitempty"`
	ParentID string    `json:"parentId,omitempty"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Attrs    []Label   `json:"attrs,omitempty"`
}

// Duration returns the span's elapsed time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Tracer records spans. Begin opens a span keyed by (trace, name);
// Finish closes it and moves it into a bounded ring of recent spans.
// Spans that are begun and never finished are evicted FIFO once the
// active table exceeds its bound, so lost handoffs (vehicles that leave
// the camera network) cannot leak memory.
//
// The hierarchical API (RecordRoot, RecordChild, StartChild, BeginIn) in
// trace.go additionally links spans into per-trace trees via SpanContext
// and applies head sampling at trace roots.
//
// Timestamps come from the injected clock and span IDs from the injected
// IDSource, so a Tracer driven by the discrete-event simulator's virtual
// clock produces identical spans — including identical tree topology —
// on identical runs.
type Tracer struct {
	clk         clock.Clock
	max         int
	ids         IDSource
	idPrefix    string
	sampleEvery int

	mu        sync.Mutex
	active    map[string]*Span
	activeOrd []activeRef
	recent    []Span // ring buffer
	next      int    // ring write cursor
	full      bool
	finished  int64
	evicted   int64
	roots     int64 // sampling decisions taken at RecordRoot
	sink      SpanSink
}

// TracerConfig configures NewTracerWith. The zero value of every field
// has a sensible default.
type TracerConfig struct {
	// Clock provides span timestamps; nil uses real time.
	Clock clock.Clock
	// Capacity bounds both the active-span table and the recent-span
	// ring (minimum 1).
	Capacity int
	// IDs allocates span IDs; nil uses a fresh process-local sequence.
	// Inject a shared or pre-seeded source when merging spans from
	// several tracers.
	IDs IDSource
	// IDPrefix prefixes every allocated span ID (e.g. the node name
	// plus "-"), keeping IDs unique across processes whose spans are
	// stitched into one trace offline.
	IDPrefix string
	// SampleEvery keeps 1 of every N traces rooted at this tracer
	// (RecordRoot); values <= 1 keep everything. The decision is
	// modular on the root sequence number — deterministic, not random —
	// and child spans inherit it, including across the wire.
	SampleEvery int
}

// NewTracer returns a tracer bounding both the active-span table and the
// recent-span ring to capacity (minimum 1). A nil clock uses real time.
func NewTracer(clk clock.Clock, capacity int) *Tracer {
	return NewTracerWith(TracerConfig{Clock: clk, Capacity: capacity})
}

// NewTracerWith returns a tracer with explicit ID allocation and
// sampling configuration. See TracerConfig.
func NewTracerWith(cfg TracerConfig) *Tracer {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	capacity := cfg.Capacity
	if capacity < 1 {
		capacity = 1
	}
	ids := cfg.IDs
	if ids == nil {
		ids = &SeqIDs{}
	}
	return &Tracer{
		clk:         clk,
		max:         capacity,
		ids:         ids,
		idPrefix:    cfg.IDPrefix,
		sampleEvery: cfg.SampleEvery,
		active:      make(map[string]*Span),
		recent:      make([]Span, capacity),
	}
}

func spanKey(trace, name string) string { return trace + "\x00" + name }

// activeRef ties a FIFO slot to the exact span it enqueued, so eviction
// never removes a newer span reusing the same key.
type activeRef struct {
	key string
	sp  *Span
}

// Begin opens a span. A second Begin with the same key restarts the
// span's clock. Begin always records (sampling applies only to traces
// rooted via RecordRoot); use BeginIn to join an incoming trace context.
func (t *Tracer) Begin(trace, name string) {
	t.BeginIn(SpanContext{}, trace, name)
}

// beginLocked inserts an open span under key and enforces the FIFO
// bound. Caller holds t.mu.
func (t *Tracer) beginLocked(key string, sp *Span) {
	t.active[key] = sp
	t.activeOrd = append(t.activeOrd, activeRef{key: key, sp: sp})
	for len(t.activeOrd) > t.max {
		old := t.activeOrd[0]
		t.activeOrd = t.activeOrd[1:]
		if cur, live := t.active[old.key]; live && cur == old.sp {
			delete(t.active, old.key)
			t.evicted++
		}
	}
}

// Finish closes the (trace, name) span, attaching the given attribute
// pairs, and reports whether a matching open span existed.
func (t *Tracer) Finish(trace, name string, attrs ...string) bool {
	now := t.clk.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	key := spanKey(trace, name)
	sp, ok := t.active[key]
	if !ok {
		return false
	}
	delete(t.active, key)
	sp.End = now
	sp.Attrs = labelsOf(canonicalize(attrs))
	t.record(*sp)
	return true
}

// Record adds an already-measured span directly to the ring, for call
// sites that know both endpoints (e.g. a stage that timed itself).
func (t *Tracer) Record(trace, name string, start, end time.Time, attrs ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Span{Trace: trace, Name: name, Start: start, End: end, Attrs: labelsOf(canonicalize(attrs))})
}

// record appends to the ring and feeds the sink. Caller holds t.mu.
func (t *Tracer) record(sp Span) {
	t.recent[t.next] = sp
	t.next++
	t.finished++
	if t.next == len(t.recent) {
		t.next = 0
		t.full = true
	}
	if t.sink != nil {
		t.sink(sp)
	}
}

// Recent returns the completed spans still in the ring, oldest first.
func (t *Tracer) Recent() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.full {
		out = append(out, t.recent[t.next:]...)
	}
	out = append(out, t.recent[:t.next]...)
	return out
}

// ActiveCount returns the number of open spans.
func (t *Tracer) ActiveCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Finished returns the lifetime count of completed spans (including
// those that have rotated out of the ring).
func (t *Tracer) Finished() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished
}

// Evicted returns how many open spans were discarded unfinished.
func (t *Tracer) Evicted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}
