// Package obs is Coral-Pie's runtime telemetry layer: a concurrent
// metric registry (counters, gauges, fixed-bucket histograms), a
// lightweight span/trace facility keyed by vehicle handoffs, and HTTP
// exposition (/metrics in Prometheus text format, /healthz, /debug/obs).
//
// The package is stdlib-only and allocation-free on the observation hot
// path: callers resolve metric handles once (get-or-create on the
// registry) and then touch only atomics. Metric names follow the
// convention coralpie_<subsystem>_<name>.
//
// Registries are injectable so that a DES-driven simulation can own an
// isolated registry whose observations — driven by the simulator's
// virtual clock through internal/clock — are bit-for-bit reproducible
// across runs. Components that are not handed a registry fall back to
// the process-wide Default registry, which is what the cmd/ binaries
// expose over HTTP.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MetricType discriminates the registry's metric families.
type MetricType string

// The metric family types, matching Prometheus exposition TYPE values.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing count. The zero value is a valid
// standalone counter; registry-backed counters additionally appear in
// snapshots and HTTP exposition.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative deltas are ignored (counters
// are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets (cumulative
// upper bounds, +Inf implicit). Observations are float64s; for
// durations, use ObserveDuration which records seconds, the Prometheus
// convention.
type Histogram struct {
	upper  []float64 // sorted upper bounds, shared with the family
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated

	// Exemplar support is opt-in (EnableExemplars): the histogram keeps
	// the trace coordinates of the most recent sampled observation, so
	// an operator can jump from a bad latency bucket straight to the
	// trace that produced it via /debug/trace.
	exemplars atomic.Bool
	exemplar  atomic.Pointer[Exemplar]
}

// Exemplar links one recent histogram observation to the trace that
// produced it, in the OpenMetrics sense: a sampled value annotated with
// the trace/span it belongs to.
type Exemplar struct {
	TraceID string  `json:"traceId"`
	SpanID  string  `json:"spanId"`
	Value   float64 `json:"value"`
}

// EnableExemplars opts the histogram into exemplar capture. Call once at
// wiring time; until then ObserveWithExemplar records the value but
// drops the trace coordinates, so un-opted histograms stay allocation-
// free.
func (h *Histogram) EnableExemplars() { h.exemplars.Store(true) }

// ObserveWithExemplar records one sample and, when exemplars are enabled
// and sc identifies a sampled trace, publishes (sc, v) as the
// histogram's current exemplar. Unsampled and invalid contexts record
// the value only — an exemplar must point at a trace that /debug/trace
// can actually resolve.
func (h *Histogram) ObserveWithExemplar(v float64, sc SpanContext) {
	h.Observe(v)
	if h.exemplars.Load() && sc.Valid() && sc.Sampled {
		h.exemplar.Store(&Exemplar{TraceID: sc.TraceID, SpanID: sc.SpanID, Value: v})
	}
}

// Exemplar returns the most recent sampled exemplar, or nil when none
// has been captured (or exemplars were never enabled).
func (h *Histogram) Exemplar() *Exemplar { return h.exemplar.Load() }

// Observe records one sample. It performs no allocation.
func (h *Histogram) Observe(v float64) {
	// Inline binary search (sort.SearchFloat64s on the shared slice —
	// no allocation either way, but explicit keeps the hot path obvious).
	i, j := 0, len(h.upper)
	for i < j {
		m := int(uint(i+j) >> 1)
		if h.upper[m] < v {
			i = m + 1
		} else {
			j = m
		}
	}
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n exponential bucket upper bounds: start,
// start*factor, ..., start*factor^(n-1). It panics on invalid inputs
// (registration-time programmer error).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DurationBuckets is the default latency bucketing: 100µs to ~105s in
// exponential steps of 4, wide enough for both the microsecond-scale
// pipeline stages of Table 1 and multi-second recovery timings.
func DurationBuckets() []float64 { return ExpBuckets(100e-6, 4, 10) }

// family is one named metric with a fixed type and a child per label set.
type family struct {
	name    string
	help    string
	typ     MetricType
	buckets []float64 // histograms only

	children map[string]any // label fingerprint -> *Counter / *Gauge / *Histogram
	labels   map[string][]string
}

// Registry holds metric families and hands out metric handles. All
// methods are safe for concurrent use; handle lookups take a lock, so
// callers on hot paths should resolve handles once up front.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by components that are
// not explicitly handed one.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter for name and the given label pairs
// (k1, v1, k2, v2, ...), creating it on first use. It panics on invalid
// names, odd label lists, or a name already registered with a different
// type — all registration-time programmer errors.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.child(name, help, TypeCounter, nil, labels)
	return m.(*Counter)
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.child(name, help, TypeGauge, nil, labels)
	return m.(*Gauge)
}

// Histogram returns the histogram for name and labels, creating it on
// first use. buckets is consulted only on first registration of the
// family; nil uses DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	m := r.child(name, help, TypeHistogram, buckets, labels)
	return m.(*Histogram)
}

func (r *Registry) child(name, help string, typ MetricType, buckets []float64, labels []string) any {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s: odd label list %q", name, labels))
	}
	pairs := canonicalize(labels)
	key := fingerprint(pairs)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		b := buckets
		if typ == TypeHistogram {
			if b == nil {
				b = DurationBuckets()
			}
			b = append([]float64(nil), b...)
			sort.Float64s(b)
		}
		fam = &family{
			name:     name,
			help:     help,
			typ:      typ,
			buckets:  b,
			children: make(map[string]any),
			labels:   make(map[string][]string),
		}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, fam.typ, typ))
	}
	if child, ok := fam.children[key]; ok {
		return child
	}
	var child any
	switch typ {
	case TypeCounter:
		child = &Counter{}
	case TypeGauge:
		child = &Gauge{}
	case TypeHistogram:
		child = &Histogram{
			upper:  fam.buckets,
			counts: make([]atomic.Uint64, len(fam.buckets)),
		}
	}
	fam.children[key] = child
	fam.labels[key] = pairs
	return child
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// canonicalize sorts label pairs by key so the same labels in any order
// map to the same child.
func canonicalize(labels []string) []string {
	n := len(labels) / 2
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	out := make([]string, 0, len(labels))
	for _, i := range idx {
		out = append(out, labels[2*i], labels[2*i+1])
	}
	return out
}

func fingerprint(pairs []string) string {
	return strings.Join(pairs, "\x00")
}

// Label is one name/value pair in a snapshot.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// BucketCount is one histogram bucket in a snapshot: the cumulative
// count of observations at or below the upper bound.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the upper bound as a string — the final bucket's
// bound is +Inf, which JSON numbers cannot represent (encoding/json
// would fail the whole document). Matches the Prometheus API, which
// also stringifies le.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatFloat(b.UpperBound), b.Count)), nil
}

// UnmarshalJSON accepts the stringified bound written by MarshalJSON.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	ub, err := parseFloat(raw.Le)
	if err != nil {
		return fmt.Errorf("obs: bucket bound %q: %w", raw.Le, err)
	}
	b.UpperBound = ub
	b.Count = raw.Count
	return nil
}

func parseFloat(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// MetricSnapshot is one metric (one label set) frozen at snapshot time.
type MetricSnapshot struct {
	Labels []Label `json:"labels,omitempty"`
	// Value holds counter and gauge values.
	Value int64 `json:"value,omitempty"`
	// Count, Sum, and Buckets hold histogram state.
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Exemplar is the histogram's most recent sampled exemplar, if any.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// FamilySnapshot is one metric family frozen at snapshot time.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    MetricType       `json:"type"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot is a point-in-time copy of a registry, ordered
// deterministically (families by name, children by label fingerprint) so
// equal registry states render identically.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot freezes the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(names))}
	for _, name := range names {
		fam := r.families[name]
		fs := FamilySnapshot{Name: fam.name, Help: fam.help, Type: fam.typ}
		keys := make([]string, 0, len(fam.children))
		for key := range fam.children {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ms := MetricSnapshot{Labels: labelsOf(fam.labels[key])}
			switch child := fam.children[key].(type) {
			case *Counter:
				ms.Value = child.Value()
			case *Gauge:
				ms.Value = child.Value()
			case *Histogram:
				ms.Count = child.Count()
				ms.Sum = child.Sum()
				ms.Exemplar = child.Exemplar()
				var cum uint64
				for i, ub := range fam.buckets {
					cum += child.counts[i].Load()
					ms.Buckets = append(ms.Buckets, BucketCount{UpperBound: ub, Count: cum})
				}
				ms.Buckets = append(ms.Buckets, BucketCount{
					UpperBound: math.Inf(1),
					Count:      cum + child.inf.Load(),
				})
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

func labelsOf(pairs []string) []Label {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]Label, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4). Output ordering is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteSnapshotPrometheus(w, r.Snapshot())
}

// WriteSnapshotPrometheus renders an already-taken snapshot in
// Prometheus text exposition format. It is the single renderer behind
// both a registry's /metrics endpoint and the fleet monitor's federated
// /cluster/metrics view (which synthesizes snapshots that never lived in
// one registry). Histogram exemplars are appended to the bucket the
// exemplar value falls in, using OpenMetrics exemplar syntax:
//
//	name_bucket{le="0.1"} 5 # {trace_id="evt-3",span_id="cam1-7"} 0.093
func WriteSnapshotPrometheus(w io.Writer, snap Snapshot) error {
	var b strings.Builder
	for _, fam := range snap.Families {
		if fam.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.Name, fam.Type)
		for _, m := range fam.Metrics {
			switch fam.Type {
			case TypeCounter, TypeGauge:
				b.WriteString(fam.Name)
				writeLabels(&b, m.Labels, "", 0)
				fmt.Fprintf(&b, " %d\n", m.Value)
			case TypeHistogram:
				exemplarAt := -1
				if m.Exemplar != nil {
					exemplarAt = len(m.Buckets) - 1
					for i, bc := range m.Buckets {
						if m.Exemplar.Value <= bc.UpperBound {
							exemplarAt = i
							break
						}
					}
				}
				for i, bc := range m.Buckets {
					b.WriteString(fam.Name)
					b.WriteString("_bucket")
					writeLabels(&b, m.Labels, "le", bc.UpperBound)
					fmt.Fprintf(&b, " %d", bc.Count)
					if i == exemplarAt {
						fmt.Fprintf(&b, " # {trace_id=%q,span_id=%q} %s",
							escapeLabel(m.Exemplar.TraceID), escapeLabel(m.Exemplar.SpanID),
							formatFloat(m.Exemplar.Value))
					}
					b.WriteByte('\n')
				}
				b.WriteString(fam.Name)
				b.WriteString("_sum")
				writeLabels(&b, m.Labels, "", 0)
				fmt.Fprintf(&b, " %s\n", formatFloat(m.Sum))
				b.WriteString(fam.Name)
				b.WriteString("_count")
				writeLabels(&b, m.Labels, "", 0)
				fmt.Fprintf(&b, " %d\n", m.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabels renders {k="v",...}, optionally appending an le bucket
// label. No braces are emitted when there are no labels at all.
func writeLabels(b *strings.Builder, labels []Label, le string, ub float64) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(formatFloat(ub))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
