package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("coralpie_http_total", "hits").Add(2)
	r.Gauge("coralpie_http_gauge", "").Set(1)
	r.Histogram("coralpie_http_seconds", "", nil).Observe(0.001)

	srv := httptest.NewServer(NewMux(r, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"coralpie_http_total 2",
		"coralpie_http_gauge 1",
		`coralpie_http_seconds_bucket{le="+Inf"} 1`,
		"# TYPE coralpie_http_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	healthy := true
	check := func() error {
		if !healthy {
			return errors.New("store offline")
		}
		return nil
	}
	srv := httptest.NewServer(NewMux(NewRegistry(), nil, check))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status = %d, want 200", resp.StatusCode)
	}

	healthy = false
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy status = %d, want 503", resp.StatusCode)
	}
}

func TestHealthzJSONPerComponent(t *testing.T) {
	storeUp := true
	mux := NewMuxWith(MuxConfig{
		Registry: NewRegistry(),
		NamedChecks: []NamedCheck{
			{Name: "pipeline", Check: nil},
			{Name: "store", Check: func() error {
				if !storeUp {
					return errors.New("store offline")
				}
				return nil
			}},
		},
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	fetch := func(wantStatus int) struct {
		OK         bool          `json:"ok"`
		Components []CheckResult `json:"components"`
	} {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz?v=json")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q, want application/json", ct)
		}
		var out struct {
			OK         bool          `json:"ok"`
			Components []CheckResult `json:"components"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	got := fetch(http.StatusOK)
	if !got.OK || len(got.Components) != 2 || !got.Components[0].OK || !got.Components[1].OK {
		t.Fatalf("healthy body = %+v", got)
	}

	storeUp = false
	got = fetch(http.StatusServiceUnavailable)
	if got.OK {
		t.Fatal("ok=true while a component is failing")
	}
	// The healthy component stays individually ok; only the failing one
	// carries its error.
	if !got.Components[0].OK || got.Components[1].OK || got.Components[1].Err != "store offline" {
		t.Fatalf("unhealthy body = %+v", got)
	}
}

func TestDebugObsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("coralpie_dbg_total", "").Inc()
	tr := NewTracer(clock.Fixed{T: time.Unix(9, 0)}, 4)
	tr.Begin("veh", "handoff")
	tr.Finish("veh", "handoff")
	tr.Begin("lost", "handoff")

	srv := httptest.NewServer(NewMux(r, tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state struct {
		Metrics     Snapshot `json:"metrics"`
		Spans       []Span   `json:"spans"`
		ActiveSpans int      `json:"active_spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if len(state.Metrics.Families) != 1 || state.Metrics.Families[0].Name != "coralpie_dbg_total" {
		t.Fatalf("metrics = %+v", state.Metrics)
	}
	if len(state.Spans) != 1 || state.Spans[0].Trace != "veh" {
		t.Fatalf("spans = %+v", state.Spans)
	}
	if state.ActiveSpans != 1 {
		t.Fatalf("active = %d, want 1", state.ActiveSpans)
	}
}

// TestDebugObsHistogramJSON guards the +Inf bucket bound: histograms
// always carry one, encoding/json rejects infinite numbers, and a
// failed encode used to leave the response body silently empty.
func TestDebugObsHistogramJSON(t *testing.T) {
	r := NewRegistry()
	r.Histogram("coralpie_dbg_seconds", "", nil).Observe(0.5)

	srv := httptest.NewServer(NewMux(r, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state struct {
		Metrics Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatalf("debug JSON with histogram: %v", err)
	}
	if len(state.Metrics.Families) != 1 {
		t.Fatalf("families = %+v", state.Metrics.Families)
	}
	buckets := state.Metrics.Families[0].Metrics[0].Buckets
	if len(buckets) == 0 {
		t.Fatal("no buckets decoded")
	}
}

func TestServeLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Counter("coralpie_served_total", "").Inc()
	s, err := Serve("127.0.0.1:0", NewMux(r, nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server should be closed")
	}
}
