package obs

import (
	"testing"
	"time"

	"repro/internal/clock"
)

// tickClock advances a fixed step on every Now call, making span
// durations predictable.
type tickClock struct {
	t    time.Time
	step time.Duration
}

func (c *tickClock) Now() time.Time {
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

func TestSpanBeginFinish(t *testing.T) {
	clk := &tickClock{t: time.Unix(100, 0), step: time.Second}
	tr := NewTracer(clk, 8)
	tr.Begin("cam0#1", "handoff")
	if tr.ActiveCount() != 1 {
		t.Fatalf("active = %d, want 1", tr.ActiveCount())
	}
	if !tr.Finish("cam0#1", "handoff", "outcome", "matched") {
		t.Fatal("Finish should find the open span")
	}
	if tr.Finish("cam0#1", "handoff") {
		t.Fatal("second Finish should report no open span")
	}
	spans := tr.Recent()
	if len(spans) != 1 {
		t.Fatalf("recent = %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Trace != "cam0#1" || sp.Name != "handoff" {
		t.Fatalf("span identity = %q/%q", sp.Trace, sp.Name)
	}
	if sp.Duration() != time.Second {
		t.Fatalf("duration = %v, want 1s", sp.Duration())
	}
	if len(sp.Attrs) != 1 || sp.Attrs[0] != (Label{Name: "outcome", Value: "matched"}) {
		t.Fatalf("attrs = %v", sp.Attrs)
	}
	if tr.Finished() != 1 {
		t.Fatalf("finished = %d, want 1", tr.Finished())
	}
}

func TestSpanRingBound(t *testing.T) {
	tr := NewTracer(clock.Fixed{T: time.Unix(0, 0)}, 4)
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i))
		tr.Begin(id, "s")
		tr.Finish(id, "s")
	}
	spans := tr.Recent()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	// Oldest first: g, h, i, j.
	if spans[0].Trace != "g" || spans[3].Trace != "j" {
		t.Fatalf("ring order = %v..%v", spans[0].Trace, spans[3].Trace)
	}
	if tr.Finished() != 10 {
		t.Fatalf("finished = %d, want 10", tr.Finished())
	}
}

func TestSpanActiveEviction(t *testing.T) {
	tr := NewTracer(clock.Fixed{T: time.Unix(0, 0)}, 3)
	for i := 0; i < 5; i++ {
		tr.Begin(string(rune('a'+i)), "s")
	}
	if tr.ActiveCount() != 3 {
		t.Fatalf("active = %d, want 3", tr.ActiveCount())
	}
	if tr.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", tr.Evicted())
	}
	// The two oldest were evicted; finishing them finds nothing.
	if tr.Finish("a", "s") || tr.Finish("b", "s") {
		t.Fatal("evicted spans must not be finishable")
	}
	if !tr.Finish("e", "s") {
		t.Fatal("newest span must still be open")
	}
}

func TestSpanRestartDoesNotEvictNewer(t *testing.T) {
	tr := NewTracer(clock.Fixed{T: time.Unix(0, 0)}, 2)
	tr.Begin("a", "s")
	tr.Begin("a", "s") // restart: two FIFO slots, one live span
	tr.Begin("b", "s") // pushes the stale slot out; live "a" must survive
	if !tr.Finish("a", "s") {
		t.Fatal("restarted span should still be open")
	}
	if !tr.Finish("b", "s") {
		t.Fatal("span b should still be open")
	}
}

func TestSpanRecord(t *testing.T) {
	tr := NewTracer(nil, 4)
	start := time.Unix(50, 0)
	tr.Record("x", "stage", start, start.Add(30*time.Millisecond))
	spans := tr.Recent()
	if len(spans) != 1 || spans[0].Duration() != 30*time.Millisecond {
		t.Fatalf("spans = %v", spans)
	}
}
