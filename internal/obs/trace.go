package obs

import (
	"context"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies a position in a distributed trace. It is small
// enough to travel on every wire message: protocol.TraceContext mirrors
// it field-for-field so the two convert with a plain struct conversion.
//
// TraceID names the whole causal story (Coral-Pie uses the detection
// event ID, which is already globally unique and deterministic). SpanID
// names one span within it; ParentID is the SpanID of the causing span,
// empty at the root. Sampled carries the head-sampling decision taken at
// the root — unsampled contexts still propagate so that every node in
// the trace agrees, but record nothing.
type SpanContext struct {
	TraceID  string `json:"traceId"`
	SpanID   string `json:"spanId"`
	ParentID string `json:"parentId,omitempty"`
	Sampled  bool   `json:"sampled"`
}

// Valid reports whether sc can parent further spans.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

type spanCtxKey struct{}

// ContextWithSpan attaches sc to ctx for in-process propagation (the
// transport layer extracts it from incoming envelopes and hands it to
// handlers this way).
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context attached to ctx, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// IDSource allocates span IDs. Implementations must be safe for
// concurrent use; determinism additionally requires that allocations
// happen in a deterministic order (the DES runs everything on one
// goroutine, which is what makes simulated traces byte-identical across
// same-seed runs).
type IDSource interface {
	NextID() uint64
}

// SeqIDs is the default IDSource: a plain sequence 1, 2, 3, …
type SeqIDs struct{ n uint64 }

// NextID returns the next value in the sequence.
func (s *SeqIDs) NextID() uint64 { return atomic.AddUint64(&s.n, 1) }

// newSpanID allocates the next span ID as lowercase hex with the
// configured prefix.
func (t *Tracer) newSpanID() string {
	return t.idPrefix + strconv.FormatUint(t.ids.NextID(), 16)
}

// sampleRootLocked takes the head-sampling decision for a new trace
// root. Caller holds t.mu.
func (t *Tracer) sampleRootLocked() bool {
	t.roots++
	if t.sampleEvery <= 1 {
		return true
	}
	return (t.roots-1)%int64(t.sampleEvery) == 0
}

// RecordRoot records an already-measured span as the root of a new
// trace and returns its context. This is where the sampling decision is
// taken: an unsampled root records nothing, but the returned context
// still propagates (Sampled=false) so descendants stay silent too.
func (t *Tracer) RecordRoot(trace, name string, start, end time.Time, attrs ...string) SpanContext {
	t.mu.Lock()
	defer t.mu.Unlock()
	sc := SpanContext{TraceID: trace, SpanID: t.newSpanID(), Sampled: t.sampleRootLocked()}
	if !sc.Sampled {
		return sc
	}
	t.record(Span{
		Trace: trace, Name: name, SpanID: sc.SpanID,
		Start: start, End: end, Attrs: labelsOf(canonicalize(attrs)),
	})
	return sc
}

// RecordChild records an already-measured span as a child of parent and
// returns its context. An invalid parent yields an invalid (no-op)
// context; an unsampled parent propagates without recording.
func (t *Tracer) RecordChild(parent SpanContext, name string, start, end time.Time, attrs ...string) SpanContext {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !parent.Valid() {
		return SpanContext{}
	}
	sc := SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID(), ParentID: parent.SpanID, Sampled: parent.Sampled}
	if !sc.Sampled {
		return sc
	}
	t.record(Span{
		Trace: sc.TraceID, Name: name, SpanID: sc.SpanID, ParentID: sc.ParentID,
		Start: start, End: end, Attrs: labelsOf(canonicalize(attrs)),
	})
	return sc
}

// liveKey is the active-table key for spans addressed by SpanID rather
// than by (trace, name). "\x01" cannot collide with spanKey output,
// whose separator is "\x00".
func liveKey(spanID string) string { return "\x01" + spanID }

// StartChild opens a live span under parent, addressed by its own
// SpanID (unlike Begin's (trace, name) key, so concurrent children of
// one trace don't collide). Close it with EndSpan. Like all open spans
// it competes for the FIFO bound and may be evicted if never ended.
func (t *Tracer) StartChild(parent SpanContext, name string) SpanContext {
	now := t.clk.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !parent.Valid() {
		return SpanContext{}
	}
	sc := SpanContext{TraceID: parent.TraceID, SpanID: t.newSpanID(), ParentID: parent.SpanID, Sampled: parent.Sampled}
	if !sc.Sampled {
		return sc
	}
	sp := &Span{Trace: sc.TraceID, Name: name, SpanID: sc.SpanID, ParentID: sc.ParentID, Start: now}
	t.beginLocked(liveKey(sc.SpanID), sp)
	return sc
}

// EndSpan closes a span opened by StartChild, attaching the given
// attribute pairs, and reports whether it was still open. Invalid and
// unsampled contexts are no-ops.
func (t *Tracer) EndSpan(sc SpanContext, attrs ...string) bool {
	now := t.clk.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !sc.Valid() || !sc.Sampled {
		return false
	}
	key := liveKey(sc.SpanID)
	sp, ok := t.active[key]
	if !ok {
		return false
	}
	delete(t.active, key)
	sp.End = now
	sp.Attrs = labelsOf(canonicalize(attrs))
	t.record(*sp)
	return true
}

// BeginIn is Begin joining an incoming trace: the span keeps the legacy
// (trace, name) key — Finish and ActiveContext find it the same way —
// but adopts parent's trace ID, parent link, and sampling decision when
// parent is valid. With an invalid parent it behaves exactly like Begin
// (a standalone, always-recorded span).
func (t *Tracer) BeginIn(parent SpanContext, trace, name string) SpanContext {
	now := t.clk.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	sc := SpanContext{TraceID: trace, Sampled: true}
	if parent.Valid() {
		sc.TraceID = parent.TraceID
		sc.ParentID = parent.SpanID
		sc.Sampled = parent.Sampled
	}
	sc.SpanID = t.newSpanID()
	if !sc.Sampled {
		return sc
	}
	sp := &Span{Trace: sc.TraceID, Name: name, SpanID: sc.SpanID, ParentID: sc.ParentID, Start: now}
	t.beginLocked(spanKey(trace, name), sp)
	return sc
}

// ActiveContext returns the context of the open (trace, name) span, so
// a caller about to Finish it can first hang children off it.
func (t *Tracer) ActiveContext(trace, name string) (SpanContext, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.active[spanKey(trace, name)]
	if !ok {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: sp.Trace, SpanID: sp.SpanID, ParentID: sp.ParentID, Sampled: true}, true
}

// SpanSink receives every span as it is recorded. The sink runs while
// the tracer's lock is held: it must be fast and must not call back
// into the tracer.
type SpanSink func(Span)

// SetSink installs (or, with nil, removes) the span sink.
func (t *Tracer) SetSink(sink SpanSink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = sink
}

// TraceNode is a span plus its children, as assembled by AssembleTrace.
type TraceNode struct {
	Span
	Children []*TraceNode `json:"children,omitempty"`
}

// AssembleTrace collects the completed spans of one trace still in the
// ring and links them into trees by ParentID. It returns the roots —
// parentless spans plus orphans whose parent has rotated out — in ring
// (oldest-first) order; children keep ring order too.
func (t *Tracer) AssembleTrace(id string) []*TraceNode {
	var nodes []*TraceNode
	byID := make(map[string]*TraceNode)
	for _, sp := range t.Recent() {
		if sp.Trace != id {
			continue
		}
		n := &TraceNode{Span: sp}
		nodes = append(nodes, n)
		if sp.SpanID != "" {
			byID[sp.SpanID] = n
		}
	}
	var roots []*TraceNode
	for _, n := range nodes {
		if n.ParentID != "" {
			if p, ok := byID[n.ParentID]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	return roots
}

// Traces lists the distinct trace IDs present in the ring, oldest
// first.
func (t *Tracer) Traces() []string {
	seen := make(map[string]bool)
	var out []string
	for _, sp := range t.Recent() {
		if sp.Trace == "" || seen[sp.Trace] {
			continue
		}
		seen[sp.Trace] = true
		out = append(out, sp.Trace)
	}
	return out
}

// JSONLWriter exports spans as JSON Lines, one span per line. Its
// Export method is usable directly as a Tracer sink. The first write or
// encode error latches and suppresses further output; check Err.
type JSONLWriter struct {
	mu  sync.Mutex
	w   io.Writer
	n   int64
	err error
}

// NewJSONLWriter returns an exporter writing to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return &JSONLWriter{w: w} }

// Export writes sp as one JSON line.
func (e *JSONLWriter) Export(sp Span) {
	buf, err := json.Marshal(sp)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return
	}
	if err != nil {
		e.err = err
		return
	}
	if _, err := e.w.Write(append(buf, '\n')); err != nil {
		e.err = err
		return
	}
	e.n++
}

// Count returns how many spans have been written successfully.
func (e *JSONLWriter) Count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Err returns the latched export error, if any.
func (e *JSONLWriter) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
