package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanContextValid(t *testing.T) {
	if (SpanContext{}).Valid() {
		t.Fatal("zero context should be invalid")
	}
	if (SpanContext{TraceID: "a"}).Valid() {
		t.Fatal("context without span ID should be invalid")
	}
	if !(SpanContext{TraceID: "a", SpanID: "1"}).Valid() {
		t.Fatal("trace+span context should be valid")
	}
}

func TestContextPropagation(t *testing.T) {
	sc := SpanContext{TraceID: "cam0#1", SpanID: "7", Sampled: true}
	ctx := ContextWithSpan(context.Background(), sc)
	got, ok := SpanFromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("SpanFromContext = %+v, %v; want %+v, true", got, ok, sc)
	}
	if _, ok := SpanFromContext(context.Background()); ok {
		t.Fatal("empty context should carry no span")
	}
	// An invalid context stored deliberately must not round-trip as ok.
	ctx = ContextWithSpan(context.Background(), SpanContext{TraceID: "x"})
	if _, ok := SpanFromContext(ctx); ok {
		t.Fatal("invalid stored context should not be returned")
	}
}

func TestRecordRootAndChildren(t *testing.T) {
	clk := &tickClock{t: time.Unix(100, 0), step: time.Second}
	tr := NewTracerWith(TracerConfig{Clock: clk, Capacity: 16})

	t0 := time.Unix(100, 0)
	root := tr.RecordRoot("cam0#1", "capture", t0, t0.Add(time.Second), "camera", "cam0")
	if !root.Valid() || !root.Sampled {
		t.Fatalf("root context invalid: %+v", root)
	}
	child := tr.RecordChild(root, "detect", t0.Add(time.Second), t0.Add(2*time.Second))
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID {
		t.Fatalf("child not parented to root: %+v", child)
	}
	grand := tr.RecordChild(child, "track", t0.Add(2*time.Second), t0.Add(3*time.Second))

	roots := tr.AssembleTrace("cam0#1")
	if len(roots) != 1 {
		t.Fatalf("AssembleTrace roots = %d, want 1", len(roots))
	}
	n := roots[0]
	if n.Name != "capture" || len(n.Children) != 1 {
		t.Fatalf("root = %s with %d children, want capture with 1", n.Name, len(n.Children))
	}
	if n.Children[0].Name != "detect" || len(n.Children[0].Children) != 1 {
		t.Fatalf("depth-1 = %+v", n.Children[0].Span)
	}
	if got := n.Children[0].Children[0].SpanID; got != grand.SpanID {
		t.Fatalf("depth-2 span = %s, want %s", got, grand.SpanID)
	}
}

func TestRecordChildInvalidParent(t *testing.T) {
	tr := NewTracer(&tickClock{t: time.Unix(0, 0), step: time.Second}, 4)
	if sc := tr.RecordChild(SpanContext{}, "x", time.Unix(0, 0), time.Unix(1, 0)); sc.Valid() {
		t.Fatalf("child of invalid parent should be invalid, got %+v", sc)
	}
	if len(tr.Recent()) != 0 {
		t.Fatal("no span should be recorded")
	}
}

func TestStartChildEndSpan(t *testing.T) {
	clk := &tickClock{t: time.Unix(100, 0), step: time.Second}
	tr := NewTracer(clk, 8)
	root := tr.RecordRoot("cam0#1", "capture", time.Unix(100, 0), time.Unix(101, 0))

	live := tr.StartChild(root, "inform")
	if !live.Valid() {
		t.Fatalf("live child invalid: %+v", live)
	}
	if !tr.EndSpan(live, "fanout", "2") {
		t.Fatal("EndSpan should find the live span")
	}
	if tr.EndSpan(live) {
		t.Fatal("second EndSpan should find nothing")
	}

	spans := tr.Recent()
	last := spans[len(spans)-1]
	if last.Name != "inform" || last.ParentID != root.SpanID {
		t.Fatalf("finished live span = %+v", last)
	}
	if len(last.Attrs) == 0 || last.Attrs[len(last.Attrs)-1].Value != "2" {
		t.Fatalf("attrs not applied: %+v", last.Attrs)
	}
}

func TestSamplingEveryN(t *testing.T) {
	clk := &tickClock{t: time.Unix(0, 0), step: time.Second}
	tr := NewTracerWith(TracerConfig{Clock: clk, Capacity: 64, SampleEvery: 3})

	var sampled int
	for i := 0; i < 9; i++ {
		root := tr.RecordRoot(fmt.Sprintf("cam0#%d", i), "capture", time.Unix(0, 0), time.Unix(1, 0))
		child := tr.RecordChild(root, "detect", time.Unix(1, 0), time.Unix(2, 0))
		if root.Sampled {
			sampled++
			if !child.Valid() || !child.Sampled {
				t.Fatalf("sampled trace's child dropped: %+v", child)
			}
		} else if len(tr.AssembleTrace(fmt.Sprintf("cam0#%d", i))) != 0 {
			t.Fatalf("unsampled trace %d recorded spans", i)
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 roots, want 3", sampled)
	}
	// Unsampled contexts must not record live children either.
	unsampled := SpanContext{TraceID: "t", SpanID: "s", Sampled: false}
	live := tr.StartChild(unsampled, "x")
	if tr.EndSpan(live) {
		t.Fatal("unsampled live span should not record")
	}
}

func TestDeterministicSpanIDs(t *testing.T) {
	run := func() []string {
		clk := &tickClock{t: time.Unix(0, 0), step: time.Second}
		tr := NewTracerWith(TracerConfig{Clock: clk, Capacity: 16, IDPrefix: "cam0-"})
		root := tr.RecordRoot("cam0#1", "capture", time.Unix(0, 0), time.Unix(1, 0))
		child := tr.RecordChild(root, "detect", time.Unix(1, 0), time.Unix(2, 0))
		return []string{root.SpanID, child.SpanID}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run ids diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if !strings.HasPrefix(a[0], "cam0-") {
		t.Fatalf("span id %q missing prefix", a[0])
	}
}

func TestBeginInJoinsParentTrace(t *testing.T) {
	clk := &tickClock{t: time.Unix(100, 0), step: time.Second}
	tr := NewTracer(clk, 8)
	parent := SpanContext{TraceID: "cam0#1", SpanID: "cam0-3", Sampled: true}

	sc := tr.BeginIn(parent, "cam0#1", "handoff:cam1")
	if sc.TraceID != "cam0#1" || sc.ParentID != "cam0-3" {
		t.Fatalf("BeginIn did not adopt parent: %+v", sc)
	}
	got, ok := tr.ActiveContext("cam0#1", "handoff:cam1")
	if !ok || got != sc {
		t.Fatalf("ActiveContext = %+v, %v", got, ok)
	}
	if !tr.Finish("cam0#1", "handoff:cam1", "outcome", "matched") {
		t.Fatal("Finish should close the joined span")
	}
	spans := tr.Recent()
	last := spans[len(spans)-1]
	if last.ParentID != "cam0-3" || last.Trace != "cam0#1" {
		t.Fatalf("finished joined span = %+v", last)
	}
}

func TestAssembleTraceOrphans(t *testing.T) {
	clk := &tickClock{t: time.Unix(0, 0), step: time.Second}
	tr := NewTracer(clk, 8)
	// A child whose parent never recorded (e.g. evicted) becomes a root.
	parent := SpanContext{TraceID: "t1", SpanID: "gone", Sampled: true}
	tr.RecordChild(parent, "orphan", time.Unix(0, 0), time.Unix(1, 0))
	roots := tr.AssembleTrace("t1")
	if len(roots) != 1 || roots[0].Name != "orphan" {
		t.Fatalf("orphan should surface as root, got %+v", roots)
	}
	if got := tr.Traces(); len(got) != 1 || got[0] != "t1" {
		t.Fatalf("Traces = %v", got)
	}
}

func TestJSONLWriterSink(t *testing.T) {
	clk := &tickClock{t: time.Unix(0, 0), step: time.Second}
	tr := NewTracer(clk, 8)
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	tr.SetSink(w.Export)

	root := tr.RecordRoot("cam0#1", "capture", time.Unix(0, 0), time.Unix(1, 0))
	tr.RecordChild(root, "detect", time.Unix(1, 0), time.Unix(2, 0))
	if w.Count() != 2 {
		t.Fatalf("exported %d spans, want 2", w.Count())
	}
	if w.Err() != nil {
		t.Fatalf("exporter error: %v", w.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var sp Span
	if err := json.Unmarshal([]byte(lines[1]), &sp); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if sp.Name != "detect" || sp.ParentID != root.SpanID {
		t.Fatalf("exported span = %+v", sp)
	}
}

// TestConcurrentTracerRace hammers every tracer entry point from
// concurrent goroutines so the race detector can check the ring buffer
// wraparound and active-span FIFO eviction paths. Invariants are checked
// afterwards; the test is primarily a -race target.
func TestConcurrentTracerRace(t *testing.T) {
	const (
		workers = 8
		iters   = 200
		cap     = 32 // far smaller than workers*iters: forces wraparound + eviction
	)
	tr := NewTracerWith(TracerConfig{Capacity: cap})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				trace := fmt.Sprintf("cam%d#%d", w, i)
				switch i % 3 {
				case 0:
					tr.Begin(trace, "handoff")
					tr.Finish(trace, "handoff", "outcome", "matched")
				case 1:
					root := tr.RecordRoot(trace, "capture", time.Unix(0, 0), time.Unix(1, 0))
					live := tr.StartChild(root, "inform")
					tr.EndSpan(live, "fanout", "1")
				case 2:
					tr.Begin(trace, "handoff")
					// Left open on purpose: exercises FIFO eviction.
				}
				tr.Recent()
				tr.AssembleTrace(trace)
			}
		}(w)
	}
	wg.Wait()

	if got := len(tr.Recent()); got > cap {
		t.Fatalf("ring holds %d spans, cap %d", got, cap)
	}
	if got := tr.ActiveCount(); got > cap {
		t.Fatalf("active spans %d exceed cap %d", got, cap)
	}
	if tr.Evicted() == 0 {
		t.Fatal("expected FIFO evictions with open spans over capacity")
	}
}
