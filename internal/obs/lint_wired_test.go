// Package obs_test lints the metric names the system actually wires —
// not a hand-maintained list. It lives in the external test package so
// it can import internal/core (which imports obs) without a cycle, and
// is the test behind `make lint-metrics`.
package obs_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/vision"
)

// TestLintWiredMetricNames boots a full simulated deployment — cameras,
// topology server, stores, the fleet monitor — runs traffic through it,
// and lints every metric family the run registered. A new metric with a
// non-conforming name fails here the moment it is wired.
func TestLintWiredMetricNames(t *testing.T) {
	g, ids, err := roadnet.Corridor(3, 150, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{
		Graph:         g,
		Seed:          11,
		StoreFrames:   true,
		FrameReplicas: 2,
		EnableMonitor: true,
		DetectorFactory: func(string) (vision.Detector, error) {
			return vision.PerfectDetector{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, node := range ids {
		if err := sys.AddCameraAt("cam"+string(rune('0'+i)), node, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.World().AddVehicle(sim.VehicleSpec{
		ID: "veh-0", Color: sim.PaletteColor(0), SpeedMPS: 15, Route: ids,
	}); err != nil {
		t.Fatal(err)
	}
	sys.Start(context.Background())
	sys.Run(sys.World().LastVehicleDone() + 10*time.Second)
	sys.Stop()
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}

	if v := obs.LintMetricNames(sys.Telemetry().Snapshot()); len(v) != 0 {
		t.Errorf("system registry violates metric naming:\n  %v", v)
	}
	// The federated view must stay lintable too: federation only adds a
	// node label, never renames families.
	if v := obs.LintMetricNames(sys.Monitor().FederateSnapshot()); len(v) != 0 {
		t.Errorf("federated snapshot violates metric naming:\n  %v", v)
	}
	snap := sys.Telemetry().Snapshot()
	if len(snap.Families) < 10 {
		t.Fatalf("suspiciously few wired families (%d): lint proved nothing", len(snap.Families))
	}
}
