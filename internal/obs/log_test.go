package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

// fixedClock pins log timestamps for exact-output assertions.
type fixedClock struct{ t time.Time }

func (c fixedClock) Now() time.Time { return c.t }

var _ clock.Clock = fixedClock{}

func TestParseLevel(t *testing.T) {
	cases := map[string]LogLevel{
		"debug": LevelDebug, "info": LevelInfo, "INFO": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
	if _, err := ParseLogFormat("yaml"); err == nil {
		t.Fatal("ParseLogFormat should reject unknown formats")
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn, FormatText)
	l.Debug("d")
	l.Info("i")
	if buf.Len() != 0 {
		t.Fatalf("below-level lines written: %q", buf.String())
	}
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Fatal("Enabled gate wrong")
	}
}

func TestLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	ts := time.Date(2020, 12, 7, 10, 0, 0, 0, time.UTC)
	l := NewLogger(&buf, LevelInfo, FormatText).WithClock(fixedClock{ts}).
		WithComponent("camnode").With("camera", "cam0")
	l.Info("frame processed", "detections", "3", "note", "two words")

	got := strings.TrimSpace(buf.String())
	want := `2020-12-07T10:00:00Z INFO "frame processed" component=camnode camera=cam0 detections=3 note="two words"`
	if got != want {
		t.Fatalf("text line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	ts := time.Date(2020, 12, 7, 10, 0, 0, 0, time.UTC)
	l := NewLogger(&buf, LevelDebug, FormatJSON).WithClock(fixedClock{ts}).
		WithComponent("trajstore")
	l.Warn("truncated torn wal tail", "offset", "512")

	var m map[string]string
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	for k, want := range map[string]string{
		"ts": "2020-12-07T10:00:00Z", "level": "warn",
		"msg": "truncated torn wal tail", "component": "trajstore", "offset": "512",
	} {
		if m[k] != want {
			t.Fatalf("field %q = %q, want %q (line %q)", k, m[k], want, buf.String())
		}
	}
}

func TestLoggerWithTrace(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, FormatText).
		WithClock(fixedClock{time.Unix(0, 0).UTC()}).
		WithTrace(SpanContext{TraceID: "cam0#1", SpanID: "7"})
	l.Info("matched")
	if !strings.Contains(buf.String(), "trace_id=cam0#1") {
		t.Fatalf("trace_id missing: %q", buf.String())
	}
	// A zero context binds nothing.
	buf.Reset()
	NewLogger(&buf, LevelInfo, FormatText).
		WithClock(fixedClock{time.Unix(0, 0).UTC()}).
		WithTrace(SpanContext{}).Info("x")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("zero trace bound: %q", buf.String())
	}
}

func TestLoggerWithDoesNotMutateParent(t *testing.T) {
	var buf bytes.Buffer
	base := NewLogger(&buf, LevelInfo, FormatText).WithClock(fixedClock{time.Unix(0, 0).UTC()})
	a := base.With("k", "a")
	_ = a.With("extra", "1") // must not leak into b
	b := a.With("k2", "b")
	buf.Reset()
	b.Info("m")
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "extra=1") {
		t.Fatalf("sibling field leaked: %q", line)
	}
	if !strings.Contains(line, "k=a") || !strings.Contains(line, "k2=b") {
		t.Fatalf("chained fields missing: %q", line)
	}
}

func TestDefaultLoggerSwap(t *testing.T) {
	old := DefaultLogger()
	defer SetDefaultLogger(old)

	var buf bytes.Buffer
	SetDefaultLogger(NewLogger(&buf, LevelInfo, FormatText).WithClock(fixedClock{time.Unix(0, 0).UTC()}))
	DefaultLogger().Info("hello")
	if !strings.Contains(buf.String(), "hello") {
		t.Fatalf("default logger not swapped: %q", buf.String())
	}
	SetDefaultLogger(nil) // ignored
	if DefaultLogger() == nil {
		t.Fatal("nil default installed")
	}
}

func TestInitDefaultLogger(t *testing.T) {
	old := DefaultLogger()
	defer SetDefaultLogger(old)

	if _, err := InitDefaultLogger("info", "json"); err != nil {
		t.Fatalf("InitDefaultLogger: %v", err)
	}
	if _, err := InitDefaultLogger("nope", "text"); err == nil {
		t.Fatal("bad level should error")
	}
	if _, err := InitDefaultLogger("info", "nope"); err == nil {
		t.Fatal("bad format should error")
	}
}
