// Package trajstore implements Coral-Pie's trajectory storage (paper
// Section 4.2.1): one composite probabilistic graph whose vertices are
// detection events and whose weighted directed edges link consecutive
// sightings of (what re-identification believes is) the same vehicle. The
// paper hosts this in JanusGraph on an edge node; this package provides a
// from-scratch store with write-ahead-log persistence, snapshot
// compaction, traversal queries, and a TCP server/client.
package trajstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Errors returned by store operations.
var (
	ErrVertexNotFound = errors.New("trajstore: vertex not found")
	ErrEdgeExists     = errors.New("trajstore: edge already exists")
	ErrClosed         = errors.New("trajstore: store closed")
)

// Vertex is one detection event in the trajectory graph.
type Vertex struct {
	ID    int64                   `json:"id"`
	Event protocol.DetectionEvent `json:"event"`
}

// Edge is a weighted directed link between two detection events; the
// weight is the Bhattacharyya distance of the re-identification match
// (lower = more confident).
type Edge struct {
	From   int64   `json:"from"`
	To     int64   `json:"to"`
	Weight float64 `json:"weight"`
}

// storeMetrics are the store's pre-resolved telemetry handles.
type storeMetrics struct {
	vertices   *obs.Counter
	edges      *obs.Counter
	writeErrs  *obs.Counter
	flushHist  *obs.Histogram
	vertexSize *obs.Gauge
	edgeSize   *obs.Gauge
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return storeMetrics{
		vertices: reg.Counter("coralpie_trajstore_vertices_total",
			"trajectory-graph vertex inserts"),
		edges: reg.Counter("coralpie_trajstore_edges_total",
			"trajectory-graph edge inserts"),
		writeErrs: reg.Counter("coralpie_trajstore_write_errors_total",
			"rejected or failed writes"),
		flushHist: reg.Histogram("coralpie_trajstore_flush_seconds",
			"write-ahead-log append+flush latency", nil),
		vertexSize: reg.Gauge("coralpie_trajstore_vertices",
			"vertices currently in the graph"),
		edgeSize: reg.Gauge("coralpie_trajstore_edges",
			"edges currently in the graph"),
	}
}

// Store is the trajectory graph. All methods are safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	vertices map[int64]*Vertex
	out      map[int64][]Edge
	in       map[int64][]Edge
	nextID   int64
	closed   bool

	persist *persister // nil for in-memory stores
	m       storeMetrics
	clk     clock.Clock
}

// NewMemStore returns a purely in-memory store.
func NewMemStore() *Store {
	return &Store{
		vertices: make(map[int64]*Vertex),
		out:      make(map[int64][]Edge),
		in:       make(map[int64][]Edge),
		nextID:   1,
		m:        newStoreMetrics(nil),
		clk:      clock.Real{},
	}
}

// Instrument re-homes the store's telemetry (coralpie_trajstore_*) onto
// reg and uses clk for WAL flush-latency timestamps (inject the DES
// virtual clock in simulations; nil keeps the real clock). Call before
// traffic flows.
func (s *Store) Instrument(reg *obs.Registry, clk clock.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = newStoreMetrics(reg)
	if clk != nil {
		s.clk = clk
	}
	s.m.vertexSize.Set(int64(len(s.vertices)))
	var edges int64
	for _, es := range s.out {
		edges += int64(len(es))
	}
	s.m.edgeSize.Set(edges)
}

// AddVertex inserts a detection event and returns its vertex ID.
func (s *Store) AddVertex(e protocol.DetectionEvent) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	id := s.nextID
	s.nextID++
	v := &Vertex{ID: id, Event: e}
	v.Event.VertexID = id
	s.vertices[id] = v
	if s.persist != nil {
		start := s.clk.Now()
		if err := s.persist.logVertex(*v); err != nil {
			delete(s.vertices, id)
			s.nextID--
			s.m.writeErrs.Inc()
			return 0, err
		}
		s.m.flushHist.Observe(s.clk.Now().Sub(start).Seconds())
	}
	s.m.vertices.Inc()
	s.m.vertexSize.Set(int64(len(s.vertices)))
	return id, nil
}

// AddEdge links two vertices with a confidence weight. Multiple incoming
// and outgoing edges per vertex are allowed by design (false positives
// must not mask true positives), but exact duplicates are rejected.
func (s *Store) AddEdge(from, to int64, weight float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.vertices[from]; !ok {
		s.m.writeErrs.Inc()
		return fmt.Errorf("%w: %d", ErrVertexNotFound, from)
	}
	if _, ok := s.vertices[to]; !ok {
		s.m.writeErrs.Inc()
		return fmt.Errorf("%w: %d", ErrVertexNotFound, to)
	}
	for _, e := range s.out[from] {
		if e.To == to {
			s.m.writeErrs.Inc()
			return fmt.Errorf("%w: %d->%d", ErrEdgeExists, from, to)
		}
	}
	edge := Edge{From: from, To: to, Weight: weight}
	if s.persist != nil {
		start := s.clk.Now()
		if err := s.persist.logEdge(edge); err != nil {
			s.m.writeErrs.Inc()
			return err
		}
		s.m.flushHist.Observe(s.clk.Now().Sub(start).Seconds())
	}
	s.out[from] = append(s.out[from], edge)
	s.in[to] = append(s.in[to], edge)
	s.m.edges.Inc()
	s.m.edgeSize.Add(1)
	return nil
}

// Vertex returns a vertex by ID.
func (s *Store) Vertex(id int64) (Vertex, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vertices[id]
	if !ok {
		return Vertex{}, fmt.Errorf("%w: %d", ErrVertexNotFound, id)
	}
	return *v, nil
}

// FindByEventID returns the vertex whose event carries the given ID, which
// is how a human query ("I saw the vehicle at camera 3 around 10:30")
// enters the graph.
func (s *Store) FindByEventID(id protocol.EventID) (Vertex, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.vertices {
		if v.Event.ID == id {
			return *v, nil
		}
	}
	return Vertex{}, fmt.Errorf("%w: event %q", ErrVertexNotFound, id)
}

// OutEdges returns a copy of a vertex's outgoing edges, sorted by target.
func (s *Store) OutEdges(id int64) []Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedEdges(s.out[id], true)
}

// InEdges returns a copy of a vertex's incoming edges, sorted by source.
func (s *Store) InEdges(id int64) []Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedEdges(s.in[id], false)
}

func sortedEdges(edges []Edge, byTo bool) []Edge {
	out := append([]Edge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if byTo {
			return out[i].To < out[j].To
		}
		return out[i].From < out[j].From
	})
	return out
}

// NumVertices returns the vertex count.
func (s *Store) NumVertices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.vertices)
}

// NumEdges returns the edge count.
func (s *Store) NumEdges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, es := range s.out {
		n += len(es)
	}
	return n
}

// TraceLimits bounds trajectory traversals so a pathological graph cannot
// blow up a query.
type TraceLimits struct {
	MaxDepth int
	MaxPaths int
}

// DefaultTraceLimits is generous for realistic trajectories.
func DefaultTraceLimits() TraceLimits {
	return TraceLimits{MaxDepth: 64, MaxPaths: 256}
}

// TraceForward enumerates the maximal forward paths from start: every
// path follows outgoing edges until it reaches a vertex with no outgoing
// edge (or a limit). The result is a collection of candidate onward
// trajectories, possibly containing false positives for a human or an
// analytics layer to prune (paper Section 4.2.1).
func (s *Store) TraceForward(start int64, limits TraceLimits) ([][]int64, error) {
	return s.trace(start, limits, true)
}

// TraceBackward enumerates the maximal backward paths into start.
func (s *Store) TraceBackward(start int64, limits TraceLimits) ([][]int64, error) {
	return s.trace(start, limits, false)
}

func (s *Store) trace(start int64, limits TraceLimits, forward bool) ([][]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.vertices[start]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrVertexNotFound, start)
	}
	if limits.MaxDepth < 1 {
		limits.MaxDepth = 1
	}
	if limits.MaxPaths < 1 {
		limits.MaxPaths = 1
	}
	var paths [][]int64
	onPath := map[int64]bool{start: true}
	var dfs func(path []int64)
	dfs = func(path []int64) {
		if len(paths) >= limits.MaxPaths {
			return
		}
		cur := path[len(path)-1]
		var nexts []Edge
		if forward {
			nexts = s.out[cur]
		} else {
			nexts = s.in[cur]
		}
		extended := false
		if len(path) < limits.MaxDepth {
			for _, e := range sortedEdges(nexts, forward) {
				next := e.To
				if !forward {
					next = e.From
				}
				if onPath[next] {
					continue // cycle guard
				}
				onPath[next] = true
				extended = true
				dfs(append(path, next))
				delete(onPath, next)
			}
		}
		if !extended {
			paths = append(paths, append([]int64(nil), path...))
		}
	}
	dfs([]int64{start})
	return paths, nil
}

// Trajectory returns the full candidate space-time track through start:
// each result path runs from a possible origin through start to a
// possible end, expressed as vertex IDs in time order.
func (s *Store) Trajectory(start int64, limits TraceLimits) ([][]int64, error) {
	back, err := s.TraceBackward(start, limits)
	if err != nil {
		return nil, err
	}
	fwd, err := s.TraceForward(start, limits)
	if err != nil {
		return nil, err
	}
	var out [][]int64
	for _, b := range back {
		// b runs start -> origin; reverse it to time order.
		rev := make([]int64, len(b))
		for i, id := range b {
			rev[len(b)-1-i] = id
		}
		for _, f := range fwd {
			if len(out) >= limits.MaxPaths {
				return out, nil
			}
			path := make([]int64, 0, len(rev)+len(f)-1)
			path = append(path, rev...)
			path = append(path, f[1:]...) // skip duplicated start
			out = append(out, path)
		}
	}
	return out, nil
}

// Close flushes and closes persistence. Further writes fail with
// ErrClosed; reads keep working.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.persist != nil {
		return s.persist.close()
	}
	return nil
}
