// Package trajstore implements Coral-Pie's trajectory storage (paper
// Section 4.2.1): one composite probabilistic graph whose vertices are
// detection events and whose weighted directed edges link consecutive
// sightings of (what re-identification believes is) the same vehicle. The
// paper hosts this in JanusGraph on an edge node; this package provides a
// from-scratch store with write-ahead-log persistence, snapshot
// compaction, traversal queries, and a TCP server/client.
package trajstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Errors returned by store operations.
var (
	ErrVertexNotFound = errors.New("trajstore: vertex not found")
	ErrEdgeExists     = errors.New("trajstore: edge already exists")
	ErrClosed         = errors.New("trajstore: store closed")
)

// Vertex is one detection event in the trajectory graph.
type Vertex struct {
	ID    int64                   `json:"id"`
	Event protocol.DetectionEvent `json:"event"`
}

// Edge is a weighted directed link between two detection events; the
// weight is the Bhattacharyya distance of the re-identification match
// (lower = more confident).
type Edge struct {
	From   int64   `json:"from"`
	To     int64   `json:"to"`
	Weight float64 `json:"weight"`
}

// storeMetrics are the store's pre-resolved telemetry handles.
type storeMetrics struct {
	vertices   *obs.Counter
	edges      *obs.Counter
	writeErrs  *obs.Counter
	flushHist  *obs.Histogram
	vertexSize *obs.Gauge
	edgeSize   *obs.Gauge
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return storeMetrics{
		vertices: reg.Counter("coralpie_trajstore_vertices_total",
			"trajectory-graph vertex inserts"),
		edges: reg.Counter("coralpie_trajstore_edges_total",
			"trajectory-graph edge inserts"),
		writeErrs: reg.Counter("coralpie_trajstore_write_errors_total",
			"rejected or failed writes"),
		flushHist: reg.Histogram("coralpie_trajstore_flush_seconds",
			"write-ahead-log append+flush latency", nil),
		vertexSize: reg.Gauge("coralpie_trajstore_vertices",
			"vertices currently in the graph"),
		edgeSize: reg.Gauge("coralpie_trajstore_edges",
			"edges currently in the graph"),
	}
}

// Store is the trajectory graph. All methods are safe for concurrent use.
//
// Writes on a persistent store apply in memory under the store lock, then
// wait for the WAL group commit outside it, so concurrent writers share
// one write+flush(+fsync). A write whose commit fails is rolled back; in
// the window between apply and commit it is visible to readers
// (read-uncommitted), which is acceptable for trajectory analytics and
// keeps the read path lock-cheap.
type Store struct {
	mu       sync.RWMutex
	vertices map[int64]*Vertex
	out      map[int64][]Edge
	in       map[int64][]Edge
	nextID   int64
	closed   bool

	// version counts in-memory graph mutations (inserts and rollbacks
	// alike); snapshots are tagged with it so cached reads can tell
	// whether they are still current. Guarded by mu.
	version uint64
	// onMutate, when set, runs after every write that changed the graph
	// (outside mu). The server-side query engine hooks its result-cache
	// invalidation here.
	onMutate func()

	// snapMu serializes copy-on-read snapshot construction so concurrent
	// queries share one O(V+E) copy instead of each building their own.
	// Lock order: snapMu before mu; never the reverse.
	snapMu sync.Mutex
	snap   *Snapshot

	persist    *persister // nil for in-memory stores
	persistCfg StoreConfig
	m          storeMetrics
	clk        clock.Clock
	tracer     *obs.Tracer // nil disables wal_commit spans

	walTailTruncations int64 // torn tails discarded during replay
}

// NewMemStore returns a purely in-memory store.
func NewMemStore() *Store {
	return &Store{
		vertices: make(map[int64]*Vertex),
		out:      make(map[int64][]Edge),
		in:       make(map[int64][]Edge),
		nextID:   1,
		m:        newStoreMetrics(nil),
		clk:      clock.Real{},
	}
}

// Instrument re-homes the store's telemetry (coralpie_trajstore_*) onto
// reg and uses clk for WAL flush-latency timestamps (inject the DES
// virtual clock in simulations; nil keeps the real clock). Call before
// traffic flows.
func (s *Store) Instrument(reg *obs.Registry, clk clock.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = newStoreMetrics(reg)
	if clk != nil {
		s.clk = clk
	}
	s.m.vertexSize.Set(int64(len(s.vertices)))
	var edges int64
	for _, es := range s.out {
		edges += int64(len(es))
	}
	s.m.edgeSize.Set(edges)
}

// UseTracer attaches a tracer that records a "wal_commit" span — apply
// through commit acknowledgement — for every write that arrives with a
// propagated trace context (AddEdgeTraced, or batch records carrying
// TrajWrite.Trace). In-memory stores record the apply as the commit.
// Call before traffic flows.
func (s *Store) UseTracer(tr *obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
}

// OnMutate registers fn to run after every write that changed the
// in-memory graph (inserts and commit-failure rollbacks alike). fn is
// called outside the store lock and must not block; at most one hook is
// supported. Call before traffic flows.
func (s *Store) OnMutate(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onMutate = fn
}

// notifyMutate runs the mutation hook, if any. Callers must not hold
// s.mu.
func (s *Store) notifyMutate() {
	s.mu.RLock()
	fn := s.onMutate
	s.mu.RUnlock()
	if fn != nil {
		fn()
	}
}

// applyVertexLocked allocates an ID and inserts the event. Caller holds
// s.mu.
func (s *Store) applyVertexLocked(e protocol.DetectionEvent) *Vertex {
	id := s.nextID
	s.nextID++
	v := &Vertex{ID: id, Event: e}
	v.Event.VertexID = id
	s.vertices[id] = v
	s.version++
	s.m.vertexSize.Add(1)
	return v
}

// rollbackVertexLocked undoes an applied vertex whose WAL commit failed.
// The allocated ID is not reused: another writer may have allocated past
// it while the commit was in flight, so the sequence simply gains a gap.
// Caller holds s.mu.
func (s *Store) rollbackVertexLocked(id int64) {
	delete(s.vertices, id)
	s.version++
	s.m.vertexSize.Add(-1)
}

// applyEdgeLocked validates and inserts an edge. Caller holds s.mu.
func (s *Store) applyEdgeLocked(from, to int64, weight float64) (Edge, error) {
	if _, ok := s.vertices[from]; !ok {
		return Edge{}, fmt.Errorf("%w: %d", ErrVertexNotFound, from)
	}
	if _, ok := s.vertices[to]; !ok {
		return Edge{}, fmt.Errorf("%w: %d", ErrVertexNotFound, to)
	}
	for _, e := range s.out[from] {
		if e.To == to {
			return Edge{}, fmt.Errorf("%w: %d->%d", ErrEdgeExists, from, to)
		}
	}
	edge := Edge{From: from, To: to, Weight: weight}
	s.out[from] = append(s.out[from], edge)
	s.in[to] = append(s.in[to], edge)
	s.version++
	s.m.edgeSize.Add(1)
	return edge, nil
}

// rollbackEdgeLocked undoes an applied edge whose WAL commit failed.
// Caller holds s.mu.
func (s *Store) rollbackEdgeLocked(from, to int64) {
	s.out[from] = removeEdge(s.out[from], func(e Edge) bool { return e.To == to })
	s.in[to] = removeEdge(s.in[to], func(e Edge) bool { return e.From == from })
	s.version++
	s.m.edgeSize.Add(-1)
}

// removeEdge deletes the first edge matching the predicate; (from, to)
// pairs are unique by invariant so at most one matches.
func removeEdge(edges []Edge, match func(Edge) bool) []Edge {
	for i, e := range edges {
		if match(e) {
			return append(edges[:i], edges[i+1:]...)
		}
	}
	return edges
}

// AddVertex inserts a detection event and returns its vertex ID.
func (s *Store) AddVertex(e protocol.DetectionEvent) (int64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	v := s.applyVertexLocked(e)
	id := v.ID
	m := s.m
	var wait <-chan error
	var start time.Time
	if s.persist != nil {
		start = s.clk.Now()
		vc := *v
		wait = s.persist.enqueue([]walRecord{{Op: "v", Vertex: &vc}})
	}
	s.mu.Unlock()
	defer s.notifyMutate()
	if wait != nil {
		if err := <-wait; err != nil {
			s.mu.Lock()
			s.rollbackVertexLocked(id)
			s.mu.Unlock()
			m.writeErrs.Inc()
			return 0, err
		}
		m.flushHist.Observe(s.clk.Now().Sub(start).Seconds())
	}
	m.vertices.Inc()
	return id, nil
}

// AddEdge links two vertices with a confidence weight. Multiple incoming
// and outgoing edges per vertex are allowed by design (false positives
// must not mask true positives), but exact duplicates are rejected.
func (s *Store) AddEdge(from, to int64, weight float64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	edge, err := s.applyEdgeLocked(from, to, weight)
	if err != nil {
		s.m.writeErrs.Inc()
		s.mu.Unlock()
		return err
	}
	m := s.m
	var wait <-chan error
	var start time.Time
	if s.persist != nil {
		start = s.clk.Now()
		ec := edge
		wait = s.persist.enqueue([]walRecord{{Op: "e", Edge: &ec}})
	}
	s.mu.Unlock()
	defer s.notifyMutate()
	if wait != nil {
		if err := <-wait; err != nil {
			s.mu.Lock()
			s.rollbackEdgeLocked(from, to)
			s.mu.Unlock()
			m.writeErrs.Inc()
			return err
		}
		m.flushHist.Observe(s.clk.Now().Sub(start).Seconds())
	}
	m.edges.Inc()
	return nil
}

// AddEdgeTraced is AddEdge carrying the writer's trace context: with a
// tracer attached (UseTracer) and a sampled context, the write is
// recorded as a "wal_commit" child span bracketing the in-memory apply
// and the WAL group-commit wait.
func (s *Store) AddEdgeTraced(from, to int64, weight float64, tc protocol.TraceContext) error {
	s.mu.RLock()
	tr, clk := s.tracer, s.clk
	s.mu.RUnlock()
	if tr == nil || !tc.Valid() || !tc.Sampled {
		return s.AddEdge(from, to, weight)
	}
	start := clk.Now()
	err := s.AddEdge(from, to, weight)
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	tr.RecordChild(obs.SpanContext(tc), "wal_commit", start, clk.Now(), "outcome", outcome)
	return err
}

// appliedWrite remembers one batch record's in-memory effect for
// rollback if the group commit fails.
type appliedWrite struct {
	isVertex bool
	id       int64 // vertex ID
	from, to int64 // edge endpoints
}

// ApplyBatch applies a mixed sequence of vertex and edge writes under
// one store lock acquisition with one WAL group commit. The returned
// slices parallel writes: ids carries the allocated vertex ID for each
// vertex record (0 for edges and failures) and errs the per-record
// rejection (nil for successes). The batch is not transactional across
// records — a rejected edge does not abort the rest — but every accepted
// record commits (or rolls back) together, so a batch is never partially
// durable. The error return reports whole-batch failures (closed store,
// WAL commit failure).
func (s *Store) ApplyBatch(writes []protocol.TrajWrite) (ids []int64, errs []error, err error) {
	if len(writes) == 0 {
		return nil, nil, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	ids = make([]int64, len(writes))
	errs = make([]error, len(writes))
	recs := make([]walRecord, 0, len(writes))
	applied := make([]appliedWrite, 0, len(writes))
	m := s.m
	trc := s.tracer
	var traceStart time.Time
	if trc != nil {
		traceStart = s.clk.Now()
	}
	var rejected int64
	for i, w := range writes {
		switch w.Kind {
		case protocol.TrajWriteVertex:
			if w.Event == nil {
				errs[i] = errors.New("trajstore: batch vertex requires an event")
				rejected++
				continue
			}
			v := s.applyVertexLocked(*w.Event)
			ids[i] = v.ID
			vc := *v
			recs = append(recs, walRecord{Op: "v", Vertex: &vc})
			applied = append(applied, appliedWrite{isVertex: true, id: v.ID})
		case protocol.TrajWriteEdge:
			edge, aerr := s.applyEdgeLocked(w.From, w.To, w.Weight)
			if aerr != nil {
				errs[i] = aerr
				rejected++
				continue
			}
			ec := edge
			recs = append(recs, walRecord{Op: "e", Edge: &ec})
			applied = append(applied, appliedWrite{from: edge.From, to: edge.To})
		default:
			errs[i] = fmt.Errorf("trajstore: unknown batch record kind %q", w.Kind)
			rejected++
		}
	}
	var wait <-chan error
	var start time.Time
	if s.persist != nil && len(recs) > 0 {
		start = s.clk.Now()
		wait = s.persist.enqueue(recs)
	}
	s.mu.Unlock()
	if len(applied) > 0 {
		defer s.notifyMutate()
	}
	if rejected > 0 {
		m.writeErrs.Add(rejected)
	}
	if wait != nil {
		if werr := <-wait; werr != nil {
			s.mu.Lock()
			for i := len(applied) - 1; i >= 0; i-- {
				a := applied[i]
				if a.isVertex {
					s.rollbackVertexLocked(a.id)
				} else {
					s.rollbackEdgeLocked(a.from, a.to)
				}
			}
			s.mu.Unlock()
			m.writeErrs.Add(int64(len(applied)))
			return nil, nil, werr
		}
		m.flushHist.Observe(s.clk.Now().Sub(start).Seconds())
	}
	// Every accepted record that carried a sampled trace context gets a
	// wal_commit span bracketing the shared apply + group commit; the
	// interval is common to the batch, the parentage per record.
	if trc != nil {
		traceEnd := s.clk.Now()
		for i, w := range writes {
			if w.Trace == nil || !w.Trace.Valid() || !w.Trace.Sampled || errs[i] != nil {
				continue
			}
			trc.RecordChild(obs.SpanContext(*w.Trace), "wal_commit", traceStart, traceEnd,
				"batch", strconv.Itoa(len(writes)))
		}
	}
	var nv, ne int64
	for _, a := range applied {
		if a.isVertex {
			nv++
		} else {
			ne++
		}
	}
	m.vertices.Add(nv)
	m.edges.Add(ne)
	return ids, errs, nil
}

// WALStats returns the persister's lifetime group-commit counters plus
// the number of torn WAL tails truncated during replay. Zero-valued for
// in-memory stores.
func (s *Store) WALStats() WALStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st WALStats
	if s.persist != nil {
		st = s.persist.stats()
	}
	st.TailTruncations = s.walTailTruncations
	return st
}

// Vertex returns a vertex by ID.
func (s *Store) Vertex(id int64) (Vertex, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vertices[id]
	if !ok {
		return Vertex{}, fmt.Errorf("%w: %d", ErrVertexNotFound, id)
	}
	return *v, nil
}

// FindByEventID returns the vertex whose event carries the given ID, which
// is how a human query ("I saw the vehicle at camera 3 around 10:30")
// enters the graph.
func (s *Store) FindByEventID(id protocol.EventID) (Vertex, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, v := range s.vertices {
		if v.Event.ID == id {
			return *v, nil
		}
	}
	return Vertex{}, fmt.Errorf("%w: event %q", ErrVertexNotFound, id)
}

// OutEdges returns a copy of a vertex's outgoing edges, sorted by target.
func (s *Store) OutEdges(id int64) []Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedEdges(s.out[id], true)
}

// InEdges returns a copy of a vertex's incoming edges, sorted by source.
func (s *Store) InEdges(id int64) []Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedEdges(s.in[id], false)
}

func sortedEdges(edges []Edge, byTo bool) []Edge {
	out := append([]Edge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if byTo {
			return out[i].To < out[j].To
		}
		return out[i].From < out[j].From
	})
	return out
}

// NumVertices returns the vertex count.
func (s *Store) NumVertices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.vertices)
}

// NumEdges returns the edge count.
func (s *Store) NumEdges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, es := range s.out {
		n += len(es)
	}
	return n
}

// TraceLimits bounds trajectory traversals so a pathological graph cannot
// blow up a query.
type TraceLimits struct {
	MaxDepth int
	MaxPaths int
}

// DefaultTraceLimits is generous for realistic trajectories.
func DefaultTraceLimits() TraceLimits {
	return TraceLimits{MaxDepth: 64, MaxPaths: 256}
}

// sanitized clamps the limits to at least one level and one path.
func (l TraceLimits) sanitized() TraceLimits {
	if l.MaxDepth < 1 {
		l.MaxDepth = 1
	}
	if l.MaxPaths < 1 {
		l.MaxPaths = 1
	}
	return l
}

// TraceForward enumerates the maximal forward paths from start: every
// path follows outgoing edges until it reaches a vertex with no outgoing
// edge (or a limit). The result is a collection of candidate onward
// trajectories, possibly containing false positives for a human or an
// analytics layer to prune (paper Section 4.2.1).
func (s *Store) TraceForward(start int64, limits TraceLimits) ([][]int64, error) {
	return s.trace(start, limits, true)
}

// TraceBackward enumerates the maximal backward paths into start.
func (s *Store) TraceBackward(start int64, limits TraceLimits) ([][]int64, error) {
	return s.trace(start, limits, false)
}

func (s *Store) trace(start int64, limits TraceLimits, forward bool) ([][]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.vertices[start]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrVertexNotFound, start)
	}
	return traceGraph(s.out, s.in, start, limits.sanitized(), forward), nil
}

// traceGraph is the traversal core shared by the locked store and the
// lock-free Snapshot: enumerate the maximal paths from start over the
// given adjacency maps. Callers must have already checked that start
// exists and sanitized the limits; the maps must not be mutated while
// the traversal runs (the store holds its read lock, a snapshot is
// immutable).
func traceGraph(out, in map[int64][]Edge, start int64, limits TraceLimits, forward bool) [][]int64 {
	var paths [][]int64
	onPath := map[int64]bool{start: true}
	var dfs func(path []int64)
	dfs = func(path []int64) {
		if len(paths) >= limits.MaxPaths {
			return
		}
		cur := path[len(path)-1]
		var nexts []Edge
		if forward {
			nexts = out[cur]
		} else {
			nexts = in[cur]
		}
		extended := false
		if len(path) < limits.MaxDepth {
			for _, e := range sortedEdges(nexts, forward) {
				next := e.To
				if !forward {
					next = e.From
				}
				if onPath[next] {
					continue // cycle guard
				}
				onPath[next] = true
				extended = true
				dfs(append(path, next))
				delete(onPath, next)
			}
		}
		if !extended {
			paths = append(paths, append([]int64(nil), path...))
		}
	}
	dfs([]int64{start})
	return paths
}

// combinePaths splices each backward path (start -> origin) with each
// forward path (start -> end) into full origin-to-end trajectories in
// time order, capped at maxPaths.
func combinePaths(back, fwd [][]int64, maxPaths int) [][]int64 {
	var out [][]int64
	for _, b := range back {
		// b runs start -> origin; reverse it to time order.
		rev := make([]int64, len(b))
		for i, id := range b {
			rev[len(b)-1-i] = id
		}
		for _, f := range fwd {
			if len(out) >= maxPaths {
				return out
			}
			path := make([]int64, 0, len(rev)+len(f)-1)
			path = append(path, rev...)
			path = append(path, f[1:]...) // skip duplicated start
			out = append(out, path)
		}
	}
	return out
}

// Trajectory returns the full candidate space-time track through start:
// each result path runs from a possible origin through start to a
// possible end, expressed as vertex IDs in time order. The backward and
// forward halves run under one read-lock acquisition, so the result is
// a consistent view even while writers are active.
func (s *Store) Trajectory(start int64, limits TraceLimits) ([][]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.vertices[start]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrVertexNotFound, start)
	}
	limits = limits.sanitized()
	back := traceGraph(s.out, s.in, start, limits, false)
	fwd := traceGraph(s.out, s.in, start, limits, true)
	return combinePaths(back, fwd, limits.MaxPaths), nil
}

// Close flushes and closes persistence. Further writes fail with
// ErrClosed; reads keep working.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.persist != nil {
		return s.persist.close()
	}
	return nil
}
