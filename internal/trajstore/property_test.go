package trajstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// TestTraceInvariantsOnRandomDAGs checks structural invariants of
// trajectory traversal over randomly generated acyclic graphs:
// every returned path starts at the query vertex, follows real edges,
// never repeats a vertex, and is maximal (its endpoint has no unexplored
// continuation) unless a limit was hit.
func TestTraceInvariantsOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMemStore()
		n := 2 + rng.Intn(20)
		ids := make([]int64, n)
		for i := 0; i < n; i++ {
			id, err := s.AddVertex(event("c#" + string(rune('A'+i))))
			if err != nil {
				return false
			}
			ids[i] = id
		}
		// Forward edges only (i -> j with i < j): acyclic by construction.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					if err := s.AddEdge(ids[i], ids[j], rng.Float64()); err != nil {
						return false
					}
				}
			}
		}
		start := ids[rng.Intn(n)]
		limits := TraceLimits{MaxDepth: 32, MaxPaths: 64}
		paths, err := s.TraceForward(start, limits)
		if err != nil {
			return false
		}
		if len(paths) == 0 {
			return false // at minimum the single-vertex path
		}
		for _, p := range paths {
			if len(p) == 0 || p[0] != start {
				return false
			}
			seen := map[int64]bool{}
			for i, v := range p {
				if seen[v] {
					return false // repeated vertex
				}
				seen[v] = true
				if i > 0 {
					if !hasEdge(s, p[i-1], v) {
						return false // phantom edge
					}
				}
			}
			// Maximality: the path endpoint has no outgoing edge to an
			// unvisited vertex, unless the depth limit cut it short.
			if len(p) < limits.MaxDepth {
				for _, e := range s.OutEdges(p[len(p)-1]) {
					if !seen[e.To] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func hasEdge(s *Store, from, to int64) bool {
	for _, e := range s.OutEdges(from) {
		if e.To == to {
			return true
		}
	}
	return false
}

// TestBackwardIsReverseOfForward: on a simple chain, tracing backward
// from the end visits the same vertices as tracing forward from the
// start, reversed.
func TestBackwardIsReverseOfForward(t *testing.T) {
	f := func(rawLen uint8) bool {
		n := 2 + int(rawLen%10)
		s := NewMemStore()
		ids := make([]int64, n)
		for i := range ids {
			id, err := s.AddVertex(event("c#" + string(rune('0'+i))))
			if err != nil {
				return false
			}
			ids[i] = id
		}
		for i := 0; i+1 < n; i++ {
			if err := s.AddEdge(ids[i], ids[i+1], 0.1); err != nil {
				return false
			}
		}
		fwd, err := s.TraceForward(ids[0], DefaultTraceLimits())
		if err != nil || len(fwd) != 1 {
			return false
		}
		back, err := s.TraceBackward(ids[n-1], DefaultTraceLimits())
		if err != nil || len(back) != 1 {
			return false
		}
		if len(fwd[0]) != n || len(back[0]) != n {
			return false
		}
		for i := range fwd[0] {
			if fwd[0][i] != back[0][n-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWALCrashPointQueryEquivalence: for random crash points (the WAL
// truncated at an arbitrary byte offset, as a torn write would leave
// it), the reopened store answers reconstruct and sightings queries
// identically to a store built from exactly the records that fully
// reached disk. The comparison is on marshalled bytes, so ranking order,
// weights, and timestamps must all survive the crash/replay cycle.
func TestWALCrashPointQueryEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 24
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		e := event(fmt.Sprintf("c#%d", i))
		e.TruthID = fmt.Sprintf("veh-%d", i%3)
		if ids[i], err = s.AddVertex(e); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.08 {
				if err := s.AddEdge(ids[i], ids[j], rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}

	limits := TraceLimits{MaxDepth: 32, MaxPaths: 64}
	for trial := 0; trial < 10; trial++ {
		cut := 1 + rng.Intn(len(wal))
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walFileName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, err := Open(crashDir)
		if err != nil {
			t.Fatalf("cut=%d: reopen after simulated crash: %v", cut, err)
		}

		// The ground truth: exactly the records whose newline made it to
		// disk, applied through the same replay logic.
		expected := NewMemStore()
		for _, line := range bytes.SplitAfter(wal[:cut], []byte("\n")) {
			if len(line) == 0 || line[len(line)-1] != '\n' {
				continue // torn tail: the reopened store truncates it too
			}
			var rec walRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("cut=%d: undecodable complete line: %v", cut, err)
			}
			expected.applyWALRecord(rec)
		}

		if got, want := reopened.NumVertices(), expected.NumVertices(); got != want {
			t.Fatalf("cut=%d: %d vertices after crash, want %d", cut, got, want)
		}
		gotSnap, wantSnap := reopened.Snapshot(), expected.Snapshot()
		for vid := int64(1); vid <= wantSnap.MaxVertexID(); vid++ {
			gotTracks, gotErr := ReconstructTracks(gotSnap, vid, limits)
			wantTracks, wantErr := ReconstructTracks(wantSnap, vid, limits)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("cut=%d vertex=%d: errors diverge: %v vs %v", cut, vid, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			g, _ := json.Marshal(gotTracks)
			w, _ := json.Marshal(wantTracks)
			if !bytes.Equal(g, w) {
				t.Fatalf("cut=%d vertex=%d: reconstruct diverged\n got: %s\nwant: %s", cut, vid, g, w)
			}
		}
		for v := 0; v < 3; v++ {
			vehicle := fmt.Sprintf("veh-%d", v)
			gotHops, _ := SightingsOf(gotSnap, gotSnap.MaxVertexID(), vehicle)
			wantHops, _ := SightingsOf(wantSnap, wantSnap.MaxVertexID(), vehicle)
			g, _ := json.Marshal(gotHops)
			w, _ := json.Marshal(wantHops)
			if !bytes.Equal(g, w) {
				t.Fatalf("cut=%d %s: sightings diverged\n got: %s\nwant: %s", cut, vehicle, g, w)
			}
		}
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPersistenceEquivalence: a store reloaded from disk answers
// trajectory queries identically to the original.
func TestPersistenceEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	var ids []int64
	for i := 0; i < 25; i++ {
		id, err := s.AddVertex(event("c#" + string(rune('a'+i))))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 25; i++ {
		for j := i + 1; j < 25; j++ {
			if rng.Float64() < 0.1 {
				if err := s.AddEdge(ids[i], ids[j], rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	want, err := s.Trajectory(ids[5], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reloaded, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = reloaded.Close() }()
	got, err := reloaded.Trajectory(ids[5], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("paths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("path %d lengths differ", i)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("path %d differs at %d", i, j)
			}
		}
	}
}
