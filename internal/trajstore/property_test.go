package trajstore

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTraceInvariantsOnRandomDAGs checks structural invariants of
// trajectory traversal over randomly generated acyclic graphs:
// every returned path starts at the query vertex, follows real edges,
// never repeats a vertex, and is maximal (its endpoint has no unexplored
// continuation) unless a limit was hit.
func TestTraceInvariantsOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMemStore()
		n := 2 + rng.Intn(20)
		ids := make([]int64, n)
		for i := 0; i < n; i++ {
			id, err := s.AddVertex(event("c#" + string(rune('A'+i))))
			if err != nil {
				return false
			}
			ids[i] = id
		}
		// Forward edges only (i -> j with i < j): acyclic by construction.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					if err := s.AddEdge(ids[i], ids[j], rng.Float64()); err != nil {
						return false
					}
				}
			}
		}
		start := ids[rng.Intn(n)]
		limits := TraceLimits{MaxDepth: 32, MaxPaths: 64}
		paths, err := s.TraceForward(start, limits)
		if err != nil {
			return false
		}
		if len(paths) == 0 {
			return false // at minimum the single-vertex path
		}
		for _, p := range paths {
			if len(p) == 0 || p[0] != start {
				return false
			}
			seen := map[int64]bool{}
			for i, v := range p {
				if seen[v] {
					return false // repeated vertex
				}
				seen[v] = true
				if i > 0 {
					if !hasEdge(s, p[i-1], v) {
						return false // phantom edge
					}
				}
			}
			// Maximality: the path endpoint has no outgoing edge to an
			// unvisited vertex, unless the depth limit cut it short.
			if len(p) < limits.MaxDepth {
				for _, e := range s.OutEdges(p[len(p)-1]) {
					if !seen[e.To] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func hasEdge(s *Store, from, to int64) bool {
	for _, e := range s.OutEdges(from) {
		if e.To == to {
			return true
		}
	}
	return false
}

// TestBackwardIsReverseOfForward: on a simple chain, tracing backward
// from the end visits the same vertices as tracing forward from the
// start, reversed.
func TestBackwardIsReverseOfForward(t *testing.T) {
	f := func(rawLen uint8) bool {
		n := 2 + int(rawLen%10)
		s := NewMemStore()
		ids := make([]int64, n)
		for i := range ids {
			id, err := s.AddVertex(event("c#" + string(rune('0'+i))))
			if err != nil {
				return false
			}
			ids[i] = id
		}
		for i := 0; i+1 < n; i++ {
			if err := s.AddEdge(ids[i], ids[i+1], 0.1); err != nil {
				return false
			}
		}
		fwd, err := s.TraceForward(ids[0], DefaultTraceLimits())
		if err != nil || len(fwd) != 1 {
			return false
		}
		back, err := s.TraceBackward(ids[n-1], DefaultTraceLimits())
		if err != nil || len(back) != 1 {
			return false
		}
		if len(fwd[0]) != n || len(back[0]) != n {
			return false
		}
		for i := range fwd[0] {
			if fwd[0][i] != back[0][n-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPersistenceEquivalence: a store reloaded from disk answers
// trajectory queries identically to the original.
func TestPersistenceEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	var ids []int64
	for i := 0; i < 25; i++ {
		id, err := s.AddVertex(event("c#" + string(rune('a'+i))))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 25; i++ {
		for j := i + 1; j < 25; j++ {
			if rng.Float64() < 0.1 {
				if err := s.AddEdge(ids[i], ids[j], rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	want, err := s.Trajectory(ids[5], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reloaded, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = reloaded.Close() }()
	got, err := reloaded.Trajectory(ids[5], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("paths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("path %d lengths differ", i)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("path %d differs at %d", i, j)
			}
		}
	}
}
