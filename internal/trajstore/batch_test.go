package trajstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

func TestApplyBatchMixed(t *testing.T) {
	s := NewMemStore()
	a, err := s.AddVertex(event("cam#pre"))
	if err != nil {
		t.Fatal(err)
	}
	// Vertices first: edge records must reference already-known IDs, so a
	// client naturally runs two batches.
	ids, errs, err := s.ApplyBatch([]protocol.TrajWrite{
		protocol.VertexWrite(event("cam#b1")),
		protocol.VertexWrite(event("cam#b2")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("vertex errs = %v", errs)
	}
	if ids[0] == 0 || ids[1] == 0 || ids[0] == ids[1] {
		t.Fatalf("vertex ids = %v", ids)
	}

	second := []protocol.TrajWrite{
		protocol.EdgeWrite(a, ids[0], 0.1),
		protocol.EdgeWrite(a, 999, 0.1),
		{Kind: protocol.TrajWriteVertex},
		{Kind: "bogus"},
		protocol.EdgeWrite(ids[0], ids[1], 0.2),
	}
	ids2, errs2, err := s.ApplyBatch(second)
	if err != nil {
		t.Fatal(err)
	}
	if errs2[0] != nil || errs2[4] != nil {
		t.Fatalf("accepted records errored: %v", errs2)
	}
	if !errors.Is(errs2[1], ErrVertexNotFound) {
		t.Errorf("missing target: %v", errs2[1])
	}
	if errs2[2] == nil || errs2[3] == nil {
		t.Errorf("malformed records accepted: %v", errs2)
	}
	if ids2[0] != 0 || ids2[4] != 0 {
		t.Errorf("edge records must not allocate ids: %v", ids2)
	}
	if s.NumVertices() != 3 || s.NumEdges() != 2 {
		t.Errorf("counts %d/%d", s.NumVertices(), s.NumEdges())
	}
}

func TestApplyBatchEmpty(t *testing.T) {
	s := NewMemStore()
	ids, errs, err := s.ApplyBatch(nil)
	if err != nil || ids != nil || errs != nil {
		t.Fatalf("empty batch: %v %v %v", ids, errs, err)
	}
}

func TestApplyBatchPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := s.ApplyBatch([]protocol.TrajWrite{
		protocol.VertexWrite(event("cam#1")),
		protocol.VertexWrite(event("cam#2")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ApplyBatch([]protocol.TrajWrite{
		protocol.EdgeWrite(ids[0], ids[1], 0.3),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if s2.NumVertices() != 2 || s2.NumEdges() != 1 {
		t.Errorf("reopened counts %d/%d", s2.NumVertices(), s2.NumEdges())
	}
	out := s2.OutEdges(ids[0])
	if len(out) != 1 || out[0].To != ids[1] || out[0].Weight != 0.3 {
		t.Errorf("edge = %+v", out)
	}
}

// TestGroupCommitGroupsConcurrentWriters proves the WAL committer batches
// records from concurrent writers into fewer flushes than records.
func TestGroupCommitGroupsConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWithConfig(dir, StoreConfig{GroupCommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.AddVertex(event(fmt.Sprintf("cam%d#%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.WALStats()
	if st.Records != writers*perWriter {
		t.Fatalf("records = %d, want %d", st.Records, writers*perWriter)
	}
	if st.GroupCommits >= st.Records {
		t.Errorf("group commits %d not fewer than records %d: no grouping happened", st.GroupCommits, st.Records)
	}
	if s.NumVertices() != writers*perWriter {
		t.Errorf("vertices = %d", s.NumVertices())
	}
}

// TestFsyncDurabilityOfAcknowledgedWrites copies the data directory the
// instant every write has been acknowledged — without closing the store,
// simulating a machine losing the process — and proves a store opened
// from the copy holds every acknowledged write.
func TestFsyncDurabilityOfAcknowledgedWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWithConfig(dir, StoreConfig{Fsync: true, GroupCommitWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.AddVertex(event(fmt.Sprintf("cam%d#%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.WALStats(); st.Syncs == 0 {
		t.Fatal("no fsyncs recorded under Fsync config")
	}

	// Simulate the crash: snapshot the on-disk state with the store still
	// open (nothing flushed by Close), then open a fresh store from it.
	crashDir := t.TempDir()
	for _, name := range []string{walFileName, snapshotFileName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_ = s.Close()

	s2, err := Open(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if got := s2.NumVertices(); got != writers*perWriter {
		t.Errorf("recovered %d vertices, want %d: acknowledged writes lost", got, writers*perWriter)
	}
}

// TestCrashDuringCompactNoDuplicateEdges reproduces the compaction crash
// window: the snapshot is installed but the process dies before the WAL
// is truncated, so restart replays a WAL whose contents are already in
// the snapshot. Edge replay must be idempotent or weights silently skew.
func TestCrashDuringCompactNoDuplicateEdges(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.AddVertex(event("cam#1"))
	b, _ := s.AddVertex(event("cam#2"))
	c, _ := s.AddVertex(event("cam#3"))
	if err := s.AddEdge(a, b, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(b, c, 0.2); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFileName)
	preCompactWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(preCompactWAL) == 0 {
		t.Fatal("wal empty before compact; test setup broken")
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: the snapshot landed but the WAL truncation did
	// not — put the stale pre-compact WAL back.
	if err := os.WriteFile(walPath, preCompactWAL, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if s2.NumVertices() != 3 {
		t.Errorf("vertices = %d, want 3", s2.NumVertices())
	}
	if s2.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2: stale WAL replay duplicated edges", s2.NumEdges())
	}
	if out := s2.OutEdges(a); len(out) != 1 || out[0].Weight != 0.1 {
		t.Errorf("a's out edges = %+v", out)
	}
}

// TestTornWALTailTruncated proves a partial final record (a torn write
// from a crash) is truncated away with the good prefix kept, counted in
// WALStats, and that the store keeps appending cleanly afterwards.
func TestTornWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddVertex(event("cam#1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddVertex(event("cam#2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"v","vertex":{"id":3,`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	if s2.NumVertices() != 2 {
		t.Errorf("vertices = %d, want 2", s2.NumVertices())
	}
	if st := s2.WALStats(); st.TailTruncations != 1 {
		t.Errorf("tail truncations = %d, want 1", st.TailTruncations)
	}
	if _, err := s2.AddVertex(event("cam#3")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s3.Close() }()
	if s3.NumVertices() != 3 {
		t.Errorf("after append past truncation: vertices = %d, want 3", s3.NumVertices())
	}
}

// TestMidFileWALCorruptionRefusesOpen proves damage followed by intact
// records — corruption at rest, not a torn tail — fails the open instead
// of silently dropping acknowledged writes.
func TestMidFileWALCorruptionRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.AddVertex(event(fmt.Sprintf("cam#%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Smash bytes in the first record, leaving later records intact.
	copy(data[2:8], []byte("######"))
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("open = %v, want ErrWALCorrupt", err)
	}
}

func TestClientAddBatchRoundTrip(t *testing.T) {
	srv, err := Serve(NewMemStore(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()

	ids, errs, err := cl.AddBatch([]protocol.TrajWrite{
		protocol.VertexWrite(event("cam#1")),
		protocol.VertexWrite(event("cam#2")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("errs = %v", errs)
	}
	ids2, errs2, err := cl.AddBatch([]protocol.TrajWrite{
		protocol.EdgeWrite(ids[0], ids[1], 0.25),
		protocol.EdgeWrite(ids[0], 999, 0.25),
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs2[0] != nil {
		t.Errorf("good edge rejected: %v", errs2[0])
	}
	if errs2[1] == nil {
		t.Error("missing-target edge accepted")
	}
	if ids2[0] != 0 {
		t.Errorf("edge allocated id %d", ids2[0])
	}
	if _, _, err := cl.AddBatch(nil); err == nil {
		t.Error("empty batch must be rejected by the server")
	}
}

// fakeBatchClient scripts AddBatchContext outcomes for BatchWriter tests.
type fakeBatchClient struct {
	mu        sync.Mutex
	calls     int
	failFirst int   // transport-fail this many leading calls
	recErr    error // per-record error applied to every record
	got       [][]protocol.TrajWrite
}

func (f *fakeBatchClient) AddVertexContext(ctx context.Context, e protocol.DetectionEvent) (int64, error) {
	return 1, nil
}

func (f *fakeBatchClient) AddBatchContext(ctx context.Context, writes []protocol.TrajWrite) ([]int64, []error, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failFirst {
		return nil, nil, errors.New("transport down")
	}
	cp := append([]protocol.TrajWrite(nil), writes...)
	f.got = append(f.got, cp)
	errs := make([]error, len(writes))
	for i := range errs {
		errs[i] = f.recErr
	}
	return make([]int64, len(writes)), errs, nil
}

func (f *fakeBatchClient) delivered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, b := range f.got {
		n += len(b)
	}
	return n
}

func TestBatchWriterFlushesOnClose(t *testing.T) {
	fc := &fakeBatchClient{}
	w := NewBatchWriter(fc, BatchWriterConfig{MaxBatch: 100, MaxAge: time.Hour})
	var mu sync.Mutex
	var results []error
	for i := 0; i < 10; i++ {
		w.QueueEdge(int64(i), int64(i+1), 0.1, func(err error) {
			mu.Lock()
			results = append(results, err)
			mu.Unlock()
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if fc.delivered() != 10 {
		t.Errorf("delivered %d edges, want 10", fc.delivered())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(results) != 10 {
		t.Fatalf("callbacks = %d, want 10", len(results))
	}
	for _, err := range results {
		if err != nil {
			t.Errorf("edge result: %v", err)
		}
	}
}

func TestBatchWriterRetriesTransportErrors(t *testing.T) {
	fc := &fakeBatchClient{failFirst: 2}
	w := NewBatchWriter(fc, BatchWriterConfig{MaxBatch: 4, MaxAge: time.Hour, MaxRetries: 3})
	errCh := make(chan error, 1)
	w.QueueEdge(1, 2, 0.1, func(err error) { errCh <- err })
	if err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Errorf("edge should succeed after retries: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchWriterSurfacesExhaustedRetries(t *testing.T) {
	fc := &fakeBatchClient{failFirst: 100}
	w := NewBatchWriter(fc, BatchWriterConfig{MaxBatch: 4, MaxAge: time.Hour, MaxRetries: 1})
	errCh := make(chan error, 1)
	w.QueueEdge(1, 2, 0.1, func(err error) { errCh <- err })
	if err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Error("exhausted retries must surface the transport error")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchWriterSurfacesPerRecordErrors(t *testing.T) {
	recErr := errors.New("edge exists")
	fc := &fakeBatchClient{recErr: recErr}
	w := NewBatchWriter(fc, BatchWriterConfig{MaxBatch: 4, MaxAge: time.Hour})
	err := w.AddEdge(1, 2, 0.1)
	if !errors.Is(err, recErr) {
		t.Errorf("AddEdge = %v, want scripted per-record error", err)
	}
	// Per-record errors are terminal: exactly one delivery attempt.
	if fc.delivered() != 1 {
		t.Errorf("delivered %d, want 1 (no retry of server-side rejections)", fc.delivered())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchWriterQueueAfterCloseFails(t *testing.T) {
	fc := &fakeBatchClient{}
	w := NewBatchWriter(fc, BatchWriterConfig{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	w.QueueEdge(1, 2, 0.1, func(err error) { errCh <- err })
	if err := <-errCh; !errors.Is(err, ErrWriterClosed) {
		t.Errorf("queue after close = %v, want ErrWriterClosed", err)
	}
}

func TestBatchWriterSizeTrigger(t *testing.T) {
	fc := &fakeBatchClient{}
	w := NewBatchWriter(fc, BatchWriterConfig{MaxBatch: 4, MaxAge: time.Hour})
	defer func() { _ = w.Close() }()
	var wg sync.WaitGroup
	wg.Add(8)
	for i := 0; i < 8; i++ {
		w.QueueEdge(int64(i), int64(i+1), 0.1, func(error) { wg.Done() })
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("size-triggered flush never delivered the queued edges")
	}
}
