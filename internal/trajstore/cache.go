package trajstore

import (
	"container/list"
	"sync"
)

// cacheEntry is one memoized query result, tagged with the snapshot
// version it was computed at.
type cacheEntry struct {
	key     queryKey
	version uint64
	val     any
}

// queryCache is a bounded LRU of whole query results. Entries are
// version-checked on lookup (a stale entry is evicted, never served)
// and the whole cache is purged by the store's write-path mutation
// hook, so invalidation is belt and suspenders: the hook frees memory
// promptly, the version tag guarantees correctness even for writes
// that bypass the hook.
type queryCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[queryKey]*list.Element
}

func newQueryCache(max int) *queryCache {
	if max < 1 {
		max = 1
	}
	return &queryCache{
		max:   max,
		ll:    list.New(),
		items: make(map[queryKey]*list.Element),
	}
}

// get returns the cached result for key if it was computed at exactly
// the given snapshot version; a version mismatch evicts the entry and
// misses.
func (c *queryCache) get(key queryKey, version uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.version != version {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return ent.val, true
}

// put stores a result, evicting the least recently used entry when the
// cache is full.
func (c *queryCache) put(key queryKey, version uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.version = version
		ent.val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, version: version, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// purge drops every entry. Wired to the store's write path.
func (c *queryCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[queryKey]*list.Element)
}

// len returns the live entry count (tests and debugging).
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
