package trajstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rpc"
)

// Request ops for the trajectory store wire protocol.
const (
	opAddVertex   = "add_vertex"
	opAddEdge     = "add_edge"
	opAddBatch    = "add_batch"
	opGetVertex   = "get_vertex"
	opFindByEvent = "find_by_event"
	opTrajectory  = "trajectory"
	opStats       = "stats"
	opOutEdges    = "out_edges"
	opInEdges     = "in_edges"
	// Server-side query ops: the full reconstruction runs inside the
	// server against a consistent snapshot, returning whole ranked
	// tracks in one round trip instead of the per-vertex N+1 walk (which
	// remains wire-compatible as a fallback for old servers).
	opReconstruct = "reconstruct"
	opBest        = "best"
	opSightings   = "sightings"
)

// Error codes relayed in the response frame so clients can recover
// sentinel errors across the wire (errors.Is keeps working remotely).
const (
	codeNotFound = "not_found"
	codeNoTracks = "no_tracks"
)

// ServerError is a store-level rejection relayed over the wire. Its
// message matches the historical "trajstore: server: ..." string; the
// optional code restores sentinel identity, so
// errors.Is(err, ErrVertexNotFound) and errors.Is(err, ErrNoTracks)
// hold across the client/server boundary.
type ServerError struct {
	Code string
	Msg  string
}

func (e *ServerError) Error() string { return "trajstore: server: " + e.Msg }

func (e *ServerError) Unwrap() error {
	switch e.Code {
	case codeNotFound:
		return ErrVertexNotFound
	case codeNoTracks:
		return ErrNoTracks
	}
	return nil
}

// request is one client -> server call.
type request struct {
	Op      string                   `json:"op"`
	Event   *protocol.DetectionEvent `json:"event,omitempty"`
	From    int64                    `json:"from,omitempty"`
	To      int64                    `json:"to,omitempty"`
	Weight  float64                  `json:"weight,omitempty"`
	ID      int64                    `json:"id,omitempty"`
	EventID protocol.EventID         `json:"eventId,omitempty"`
	Limits  *TraceLimits             `json:"limits,omitempty"`
	Batch   []protocol.TrajWrite     `json:"batch,omitempty"`
	// VehicleID and MaxVertex parameterize the sightings op.
	VehicleID string `json:"vehicleId,omitempty"`
	MaxVertex int64  `json:"maxVertex,omitempty"`
	// Trace carries the caller's span context so the server can resume
	// the caller's trace (batch records carry their own per-record
	// Trace fields instead). It is stamped by the rpc trace-inject
	// middleware and read back by trace-extract on the server.
	Trace *protocol.TraceContext `json:"trace,omitempty"`
}

// TraceContext and SetTraceContext implement rpc.TraceCarrier, so the
// shared trace middleware moves span contexts through request frames.
func (r *request) TraceContext() *protocol.TraceContext      { return r.Trace }
func (r *request) SetTraceContext(tc *protocol.TraceContext) { r.Trace = tc }

// response is one server -> client reply.
type response struct {
	OK       bool      `json:"ok"`
	Err      string    `json:"err,omitempty"`
	Code     string    `json:"code,omitempty"` // structured error code ("" for old servers)
	VertexID int64     `json:"vertexId,omitempty"`
	Vertex   *Vertex   `json:"vertex,omitempty"`
	Paths    [][]int64 `json:"paths,omitempty"`
	Vertices int       `json:"vertices,omitempty"`
	Edges    int       `json:"edges,omitempty"`
	EdgeList []Edge    `json:"edgeList,omitempty"`
	// Tracks, Track, and Hops carry server-side query results.
	Tracks []Track `json:"tracks,omitempty"`
	Track  *Track  `json:"track,omitempty"`
	Hops   []Hop   `json:"hops,omitempty"`
	// VertexIDs and Errs parallel an add_batch request's records:
	// allocated vertex IDs (0 for edges and rejected records) and
	// per-record rejections ("" for successes).
	VertexIDs []int64  `json:"vertexIds,omitempty"`
	Errs      []string `json:"errs,omitempty"`
}

// maxWireBytes bounds one request/response frame.
const maxWireBytes = 8 << 20

func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("trajstore: marshal frame: %w", err)
	}
	if len(data) > maxWireBytes {
		return fmt.Errorf("trajstore: frame too large: %d", len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("trajstore: write frame: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("trajstore: write frame: %w", err)
	}
	return nil
}

func readFrame(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("trajstore: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxWireBytes {
		return fmt.Errorf("trajstore: frame too large: %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("trajstore: read frame: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("trajstore: decode frame: %w", err)
	}
	return nil
}

// wireCodec adapts the store's length-prefixed-JSON frames to the
// generic rpc server. The wire format is unchanged: handler errors are
// encoded into the response frame's err field, exactly as before, so
// old clients interoperate.
type wireCodec struct{}

func (wireCodec) ReadRequest(r io.Reader) (*rpc.Request, error) {
	var req request
	if err := readFrame(r, &req); err != nil {
		return nil, err
	}
	return &rpc.Request{Method: req.Op, Body: &req}, nil
}

func (wireCodec) WriteResponse(w io.Writer, _ *rpc.Request, resp *rpc.Response, herr error) error {
	if herr != nil {
		return writeFrame(w, response{Err: herr.Error()})
	}
	return writeFrame(w, *resp.Body.(*response))
}

// ServerOptions tunes a trajectory store server beyond the defaults.
type ServerOptions struct {
	// WriteTimeout bounds each response write (0 = none).
	WriteTimeout time.Duration
	// Interceptors wrap request handling, after trace extraction.
	Interceptors []rpc.ServerInterceptor
	// Logger, when non-nil, logs each call (debug on success, warn on
	// error) with its trace.
	Logger *obs.Logger
	// Registry receives the server's coralpie_query_* telemetry; nil
	// selects the process-default registry.
	Registry *obs.Registry
	// QueryCache bounds the server-side query result cache in entries.
	// 0 selects DefaultQueryCacheSize; negative disables caching.
	QueryCache int
}

// Server exposes a Store over TCP with a simple request/response
// protocol, served through the shared rpc layer (accept/serve/shutdown
// lifecycle, trace extraction, middleware).
type Server struct {
	store  *Store
	engine *queryEngine
	rs     *rpc.Server
}

// Serve starts a server for the store on addr (use "127.0.0.1:0" for an
// ephemeral port).
func Serve(store *Store, addr string) (*Server, error) {
	return ServeWith(store, addr, ServerOptions{})
}

// ServeWith starts a server with explicit middleware/timeout tuning.
func ServeWith(store *Store, addr string, opts ServerOptions) (*Server, error) {
	if store == nil {
		return nil, errors.New("trajstore: nil store")
	}
	s := &Server{store: store, engine: newQueryEngine(store, opts.QueryCache, opts.Registry)}
	ics := opts.Interceptors
	if opts.Logger != nil {
		ics = append([]rpc.ServerInterceptor{rpc.WithServerLogging(opts.Logger)}, ics...)
	}
	rs, err := rpc.NewServer(addr, wireCodec{}, s.dispatch, rpc.ServerConfig{
		WriteTimeout: opts.WriteTimeout,
		Interceptors: ics,
	})
	if err != nil {
		return nil, fmt.Errorf("trajstore: listen %s: %w", addr, err)
	}
	s.rs = rs
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.rs.Addr() }

// dispatch is the base handler under the server chain.
func (s *Server) dispatch(ctx context.Context, req *rpc.Request) (*rpc.Response, error) {
	resp := s.handle(ctx, *req.Body.(*request))
	return &rpc.Response{Body: &resp}, nil
}

func (s *Server) handle(ctx context.Context, req request) response {
	fail := func(err error) response {
		r := response{Err: err.Error()}
		switch {
		case errors.Is(err, ErrVertexNotFound):
			r.Code = codeNotFound
		case errors.Is(err, ErrNoTracks):
			r.Code = codeNoTracks
		}
		return r
	}
	switch req.Op {
	case opAddVertex:
		if req.Event == nil {
			return fail(errors.New("add_vertex requires an event"))
		}
		id, err := s.store.AddVertex(*req.Event)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, VertexID: id}
	case opAddEdge:
		// The caller's span context, when present on the frame, was
		// installed in ctx by the trace-extract middleware; record the
		// WAL commit inside that trace.
		var err error
		if sc, ok := obs.SpanFromContext(ctx); ok {
			err = s.store.AddEdgeTraced(req.From, req.To, req.Weight, protocol.TraceContext(sc))
		} else {
			err = s.store.AddEdge(req.From, req.To, req.Weight)
		}
		if err != nil {
			return fail(err)
		}
		return response{OK: true}
	case opAddBatch:
		if len(req.Batch) == 0 {
			return fail(errors.New("add_batch requires at least one record"))
		}
		ids, errs, err := s.store.ApplyBatch(req.Batch)
		if err != nil {
			return fail(err)
		}
		strs := make([]string, len(errs))
		for i, e := range errs {
			if e != nil {
				strs[i] = e.Error()
			}
		}
		return response{OK: true, VertexIDs: ids, Errs: strs}
	case opGetVertex:
		v, err := s.store.Vertex(req.ID)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Vertex: &v}
	case opFindByEvent:
		v, err := s.store.FindByEventID(req.EventID)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Vertex: &v}
	case opTrajectory:
		limits := DefaultTraceLimits()
		if req.Limits != nil {
			limits = *req.Limits
		}
		paths, err := s.store.Trajectory(req.ID, limits)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Paths: paths}
	case opOutEdges:
		if _, err := s.store.Vertex(req.ID); err != nil {
			return fail(err)
		}
		return response{OK: true, EdgeList: s.store.OutEdges(req.ID)}
	case opInEdges:
		if _, err := s.store.Vertex(req.ID); err != nil {
			return fail(err)
		}
		return response{OK: true, EdgeList: s.store.InEdges(req.ID)}
	case opStats:
		return response{OK: true, Vertices: s.store.NumVertices(), Edges: s.store.NumEdges()}
	case opReconstruct:
		limits := DefaultTraceLimits()
		if req.Limits != nil {
			limits = *req.Limits
		}
		key := queryKey{op: opReconstruct, eventID: req.EventID, vertexID: req.ID, limits: limits}
		val, err := s.engine.do(ctx, key, func(snap *Snapshot) (any, error) {
			if req.EventID != "" {
				return FindTracks(snap, req.EventID, limits)
			}
			return ReconstructTracks(snap, req.ID, limits)
		})
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Tracks: val.([]Track)}
	case opBest:
		limits := DefaultTraceLimits()
		if req.Limits != nil {
			limits = *req.Limits
		}
		key := queryKey{op: opBest, eventID: req.EventID, limits: limits}
		val, err := s.engine.do(ctx, key, func(snap *Snapshot) (any, error) {
			return BestTrack(snap, req.EventID, limits)
		})
		if err != nil {
			return fail(err)
		}
		track := val.(Track)
		return response{OK: true, Track: &track}
	case opSightings:
		if req.VehicleID == "" {
			return fail(errors.New("sightings requires a vehicle id"))
		}
		// MaxVertex <= 0 means "the whole graph", resolved against the
		// same snapshot the query runs on (0 stays in the cache key; the
		// version tag invalidates the entry when the graph grows).
		key := queryKey{op: opSightings, vehicleID: req.VehicleID, maxVertex: req.MaxVertex}
		val, err := s.engine.do(ctx, key, func(snap *Snapshot) (any, error) {
			maxVertex := req.MaxVertex
			if maxVertex <= 0 {
				maxVertex = snap.MaxVertexID()
			}
			return SightingsOf(snap, maxVertex, req.VehicleID)
		})
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Hops: val.([]Hop)}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// Shutdown gracefully stops the server: it stops accepting new
// connections, lets any request currently being served finish, and only
// hard-closes connections once idle (or once ctx expires, whichever is
// first). The drain duration is recorded in the server's shutdown
// histogram. Safe to call concurrently with Close; both are idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.rs.Shutdown(ctx)
}

// DrainObservations returns how many graceful shutdowns have recorded a
// drain duration (at most one per server; exposed for tests and
// telemetry wiring).
func (s *Server) DrainObservations() uint64 { return s.rs.DrainObservations() }

// QueryStats are the server-side query engine's lifetime counters,
// exposed for tests and telemetry wiring.
type QueryStats struct {
	CacheHits   int64
	CacheMisses int64
	CacheLen    int
	InFlight    int64
}

// QueryStats returns the query engine's cache and in-flight counters.
func (s *Server) QueryStats() QueryStats {
	st := QueryStats{
		CacheHits:   s.engine.m.hits.Value(),
		CacheMisses: s.engine.m.misses.Value(),
		InFlight:    s.engine.m.inflight.Value(),
	}
	if s.engine.cache != nil {
		st.CacheLen = s.engine.cache.len()
	}
	return st
}

// Close stops accepting, closes connections, and waits for handlers.
// Unlike Shutdown it does not wait for in-flight requests.
func (s *Server) Close() error { return s.rs.Close() }

// ClientConfig tunes the client's per-call deadlines, reconnect
// backoff, retry budget, and middleware. The zero value selects the
// defaults noted per field.
type ClientConfig struct {
	// CallTimeout bounds one RPC (dial + write + read) when the caller's
	// context carries no deadline of its own. Default 5s.
	CallTimeout time.Duration
	// DialBackoffBase is the first retry delay after a failed dial
	// (default 50ms); DialBackoffMax caps the exponential growth
	// (default 1s). Retries use full jitter and stop at the context
	// deadline.
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
	// RetryBudget is how many times one call may retry after its cached
	// connection proves stale (default 1, the historical retry-once
	// behavior; negative disables retries).
	RetryBudget int
	// Interceptors are appended to the default client chain (deadline,
	// trace inject, metrics) ahead of the retry stage.
	Interceptors []rpc.ClientInterceptor
	// Registry receives the client's coralpie_rpc_* telemetry
	// (component="trajstore_client"); nil keeps standalone handles.
	Registry *obs.Registry
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if cfg.DialBackoffBase <= 0 {
		cfg.DialBackoffBase = 50 * time.Millisecond
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = time.Second
	}
	return cfg
}

// ClientConfigFromFlags maps the shared -rpc-* flag block onto a
// ClientConfig, so every binary tunes its store client the same way.
func ClientConfigFromFlags(f *rpc.Flags) ClientConfig {
	return ClientConfig{
		CallTimeout:     f.CallTimeout,
		DialBackoffBase: f.BackoffBase,
		DialBackoffMax:  f.BackoffMax,
		RetryBudget:     f.RetryBudget,
	}
}

// Client is a synchronous TCP client for a trajectory store server. It
// is safe for concurrent use; calls are serialized over one managed
// connection. Every call runs through the shared rpc middleware chain
// (default deadline, trace inject, metrics, retry); a call that finds
// its cached connection dead (the server restarted) redials with
// capped, jittered backoff and retries within the call's deadline, so
// clients ride out server restarts transparently. The client holds no
// private dial/backoff/retry logic of its own.
type Client struct {
	cc   *rpc.ClientConn
	call rpc.Handler // middleware chain bound once around roundTrip
	m    *rpc.Metrics
	cfg  ClientConfig
}

// Dial connects to a trajectory store server with the default config.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr, ClientConfig{})
}

// DialContext connects to a trajectory store server, bounding the
// initial dial by ctx (or cfg.CallTimeout when ctx has no deadline).
// The eager dial is a single attempt so an unreachable server fails
// fast at construction.
func DialContext(ctx context.Context, addr string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	c := &Client{
		cfg: cfg,
		cc: rpc.NewClientConn(addr, rpc.BackoffConfig{
			Base: cfg.DialBackoffBase,
			Max:  cfg.DialBackoffMax,
		}),
		m: rpc.NewMetrics(cfg.Registry, "component", "trajstore_client"),
	}
	chain := append([]rpc.ClientInterceptor{
		rpc.WithDefaultDeadline(cfg.CallTimeout),
		rpc.WithTraceInject(),
		rpc.WithMetrics(c.m),
	}, cfg.Interceptors...)
	chain = append(chain, rpc.WithRetry(c.m.RetryHooks(rpc.RetryConfig{Budget: cfg.RetryBudget})))
	c.call = rpc.BindClient(c.roundTrip, chain...)

	dctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, cfg.CallTimeout)
		defer cancel()
	}
	if err := c.cc.Prime(dctx); err != nil {
		return nil, fmt.Errorf("trajstore: dial %s: %w", addr, err)
	}
	return c, nil
}

// Metrics exposes the client's rpc telemetry handles (standalone unless
// a registry was configured).
func (c *Client) Metrics() *rpc.Metrics { return c.m }

func (c *Client) do(ctx context.Context, wreq request) (response, error) {
	req := &rpc.Request{Method: wreq.Op, Addr: c.cc.Addr(), Body: &wreq}
	resp, err := c.call(ctx, req)
	if err != nil {
		return response{}, err
	}
	return *resp.Body.(*response), nil
}

// roundTrip is the base handler under the middleware chain: one framed
// request/response over the managed connection. A server-side rejection
// is terminal (the request reached the server; retrying would repeat
// it), while transport failures on a cached connection surface as
// retryable for the retry stage above.
func (c *Client) roundTrip(ctx context.Context, req *rpc.Request) (*rpc.Response, error) {
	var wresp response
	err := c.cc.Call(ctx, func(conn net.Conn) error {
		if err := writeFrame(conn, req.Body.(*request)); err != nil {
			return err
		}
		return readFrame(conn, &wresp)
	})
	if err != nil {
		return nil, err
	}
	if !wresp.OK {
		return nil, &ServerError{Code: wresp.Code, Msg: wresp.Err}
	}
	return &rpc.Response{Body: &wresp}, nil
}

// AddVertexContext inserts a detection event remotely and returns its
// vertex ID, bounded by ctx.
func (c *Client) AddVertexContext(ctx context.Context, e protocol.DetectionEvent) (int64, error) {
	resp, err := c.do(ctx, request{Op: opAddVertex, Event: &e})
	if err != nil {
		return 0, err
	}
	return resp.VertexID, nil
}

// AddVertex inserts a detection event remotely using the default
// per-call timeout.
func (c *Client) AddVertex(e protocol.DetectionEvent) (int64, error) {
	return c.AddVertexContext(context.Background(), e)
}

// AddEdgeContext inserts an edge remotely, bounded by ctx.
func (c *Client) AddEdgeContext(ctx context.Context, from, to int64, weight float64) error {
	_, err := c.do(ctx, request{Op: opAddEdge, From: from, To: to, Weight: weight})
	return err
}

// AddEdge inserts an edge remotely using the default per-call timeout.
func (c *Client) AddEdge(from, to int64, weight float64) error {
	return c.AddEdgeContext(context.Background(), from, to, weight)
}

// AddEdgeTracedContext inserts an edge remotely with the writer's trace
// context attached, so the server records its WAL commit inside the
// caller's trace. The context survives the client's redial/retry path:
// it is part of the request frame, not the connection. (The explicit
// trace wins over any ambient span — the inject middleware only fills
// empty carriers.)
func (c *Client) AddEdgeTracedContext(ctx context.Context, from, to int64, weight float64, tc protocol.TraceContext) error {
	_, err := c.do(ctx, request{Op: opAddEdge, From: from, To: to, Weight: weight, Trace: &tc})
	return err
}

// AddEdgeTraced inserts a traced edge using the default per-call
// timeout.
func (c *Client) AddEdgeTraced(from, to int64, weight float64, tc protocol.TraceContext) error {
	return c.AddEdgeTracedContext(context.Background(), from, to, weight, tc)
}

// AddBatchContext applies a mixed batch of vertex/edge writes in one RPC
// and one server-side group commit, bounded by ctx. Returns the
// allocated vertex IDs and per-record errors, both positional with the
// input; a non-nil error means the whole batch failed (transport fault
// or store-level refusal) and nothing in it should be assumed applied.
func (c *Client) AddBatchContext(ctx context.Context, writes []protocol.TrajWrite) ([]int64, []error, error) {
	resp, err := c.do(ctx, request{Op: opAddBatch, Batch: writes})
	if err != nil {
		return nil, nil, err
	}
	errs := make([]error, len(writes))
	for i, s := range resp.Errs {
		if i >= len(errs) {
			break
		}
		if s != "" {
			errs[i] = fmt.Errorf("trajstore: server: %s", s)
		}
	}
	ids := resp.VertexIDs
	if len(ids) < len(writes) {
		padded := make([]int64, len(writes))
		copy(padded, ids)
		ids = padded
	}
	return ids, errs, nil
}

// AddBatch applies a mixed batch of writes using the default per-call
// timeout.
func (c *Client) AddBatch(writes []protocol.TrajWrite) ([]int64, []error, error) {
	return c.AddBatchContext(context.Background(), writes)
}

// VertexContext fetches a vertex by ID, bounded by ctx.
func (c *Client) VertexContext(ctx context.Context, id int64) (Vertex, error) {
	resp, err := c.do(ctx, request{Op: opGetVertex, ID: id})
	if err != nil {
		return Vertex{}, err
	}
	return *resp.Vertex, nil
}

// Vertex fetches a vertex by ID using the default per-call timeout.
func (c *Client) Vertex(id int64) (Vertex, error) {
	return c.VertexContext(context.Background(), id)
}

// FindByEventIDContext fetches a vertex by its detection-event ID,
// bounded by ctx.
func (c *Client) FindByEventIDContext(ctx context.Context, id protocol.EventID) (Vertex, error) {
	resp, err := c.do(ctx, request{Op: opFindByEvent, EventID: id})
	if err != nil {
		return Vertex{}, err
	}
	return *resp.Vertex, nil
}

// FindByEventID fetches a vertex by its detection-event ID using the
// default per-call timeout.
func (c *Client) FindByEventID(id protocol.EventID) (Vertex, error) {
	return c.FindByEventIDContext(context.Background(), id)
}

// TrajectoryContext queries the candidate space-time tracks through a
// vertex, bounded by ctx.
func (c *Client) TrajectoryContext(ctx context.Context, id int64, limits TraceLimits) ([][]int64, error) {
	resp, err := c.do(ctx, request{Op: opTrajectory, ID: id, Limits: &limits})
	if err != nil {
		return nil, err
	}
	return resp.Paths, nil
}

// Trajectory queries the candidate space-time tracks through a vertex
// using the default per-call timeout.
func (c *Client) Trajectory(id int64, limits TraceLimits) ([][]int64, error) {
	return c.TrajectoryContext(context.Background(), id, limits)
}

// OutEdgesContext fetches a vertex's outgoing edges, bounded by ctx.
func (c *Client) OutEdgesContext(ctx context.Context, id int64) ([]Edge, error) {
	resp, err := c.do(ctx, request{Op: opOutEdges, ID: id})
	if err != nil {
		return nil, err
	}
	return resp.EdgeList, nil
}

// OutEdges fetches a vertex's outgoing edges using the default per-call
// timeout.
func (c *Client) OutEdges(id int64) ([]Edge, error) {
	return c.OutEdgesContext(context.Background(), id)
}

// InEdgesContext fetches a vertex's incoming edges, bounded by ctx.
func (c *Client) InEdgesContext(ctx context.Context, id int64) ([]Edge, error) {
	resp, err := c.do(ctx, request{Op: opInEdges, ID: id})
	if err != nil {
		return nil, err
	}
	return resp.EdgeList, nil
}

// InEdges fetches a vertex's incoming edges using the default per-call
// timeout.
func (c *Client) InEdges(id int64) ([]Edge, error) {
	return c.InEdgesContext(context.Background(), id)
}

// StatsContext returns the remote vertex and edge counts, bounded by
// ctx.
func (c *Client) StatsContext(ctx context.Context) (vertices, edges int, err error) {
	resp, err := c.do(ctx, request{Op: opStats})
	if err != nil {
		return 0, 0, err
	}
	return resp.Vertices, resp.Edges, nil
}

// Stats returns the remote vertex and edge counts using the default
// per-call timeout.
func (c *Client) Stats() (vertices, edges int, err error) {
	return c.StatsContext(context.Background())
}

// ReconstructContext executes the full track reconstruction inside the
// server against a consistent snapshot and returns every candidate
// track through the sighting, ranked most-plausible first — one round
// trip instead of the per-vertex walk. Requires a server speaking the
// reconstruct op; against an older server the call fails and callers
// can fall back to query.Reconstruct over this client (the per-vertex
// ops remain wire-compatible).
func (c *Client) ReconstructContext(ctx context.Context, eventID protocol.EventID, limits TraceLimits) ([]Track, error) {
	resp, err := c.do(ctx, request{Op: opReconstruct, EventID: eventID, Limits: &limits})
	if err != nil {
		return nil, err
	}
	return resp.Tracks, nil
}

// Reconstruct executes a server-side reconstruction by event ID using
// the default per-call timeout.
func (c *Client) Reconstruct(eventID protocol.EventID, limits TraceLimits) ([]Track, error) {
	return c.ReconstructContext(context.Background(), eventID, limits)
}

// ReconstructVertexContext is ReconstructContext keyed by vertex ID.
func (c *Client) ReconstructVertexContext(ctx context.Context, vertexID int64, limits TraceLimits) ([]Track, error) {
	resp, err := c.do(ctx, request{Op: opReconstruct, ID: vertexID, Limits: &limits})
	if err != nil {
		return nil, err
	}
	return resp.Tracks, nil
}

// ReconstructVertex executes a server-side reconstruction by vertex ID
// using the default per-call timeout.
func (c *Client) ReconstructVertex(vertexID int64, limits TraceLimits) ([]Track, error) {
	return c.ReconstructVertexContext(context.Background(), vertexID, limits)
}

// BestContext returns the server's top-ranked track through a
// sighting in one round trip. A sighting with no tracks surfaces as
// ErrNoTracks (via errors.Is), an unknown event as ErrVertexNotFound.
func (c *Client) BestContext(ctx context.Context, eventID protocol.EventID, limits TraceLimits) (Track, error) {
	resp, err := c.do(ctx, request{Op: opBest, EventID: eventID, Limits: &limits})
	if err != nil {
		return Track{}, err
	}
	if resp.Track == nil {
		return Track{}, errors.New("trajstore: server returned no track")
	}
	return *resp.Track, nil
}

// Best returns the top-ranked track using the default per-call timeout.
func (c *Client) Best(eventID protocol.EventID, limits TraceLimits) (Track, error) {
	return c.BestContext(context.Background(), eventID, limits)
}

// SightingsContext lists the ground-truth sightings of a vehicle in
// time order, computed server-side over a snapshot. maxVertex bounds
// the scan; <= 0 means the whole graph.
func (c *Client) SightingsContext(ctx context.Context, vehicleID string, maxVertex int64) ([]Hop, error) {
	resp, err := c.do(ctx, request{Op: opSightings, VehicleID: vehicleID, MaxVertex: maxVertex})
	if err != nil {
		return nil, err
	}
	return resp.Hops, nil
}

// Sightings lists a vehicle's ground-truth sightings using the default
// per-call timeout.
func (c *Client) Sightings(vehicleID string, maxVertex int64) ([]Hop, error) {
	return c.SightingsContext(context.Background(), vehicleID, maxVertex)
}

// Close closes the client connection.
func (c *Client) Close() error { return c.cc.Close() }
