package trajstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// Request ops for the trajectory store wire protocol.
const (
	opAddVertex   = "add_vertex"
	opAddEdge     = "add_edge"
	opAddBatch    = "add_batch"
	opGetVertex   = "get_vertex"
	opFindByEvent = "find_by_event"
	opTrajectory  = "trajectory"
	opStats       = "stats"
	opOutEdges    = "out_edges"
	opInEdges     = "in_edges"
)

// request is one client -> server call.
type request struct {
	Op      string                   `json:"op"`
	Event   *protocol.DetectionEvent `json:"event,omitempty"`
	From    int64                    `json:"from,omitempty"`
	To      int64                    `json:"to,omitempty"`
	Weight  float64                  `json:"weight,omitempty"`
	ID      int64                    `json:"id,omitempty"`
	EventID protocol.EventID         `json:"eventId,omitempty"`
	Limits  *TraceLimits             `json:"limits,omitempty"`
	Batch   []protocol.TrajWrite     `json:"batch,omitempty"`
	// Trace carries the caller's span context on add_edge so the store
	// can record the WAL commit in the caller's trace (batch records
	// carry their own per-record Trace fields instead).
	Trace *protocol.TraceContext `json:"trace,omitempty"`
}

// response is one server -> client reply.
type response struct {
	OK       bool      `json:"ok"`
	Err      string    `json:"err,omitempty"`
	VertexID int64     `json:"vertexId,omitempty"`
	Vertex   *Vertex   `json:"vertex,omitempty"`
	Paths    [][]int64 `json:"paths,omitempty"`
	Vertices int       `json:"vertices,omitempty"`
	Edges    int       `json:"edges,omitempty"`
	EdgeList []Edge    `json:"edgeList,omitempty"`
	// VertexIDs and Errs parallel an add_batch request's records:
	// allocated vertex IDs (0 for edges and rejected records) and
	// per-record rejections ("" for successes).
	VertexIDs []int64  `json:"vertexIds,omitempty"`
	Errs      []string `json:"errs,omitempty"`
}

// maxWireBytes bounds one request/response frame.
const maxWireBytes = 8 << 20

func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("trajstore: marshal frame: %w", err)
	}
	if len(data) > maxWireBytes {
		return fmt.Errorf("trajstore: frame too large: %d", len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("trajstore: write frame: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("trajstore: write frame: %w", err)
	}
	return nil
}

func readFrame(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("trajstore: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxWireBytes {
		return fmt.Errorf("trajstore: frame too large: %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("trajstore: read frame: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("trajstore: decode frame: %w", err)
	}
	return nil
}

// Server exposes a Store over TCP with a simple request/response
// protocol.
type Server struct {
	store *Store
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	drain *obs.Histogram // graceful-shutdown drain duration, seconds
}

// Serve starts a server for the store on addr (use "127.0.0.1:0" for an
// ephemeral port).
func Serve(store *Store, addr string) (*Server, error) {
	if store == nil {
		return nil, errors.New("trajstore: nil store")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trajstore: listen %s: %w", addr, err)
	}
	s := &Server{
		store: store,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
		drain: new(obs.Histogram),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req request) response {
	fail := func(err error) response { return response{Err: err.Error()} }
	switch req.Op {
	case opAddVertex:
		if req.Event == nil {
			return fail(errors.New("add_vertex requires an event"))
		}
		id, err := s.store.AddVertex(*req.Event)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, VertexID: id}
	case opAddEdge:
		var err error
		if req.Trace != nil {
			err = s.store.AddEdgeTraced(req.From, req.To, req.Weight, *req.Trace)
		} else {
			err = s.store.AddEdge(req.From, req.To, req.Weight)
		}
		if err != nil {
			return fail(err)
		}
		return response{OK: true}
	case opAddBatch:
		if len(req.Batch) == 0 {
			return fail(errors.New("add_batch requires at least one record"))
		}
		ids, errs, err := s.store.ApplyBatch(req.Batch)
		if err != nil {
			return fail(err)
		}
		strs := make([]string, len(errs))
		for i, e := range errs {
			if e != nil {
				strs[i] = e.Error()
			}
		}
		return response{OK: true, VertexIDs: ids, Errs: strs}
	case opGetVertex:
		v, err := s.store.Vertex(req.ID)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Vertex: &v}
	case opFindByEvent:
		v, err := s.store.FindByEventID(req.EventID)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Vertex: &v}
	case opTrajectory:
		limits := DefaultTraceLimits()
		if req.Limits != nil {
			limits = *req.Limits
		}
		paths, err := s.store.Trajectory(req.ID, limits)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Paths: paths}
	case opOutEdges:
		if _, err := s.store.Vertex(req.ID); err != nil {
			return fail(err)
		}
		return response{OK: true, EdgeList: s.store.OutEdges(req.ID)}
	case opInEdges:
		if _, err := s.store.Vertex(req.ID); err != nil {
			return fail(err)
		}
		return response{OK: true, EdgeList: s.store.InEdges(req.ID)}
	case opStats:
		return response{OK: true, Vertices: s.store.NumVertices(), Edges: s.store.NumEdges()}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// Shutdown gracefully stops the server: it stops accepting new
// connections, lets any request currently being served finish, and only
// hard-closes connections once idle (or once ctx expires, whichever is
// first). The drain duration is recorded in the server's shutdown
// histogram. Safe to call concurrently with Close; both are idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	lnErr := s.ln.Close()
	// Unblock idle readers immediately; a connection mid-request has
	// already consumed its frame and finishes handle+reply first. Bound
	// the reply write by the shutdown deadline so a stalled client
	// cannot hold the drain open.
	for _, c := range conns {
		_ = c.SetReadDeadline(time.Now())
		if deadline, ok := ctx.Deadline(); ok {
			_ = c.SetWriteDeadline(deadline)
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("trajstore: shutdown drain: %w", ctx.Err())
		for _, c := range conns {
			_ = c.Close()
		}
		<-done
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.drain.Observe(time.Since(start).Seconds())
	if drainErr != nil {
		return drainErr
	}
	return lnErr
}

// DrainObservations returns how many graceful shutdowns have recorded a
// drain duration (at most one per server; exposed for tests and
// telemetry wiring).
func (s *Server) DrainObservations() uint64 { return s.drain.Count() }

// Close stops accepting, closes connections, and waits for handlers.
// Unlike Shutdown it does not wait for in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// ClientConfig tunes the client's per-call deadlines and reconnect
// backoff. The zero value selects the defaults noted per field.
type ClientConfig struct {
	// CallTimeout bounds one RPC (dial + write + read) when the caller's
	// context carries no deadline of its own. Default 5s.
	CallTimeout time.Duration
	// DialBackoffBase is the first retry delay after a failed dial
	// (default 50ms); DialBackoffMax caps the exponential growth
	// (default 1s). Retries use full jitter and stop at the context
	// deadline.
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if cfg.DialBackoffBase <= 0 {
		cfg.DialBackoffBase = 50 * time.Millisecond
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = time.Second
	}
	return cfg
}

// Client is a synchronous TCP client for a trajectory store server. It is
// safe for concurrent use; calls are serialized over one connection.
// A call that finds its cached connection dead (the server restarted)
// redials with capped, jittered backoff and retries once within the
// call's deadline, so clients ride out server restarts transparently.
type Client struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	cfg  ClientConfig
}

// Dial connects to a trajectory store server with the default config.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr, ClientConfig{})
}

// DialContext connects to a trajectory store server, bounding the
// initial dial by ctx (or cfg.CallTimeout when ctx has no deadline).
func DialContext(ctx context.Context, addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{addr: addr, cfg: cfg.withDefaults()}
	ctx, cancel := c.callBound(ctx)
	defer cancel()
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trajstore: dial %s: %w", addr, err)
	}
	c.conn = conn
	return c, nil
}

// callBound applies the default per-call timeout when ctx carries no
// deadline of its own.
func (c *Client) callBound(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.cfg.CallTimeout)
}

// dialLocked redials the server with capped exponential backoff plus
// full jitter until it connects or ctx expires. Caller holds c.mu.
func (c *Client) dialLocked(ctx context.Context) (net.Conn, error) {
	backoff := c.cfg.DialBackoffBase
	for {
		d := net.Dialer{}
		conn, err := d.DialContext(ctx, "tcp", c.addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("trajstore: redial %s: %w", c.addr, err)
		}
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("trajstore: redial %s: %w", c.addr, ctx.Err())
		case <-timer.C:
		}
		backoff *= 2
		if backoff > c.cfg.DialBackoffMax {
			backoff = c.cfg.DialBackoffMax
		}
	}
}

func (c *Client) do(ctx context.Context, req request) (response, error) {
	ctx, cancel := c.callBound(ctx)
	defer cancel()
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return response{}, lastErr
			}
			return response{}, err
		}
		cached := c.conn != nil
		if !cached {
			conn, err := c.dialLocked(ctx)
			if err != nil {
				return response{}, err
			}
			c.conn = conn
		}
		resp, err := c.roundTripLocked(ctx, req)
		if err == nil {
			if !resp.OK {
				return response{}, fmt.Errorf("trajstore: server: %s", resp.Err)
			}
			return resp, nil
		}
		c.resetLocked()
		lastErr = err
		if !cached {
			// A freshly dialed connection failing is a real error, not a
			// stale cache; retrying would only repeat it.
			break
		}
	}
	return response{}, lastErr
}

// roundTripLocked performs one framed request/response over the cached
// connection, bounding both directions by the context deadline. Caller
// holds c.mu.
func (c *Client) roundTripLocked(ctx context.Context, req request) (response, error) {
	if deadline, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(deadline)
	}
	if err := writeFrame(c.conn, req); err != nil {
		return response{}, err
	}
	var resp response
	if err := readFrame(c.conn, &resp); err != nil {
		return response{}, err
	}
	_ = c.conn.SetDeadline(time.Time{})
	return resp, nil
}

func (c *Client) resetLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// AddVertexContext inserts a detection event remotely and returns its
// vertex ID, bounded by ctx.
func (c *Client) AddVertexContext(ctx context.Context, e protocol.DetectionEvent) (int64, error) {
	resp, err := c.do(ctx, request{Op: opAddVertex, Event: &e})
	if err != nil {
		return 0, err
	}
	return resp.VertexID, nil
}

// AddVertex inserts a detection event remotely using the default
// per-call timeout.
func (c *Client) AddVertex(e protocol.DetectionEvent) (int64, error) {
	return c.AddVertexContext(context.Background(), e)
}

// AddEdgeContext inserts an edge remotely, bounded by ctx.
func (c *Client) AddEdgeContext(ctx context.Context, from, to int64, weight float64) error {
	_, err := c.do(ctx, request{Op: opAddEdge, From: from, To: to, Weight: weight})
	return err
}

// AddEdge inserts an edge remotely using the default per-call timeout.
func (c *Client) AddEdge(from, to int64, weight float64) error {
	return c.AddEdgeContext(context.Background(), from, to, weight)
}

// AddEdgeTracedContext inserts an edge remotely with the writer's trace
// context attached, so the server records its WAL commit inside the
// caller's trace. The context survives the client's redial/retry path:
// it is part of the request frame, not the connection.
func (c *Client) AddEdgeTracedContext(ctx context.Context, from, to int64, weight float64, tc protocol.TraceContext) error {
	_, err := c.do(ctx, request{Op: opAddEdge, From: from, To: to, Weight: weight, Trace: &tc})
	return err
}

// AddEdgeTraced inserts a traced edge using the default per-call
// timeout.
func (c *Client) AddEdgeTraced(from, to int64, weight float64, tc protocol.TraceContext) error {
	return c.AddEdgeTracedContext(context.Background(), from, to, weight, tc)
}

// AddBatchContext applies a mixed batch of vertex/edge writes in one RPC
// and one server-side group commit, bounded by ctx. Returns the
// allocated vertex IDs and per-record errors, both positional with the
// input; a non-nil error means the whole batch failed (transport fault
// or store-level refusal) and nothing in it should be assumed applied.
func (c *Client) AddBatchContext(ctx context.Context, writes []protocol.TrajWrite) ([]int64, []error, error) {
	resp, err := c.do(ctx, request{Op: opAddBatch, Batch: writes})
	if err != nil {
		return nil, nil, err
	}
	errs := make([]error, len(writes))
	for i, s := range resp.Errs {
		if i >= len(errs) {
			break
		}
		if s != "" {
			errs[i] = fmt.Errorf("trajstore: server: %s", s)
		}
	}
	ids := resp.VertexIDs
	if len(ids) < len(writes) {
		padded := make([]int64, len(writes))
		copy(padded, ids)
		ids = padded
	}
	return ids, errs, nil
}

// AddBatch applies a mixed batch of writes using the default per-call
// timeout.
func (c *Client) AddBatch(writes []protocol.TrajWrite) ([]int64, []error, error) {
	return c.AddBatchContext(context.Background(), writes)
}

// VertexContext fetches a vertex by ID, bounded by ctx.
func (c *Client) VertexContext(ctx context.Context, id int64) (Vertex, error) {
	resp, err := c.do(ctx, request{Op: opGetVertex, ID: id})
	if err != nil {
		return Vertex{}, err
	}
	return *resp.Vertex, nil
}

// Vertex fetches a vertex by ID using the default per-call timeout.
func (c *Client) Vertex(id int64) (Vertex, error) {
	return c.VertexContext(context.Background(), id)
}

// FindByEventIDContext fetches a vertex by its detection-event ID,
// bounded by ctx.
func (c *Client) FindByEventIDContext(ctx context.Context, id protocol.EventID) (Vertex, error) {
	resp, err := c.do(ctx, request{Op: opFindByEvent, EventID: id})
	if err != nil {
		return Vertex{}, err
	}
	return *resp.Vertex, nil
}

// FindByEventID fetches a vertex by its detection-event ID using the
// default per-call timeout.
func (c *Client) FindByEventID(id protocol.EventID) (Vertex, error) {
	return c.FindByEventIDContext(context.Background(), id)
}

// TrajectoryContext queries the candidate space-time tracks through a
// vertex, bounded by ctx.
func (c *Client) TrajectoryContext(ctx context.Context, id int64, limits TraceLimits) ([][]int64, error) {
	resp, err := c.do(ctx, request{Op: opTrajectory, ID: id, Limits: &limits})
	if err != nil {
		return nil, err
	}
	return resp.Paths, nil
}

// Trajectory queries the candidate space-time tracks through a vertex
// using the default per-call timeout.
func (c *Client) Trajectory(id int64, limits TraceLimits) ([][]int64, error) {
	return c.TrajectoryContext(context.Background(), id, limits)
}

// OutEdgesContext fetches a vertex's outgoing edges, bounded by ctx.
func (c *Client) OutEdgesContext(ctx context.Context, id int64) ([]Edge, error) {
	resp, err := c.do(ctx, request{Op: opOutEdges, ID: id})
	if err != nil {
		return nil, err
	}
	return resp.EdgeList, nil
}

// OutEdges fetches a vertex's outgoing edges using the default per-call
// timeout.
func (c *Client) OutEdges(id int64) ([]Edge, error) {
	return c.OutEdgesContext(context.Background(), id)
}

// InEdgesContext fetches a vertex's incoming edges, bounded by ctx.
func (c *Client) InEdgesContext(ctx context.Context, id int64) ([]Edge, error) {
	resp, err := c.do(ctx, request{Op: opInEdges, ID: id})
	if err != nil {
		return nil, err
	}
	return resp.EdgeList, nil
}

// InEdges fetches a vertex's incoming edges using the default per-call
// timeout.
func (c *Client) InEdges(id int64) ([]Edge, error) {
	return c.InEdgesContext(context.Background(), id)
}

// StatsContext returns the remote vertex and edge counts, bounded by
// ctx.
func (c *Client) StatsContext(ctx context.Context) (vertices, edges int, err error) {
	resp, err := c.do(ctx, request{Op: opStats})
	if err != nil {
		return 0, 0, err
	}
	return resp.Vertices, resp.Edges, nil
}

// Stats returns the remote vertex and edge counts using the default
// per-call timeout.
func (c *Client) Stats() (vertices, edges int, err error) {
	return c.StatsContext(context.Background())
}

// Close closes the client connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}
