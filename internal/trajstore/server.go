package trajstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/protocol"
)

// Request ops for the trajectory store wire protocol.
const (
	opAddVertex   = "add_vertex"
	opAddEdge     = "add_edge"
	opGetVertex   = "get_vertex"
	opFindByEvent = "find_by_event"
	opTrajectory  = "trajectory"
	opStats       = "stats"
	opOutEdges    = "out_edges"
	opInEdges     = "in_edges"
)

// request is one client -> server call.
type request struct {
	Op      string                   `json:"op"`
	Event   *protocol.DetectionEvent `json:"event,omitempty"`
	From    int64                    `json:"from,omitempty"`
	To      int64                    `json:"to,omitempty"`
	Weight  float64                  `json:"weight,omitempty"`
	ID      int64                    `json:"id,omitempty"`
	EventID protocol.EventID         `json:"eventId,omitempty"`
	Limits  *TraceLimits             `json:"limits,omitempty"`
}

// response is one server -> client reply.
type response struct {
	OK       bool      `json:"ok"`
	Err      string    `json:"err,omitempty"`
	VertexID int64     `json:"vertexId,omitempty"`
	Vertex   *Vertex   `json:"vertex,omitempty"`
	Paths    [][]int64 `json:"paths,omitempty"`
	Vertices int       `json:"vertices,omitempty"`
	Edges    int       `json:"edges,omitempty"`
	EdgeList []Edge    `json:"edgeList,omitempty"`
}

// maxWireBytes bounds one request/response frame.
const maxWireBytes = 8 << 20

func writeFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("trajstore: marshal frame: %w", err)
	}
	if len(data) > maxWireBytes {
		return fmt.Errorf("trajstore: frame too large: %d", len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("trajstore: write frame: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("trajstore: write frame: %w", err)
	}
	return nil
}

func readFrame(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("trajstore: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxWireBytes {
		return fmt.Errorf("trajstore: frame too large: %d", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("trajstore: read frame: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("trajstore: decode frame: %w", err)
	}
	return nil
}

// Server exposes a Store over TCP with a simple request/response
// protocol.
type Server struct {
	store *Store
	ln    net.Listener
	wg    sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts a server for the store on addr (use "127.0.0.1:0" for an
// ephemeral port).
func Serve(store *Store, addr string) (*Server, error) {
	if store == nil {
		return nil, errors.New("trajstore: nil store")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trajstore: listen %s: %w", addr, err)
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req request) response {
	fail := func(err error) response { return response{Err: err.Error()} }
	switch req.Op {
	case opAddVertex:
		if req.Event == nil {
			return fail(errors.New("add_vertex requires an event"))
		}
		id, err := s.store.AddVertex(*req.Event)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, VertexID: id}
	case opAddEdge:
		if err := s.store.AddEdge(req.From, req.To, req.Weight); err != nil {
			return fail(err)
		}
		return response{OK: true}
	case opGetVertex:
		v, err := s.store.Vertex(req.ID)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Vertex: &v}
	case opFindByEvent:
		v, err := s.store.FindByEventID(req.EventID)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Vertex: &v}
	case opTrajectory:
		limits := DefaultTraceLimits()
		if req.Limits != nil {
			limits = *req.Limits
		}
		paths, err := s.store.Trajectory(req.ID, limits)
		if err != nil {
			return fail(err)
		}
		return response{OK: true, Paths: paths}
	case opOutEdges:
		if _, err := s.store.Vertex(req.ID); err != nil {
			return fail(err)
		}
		return response{OK: true, EdgeList: s.store.OutEdges(req.ID)}
	case opInEdges:
		if _, err := s.store.Vertex(req.ID); err != nil {
			return fail(err)
		}
		return response{OK: true, EdgeList: s.store.InEdges(req.ID)}
	case opStats:
		return response{OK: true, Vertices: s.store.NumVertices(), Edges: s.store.NumEdges()}
	default:
		return fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// Close stops accepting, closes connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a synchronous TCP client for a trajectory store server. It is
// safe for concurrent use; calls are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
}

// Dial connects to a trajectory store server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trajstore: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, conn: conn}, nil
}

func (c *Client) do(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		conn, err := net.Dial("tcp", c.addr)
		if err != nil {
			return response{}, fmt.Errorf("trajstore: redial %s: %w", c.addr, err)
		}
		c.conn = conn
	}
	if err := writeFrame(c.conn, req); err != nil {
		c.resetLocked()
		return response{}, err
	}
	var resp response
	if err := readFrame(c.conn, &resp); err != nil {
		c.resetLocked()
		return response{}, err
	}
	if !resp.OK {
		return response{}, fmt.Errorf("trajstore: server: %s", resp.Err)
	}
	return resp, nil
}

func (c *Client) resetLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// AddVertex inserts a detection event remotely and returns its vertex ID.
func (c *Client) AddVertex(e protocol.DetectionEvent) (int64, error) {
	resp, err := c.do(request{Op: opAddVertex, Event: &e})
	if err != nil {
		return 0, err
	}
	return resp.VertexID, nil
}

// AddEdge inserts an edge remotely.
func (c *Client) AddEdge(from, to int64, weight float64) error {
	_, err := c.do(request{Op: opAddEdge, From: from, To: to, Weight: weight})
	return err
}

// Vertex fetches a vertex by ID.
func (c *Client) Vertex(id int64) (Vertex, error) {
	resp, err := c.do(request{Op: opGetVertex, ID: id})
	if err != nil {
		return Vertex{}, err
	}
	return *resp.Vertex, nil
}

// FindByEventID fetches a vertex by its detection-event ID.
func (c *Client) FindByEventID(id protocol.EventID) (Vertex, error) {
	resp, err := c.do(request{Op: opFindByEvent, EventID: id})
	if err != nil {
		return Vertex{}, err
	}
	return *resp.Vertex, nil
}

// Trajectory queries the candidate space-time tracks through a vertex.
func (c *Client) Trajectory(id int64, limits TraceLimits) ([][]int64, error) {
	resp, err := c.do(request{Op: opTrajectory, ID: id, Limits: &limits})
	if err != nil {
		return nil, err
	}
	return resp.Paths, nil
}

// OutEdges fetches a vertex's outgoing edges.
func (c *Client) OutEdges(id int64) ([]Edge, error) {
	resp, err := c.do(request{Op: opOutEdges, ID: id})
	if err != nil {
		return nil, err
	}
	return resp.EdgeList, nil
}

// InEdges fetches a vertex's incoming edges.
func (c *Client) InEdges(id int64) ([]Edge, error) {
	resp, err := c.do(request{Op: opInEdges, ID: id})
	if err != nil {
		return nil, err
	}
	return resp.EdgeList, nil
}

// Stats returns the remote vertex and edge counts.
func (c *Client) Stats() (vertices, edges int, err error) {
	resp, err := c.do(request{Op: opStats})
	if err != nil {
		return 0, 0, err
	}
	return resp.Vertices, resp.Edges, nil
}

// Close closes the client connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}
