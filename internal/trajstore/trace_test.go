package trajstore

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// TestTraceContextSurvivesServerRestart asserts that a traced edge write
// keeps its trace context through the client's redial/retry path: the
// context is part of the request frame, not the connection, so the span
// recorded server-side after a restart is still parented to the camera's
// original span.
func TestTraceContextSurvivesServerRestart(t *testing.T) {
	store := NewMemStore()
	tracer := obs.NewTracerWith(obs.TracerConfig{Capacity: 16})
	store.UseTracer(tracer)

	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	v1, err := client.AddVertex(event("cam-1#1"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := client.AddVertex(event("cam-2#1"))
	if err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close server: %v", err)
	}
	restarted := make(chan *Server, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		srv2, err := Serve(store, addr)
		if err != nil {
			return // port raced away; the call below fails and reports it
		}
		restarted <- srv2
	}()

	tc := protocol.TraceContext{
		TraceID: "cam-1#1",
		SpanID:  "cam-1-7",
		Sampled: true,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var lastErr error
	recovered := false
	for i := 0; i < 50 && !recovered; i++ {
		if err := client.AddEdgeTracedContext(ctx, v1, v2, 12.5, tc); err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		recovered = true
	}
	if !recovered {
		t.Fatalf("traced edge write never recovered after restart: %v", lastErr)
	}

	var commit *obs.Span
	for _, sp := range tracer.Recent() {
		if sp.Name == "wal_commit" && sp.Trace == "cam-1#1" {
			cp := sp
			commit = &cp
		}
	}
	if commit == nil {
		t.Fatalf("no wal_commit span recorded; spans: %+v", tracer.Recent())
	}
	if commit.ParentID != "cam-1-7" {
		t.Fatalf("wal_commit parent = %q, want cam-1-7", commit.ParentID)
	}

	select {
	case srv2 := <-restarted:
		_ = srv2.Close()
	default:
		t.Fatal("restarted server never came up")
	}
}

// TestBatchWriterCarriesTrace asserts QueueEdgeTraced attaches the trace
// context to the batch record so the store's group commit records a
// wal_commit span parented to the caller's commit span.
func TestBatchWriterCarriesTrace(t *testing.T) {
	store := NewMemStore()
	tracer := obs.NewTracerWith(obs.TracerConfig{Capacity: 16})
	store.UseTracer(tracer)

	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	w := NewBatchWriter(client, BatchWriterConfig{})
	defer func() { _ = w.Close() }()

	v1, err := w.AddVertex(event("cam-1#1"))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := w.AddVertex(event("cam-2#1"))
	if err != nil {
		t.Fatal(err)
	}

	tc := protocol.TraceContext{TraceID: "cam-1#1", SpanID: "cam-1-9", Sampled: true}
	done := make(chan error, 1)
	w.QueueEdgeTraced(v1, v2, 3.5, tc, func(err error) { done <- err })
	if err := w.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued traced edge: %v", err)
	}

	found := false
	for _, sp := range tracer.Recent() {
		if sp.Name == "wal_commit" && sp.Trace == "cam-1#1" && sp.ParentID == "cam-1-9" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no wal_commit span for batched traced edge; spans: %+v", tracer.Recent())
	}
}
