// Server-side trajectory query engine. The paper's end product is the
// space-time query ("where did this vehicle go?"), and executing the
// reconstruction where the data lives — one RPC in, whole ranked tracks
// out — is what keeps the read path off the WAN: the per-vertex client
// walk is an N+1 round-trip pattern this engine replaces. The walk
// itself is written once, against the GraphView interface, so the
// server (over a Snapshot), a local store, and the remote per-vertex
// fallback all run byte-identical reconstruction logic.

package trajstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// ErrNoTracks is returned by BestTrack when a sighting exists but no
// track passes through it (cannot happen on a well-formed graph: every
// vertex yields at least its own single-hop track).
var ErrNoTracks = errors.New("trajstore: no tracks")

// GraphView is the read surface the reconstruction algorithm walks.
// *Snapshot implements it lock-free; query.StoreReader adapts a local
// *Store; the remote *Client satisfies it over per-vertex RPCs (the
// wire-compatible fallback path).
type GraphView interface {
	Vertex(id int64) (Vertex, error)
	FindByEventID(id protocol.EventID) (Vertex, error)
	Trajectory(id int64, limits TraceLimits) ([][]int64, error)
	OutEdges(id int64) ([]Edge, error)
	InEdges(id int64) ([]Edge, error)
}

// Hop is one sighting on a reconstructed track.
type Hop struct {
	VertexID int64     `json:"vertexId"`
	Camera   string    `json:"camera"`
	Time     time.Time `json:"time"`
	// LinkWeight is the Bhattacharyya distance of the edge arriving at
	// this hop (0 for the first hop).
	LinkWeight float64 `json:"linkWeight"`
}

// Track is one candidate space-time trajectory.
type Track struct {
	Hops []Hop `json:"hops"`
	// TotalWeight sums the link weights; lower = more confident.
	TotalWeight float64 `json:"totalWeight"`
	// MeanWeight is TotalWeight over the number of links (0 for a
	// single-sighting track).
	MeanWeight float64 `json:"meanWeight"`
	// Duration spans the first to the last sighting.
	Duration time.Duration `json:"duration"`
}

// Cameras returns the camera sequence of the track.
func (t Track) Cameras() []string {
	out := make([]string, len(t.Hops))
	for i, h := range t.Hops {
		out[i] = h.Camera
	}
	return out
}

// FindTracks returns every candidate track through the sighting with
// the given event ID, ranked: longer tracks first (more of the
// vehicle's journey explained), then lower mean link weight (higher
// confidence).
func FindTracks(g GraphView, eventID protocol.EventID, limits TraceLimits) ([]Track, error) {
	if g == nil {
		return nil, errors.New("trajstore: nil graph view")
	}
	start, err := g.FindByEventID(eventID)
	if err != nil {
		return nil, err
	}
	return ReconstructTracks(g, start.ID, limits)
}

// ReconstructTracks is FindTracks keyed by vertex ID.
func ReconstructTracks(g GraphView, vertexID int64, limits TraceLimits) ([]Track, error) {
	if g == nil {
		return nil, errors.New("trajstore: nil graph view")
	}
	paths, err := g.Trajectory(vertexID, limits)
	if err != nil {
		return nil, err
	}
	tracks := make([]Track, 0, len(paths))
	for _, path := range paths {
		track, err := buildTrack(g, path)
		if err != nil {
			return nil, err
		}
		tracks = append(tracks, track)
	}
	sort.SliceStable(tracks, func(i, j int) bool {
		if len(tracks[i].Hops) != len(tracks[j].Hops) {
			return len(tracks[i].Hops) > len(tracks[j].Hops)
		}
		return tracks[i].MeanWeight < tracks[j].MeanWeight
	})
	return tracks, nil
}

// BestTrack returns the top-ranked track through a sighting.
func BestTrack(g GraphView, eventID protocol.EventID, limits TraceLimits) (Track, error) {
	tracks, err := FindTracks(g, eventID, limits)
	if err != nil {
		return Track{}, err
	}
	if len(tracks) == 0 {
		return Track{}, fmt.Errorf("%w through %q", ErrNoTracks, eventID)
	}
	return tracks[0], nil
}

// SightingsOf lists every sighting whose simulation ground truth
// matches the vehicle ID, in time order — an evaluation convenience for
// comparing reconstructed tracks with what actually happened.
func SightingsOf(g GraphView, maxVertexID int64, vehicleID string) ([]Hop, error) {
	if g == nil {
		return nil, errors.New("trajstore: nil graph view")
	}
	var out []Hop
	for vid := int64(1); vid <= maxVertexID; vid++ {
		v, err := g.Vertex(vid)
		if err != nil {
			continue
		}
		if v.Event.TruthID != vehicleID {
			continue
		}
		out = append(out, Hop{VertexID: vid, Camera: v.Event.CameraID, Time: v.Event.Timestamp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

func buildTrack(g GraphView, path []int64) (Track, error) {
	if len(path) == 0 {
		return Track{}, errors.New("trajstore: empty path")
	}
	track := Track{Hops: make([]Hop, 0, len(path))}
	for i, vid := range path {
		v, err := g.Vertex(vid)
		if err != nil {
			return Track{}, err
		}
		hop := Hop{VertexID: vid, Camera: v.Event.CameraID, Time: v.Event.Timestamp}
		if i > 0 {
			w, err := edgeWeight(g, path[i-1], vid)
			if err != nil {
				return Track{}, err
			}
			hop.LinkWeight = w
			track.TotalWeight += w
		}
		track.Hops = append(track.Hops, hop)
	}
	if n := len(track.Hops) - 1; n > 0 {
		track.MeanWeight = track.TotalWeight / float64(n)
	}
	track.Duration = track.Hops[len(track.Hops)-1].Time.Sub(track.Hops[0].Time)
	return track, nil
}

func edgeWeight(g GraphView, from, to int64) (float64, error) {
	edges, err := g.OutEdges(from)
	if err != nil {
		return 0, err
	}
	for _, e := range edges {
		if e.To == to {
			return e.Weight, nil
		}
	}
	return 0, fmt.Errorf("trajstore: missing edge %d->%d", from, to)
}

// --- Server-side engine: snapshot execution, result cache, telemetry ---

// queryMetrics are the engine's pre-resolved coralpie_query_* handles.
type queryMetrics struct {
	hits     *obs.Counter
	misses   *obs.Counter
	latency  *obs.Histogram
	inflight *obs.Gauge
}

func newQueryMetrics(reg *obs.Registry) queryMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return queryMetrics{
		hits: reg.Counter("coralpie_query_cache_hits_total",
			"server-side query results served from the result cache"),
		misses: reg.Counter("coralpie_query_cache_misses_total",
			"server-side queries executed against a graph snapshot"),
		latency: reg.Histogram("coralpie_query_latency_seconds",
			"server-side query execution latency (cache hits included)", nil),
		inflight: reg.Gauge("coralpie_query_inflight",
			"server-side queries currently executing"),
	}
}

// queryKey identifies one server-side query result: the op plus every
// request parameter that shapes the answer.
type queryKey struct {
	op        string
	eventID   protocol.EventID
	vertexID  int64
	vehicleID string
	maxVertex int64
	limits    TraceLimits
}

// queryEngine executes the reconstruct/best/sightings ops against a
// store snapshot, memoizing whole results in a bounded LRU cache.
// Cache entries are tagged with the snapshot version they were computed
// at and checked on every lookup, so a stale entry can never be served
// even if an invalidation is missed; the store's mutation hook
// additionally purges the cache eagerly on every write.
type queryEngine struct {
	store *Store
	cache *queryCache // nil disables caching
	m     queryMetrics
}

// DefaultQueryCacheSize bounds the server-side result cache when the
// server options leave it unset.
const DefaultQueryCacheSize = 256

func newQueryEngine(store *Store, cacheSize int, reg *obs.Registry) *queryEngine {
	e := &queryEngine{store: store, m: newQueryMetrics(reg)}
	if cacheSize == 0 {
		cacheSize = DefaultQueryCacheSize
	}
	if cacheSize > 0 {
		e.cache = newQueryCache(cacheSize)
		store.OnMutate(e.cache.purge)
	}
	return e
}

// tracerClock reads the store's tracer and clock under its lock.
func (s *Store) tracerClock() (*obs.Tracer, clock.Clock) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracer, s.clk
}

// do runs one query: take (or reuse) a snapshot, consult the result
// cache, compute on miss, and record metrics plus a "query" child span
// when the request carried a sampled trace context.
func (e *queryEngine) do(ctx context.Context, key queryKey, compute func(*Snapshot) (any, error)) (any, error) {
	tr, clk := e.store.tracerClock()
	e.m.inflight.Inc()
	defer e.m.inflight.Dec()
	start := clk.Now()
	snap := e.store.Snapshot()
	var (
		val any
		err error
		hit bool
	)
	if e.cache != nil {
		val, hit = e.cache.get(key, snap.version)
	}
	if hit {
		e.m.hits.Inc()
	} else {
		e.m.misses.Inc()
		val, err = compute(snap)
		if err == nil && e.cache != nil {
			e.cache.put(key, snap.version, val)
		}
	}
	end := clk.Now()
	e.m.latency.Observe(end.Sub(start).Seconds())
	if tr != nil {
		if sc, ok := obs.SpanFromContext(ctx); ok && sc.Sampled {
			outcome, cached := "ok", "miss"
			if err != nil {
				outcome = "error"
			}
			if hit {
				cached = "hit"
			}
			tr.RecordChild(sc, "query", start, end,
				"op", key.op, "cache", cached, "outcome", outcome)
		}
	}
	return val, err
}
