package trajstore

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/protocol"
)

// BatchClient is the slice of the trajstore client surface BatchWriter
// needs: the batch RPC plus the synchronous single-record ops it proxies
// through unchanged.
type BatchClient interface {
	AddVertexContext(ctx context.Context, e protocol.DetectionEvent) (int64, error)
	AddBatchContext(ctx context.Context, writes []protocol.TrajWrite) ([]int64, []error, error)
}

// BatchWriterConfig tunes the client-side edge write buffer.
type BatchWriterConfig struct {
	// MaxBatch is the queue depth that triggers an asynchronous flush.
	// Default 64.
	MaxBatch int
	// MaxAge is how long a queued edge may wait before an age-triggered
	// flush picks it up. Default 50ms.
	MaxAge time.Duration
	// MaxRetries bounds how many times a transport-failed edge is
	// re-queued before its error is surfaced to the done callback.
	// Server-side per-record rejections are terminal and never retried.
	// Default 2.
	MaxRetries int
	// FlushTimeout bounds each batch RPC. Default 5s.
	FlushTimeout time.Duration
}

func (c BatchWriterConfig) withDefaults() BatchWriterConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 50 * time.Millisecond
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = 5 * time.Second
	}
	return c
}

// ErrWriterClosed is returned to done callbacks for edges still queued
// when the BatchWriter is closed and the final drain fails, and by
// QueueEdge calls after Close.
var ErrWriterClosed = errors.New("trajstore: batch writer closed")

type queuedEdge struct {
	from, to int64
	weight   float64
	trace    *protocol.TraceContext
	done     func(error)
	attempts int
}

// BatchWriter buffers edge inserts client-side and flushes them through
// the add_batch RPC on size or age triggers, so a camera's handoff edges
// stop paying one round trip each. Vertex inserts pass through
// synchronously (their IDs gate downstream work) but still ride the
// server's group commit under load. Each queued edge carries an optional
// done callback that receives the edge's final error — nil on success,
// the server's rejection for per-record failures, or the last transport
// error once retries are exhausted — which is how camnode keeps its
// send_errors accounting exact over the async path.
type BatchWriter struct {
	cl  BatchClient
	cfg BatchWriterConfig

	mu      sync.Mutex
	queue   []queuedEdge
	closed  bool
	lastErr error // most recent transport-level flush failure, nil after a clean flush

	// flushMu serializes flushes so retried edges cannot be reordered
	// around a concurrent flush of newer edges' results.
	flushMu sync.Mutex

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewBatchWriter wraps cl with a buffered edge write path.
func NewBatchWriter(cl BatchClient, cfg BatchWriterConfig) *BatchWriter {
	w := &BatchWriter{
		cl:   cl,
		cfg:  cfg.withDefaults(),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go w.run()
	return w
}

// AddVertexContext proxies the synchronous vertex insert.
func (w *BatchWriter) AddVertexContext(ctx context.Context, e protocol.DetectionEvent) (int64, error) {
	return w.cl.AddVertexContext(ctx, e)
}

// AddVertex proxies the synchronous vertex insert with the client's
// default timeout.
func (w *BatchWriter) AddVertex(e protocol.DetectionEvent) (int64, error) {
	return w.cl.AddVertexContext(context.Background(), e)
}

// QueueEdge enqueues an edge insert for asynchronous delivery. done (may
// be nil) is invoked exactly once with the edge's final error. If the
// queue is far over the flush threshold the caller is backpressured into
// flushing inline rather than growing the buffer without bound.
func (w *BatchWriter) QueueEdge(from, to int64, weight float64, done func(error)) {
	w.queueEdge(queuedEdge{from: from, to: to, weight: weight, done: done})
}

// QueueEdgeTraced is QueueEdge carrying the writer's trace context; it
// rides the batch record to the server, which records the WAL group
// commit as part of the caller's trace.
func (w *BatchWriter) QueueEdgeTraced(from, to int64, weight float64, tc protocol.TraceContext, done func(error)) {
	w.queueEdge(queuedEdge{from: from, to: to, weight: weight, trace: &tc, done: done})
}

func (w *BatchWriter) queueEdge(qe queuedEdge) {
	done := qe.done
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		if done != nil {
			done(ErrWriterClosed)
		}
		return
	}
	w.queue = append(w.queue, qe)
	n := len(w.queue)
	w.mu.Unlock()

	if n >= w.cfg.MaxBatch*16 {
		// Producer is far ahead of the flusher: absorb the cost inline.
		w.flushOnce(context.Background())
		return
	}
	if n >= w.cfg.MaxBatch {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// AddEdge queues the edge and blocks until its final result, giving
// callers that need synchronous semantics the batched wire format.
func (w *BatchWriter) AddEdge(from, to int64, weight float64) error {
	ch := make(chan error, 1)
	w.QueueEdge(from, to, weight, func(err error) { ch <- err })
	// A synchronous caller should not sit out the age window: wake the
	// flusher now.
	select {
	case w.kick <- struct{}{}:
	default:
	}
	// Every queued edge's done callback is invoked exactly once — by a
	// flush, by retry exhaustion, or by Close's fail-closed drain — so
	// this receive always terminates.
	return <-ch
}

// Flush delivers every currently queued edge, looping until the queue is
// empty or ctx expires. It terminates because each edge's attempts are
// bounded by MaxRetries.
func (w *BatchWriter) Flush(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		w.mu.Lock()
		n := len(w.queue)
		w.mu.Unlock()
		if n == 0 {
			return nil
		}
		w.flushOnce(ctx)
	}
}

// Err reports the most recent transport-level flush failure, or nil if
// the last flush delivered its batch — a cheap health signal: a node
// whose writer keeps failing is serving but cannot commit edges.
func (w *BatchWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastErr
}

// Close drains the queue and stops the background flusher. Edges that
// still cannot be delivered get their done callbacks invoked with the
// final error.
func (w *BatchWriter) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	w.mu.Unlock()

	close(w.stop)
	<-w.done

	ctx, cancel := context.WithTimeout(context.Background(), w.cfg.FlushTimeout)
	defer cancel()
	err := w.Flush(ctx)

	// Anything still queued (context expired mid-drain) fails closed.
	w.mu.Lock()
	rest := w.queue
	w.queue = nil
	w.mu.Unlock()
	for _, qe := range rest {
		if qe.done != nil {
			qe.done(ErrWriterClosed)
		}
	}
	return err
}

func (w *BatchWriter) run() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.MaxAge)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-w.kick:
		case <-ticker.C:
		}
		w.flushOnce(context.Background())
	}
}

// flushOnce sends one batch of queued edges. Transport failures re-queue
// the whole batch (attempts++) until MaxRetries; per-record server
// rejections are terminal.
func (w *BatchWriter) flushOnce(ctx context.Context) {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()

	w.mu.Lock()
	if len(w.queue) == 0 {
		w.mu.Unlock()
		return
	}
	n := len(w.queue)
	if n > w.cfg.MaxBatch {
		n = w.cfg.MaxBatch
	}
	batch := make([]queuedEdge, n)
	copy(batch, w.queue[:n])
	w.queue = append(w.queue[:0], w.queue[n:]...)
	w.mu.Unlock()

	writes := make([]protocol.TrajWrite, len(batch))
	for i, qe := range batch {
		wr := protocol.EdgeWrite(qe.from, qe.to, qe.weight)
		wr.Trace = qe.trace
		writes[i] = wr
	}

	rpcCtx, cancel := context.WithTimeout(ctx, w.cfg.FlushTimeout)
	_, errs, err := w.cl.AddBatchContext(rpcCtx, writes)
	cancel()

	w.mu.Lock()
	w.lastErr = err
	w.mu.Unlock()

	if err != nil {
		// Transport-level failure: every edge in the batch is undelivered.
		var requeue []queuedEdge
		for _, qe := range batch {
			qe.attempts++
			if qe.attempts > w.cfg.MaxRetries {
				if qe.done != nil {
					qe.done(err)
				}
				continue
			}
			requeue = append(requeue, qe)
		}
		if len(requeue) > 0 {
			w.mu.Lock()
			w.queue = append(requeue, w.queue...)
			w.mu.Unlock()
		}
		return
	}
	for i, qe := range batch {
		var recErr error
		if i < len(errs) {
			recErr = errs[i]
		}
		if qe.done != nil {
			qe.done(recErr)
		}
	}

	// A full batch may still be queued (the size kick is coalesced);
	// re-arm the flusher rather than leaving it to the age tick.
	w.mu.Lock()
	left := len(w.queue)
	w.mu.Unlock()
	if left >= w.cfg.MaxBatch {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}
