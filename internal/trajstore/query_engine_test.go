package trajstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rpc"
)

// --- Snapshot semantics ---

func TestSnapshotReflectsStoreAndCachesByVersion(t *testing.T) {
	s := NewMemStore()
	a, _ := s.AddVertex(event("cam#1"))
	b, _ := s.AddVertex(event("cam#2"))
	if err := s.AddEdge(a, b, 0.25); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	if snap.NumVertices() != 2 || snap.NumEdges() != 1 || snap.MaxVertexID() != b {
		t.Fatalf("snapshot = %d vertices, %d edges, max %d",
			snap.NumVertices(), snap.NumEdges(), snap.MaxVertexID())
	}
	v, err := snap.Vertex(a)
	if err != nil || v.Event.ID != "cam#1" {
		t.Fatalf("snapshot vertex: %+v, %v", v, err)
	}
	out, _ := snap.OutEdges(a)
	if len(out) != 1 || out[0].To != b || out[0].Weight != 0.25 {
		t.Fatalf("snapshot out edges = %+v", out)
	}
	if _, err := snap.Vertex(999); !errors.Is(err, ErrVertexNotFound) {
		t.Errorf("missing vertex: %v", err)
	}

	// No writes since: the same snapshot is reused, no copy taken.
	if again := s.Snapshot(); again != snap {
		t.Error("unchanged store rebuilt its snapshot")
	}

	// A write invalidates the cached snapshot and bumps the version.
	c, _ := s.AddVertex(event("cam#3"))
	if err := s.AddEdge(b, c, 0.1); err != nil {
		t.Fatal(err)
	}
	fresh := s.Snapshot()
	if fresh == snap {
		t.Fatal("snapshot not rebuilt after a write")
	}
	if fresh.Version() <= snap.Version() {
		t.Errorf("version did not advance: %d -> %d", snap.Version(), fresh.Version())
	}
	if fresh.NumVertices() != 3 || fresh.NumEdges() != 2 {
		t.Errorf("fresh snapshot = %d vertices, %d edges", fresh.NumVertices(), fresh.NumEdges())
	}
}

func TestSnapshotIsolatedFromLaterWrites(t *testing.T) {
	s := NewMemStore()
	ids := make([]int64, 4)
	for i := range ids {
		ids[i], _ = s.AddVertex(event(fmt.Sprintf("cam#%d", i+1)))
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := s.AddEdge(ids[i], ids[i+1], 0.1); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	wantPaths, err := snap.Trajectory(ids[0], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the live store heavily after the snapshot was taken.
	prev := ids[len(ids)-1]
	for i := 0; i < 16; i++ {
		id, err := s.AddVertex(event(fmt.Sprintf("late#%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddEdge(prev, id, 0.2); err != nil {
			t.Fatal(err)
		}
		prev = id
	}

	if snap.NumVertices() != 4 || snap.NumEdges() != 3 {
		t.Fatalf("snapshot drifted: %d vertices, %d edges", snap.NumVertices(), snap.NumEdges())
	}
	gotPaths, err := snap.Trajectory(ids[0], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPaths) != len(wantPaths) || len(gotPaths[0]) != len(ids) {
		t.Fatalf("snapshot trajectory changed under writes: %v", gotPaths)
	}
	if live, _ := s.Snapshot().Trajectory(ids[0], DefaultTraceLimits()); len(live[0]) != 20 {
		t.Fatalf("live store should see the new chain, got %d hops", len(live[0]))
	}
}

// chainBatch builds one atomic batch extending a chain by `grow` vertices
// and `grow` edges, predicting the IDs the store will allocate (valid
// because there is a single writer).
func chainBatch(head, nextID int64, round, grow int) []protocol.TrajWrite {
	var writes []protocol.TrajWrite
	from := head
	for k := 0; k < grow; k++ {
		to := nextID + int64(k)
		writes = append(writes,
			protocol.VertexWrite(event(fmt.Sprintf("w%d#%d", round, k))),
			protocol.EdgeWrite(from, to, 0.1))
		from = to
	}
	return writes
}

// TestSnapshotNeverObservesHalfAppliedBatch hammers Snapshot from
// concurrent readers while a writer extends a chain in atomic batches of
// 3 vertices + 3 edges. Every snapshot must sit exactly on a batch
// boundary: vertices ≡ 1 (mod 3), edges == vertices-1, and the single
// reconstructed track spans every vertex in the snapshot. Run under
// -race this also proves the copy-on-read path is data-race free.
func TestSnapshotNeverObservesHalfAppliedBatch(t *testing.T) {
	s := NewMemStore()
	head, err := s.AddVertex(event("root#0"))
	if err != nil {
		t.Fatal(err)
	}

	const (
		rounds  = 40
		grow    = 3
		readers = 4
	)
	limits := TraceLimits{MaxDepth: 1 + rounds*grow + 1, MaxPaths: 4}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				nv, ne := snap.NumVertices(), snap.NumEdges()
				if (nv-1)%grow != 0 || ne != nv-1 {
					errCh <- fmt.Errorf("half-applied batch visible: %d vertices, %d edges", nv, ne)
					return
				}
				tracks, err := ReconstructTracks(snap, head, limits)
				if err != nil || len(tracks) == 0 {
					errCh <- fmt.Errorf("reconstruct: %d tracks, %v", len(tracks), err)
					return
				}
				if got := len(tracks[0].Hops); got != nv {
					errCh <- fmt.Errorf("track spans %d of %d snapshot vertices", got, nv)
					return
				}
			}
		}()
	}

	chainHead, nextID := head, head+1
	for round := 0; round < rounds; round++ {
		writes := chainBatch(chainHead, nextID, round, grow)
		ids, recErrs, err := s.ApplyBatch(writes)
		if err != nil {
			t.Fatal(err)
		}
		for i, re := range recErrs {
			if re != nil {
				t.Fatalf("batch record %d: %v", i, re)
			}
		}
		for _, id := range ids {
			if id > 0 {
				chainHead, nextID = id, id+1
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestConcurrentRemoteQuerySnapshotStress is the same isolation invariant
// end-to-end: readers issue server-side reconstructs over TCP while one
// writer streams atomic batches; every answer must reflect a whole number
// of batches (hops ≡ 1 mod 3).
func TestConcurrentRemoteQuerySnapshotStress(t *testing.T) {
	s := NewMemStore()
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	writerClient, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = writerClient.Close() }()

	head, err := writerClient.AddVertex(event("root#0"))
	if err != nil {
		t.Fatal(err)
	}

	const (
		rounds  = 25
		grow    = 3
		readers = 3
	)
	limits := TraceLimits{MaxDepth: 1 + rounds*grow + 1, MaxPaths: 4}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := Dial(srv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = client.Close() }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tracks, err := client.ReconstructVertexContext(ctx, head, limits)
				if err != nil {
					errCh <- fmt.Errorf("remote reconstruct: %w", err)
					return
				}
				if len(tracks) == 0 {
					errCh <- errors.New("remote reconstruct returned no tracks")
					return
				}
				if n := len(tracks[0].Hops); (n-1)%grow != 0 {
					errCh <- fmt.Errorf("observed half-applied batch: track of %d hops", n)
					return
				}
			}
		}()
	}

	chainHead, nextID := head, head+1
	for round := 0; round < rounds; round++ {
		ids, recErrs, err := writerClient.AddBatchContext(ctx, chainBatch(chainHead, nextID, round, grow))
		if err != nil {
			t.Fatal(err)
		}
		for i, re := range recErrs {
			if re != nil {
				t.Fatalf("batch record %d: %v", i, re)
			}
		}
		for _, id := range ids {
			if id > 0 {
				chainHead, nextID = id, id+1
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// --- Server-side ops and result cache ---

func serveGraph(t *testing.T, opts ServerOptions) (*Store, *Server, *Client) {
	t.Helper()
	s := NewMemStore()
	if opts.Registry == nil {
		// Isolate each test server's coralpie_query_* counters; on the
		// shared default registry every server in the binary would
		// accumulate into the same handles.
		opts.Registry = obs.NewRegistry()
	}
	srv, err := ServeWith(s, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return s, srv, client
}

func seedChain(t *testing.T, s *Store, n int) []int64 {
	t.Helper()
	ids := make([]int64, n)
	for i := range ids {
		id, err := s.AddVertex(event(fmt.Sprintf("seed#%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i+1 < n; i++ {
		if err := s.AddEdge(ids[i], ids[i+1], 0.1); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func TestQueryCacheHitMissAndWriteInvalidation(t *testing.T) {
	s, srv, client := serveGraph(t, ServerOptions{QueryCache: 8})
	ids := seedChain(t, s, 5)
	limits := DefaultTraceLimits()

	first, err := client.ReconstructVertex(ids[0], limits)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.ReconstructVertex(ids[0], limits)
	if err != nil {
		t.Fatal(err)
	}
	st := srv.QueryStats()
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.CacheLen != 1 {
		t.Fatalf("stats after repeat query = %+v", st)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatal("cached answer differs from computed answer")
	}

	// Different limits are a different key.
	if _, err := client.ReconstructVertex(ids[0], TraceLimits{MaxDepth: 2, MaxPaths: 2}); err != nil {
		t.Fatal(err)
	}
	if st := srv.QueryStats(); st.CacheMisses != 2 || st.CacheLen != 2 {
		t.Fatalf("stats after distinct-limits query = %+v", st)
	}

	// A write purges the cache and the next answer reflects it.
	tail, err := s.AddVertex(event("seed#new"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(ids[len(ids)-1], tail, 0.3); err != nil {
		t.Fatal(err)
	}
	if st := srv.QueryStats(); st.CacheLen != 0 {
		t.Fatalf("cache not purged by write: %+v", st)
	}
	after, err := client.ReconstructVertex(ids[0], limits)
	if err != nil {
		t.Fatal(err)
	}
	if len(after[0].Hops) != len(first[0].Hops)+1 {
		t.Fatalf("post-write answer has %d hops, want %d", len(after[0].Hops), len(first[0].Hops)+1)
	}
	if st := srv.QueryStats(); st.CacheMisses != 3 {
		t.Fatalf("post-write query should miss: %+v", st)
	}
}

func TestQueryCacheLRUBound(t *testing.T) {
	s, srv, client := serveGraph(t, ServerOptions{QueryCache: 2})
	ids := seedChain(t, s, 4)
	limits := DefaultTraceLimits()

	for _, id := range ids[:3] {
		if _, err := client.ReconstructVertex(id, limits); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.QueryStats()
	if st.CacheLen != 2 {
		t.Fatalf("cache holds %d entries, want the configured bound 2", st.CacheLen)
	}
	// The oldest entry (ids[0]) was evicted: re-querying it misses, while
	// the most recent (ids[2]) still hits.
	if _, err := client.ReconstructVertex(ids[2], limits); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReconstructVertex(ids[0], limits); err != nil {
		t.Fatal(err)
	}
	st = srv.QueryStats()
	if st.CacheHits != 1 || st.CacheMisses != 4 {
		t.Fatalf("LRU stats = %+v, want 1 hit / 4 misses", st)
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	s, srv, client := serveGraph(t, ServerOptions{QueryCache: -1})
	ids := seedChain(t, s, 3)
	for i := 0; i < 2; i++ {
		if _, err := client.ReconstructVertex(ids[0], DefaultTraceLimits()); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.QueryStats()
	if st.CacheHits != 0 || st.CacheMisses != 2 || st.CacheLen != 0 {
		t.Fatalf("disabled-cache stats = %+v", st)
	}
}

func TestQueryCacheVersionTagRejectsStaleEntry(t *testing.T) {
	c := newQueryCache(4)
	key := queryKey{op: opReconstruct, vertexID: 1}
	c.put(key, 7, "old answer")
	if _, ok := c.get(key, 8); ok {
		t.Fatal("stale entry served")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry not evicted: %d entries", c.len())
	}
	c.put(key, 8, "new answer")
	if v, ok := c.get(key, 8); !ok || v != "new answer" {
		t.Fatalf("current entry = %v, %v", v, ok)
	}
}

func TestServerSideBestAndSightings(t *testing.T) {
	s, _, client := serveGraph(t, ServerOptions{})
	ids := seedChain(t, s, 3)
	_ = ids

	best, err := client.Best("seed#0", DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Hops) != 3 {
		t.Fatalf("best track = %+v", best.Cameras())
	}

	if _, err := client.Best("ghost#0", DefaultTraceLimits()); !errors.Is(err, ErrVertexNotFound) {
		t.Errorf("unknown event over the wire: %v", err)
	}
	if _, err := client.ReconstructVertex(999, DefaultTraceLimits()); !errors.Is(err, ErrVertexNotFound) {
		t.Errorf("unknown vertex over the wire: %v", err)
	}

	// Sightings scan with and without an explicit maxVertex bound.
	truth := event("truth#1")
	truth.TruthID = "veh-9"
	tid, err := s.AddVertex(truth)
	if err != nil {
		t.Fatal(err)
	}
	hops, err := client.Sightings("veh-9", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].VertexID != tid {
		t.Fatalf("sightings = %+v", hops)
	}
	bounded, err := client.Sightings("veh-9", tid-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) != 0 {
		t.Fatalf("bounded sightings should exclude vertex %d: %+v", tid, bounded)
	}
}

// TestServerErrorCodeMapping pins the wire error contract: codes map back
// to sentinel errors via errors.Is while the historical message string is
// preserved for old clients that match on text.
func TestServerErrorCodeMapping(t *testing.T) {
	nf := &ServerError{Code: codeNotFound, Msg: "vertex not found: 7"}
	if !errors.Is(nf, ErrVertexNotFound) {
		t.Error("not_found code does not unwrap to ErrVertexNotFound")
	}
	if nf.Error() != "trajstore: server: vertex not found: 7" {
		t.Errorf("message = %q", nf.Error())
	}
	nt := &ServerError{Code: codeNoTracks, Msg: "no tracks"}
	if !errors.Is(nt, ErrNoTracks) {
		t.Error("no_tracks code does not unwrap to ErrNoTracks")
	}
	if errors.Is(&ServerError{Msg: "plain"}, ErrVertexNotFound) {
		t.Error("codeless error gained a sentinel identity")
	}
}

// TestQueryRecordsChildSpan asserts a server-side query stitches a
// "query" child span into the caller's sampled trace.
func TestQueryRecordsChildSpan(t *testing.T) {
	s := NewMemStore()
	tracer := obs.NewTracerWith(obs.TracerConfig{Capacity: 16})
	s.UseTracer(tracer)
	srv, err := Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	ids := seedChain(t, s, 3)

	ctx := obs.ContextWithSpan(context.Background(), obs.SpanContext{
		TraceID: "trace-q1", SpanID: "span-root", Sampled: true,
	})
	if _, err := client.ReconstructVertexContext(ctx, ids[0], DefaultTraceLimits()); err != nil {
		t.Fatal(err)
	}
	// Repeat: the cache hit must still appear in the trace.
	if _, err := client.ReconstructVertexContext(ctx, ids[0], DefaultTraceLimits()); err != nil {
		t.Fatal(err)
	}

	var got []obs.Span
	for _, sp := range tracer.Recent() {
		if sp.Name == "query" && sp.Trace == "trace-q1" {
			got = append(got, sp)
		}
	}
	if len(got) != 2 {
		t.Fatalf("recorded %d query spans, want 2; spans: %+v", len(got), tracer.Recent())
	}
	for _, sp := range got {
		if sp.ParentID != "span-root" {
			t.Errorf("query span parent = %q, want span-root", sp.ParentID)
		}
	}
	hitSeen := false
	for _, sp := range got {
		for _, attr := range sp.Attrs {
			if attr.Name == "cache" && attr.Value == "hit" {
				hitSeen = true
			}
		}
	}
	if !hitSeen {
		t.Errorf("no query span tagged cache=hit; spans: %+v", got)
	}
}

// --- Graceful shutdown of in-flight queries ---

// slowQueryInterceptor delays reconstruct handling so the test can catch
// the server with a query genuinely in flight.
func slowQueryInterceptor(d time.Duration) rpc.ServerInterceptor {
	return func(ctx context.Context, req *rpc.Request, next rpc.Handler) (*rpc.Response, error) {
		if req.Method == opReconstruct {
			time.Sleep(d)
		}
		return next(ctx, req)
	}
}

func TestShutdownDrainsInFlightQuery(t *testing.T) {
	before := runtime.NumGoroutine()

	s := NewMemStore()
	srv, err := ServeWith(s, "127.0.0.1:0", ServerOptions{
		Interceptors: []rpc.ServerInterceptor{slowQueryInterceptor(400 * time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ids := seedChain(t, s, 4)

	type result struct {
		tracks []Track
		err    error
	}
	done := make(chan result, 1)
	go func() {
		tracks, err := client.ReconstructVertex(ids[0], DefaultTraceLimits())
		done <- result{tracks, err}
	}()

	// Wait until the query is actually inside the server.
	deadline := time.Now().Add(2 * time.Second)
	for srv.QueryStats().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown with a query in flight: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight query was dropped by shutdown: %v", res.err)
	}
	if len(res.tracks) == 0 || len(res.tracks[0].Hops) != 4 {
		t.Fatalf("drained query returned %+v", res.tracks)
	}
	_ = client.Close()

	// No goroutines may outlive the drained server (settle loop: the
	// runtime needs a moment to retire connection handlers).
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+2 {
		t.Errorf("goroutines leaked across query shutdown: %d -> %d", before, after)
	}
}

func TestShutdownBoundedByContextDuringSlowQuery(t *testing.T) {
	s := NewMemStore()
	srv, err := ServeWith(s, "127.0.0.1:0", ServerOptions{
		Interceptors: []rpc.ServerInterceptor{slowQueryInterceptor(3 * time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	ids := seedChain(t, s, 3)

	go func() {
		_, _ = client.ReconstructVertex(ids[0], DefaultTraceLimits())
	}()
	deadline := time.Now().Add(2 * time.Second)
	for srv.QueryStats().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_ = srv.Shutdown(ctx) // may report the abandoned connection; timing is the contract
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v despite a 150ms drain budget", elapsed)
	}
}
