package trajstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

const (
	walFileName      = "trajstore.wal"
	snapshotFileName = "trajstore.snapshot.json"
)

// walRecord is one append-only log entry.
type walRecord struct {
	Op     string  `json:"op"` // "v" or "e"
	Vertex *Vertex `json:"vertex,omitempty"`
	Edge   *Edge   `json:"edge,omitempty"`
}

// snapshot is the compacted on-disk state.
type snapshot struct {
	NextID   int64    `json:"nextId"`
	Vertices []Vertex `json:"vertices"`
	Edges    []Edge   `json:"edges"`
}

// persister owns the WAL file handle. Store methods call it while holding
// the store lock, so it needs no locking of its own.
type persister struct {
	dir string
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
}

func newPersister(dir string) (*persister, error) {
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trajstore: open wal: %w", err)
	}
	w := bufio.NewWriter(f)
	return &persister{dir: dir, f: f, w: w, enc: json.NewEncoder(w)}, nil
}

func (p *persister) logVertex(v Vertex) error {
	return p.log(walRecord{Op: "v", Vertex: &v})
}

func (p *persister) logEdge(e Edge) error {
	return p.log(walRecord{Op: "e", Edge: &e})
}

func (p *persister) log(rec walRecord) error {
	if err := p.enc.Encode(rec); err != nil {
		return fmt.Errorf("trajstore: wal append: %w", err)
	}
	if err := p.w.Flush(); err != nil {
		return fmt.Errorf("trajstore: wal flush: %w", err)
	}
	return nil
}

func (p *persister) close() error {
	if err := p.w.Flush(); err != nil {
		_ = p.f.Close()
		return fmt.Errorf("trajstore: wal flush: %w", err)
	}
	if err := p.f.Close(); err != nil {
		return fmt.Errorf("trajstore: wal close: %w", err)
	}
	return nil
}

// Open loads (or creates) a persistent store in dir: the snapshot is read
// first, then the WAL is replayed on top, then new writes append to the
// WAL.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("trajstore: empty directory; use NewMemStore for in-memory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trajstore: mkdir: %w", err)
	}
	s := NewMemStore()
	if err := s.loadSnapshot(filepath.Join(dir, snapshotFileName)); err != nil {
		return nil, err
	}
	if err := s.replayWAL(filepath.Join(dir, walFileName)); err != nil {
		return nil, err
	}
	p, err := newPersister(dir)
	if err != nil {
		return nil, err
	}
	s.persist = p
	return s, nil
}

func (s *Store) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("trajstore: open snapshot: %w", err)
	}
	defer func() { _ = f.Close() }()
	var snap snapshot
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("trajstore: decode snapshot: %w", err)
	}
	return s.restore(snap)
}

func (s *Store) restore(snap snapshot) error {
	for i := range snap.Vertices {
		v := snap.Vertices[i]
		s.vertices[v.ID] = &v
		if v.ID >= s.nextID {
			s.nextID = v.ID + 1
		}
	}
	if snap.NextID > s.nextID {
		s.nextID = snap.NextID
	}
	for _, e := range snap.Edges {
		s.out[e.From] = append(s.out[e.From], e)
		s.in[e.To] = append(s.in[e.To], e)
	}
	return nil
}

func (s *Store) replayWAL(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("trajstore: open wal: %w", err)
	}
	defer func() { _ = f.Close() }()
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var rec walRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			// A torn tail write is expected after a crash; stop replay at
			// the first damaged record.
			return nil
		}
		switch rec.Op {
		case "v":
			if rec.Vertex == nil {
				continue
			}
			v := *rec.Vertex
			s.vertices[v.ID] = &v
			if v.ID >= s.nextID {
				s.nextID = v.ID + 1
			}
		case "e":
			if rec.Edge == nil {
				continue
			}
			e := *rec.Edge
			if _, ok := s.vertices[e.From]; !ok {
				continue
			}
			if _, ok := s.vertices[e.To]; !ok {
				continue
			}
			s.out[e.From] = append(s.out[e.From], e)
			s.in[e.To] = append(s.in[e.To], e)
		}
	}
}

// Compact writes the current state as a snapshot and truncates the WAL.
// Safe to call while the store is serving writes.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.persist == nil {
		return errors.New("trajstore: in-memory store has nothing to compact")
	}
	snap := snapshot{NextID: s.nextID}
	for _, v := range s.vertices {
		snap.Vertices = append(snap.Vertices, *v)
	}
	for _, es := range s.out {
		snap.Edges = append(snap.Edges, es...)
	}

	tmp := filepath.Join(s.persist.dir, snapshotFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("trajstore: create snapshot: %w", err)
	}
	if err := json.NewEncoder(f).Encode(snap); err != nil {
		_ = f.Close()
		return fmt.Errorf("trajstore: write snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trajstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.persist.dir, snapshotFileName)); err != nil {
		return fmt.Errorf("trajstore: install snapshot: %w", err)
	}

	// Truncate the WAL now that its contents are in the snapshot.
	if err := s.persist.close(); err != nil {
		return err
	}
	if err := os.Truncate(filepath.Join(s.persist.dir, walFileName), 0); err != nil {
		return fmt.Errorf("trajstore: truncate wal: %w", err)
	}
	p, err := newPersister(s.persist.dir)
	if err != nil {
		return err
	}
	s.persist = p
	return nil
}
