package trajstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

const (
	walFileName      = "trajstore.wal"
	snapshotFileName = "trajstore.snapshot.json"
)

// ErrWALCorrupt is returned by Open when the write-ahead log is damaged
// in the middle of the file. A damaged tail is expected after a crash and
// is truncated away; damage followed by further intact records means the
// log was corrupted at rest and replaying past it would silently drop
// acknowledged writes, so the store refuses to open.
var ErrWALCorrupt = errors.New("trajstore: wal corrupt mid-file")

// walRecord is one append-only log entry.
type walRecord struct {
	Op     string  `json:"op"` // "v" or "e"
	Vertex *Vertex `json:"vertex,omitempty"`
	Edge   *Edge   `json:"edge,omitempty"`
}

// snapshotFile is the compacted on-disk state.
type snapshotFile struct {
	NextID   int64    `json:"nextId"`
	Vertices []Vertex `json:"vertices"`
	Edges    []Edge   `json:"edges"`
}

// StoreConfig tunes the durability of a persistent store. The zero value
// preserves the original behaviour: buffered writes flushed to the OS on
// every commit, no fsync, no commit window.
type StoreConfig struct {
	// Fsync forces an fsync after every WAL group commit, so an
	// acknowledged write survives a machine crash, not just a process
	// crash. Group commit amortizes the sync across every write that
	// joined the commit.
	Fsync bool
	// GroupCommitWindow is how long the WAL committer waits after waking
	// before flushing, letting concurrent writers accumulate into one
	// write+flush(+fsync). Zero commits as soon as the committer drains
	// the queue, which still groups writes that arrive while a previous
	// flush is in progress.
	GroupCommitWindow time.Duration
}

// WALStats are the persister's lifetime counters, exposed for tests and
// telemetry.
type WALStats struct {
	// GroupCommits is the number of WAL write+flush cycles.
	GroupCommits int64
	// Records is the number of WAL records committed.
	Records int64
	// Syncs is the number of fsyncs issued.
	Syncs int64
	// TailTruncations counts torn WAL tails discarded during replay.
	TailTruncations int64
}

// commitBatch is one writer's records awaiting group commit. done
// receives exactly one result.
type commitBatch struct {
	recs []walRecord
	done chan error
}

// persister owns the WAL file handle. Writers enqueue records (while
// holding the store lock, which fixes WAL order) and wait outside the
// lock; a background committer encodes everything pending with a single
// flush — and a single fsync when configured — so concurrent writers
// share the disk cost (group commit).
type persister struct {
	dir    string
	fsync  bool
	window time.Duration

	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder

	mu      sync.Mutex
	pending []*commitBatch
	stopped bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	commits atomic.Int64
	records atomic.Int64
	syncs   atomic.Int64
}

func newPersister(dir string, cfg StoreConfig) (*persister, error) {
	f, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trajstore: open wal: %w", err)
	}
	w := bufio.NewWriter(f)
	p := &persister{
		dir:    dir,
		fsync:  cfg.Fsync,
		window: cfg.GroupCommitWindow,
		f:      f,
		w:      w,
		enc:    json.NewEncoder(w),
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.run()
	return p, nil
}

// enqueue joins the records to the next group commit as one atomic unit
// and returns the channel carrying the commit result. Callers hold the
// store lock, which makes the WAL order match the in-memory apply order;
// they must receive from the channel after releasing it.
func (p *persister) enqueue(recs []walRecord) <-chan error {
	b := &commitBatch{recs: recs, done: make(chan error, 1)}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		b.done <- errors.New("trajstore: wal closed")
		return b.done
	}
	p.pending = append(p.pending, b)
	p.mu.Unlock()
	select {
	case p.kick <- struct{}{}:
	default:
	}
	return b.done
}

// run is the committer loop: wake on the first pending batch, optionally
// linger for the group-commit window, then write everything pending with
// one flush.
func (p *persister) run() {
	defer close(p.done)
	for {
		select {
		case <-p.kick:
		case <-p.stop:
			p.commitPending()
			return
		}
		if p.window > 0 {
			timer := time.NewTimer(p.window)
			select {
			case <-timer.C:
			case <-p.stop:
				timer.Stop()
				p.commitPending()
				return
			}
		}
		p.commitPending()
	}
}

// commitPending writes every pending batch with a single flush (and a
// single fsync when configured) and delivers the shared result to all
// waiting writers.
func (p *persister) commitPending() {
	p.mu.Lock()
	batch := p.pending
	p.pending = nil
	p.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	var err error
	var n int64
encode:
	for _, b := range batch {
		for _, rec := range b.recs {
			if e := p.enc.Encode(rec); e != nil {
				err = fmt.Errorf("trajstore: wal append: %w", e)
				break encode
			}
			n++
		}
	}
	if err == nil {
		if e := p.w.Flush(); e != nil {
			err = fmt.Errorf("trajstore: wal flush: %w", e)
		}
	}
	if err == nil && p.fsync {
		if e := p.f.Sync(); e != nil {
			err = fmt.Errorf("trajstore: wal fsync: %w", e)
		} else {
			p.syncs.Add(1)
		}
	}
	if err == nil {
		p.commits.Add(1)
		p.records.Add(n)
	}
	for _, b := range batch {
		b.done <- err
	}
}

// close drains pending commits, flushes, and closes the WAL file.
// Idempotent.
func (p *persister) close() error {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return nil
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.stop)
	<-p.done
	if err := p.w.Flush(); err != nil {
		_ = p.f.Close()
		return fmt.Errorf("trajstore: wal flush: %w", err)
	}
	if err := p.f.Close(); err != nil {
		return fmt.Errorf("trajstore: wal close: %w", err)
	}
	return nil
}

// stats returns the persister's lifetime counters.
func (p *persister) stats() WALStats {
	return WALStats{
		GroupCommits: p.commits.Load(),
		Records:      p.records.Load(),
		Syncs:        p.syncs.Load(),
	}
}

// Open loads (or creates) a persistent store in dir with default
// durability (buffered flush, no fsync): the snapshot is read first, then
// the WAL is replayed on top, then new writes append to the WAL.
func Open(dir string) (*Store, error) {
	return OpenWithConfig(dir, StoreConfig{})
}

// OpenWithConfig is Open with explicit durability tuning.
func OpenWithConfig(dir string, cfg StoreConfig) (*Store, error) {
	if dir == "" {
		return nil, errors.New("trajstore: empty directory; use NewMemStore for in-memory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trajstore: mkdir: %w", err)
	}
	s := NewMemStore()
	if err := s.loadSnapshot(filepath.Join(dir, snapshotFileName)); err != nil {
		return nil, err
	}
	if err := s.replayWAL(filepath.Join(dir, walFileName)); err != nil {
		return nil, err
	}
	p, err := newPersister(dir, cfg)
	if err != nil {
		return nil, err
	}
	s.persist = p
	s.persistCfg = cfg
	return s, nil
}

func (s *Store) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("trajstore: open snapshot: %w", err)
	}
	defer func() { _ = f.Close() }()
	var snap snapshotFile
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return fmt.Errorf("trajstore: decode snapshot: %w", err)
	}
	return s.restore(snap)
}

func (s *Store) restore(snap snapshotFile) error {
	for i := range snap.Vertices {
		v := snap.Vertices[i]
		s.vertices[v.ID] = &v
		if v.ID >= s.nextID {
			s.nextID = v.ID + 1
		}
	}
	if snap.NextID > s.nextID {
		s.nextID = snap.NextID
	}
	for _, e := range snap.Edges {
		s.out[e.From] = append(s.out[e.From], e)
		s.in[e.To] = append(s.in[e.To], e)
	}
	s.version++
	return nil
}

// applyWALRecord replays one record idempotently: vertices are keyed by
// ID, and edges duplicating an existing (from, to) pair — the store's own
// uniqueness invariant — are skipped. Idempotence is what makes the
// compaction crash window safe: if the process dies after the snapshot
// is installed but before the WAL is truncated, restart replays every
// edge already in the snapshot without skewing trajectory weights.
func (s *Store) applyWALRecord(rec walRecord) {
	switch rec.Op {
	case "v":
		if rec.Vertex == nil {
			return
		}
		v := *rec.Vertex
		s.vertices[v.ID] = &v
		s.version++
		if v.ID >= s.nextID {
			s.nextID = v.ID + 1
		}
	case "e":
		if rec.Edge == nil {
			return
		}
		e := *rec.Edge
		if _, ok := s.vertices[e.From]; !ok {
			return
		}
		if _, ok := s.vertices[e.To]; !ok {
			return
		}
		for _, existing := range s.out[e.From] {
			if existing.To == e.To {
				return
			}
		}
		s.out[e.From] = append(s.out[e.From], e)
		s.in[e.To] = append(s.in[e.To], e)
		s.version++
	}
}

// isWALRecordLine reports whether a line parses as a well-formed WAL
// record, used to tell a torn tail from mid-file corruption.
func isWALRecordLine(line []byte) bool {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return false
	}
	var rec walRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return false
	}
	return (rec.Op == "v" && rec.Vertex != nil) || (rec.Op == "e" && rec.Edge != nil)
}

// replayWAL applies the log on top of the snapshot. A damaged record at
// the tail (a torn write from a crash) is logged, counted, and truncated
// away so later appends do not land after garbage; a damaged record
// followed by further intact records is corruption at rest and fails the
// open with ErrWALCorrupt.
func (s *Store) replayWAL(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("trajstore: open wal: %w", err)
	}
	defer func() { _ = f.Close() }()
	r := bufio.NewReader(f)
	var offset int64
	for {
		line, err := r.ReadBytes('\n')
		if err == nil {
			var rec walRecord
			if uerr := json.Unmarshal(line, &rec); uerr != nil {
				return s.handleDamagedWAL(path, r, offset, uerr)
			}
			s.applyWALRecord(rec)
			offset += int64(len(line))
			continue
		}
		if errors.Is(err, io.EOF) {
			if len(line) == 0 {
				return nil // clean end at a record boundary
			}
			// Partial final line with no newline: torn tail.
			return s.truncateWALTail(path, offset)
		}
		return fmt.Errorf("trajstore: read wal: %w", err)
	}
}

// handleDamagedWAL classifies a record that failed to decode: if any
// complete, well-formed record follows it, the file is corrupt mid-file;
// otherwise the damage is a torn tail and is truncated away.
func (s *Store) handleDamagedWAL(path string, r *bufio.Reader, offset int64, cause error) error {
	for {
		line, err := r.ReadBytes('\n')
		if err == nil && isWALRecordLine(line) {
			return fmt.Errorf("%w (at byte %d): %v", ErrWALCorrupt, offset, cause)
		}
		if err != nil {
			return s.truncateWALTail(path, offset)
		}
	}
}

// truncateWALTail discards everything from offset on — the torn tail of
// a crashed append — so the good prefix stays replayable and new appends
// do not land after garbage.
func (s *Store) truncateWALTail(path string, offset int64) error {
	if err := os.Truncate(path, offset); err != nil {
		return fmt.Errorf("trajstore: truncate torn wal tail: %w", err)
	}
	s.walTailTruncations++
	obs.DefaultLogger().WithComponent("trajstore").Warn("truncated torn wal tail",
		"offset", strconv.FormatInt(offset, 10),
		"note", "expected after a crash")
	return nil
}

// Compact writes the current state as a snapshot and truncates the WAL.
// Safe to call while the store is serving writes. If the process crashes
// between installing the snapshot and truncating the WAL, the next open
// replays the stale log idempotently (see applyWALRecord), so no write is
// duplicated or lost.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.persist == nil {
		return errors.New("trajstore: in-memory store has nothing to compact")
	}
	snap := snapshotFile{NextID: s.nextID}
	for _, v := range s.vertices {
		snap.Vertices = append(snap.Vertices, *v)
	}
	for _, es := range s.out {
		snap.Edges = append(snap.Edges, es...)
	}

	tmp := filepath.Join(s.persist.dir, snapshotFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("trajstore: create snapshot: %w", err)
	}
	if err := json.NewEncoder(f).Encode(snap); err != nil {
		_ = f.Close()
		return fmt.Errorf("trajstore: write snapshot: %w", err)
	}
	if s.persistCfg.Fsync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("trajstore: sync snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trajstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.persist.dir, snapshotFileName)); err != nil {
		return fmt.Errorf("trajstore: install snapshot: %w", err)
	}

	// Truncate the WAL now that its contents are in the snapshot. The
	// close drains any group commit in flight first, so every
	// acknowledged write is in the snapshot state being kept.
	if err := s.persist.close(); err != nil {
		return err
	}
	if err := os.Truncate(filepath.Join(s.persist.dir, walFileName), 0); err != nil {
		return fmt.Errorf("trajstore: truncate wal: %w", err)
	}
	prev := s.persist.stats()
	p, err := newPersister(s.persist.dir, s.persistCfg)
	if err != nil {
		return err
	}
	p.commits.Store(prev.GroupCommits)
	p.records.Store(prev.Records)
	p.syncs.Store(prev.Syncs)
	s.persist = p
	return nil
}
