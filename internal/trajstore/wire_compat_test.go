package trajstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// rawCall speaks the wire protocol by hand — 4-byte big-endian length
// prefix plus a JSON object built from a plain map, with no help from
// this package's request/response types — standing in for a client
// built against the pre-rpc-layer protocol.
func rawCall(t *testing.T, conn net.Conn, req map[string]any) map[string]any {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := conn.Write(lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	var resp map[string]any
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestWireCompatOldClientNewServer verifies the rpc-layer server still
// speaks the original length-prefixed-JSON protocol: a hand-rolled
// legacy client can write vertices and edges and read stats.
func TestWireCompatOldClientNewServer(t *testing.T) {
	store := NewMemStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.DialTimeout("tcp", srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ev := event("cam#1")
	evJSON, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var evMap map[string]any
	if err := json.Unmarshal(evJSON, &evMap); err != nil {
		t.Fatal(err)
	}
	resp := rawCall(t, conn, map[string]any{"op": "add_vertex", "event": evMap})
	if resp["ok"] != true {
		t.Fatalf("add_vertex response: %v", resp)
	}
	if resp["vertexId"] != float64(1) {
		t.Fatalf("vertexId = %v, want 1", resp["vertexId"])
	}

	ev2 := event("cam#2")
	ev2JSON, _ := json.Marshal(ev2)
	var ev2Map map[string]any
	_ = json.Unmarshal(ev2JSON, &ev2Map)
	if resp := rawCall(t, conn, map[string]any{"op": "add_vertex", "event": ev2Map}); resp["ok"] != true {
		t.Fatalf("second add_vertex: %v", resp)
	}
	if resp := rawCall(t, conn, map[string]any{"op": "add_edge", "from": 1, "to": 2, "weight": 0.5}); resp["ok"] != true {
		t.Fatalf("add_edge: %v", resp)
	}

	resp = rawCall(t, conn, map[string]any{"op": "stats"})
	if resp["ok"] != true || resp["vertices"] != float64(2) || resp["edges"] != float64(1) {
		t.Fatalf("stats: %v", resp)
	}

	// A server-side rejection travels as an err field in a well-formed
	// frame, not a dropped connection.
	resp = rawCall(t, conn, map[string]any{"op": "no_such_op"})
	if resp["ok"] == true {
		t.Fatal("unknown op accepted")
	}
	if s, _ := resp["err"].(string); s == "" {
		t.Fatalf("unknown op response carries no err: %v", resp)
	}
	// The connection survives the rejection.
	if resp := rawCall(t, conn, map[string]any{"op": "stats"}); resp["ok"] != true {
		t.Fatalf("stats after rejection: %v", resp)
	}
}

// TestWireCompatNewClientOldServer runs the rpc-layer client against a
// hand-rolled single-connection server that only understands the
// original frame format.
func TestWireCompatNewClientOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		nextID := int64(0)
		for {
			var lenBuf [4]byte
			if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
				return
			}
			buf := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
			var req map[string]any
			if err := json.Unmarshal(buf, &req); err != nil {
				return
			}
			var resp map[string]any
			switch req["op"] {
			case "add_vertex":
				nextID++
				resp = map[string]any{"ok": true, "vertexId": nextID}
			case "stats":
				resp = map[string]any{"ok": true, "vertices": nextID}
			default:
				resp = map[string]any{"err": fmt.Sprintf("unknown op %v", req["op"])}
			}
			data, _ := json.Marshal(resp)
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
			if _, err := conn.Write(lenBuf[:]); err != nil {
				return
			}
			if _, err := conn.Write(data); err != nil {
				return
			}
		}
	}()

	client, err := DialContext(context.Background(), ln.Addr().String(), ClientConfig{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	id, err := client.AddVertex(event("cam#1"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("vertex id = %d, want 1", id)
	}
	vertices, _, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if vertices != 1 {
		t.Errorf("vertices = %d, want 1", vertices)
	}
	// A legacy rejection surfaces as the familiar terminal error.
	if err := client.AddEdge(1, 2, 0.5); err == nil {
		t.Error("legacy rejection not surfaced")
	}
}
