package trajstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/protocol"
)

func event(id string) protocol.DetectionEvent {
	h := feature.Histogram{Bins: make([]float64, feature.HistogramSize)}
	h.Bins[0] = 1
	return protocol.DetectionEvent{
		ID:        protocol.EventID(id),
		CameraID:  "cam",
		Timestamp: time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC),
		Histogram: h,
	}
}

func TestAddVertexAssignsSequentialIDs(t *testing.T) {
	s := NewMemStore()
	id1, err := s.AddVertex(event("cam#1"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.AddVertex(event("cam#2"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != 1 || id2 != 2 {
		t.Errorf("ids = %d, %d", id1, id2)
	}
	v, err := s.Vertex(id1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Event.ID != "cam#1" || v.Event.VertexID != id1 {
		t.Errorf("vertex = %+v", v)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	s := NewMemStore()
	a, err := s.AddVertex(event("cam#1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AddVertex(event("cam#2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(a, 999, 0.1); !errors.Is(err, ErrVertexNotFound) {
		t.Errorf("missing target: %v", err)
	}
	if err := s.AddEdge(a, b, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(a, b, 0.2); !errors.Is(err, ErrEdgeExists) {
		t.Errorf("duplicate edge: %v", err)
	}
	if s.NumEdges() != 1 || s.NumVertices() != 2 {
		t.Errorf("counts %d/%d", s.NumVertices(), s.NumEdges())
	}
}

func TestMultipleEdgesPerVertexAllowed(t *testing.T) {
	// The paper allows multiple in/out edges so false positives do not
	// mask true positives.
	s := NewMemStore()
	a, _ := s.AddVertex(event("c#1"))
	b, _ := s.AddVertex(event("c#2"))
	c, _ := s.AddVertex(event("c#3"))
	if err := s.AddEdge(a, b, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(a, c, 0.3); err != nil {
		t.Fatal(err)
	}
	out := s.OutEdges(a)
	if len(out) != 2 {
		t.Errorf("out edges = %v", out)
	}
	if len(s.InEdges(b)) != 1 || len(s.InEdges(c)) != 1 {
		t.Error("in edges wrong")
	}
}

func TestFindByEventID(t *testing.T) {
	s := NewMemStore()
	if _, err := s.AddVertex(event("cam#7")); err != nil {
		t.Fatal(err)
	}
	v, err := s.FindByEventID("cam#7")
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != 1 {
		t.Errorf("found id = %d", v.ID)
	}
	if _, err := s.FindByEventID("nope#1"); !errors.Is(err, ErrVertexNotFound) {
		t.Errorf("missing event: %v", err)
	}
}

// buildChain creates a linear trajectory v1 -> v2 -> ... -> vn.
func buildChain(t *testing.T, s *Store, n int) []int64 {
	t.Helper()
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		id, err := s.AddVertex(event("cam#" + string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i+1 < n; i++ {
		if err := s.AddEdge(ids[i], ids[i+1], 0.1); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func TestTraceForwardLinear(t *testing.T) {
	s := NewMemStore()
	ids := buildChain(t, s, 4)
	paths, err := s.TraceForward(ids[0], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	for i, id := range ids {
		if paths[0][i] != id {
			t.Errorf("path = %v", paths[0])
			break
		}
	}
}

func TestTraceBackwardLinear(t *testing.T) {
	s := NewMemStore()
	ids := buildChain(t, s, 4)
	paths, err := s.TraceBackward(ids[3], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	if paths[0][0] != ids[3] || paths[0][3] != ids[0] {
		t.Errorf("backward path = %v", paths[0])
	}
}

func TestTraceForkProducesMultiplePaths(t *testing.T) {
	s := NewMemStore()
	a, _ := s.AddVertex(event("c#1"))
	b, _ := s.AddVertex(event("c#2"))
	c, _ := s.AddVertex(event("c#3"))
	d, _ := s.AddVertex(event("c#4"))
	if err := s.AddEdge(a, b, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(a, c, 0.4); err != nil { // false-positive branch
		t.Fatal(err)
	}
	if err := s.AddEdge(b, d, 0.1); err != nil {
		t.Fatal(err)
	}
	paths, err := s.TraceForward(a, DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestTrajectoryThroughMiddle(t *testing.T) {
	s := NewMemStore()
	ids := buildChain(t, s, 5)
	paths, err := s.Trajectory(ids[2], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 5 {
		t.Fatalf("paths = %v", paths)
	}
	for i, id := range ids {
		if paths[0][i] != id {
			t.Errorf("trajectory = %v, want %v", paths[0], ids)
			break
		}
	}
}

func TestTraceCycleTerminates(t *testing.T) {
	s := NewMemStore()
	a, _ := s.AddVertex(event("c#1"))
	b, _ := s.AddVertex(event("c#2"))
	if err := s.AddEdge(a, b, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(b, a, 0.1); err != nil {
		t.Fatal(err)
	}
	paths, err := s.TraceForward(a, DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Errorf("cycle paths = %v", paths)
	}
}

func TestTraceLimitsRespected(t *testing.T) {
	s := NewMemStore()
	ids := buildChain(t, s, 10)
	paths, err := s.TraceForward(ids[0], TraceLimits{MaxDepth: 3, MaxPaths: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths[0]) != 3 {
		t.Errorf("depth-limited path = %v", paths[0])
	}
	if _, err := s.TraceForward(999, DefaultTraceLimits()); !errors.Is(err, ErrVertexNotFound) {
		t.Errorf("missing start: %v", err)
	}
}

func TestCloseBlocksWrites(t *testing.T) {
	s := NewMemStore()
	id, err := s.AddVertex(event("c#1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := s.AddVertex(event("c#2")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	// Reads still work.
	if _, err := s.Vertex(id); err != nil {
		t.Errorf("read after close: %v", err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := buildChain(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if s2.NumVertices() != 3 || s2.NumEdges() != 2 {
		t.Fatalf("reloaded %d vertices %d edges", s2.NumVertices(), s2.NumEdges())
	}
	paths, err := s2.TraceForward(ids[0], DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 3 {
		t.Errorf("reloaded paths = %v", paths)
	}
	// IDs keep growing after reload (no reuse).
	id, err := s2.AddVertex(event("c#9"))
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Errorf("next id after reload = %d, want 4", id)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	buildChain(t, s, 5)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Writes continue after compaction.
	if _, err := s.AddVertex(event("c#x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if s2.NumVertices() != 6 || s2.NumEdges() != 4 {
		t.Errorf("after compact+reload: %d vertices %d edges", s2.NumVertices(), s2.NumEdges())
	}
}

func TestCompactInMemoryErrors(t *testing.T) {
	s := NewMemStore()
	if err := s.Compact(); err == nil {
		t.Error("compacting an in-memory store should error")
	}
}

func TestOpenEmptyDirErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir should error")
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	store := NewMemStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()

	a, err := cl.AddVertex(event("cam#1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.AddVertex(event("cam#2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddEdge(a, b, 0.15); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Vertex(a)
	if err != nil {
		t.Fatal(err)
	}
	if v.Event.ID != "cam#1" {
		t.Errorf("vertex = %+v", v)
	}
	fv, err := cl.FindByEventID("cam#2")
	if err != nil || fv.ID != b {
		t.Errorf("find = %+v err %v", fv, err)
	}
	paths, err := cl.Trajectory(a, DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Errorf("paths = %v", paths)
	}
	nv, ne, err := cl.Stats()
	if err != nil || nv != 2 || ne != 1 {
		t.Errorf("stats = %d/%d err %v", nv, ne, err)
	}
}

func TestClientErrorsPropagate(t *testing.T) {
	store := NewMemStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()

	if _, err := cl.Vertex(42); err == nil {
		t.Error("missing vertex should error")
	}
	if err := cl.AddEdge(1, 2, 0.5); err == nil {
		t.Error("edge between missing vertices should error")
	}
	// The connection survives server-side errors.
	if _, err := cl.AddVertex(event("cam#1")); err != nil {
		t.Errorf("connection broken after error: %v", err)
	}
}

func TestClientReconnects(t *testing.T) {
	store := NewMemStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	if _, err := cl.AddVertex(event("cam#1")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := Serve(store, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer func() { _ = srv2.Close() }()
	// First call may fail on the stale connection; the next must recover.
	var ok bool
	for i := 0; i < 5; i++ {
		if _, err := cl.AddVertex(event("cam#2")); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Error("client never reconnected")
	}
}
