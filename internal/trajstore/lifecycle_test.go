package trajstore

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestClientRecoversAcrossServerRestart is the mid-stream restart
// scenario: the client has a live cached connection, the server dies and
// comes back on the same address, and the client's next calls must
// redial (with backoff, riding out the downtime) and keep working.
func TestClientRecoversAcrossServerRestart(t *testing.T) {
	store := NewMemStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	if _, err := client.AddVertex(event("cam-1#1")); err != nil {
		t.Fatalf("add before restart: %v", err)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close server: %v", err)
	}

	// Restart on the same address after a short outage, while the client
	// is already retrying.
	restarted := make(chan *Server, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		srv2, err := Serve(store, addr)
		if err != nil {
			return // port raced away; the call below fails and reports it
		}
		restarted <- srv2
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// The first call may burn its retry discovering the stale cached
	// connection before the listener is back; keep calling within the
	// outage budget like a camera node would.
	var lastErr error
	recovered := false
	for i := 0; i < 50 && !recovered; i++ {
		if _, err := client.AddVertexContext(ctx, event(fmt.Sprintf("cam-1#%d", i+2))); err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		recovered = true
	}
	if !recovered {
		t.Fatalf("client never recovered after server restart: %v", lastErr)
	}

	vertices, _, err := client.StatsContext(ctx)
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if vertices < 2 {
		t.Errorf("store has %d vertices, want >= 2", vertices)
	}

	select {
	case srv2 := <-restarted:
		_ = srv2.Close()
	default:
		t.Fatal("restarted server never came up")
	}
}

// TestClientCallDeadline asserts a call against an unreachable server
// fails within its context deadline instead of retrying forever.
func TestClientCallDeadline(t *testing.T) {
	store := NewMemStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.AddVertexContext(ctx, event("cam-1#1"))
	if err == nil {
		t.Fatal("call against a dead server should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("call took %v to respect a 400ms deadline", elapsed)
	}
}

// TestServerShutdownGraceful asserts Shutdown finishes promptly with a
// connected-but-idle client and records a drain observation.
func TestServerShutdownGraceful(t *testing.T) {
	store := NewMemStore()
	srv, err := Serve(store, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	if _, err := client.AddVertex(event("cam-1#1")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown with an idle client: %v", err)
	}
	if srv.DrainObservations() == 0 {
		t.Error("shutdown recorded no drain observation")
	}
	// Idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close after shutdown: %v", err)
	}
}
