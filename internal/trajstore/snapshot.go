package trajstore

import (
	"fmt"

	"repro/internal/protocol"
)

// Snapshot is an immutable, lock-free view of the trajectory graph at
// one mutation version. A snapshot is built copy-on-read under the
// store's read lock — writers are excluded only for the duration of the
// O(V+E) copy, never for the graph walk that follows — and cached until
// the next mutation, so a burst of queries between writes shares one
// copy. Because every write path (AddVertex, AddEdge, ApplyBatch,
// rollbacks) mutates under the full store lock, a snapshot observes
// each batch atomically: it either contains all of a batch's applied
// records or none of them, never a half-applied batch.
//
// Vertex pointers are shared with the live store (vertices are never
// mutated in place after insertion); edge slices are deep-copied
// because the store rewrites them in place on rollback.
type Snapshot struct {
	version  uint64
	maxID    int64
	vertices map[int64]*Vertex
	out      map[int64][]Edge
	in       map[int64][]Edge
	nEdges   int
}

// Snapshot returns a consistent point-in-time view of the graph. The
// copy is taken under the store's read lock and cached by mutation
// version: while no write lands, repeated calls return the same
// snapshot with no copying; after a write, the first caller rebuilds
// (serialized on snapMu so concurrent queries never duplicate the
// copy). Queries executed against the snapshot hold no store lock at
// all, so they never block the WAL write path.
func (s *Store) Snapshot() *Snapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.mu.RLock()
	if s.snap != nil && s.snap.version == s.version {
		snap := s.snap
		s.mu.RUnlock()
		return snap
	}
	snap := &Snapshot{
		version:  s.version,
		maxID:    s.nextID - 1,
		vertices: make(map[int64]*Vertex, len(s.vertices)),
		out:      make(map[int64][]Edge, len(s.out)),
		in:       make(map[int64][]Edge, len(s.in)),
	}
	for id, v := range s.vertices {
		snap.vertices[id] = v
	}
	for id, es := range s.out {
		snap.out[id] = append([]Edge(nil), es...)
		snap.nEdges += len(es)
	}
	for id, es := range s.in {
		snap.in[id] = append([]Edge(nil), es...)
	}
	s.mu.RUnlock()
	s.snap = snap
	return snap
}

// Version is the store mutation count the snapshot was taken at.
func (sn *Snapshot) Version() uint64 { return sn.version }

// NumVertices returns the vertex count at snapshot time.
func (sn *Snapshot) NumVertices() int { return len(sn.vertices) }

// NumEdges returns the edge count at snapshot time.
func (sn *Snapshot) NumEdges() int { return sn.nEdges }

// MaxVertexID is the highest vertex ID allocated at snapshot time (IDs
// may have gaps from rolled-back writes).
func (sn *Snapshot) MaxVertexID() int64 { return sn.maxID }

// Vertex returns a vertex by ID.
func (sn *Snapshot) Vertex(id int64) (Vertex, error) {
	v, ok := sn.vertices[id]
	if !ok {
		return Vertex{}, fmt.Errorf("%w: %d", ErrVertexNotFound, id)
	}
	return *v, nil
}

// FindByEventID returns the vertex whose event carries the given ID.
func (sn *Snapshot) FindByEventID(id protocol.EventID) (Vertex, error) {
	for _, v := range sn.vertices {
		if v.Event.ID == id {
			return *v, nil
		}
	}
	return Vertex{}, fmt.Errorf("%w: event %q", ErrVertexNotFound, id)
}

// OutEdges returns a vertex's outgoing edges, sorted by target. The
// error return is always nil; the signature matches GraphView.
func (sn *Snapshot) OutEdges(id int64) ([]Edge, error) {
	return sortedEdges(sn.out[id], true), nil
}

// InEdges returns a vertex's incoming edges, sorted by source.
func (sn *Snapshot) InEdges(id int64) ([]Edge, error) {
	return sortedEdges(sn.in[id], false), nil
}

// TraceForward enumerates the maximal forward paths from start, exactly
// like Store.TraceForward but against the frozen view.
func (sn *Snapshot) TraceForward(start int64, limits TraceLimits) ([][]int64, error) {
	return sn.trace(start, limits, true)
}

// TraceBackward enumerates the maximal backward paths into start.
func (sn *Snapshot) TraceBackward(start int64, limits TraceLimits) ([][]int64, error) {
	return sn.trace(start, limits, false)
}

func (sn *Snapshot) trace(start int64, limits TraceLimits, forward bool) ([][]int64, error) {
	if _, ok := sn.vertices[start]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrVertexNotFound, start)
	}
	return traceGraph(sn.out, sn.in, start, limits.sanitized(), forward), nil
}

// Trajectory returns the full candidate space-time tracks through
// start, identical to Store.Trajectory over the same graph state.
func (sn *Snapshot) Trajectory(start int64, limits TraceLimits) ([][]int64, error) {
	if _, ok := sn.vertices[start]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrVertexNotFound, start)
	}
	limits = limits.sanitized()
	back := traceGraph(sn.out, sn.in, start, limits, false)
	fwd := traceGraph(sn.out, sn.in, start, limits, true)
	return combinePaths(back, fwd, limits.MaxPaths), nil
}
