// Package reid implements Coral-Pie's vehicle re-identification element
// (paper Sections 3.2, 4.1.3, 4.1.4): the candidate pool holding detection
// events received from upstream cameras, the Bhattacharyya-distance
// matcher, and the lazy garbage-collection policy — matched events are
// only annotated, and pruned when the pool grows too large, to keep eager
// deletion from turning re-identification false positives into false
// negatives.
package reid

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/feature"
	"repro/internal/protocol"
)

// Entry is one candidate-pool element.
type Entry struct {
	Event      protocol.DetectionEvent
	ReceivedAt time.Time
	Matched    bool
}

// PoolConfig parameterizes the candidate pool.
type PoolConfig struct {
	// PruneThreshold is the pool size above which matched entries are
	// garbage-collected (paper: "pruning ... only when the pool grows too
	// large").
	PruneThreshold int
	// OnEvict, when non-nil, is invoked (under the pool lock — keep it
	// cheap and reentrancy-free) for every entry removed by pruning.
	// Entry.Matched distinguishes normal cleanup of matched entries from
	// unmatched entries expired to bound pool memory; camnode uses the
	// latter to finish handoff tracer spans that would otherwise leak.
	OnEvict func(Entry)
}

// DefaultPoolConfig matches the prototype's behaviour.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{PruneThreshold: 256}
}

// Pool is a camera's candidate pool. It is safe for concurrent use: the
// connection manager adds entries from the network while the
// re-identification stage matches against them.
type Pool struct {
	cfg PoolConfig

	mu      sync.Mutex
	entries map[protocol.EventID]*Entry
	order   []protocol.EventID

	received int64
	matched  int64
	pruned   int64
	expired  int64
}

// NewPool validates the config and returns an empty pool.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.PruneThreshold < 1 {
		return nil, fmt.Errorf("reid: prune threshold %d must be >= 1", cfg.PruneThreshold)
	}
	return &Pool{
		cfg:     cfg,
		entries: make(map[protocol.EventID]*Entry),
	}, nil
}

// Add inserts an event received from an upstream camera. Duplicate event
// IDs refresh the stored event but are not double-counted.
func (p *Pool) Add(e protocol.DetectionEvent, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if existing, ok := p.entries[e.ID]; ok {
		existing.Event = e
		return
	}
	p.entries[e.ID] = &Entry{Event: e, ReceivedAt: now}
	p.order = append(p.order, e.ID)
	p.received++
	p.pruneLocked()
}

// MarkMatched annotates an event as matched (re-identified downstream or
// retired by the confirming protocol). It reports whether the event was
// present and previously unmatched.
func (p *Pool) MarkMatched(id protocol.EventID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[id]
	if !ok || e.Matched {
		return false
	}
	e.Matched = true
	p.matched++
	return true
}

// pruneLocked removes matched entries once the pool exceeds the
// configured threshold; if the pool is still over threshold afterwards
// (a flood of informs that never matched), the oldest unmatched entries
// are expired FIFO down to the threshold so pool memory stays bounded.
// Caller holds p.mu.
func (p *Pool) pruneLocked() {
	if len(p.entries) <= p.cfg.PruneThreshold {
		return
	}
	keep := p.order[:0]
	for _, id := range p.order {
		e, ok := p.entries[id]
		if !ok {
			continue
		}
		if e.Matched {
			delete(p.entries, id)
			p.pruned++
			if p.cfg.OnEvict != nil {
				p.cfg.OnEvict(*e)
			}
			continue
		}
		keep = append(keep, id)
	}
	p.order = keep
	for len(p.entries) > p.cfg.PruneThreshold && len(p.order) > 0 {
		id := p.order[0]
		p.order = p.order[1:]
		e, ok := p.entries[id]
		if !ok {
			continue
		}
		delete(p.entries, id)
		p.pruned++
		p.expired++
		if p.cfg.OnEvict != nil {
			p.cfg.OnEvict(*e)
		}
	}
}

// Size returns the number of entries currently held.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Unmatched returns how many entries have not been matched.
func (p *Pool) Unmatched() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		if !e.Matched {
			n++
		}
	}
	return n
}

// Snapshot returns a copy of all entries, in insertion order.
func (p *Pool) Snapshot() []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Entry, 0, len(p.entries))
	for _, id := range p.order {
		if e, ok := p.entries[id]; ok {
			out = append(out, *e)
		}
	}
	return out
}

// Stats reports the pool's lifetime counters: events received, matched,
// and pruned. Expired counts the subset of pruned entries that were
// still unmatched when evicted to bound pool memory.
type Stats struct {
	Received int64
	Matched  int64
	Pruned   int64
	Expired  int64
}

// Stats returns the lifetime counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Received: p.received, Matched: p.matched, Pruned: p.pruned, Expired: p.expired}
}

// MatcherConfig parameterizes re-identification.
type MatcherConfig struct {
	// BhattThreshold is the maximum Bhattacharyya distance accepted as a
	// match.
	BhattThreshold float64
	// MaxEventAge, when positive, skips pool entries older than this;
	// a vehicle that has not arrived within the window is unlikely to be
	// the one just seen. Zero disables the filter.
	MaxEventAge time.Duration
}

// DefaultMatcherConfig returns the prototype threshold.
func DefaultMatcherConfig() MatcherConfig {
	return MatcherConfig{BhattThreshold: 0.35}
}

// Matcher matches fresh detection events against a candidate pool.
type Matcher struct {
	cfg MatcherConfig
}

// NewMatcher validates the config and returns a matcher.
func NewMatcher(cfg MatcherConfig) (*Matcher, error) {
	if cfg.BhattThreshold <= 0 || cfg.BhattThreshold > 1 {
		return nil, fmt.Errorf("reid: Bhattacharyya threshold %v out of (0,1]", cfg.BhattThreshold)
	}
	if cfg.MaxEventAge < 0 {
		return nil, fmt.Errorf("reid: max event age %v must be non-negative", cfg.MaxEventAge)
	}
	return &Matcher{cfg: cfg}, nil
}

// Match finds the unmatched pool entry with the smallest Bhattacharyya
// distance to the histogram. ok is false when nothing clears the
// threshold. The matched entry is NOT marked; callers mark it after the
// confirming protocol fires so the bookkeeping stays in one place.
func (m *Matcher) Match(h feature.Histogram, pool *Pool, now time.Time) (best Entry, distance float64, ok bool) {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	bestDist := m.cfg.BhattThreshold
	var bestEntry *Entry
	for _, id := range pool.order {
		e, present := pool.entries[id]
		if !present || e.Matched {
			continue
		}
		if m.cfg.MaxEventAge > 0 && now.Sub(e.ReceivedAt) > m.cfg.MaxEventAge {
			continue
		}
		d, err := feature.Bhattacharyya(h, e.Event.Histogram)
		if err != nil {
			continue
		}
		// Strict improvement required: on ties (e.g. same-color vehicles)
		// the earliest entry wins, exploiting the temporal locality of
		// vehicle movement — the first-informed candidate is the one
		// that has been traveling toward this camera the longest.
		if (bestEntry == nil && d <= bestDist) || (bestEntry != nil && d < bestDist) {
			bestDist = d
			bestEntry = e
		}
	}
	if bestEntry == nil {
		return Entry{}, 0, false
	}
	return *bestEntry, bestDist, true
}
