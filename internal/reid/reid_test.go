package reid

import (
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/imaging"
	"repro/internal/protocol"
)

var t0 = time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)

// histOf builds the signature of a solid-color patch.
func histOf(t *testing.T, c imaging.Color) feature.Histogram {
	t.Helper()
	f := imaging.MustNewFrame(32, 32)
	f.Fill(c)
	h, err := feature.Extract(f, imaging.Rect{X: 4, Y: 4, W: 24, H: 24})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func eventWith(t *testing.T, id string, c imaging.Color) protocol.DetectionEvent {
	t.Helper()
	return protocol.DetectionEvent{
		ID:        protocol.EventID(id),
		CameraID:  "up",
		Timestamp: t0,
		Histogram: histOf(t, c),
	}
}

func newPool(t *testing.T, threshold int) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{PruneThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newMatcher(t *testing.T, cfg MatcherConfig) *Matcher {
	t.Helper()
	m, err := NewMatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(PoolConfig{PruneThreshold: 0}); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestMatcherValidation(t *testing.T) {
	if _, err := NewMatcher(MatcherConfig{BhattThreshold: 0}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewMatcher(MatcherConfig{BhattThreshold: 1.5}); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := NewMatcher(MatcherConfig{BhattThreshold: 0.3, MaxEventAge: -time.Second}); err == nil {
		t.Error("negative age accepted")
	}
}

func TestAddAndSize(t *testing.T) {
	p := newPool(t, 10)
	p.Add(eventWith(t, "up#1", imaging.Red), t0)
	p.Add(eventWith(t, "up#2", imaging.Blue), t0)
	if p.Size() != 2 || p.Unmatched() != 2 {
		t.Errorf("size=%d unmatched=%d", p.Size(), p.Unmatched())
	}
	// Duplicate ID refreshes, does not grow.
	p.Add(eventWith(t, "up#1", imaging.Red), t0.Add(time.Second))
	if p.Size() != 2 {
		t.Errorf("duplicate grew pool to %d", p.Size())
	}
	if p.Stats().Received != 2 {
		t.Errorf("received = %d", p.Stats().Received)
	}
}

func TestMatchPicksClosestColor(t *testing.T) {
	p := newPool(t, 10)
	p.Add(eventWith(t, "up#1", imaging.Red), t0)
	p.Add(eventWith(t, "up#2", imaging.Blue), t0)
	m := newMatcher(t, DefaultMatcherConfig())

	got, dist, ok := m.Match(histOf(t, imaging.Red), p, t0)
	if !ok {
		t.Fatal("no match found")
	}
	if got.Event.ID != "up#1" {
		t.Errorf("matched %v, want up#1", got.Event.ID)
	}
	if dist > 0.01 {
		t.Errorf("distance = %v", dist)
	}
}

func TestMatchRejectsAboveThreshold(t *testing.T) {
	p := newPool(t, 10)
	p.Add(eventWith(t, "up#1", imaging.Blue), t0)
	m := newMatcher(t, MatcherConfig{BhattThreshold: 0.3})
	if _, _, ok := m.Match(histOf(t, imaging.Red), p, t0); ok {
		t.Error("red matched blue below threshold 0.3")
	}
}

func TestMatchSkipsMatchedEntries(t *testing.T) {
	p := newPool(t, 10)
	p.Add(eventWith(t, "up#1", imaging.Red), t0)
	if !p.MarkMatched("up#1") {
		t.Fatal("MarkMatched failed")
	}
	m := newMatcher(t, DefaultMatcherConfig())
	if _, _, ok := m.Match(histOf(t, imaging.Red), p, t0); ok {
		t.Error("matched an already-matched entry")
	}
}

func TestMarkMatchedSemantics(t *testing.T) {
	p := newPool(t, 10)
	p.Add(eventWith(t, "up#1", imaging.Red), t0)
	if p.MarkMatched("ghost#1") {
		t.Error("marking a missing entry should report false")
	}
	if !p.MarkMatched("up#1") {
		t.Error("first mark should succeed")
	}
	if p.MarkMatched("up#1") {
		t.Error("second mark should report false")
	}
	if p.Unmatched() != 0 || p.Stats().Matched != 1 {
		t.Errorf("unmatched=%d matched=%d", p.Unmatched(), p.Stats().Matched)
	}
}

func TestLazyPruning(t *testing.T) {
	p := newPool(t, 4)
	for i := 0; i < 4; i++ {
		p.Add(eventWith(t, "up#"+string(rune('0'+i)), imaging.Red), t0)
	}
	p.MarkMatched("up#0")
	p.MarkMatched("up#1")
	// Below threshold: matched entries are annotated but retained.
	if p.Size() != 4 {
		t.Errorf("pruned early: size=%d", p.Size())
	}
	// Crossing the threshold triggers pruning of matched entries only.
	p.Add(eventWith(t, "up#9", imaging.Blue), t0)
	if p.Size() != 3 {
		t.Errorf("after prune size=%d, want 3", p.Size())
	}
	if p.Stats().Pruned != 2 {
		t.Errorf("pruned=%d", p.Stats().Pruned)
	}
	snap := p.Snapshot()
	for _, e := range snap {
		if e.Event.ID == "up#0" || e.Event.ID == "up#1" {
			t.Errorf("matched entry %v survived pruning", e.Event.ID)
		}
	}
}

func TestMaxEventAgeFilter(t *testing.T) {
	p := newPool(t, 10)
	p.Add(eventWith(t, "up#old", imaging.Red), t0)
	p.Add(eventWith(t, "up#new", imaging.Red), t0.Add(50*time.Second))
	m := newMatcher(t, MatcherConfig{BhattThreshold: 0.3, MaxEventAge: 30 * time.Second})
	got, _, ok := m.Match(histOf(t, imaging.Red), p, t0.Add(60*time.Second))
	if !ok {
		t.Fatal("no match")
	}
	if got.Event.ID != "up#new" {
		t.Errorf("matched %v, want the fresh entry", got.Event.ID)
	}
}

func TestSnapshotOrder(t *testing.T) {
	p := newPool(t, 10)
	ids := []string{"a#1", "b#2", "c#3"}
	for _, id := range ids {
		p.Add(eventWith(t, id, imaging.Red), t0)
	}
	snap := p.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len=%d", len(snap))
	}
	for i, id := range ids {
		if string(snap[i].Event.ID) != id {
			t.Errorf("snapshot[%d] = %v, want %v", i, snap[i].Event.ID, id)
		}
	}
}

func TestMatchEmptyPool(t *testing.T) {
	p := newPool(t, 10)
	m := newMatcher(t, DefaultMatcherConfig())
	if _, _, ok := m.Match(histOf(t, imaging.Red), p, t0); ok {
		t.Error("matched against empty pool")
	}
}

func TestConcurrentAddAndMatch(t *testing.T) {
	p := newPool(t, 64)
	m := newMatcher(t, DefaultMatcherConfig())
	target := histOf(t, imaging.Red)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			p.Add(eventWith(t, "up#"+string(rune(i)), imaging.Blue), t0)
		}
	}()
	for i := 0; i < 200; i++ {
		m.Match(target, p, t0)
	}
	<-done
}

func TestUnmatchedEvictionBoundsPool(t *testing.T) {
	var evicted []Entry
	p, err := NewPool(PoolConfig{
		PruneThreshold: 3,
		OnEvict:        func(e Entry) { evicted = append(evicted, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Five unmatched entries: nothing is matched, so the old policy would
	// let the pool grow without bound. The oldest unmatched entries must
	// be expired FIFO down to the threshold.
	for i := 0; i < 5; i++ {
		p.Add(eventWith(t, "up#"+string(rune('0'+i)), imaging.Red), t0)
	}
	if p.Size() != 3 {
		t.Errorf("size = %d, want 3 (bounded by threshold)", p.Size())
	}
	st := p.Stats()
	if st.Expired != 2 || st.Pruned != 2 {
		t.Errorf("stats = %+v, want 2 expired / 2 pruned", st)
	}
	if len(evicted) != 2 {
		t.Fatalf("OnEvict calls = %d, want 2", len(evicted))
	}
	if evicted[0].Event.ID != "up#0" || evicted[1].Event.ID != "up#1" {
		t.Errorf("evicted %q, %q: not FIFO", evicted[0].Event.ID, evicted[1].Event.ID)
	}
	for _, e := range evicted {
		if e.Matched {
			t.Errorf("entry %q evicted as matched", e.Event.ID)
		}
	}
}

func TestOnEvictSeesMatchedFlag(t *testing.T) {
	var evicted []Entry
	p, err := NewPool(PoolConfig{
		PruneThreshold: 2,
		OnEvict:        func(e Entry) { evicted = append(evicted, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Add(eventWith(t, "up#a", imaging.Red), t0)
	p.Add(eventWith(t, "up#b", imaging.Blue), t0)
	p.MarkMatched("up#a")
	p.Add(eventWith(t, "up#c", imaging.Color{R: 40, G: 220, B: 40}), t0)
	if p.Size() != 2 {
		t.Errorf("size = %d, want 2", p.Size())
	}
	if len(evicted) != 1 || evicted[0].Event.ID != "up#a" || !evicted[0].Matched {
		t.Errorf("evicted = %+v, want matched up#a", evicted)
	}
	if st := p.Stats(); st.Expired != 0 {
		t.Errorf("matched cleanup counted as expiry: %+v", st)
	}
}
