package rpc

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// BackoffConfig shapes the capped exponential backoff with full jitter
// used between dial retries. The same policy used to live, copied, in
// transport.TCP and trajstore.Client; this is the single source of
// truth.
type BackoffConfig struct {
	// Base is the first retry delay (default 50ms); it doubles per
	// attempt.
	Base time.Duration
	// Max caps the delay (default 1s).
	Max time.Duration
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 50 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = time.Second
	}
	return c
}

// jitter returns a sleep in [d/2, d]: full jitter decorrelates
// concurrent clients hammering a restarting peer.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// DialHooks lets transports observe and veto dial attempts without
// owning the retry loop.
type DialHooks struct {
	// OnAttempt runs before each dial attempt (e.g. a redial counter).
	OnAttempt func()
	// Abort, when non-nil, is checked before each attempt; a non-nil
	// return stops the loop with that error (e.g. endpoint closed).
	Abort func() error
}

// DialWithBackoff dials addr via dial, retrying with capped exponential
// backoff plus jitter until a connection succeeds or ctx expires.
// Transient listener restarts (e.g. a store server rebooting) are
// ridden out instead of failing the first call.
func DialWithBackoff(ctx context.Context, addr string, dial func(context.Context) (net.Conn, error), cfg BackoffConfig, hooks DialHooks) (net.Conn, error) {
	cfg = cfg.withDefaults()
	backoff := cfg.Base
	for {
		if hooks.Abort != nil {
			if err := hooks.Abort(); err != nil {
				return nil, err
			}
		}
		if hooks.OnAttempt != nil {
			hooks.OnAttempt()
		}
		conn, err := dial(ctx)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("rpc: dial %s: %w (last attempt: %v)", addr, ctx.Err(), err)
		}
		timer := time.NewTimer(jitter(backoff))
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("rpc: dial %s: %w (last attempt: %v)", addr, ctx.Err(), err)
		case <-timer.C:
		}
		backoff *= 2
		if backoff > cfg.Max {
			backoff = cfg.Max
		}
	}
}

// Sleep pauses for d or until ctx is done, returning ctx.Err() in the
// latter case. Transports use it to honor injected fault latency.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	select {
	case <-ctx.Done():
		timer.Stop()
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
