package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// tag appends a marker before and after next, building the onion order.
func tagClient(name string, order *[]string) ClientInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		*order = append(*order, name+">")
		resp, err := next(ctx, req)
		*order = append(*order, "<"+name)
		return resp, err
	}
}

func tagServer(name string, order *[]string) ServerInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		*order = append(*order, name+">")
		resp, err := next(ctx, req)
		*order = append(*order, "<"+name)
		return resp, err
	}
}

func TestChainClientOnionOrder(t *testing.T) {
	var order []string
	chain := ChainClient(tagClient("a", &order), tagClient("b", &order), tagClient("c", &order))
	_, err := chain(context.Background(), &Request{Method: "m"}, func(ctx context.Context, r *Request) (*Response, error) {
		order = append(order, "base")
		return &Response{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a>", "b>", "c>", "base", "<c", "<b", "<a"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestBindClientMatchesChainOrder(t *testing.T) {
	var order []string
	call := BindClient(func(ctx context.Context, r *Request) (*Response, error) {
		order = append(order, "base")
		return &Response{}, nil
	}, tagClient("a", &order), tagClient("b", &order), tagClient("c", &order))
	if _, err := call(context.Background(), &Request{Method: "m"}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a>", "b>", "c>", "base", "<c", "<b", "<a"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestChainServerOnionOrder(t *testing.T) {
	var order []string
	chain := ChainServer(tagServer("outer", &order), tagServer("inner", &order))
	_, err := chain(context.Background(), &Request{Method: "m"}, func(ctx context.Context, r *Request) (*Response, error) {
		order = append(order, "base")
		return &Response{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"outer>", "inner>", "base", "<inner", "<outer"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestChainShortCircuit(t *testing.T) {
	boom := errors.New("boom")
	var after, base bool
	chain := ChainClient(
		func(ctx context.Context, req *Request, next Handler) (*Response, error) {
			return nil, boom // never calls next
		},
		func(ctx context.Context, req *Request, next Handler) (*Response, error) {
			after = true
			return next(ctx, req)
		},
	)
	_, err := chain(context.Background(), &Request{}, func(ctx context.Context, r *Request) (*Response, error) {
		base = true
		return &Response{}, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
	if after || base {
		t.Errorf("short-circuited chain still ran inner stages: after=%v base=%v", after, base)
	}
}

func TestChainEmptyIsIdentity(t *testing.T) {
	called := false
	_, err := ChainClient()(context.Background(), &Request{}, func(ctx context.Context, r *Request) (*Response, error) {
		called = true
		return &Response{}, nil
	})
	if err != nil || !called {
		t.Fatalf("empty chain: called=%v err=%v", called, err)
	}
}

func TestWithRetrySpendsBudgetOnlyOnRetryable(t *testing.T) {
	fails := 2
	base := func(ctx context.Context, r *Request) (*Response, error) {
		if fails > 0 {
			fails--
			return nil, MarkRetryable(errors.New("stale conn"))
		}
		return &Response{}, nil
	}
	var retries, exhausted int
	retry := WithRetry(RetryConfig{
		Budget:      2,
		OnRetry:     func() { retries++ },
		OnExhausted: func() { exhausted++ },
	})
	if _, err := retry(context.Background(), &Request{}, base); err != nil {
		t.Fatalf("call with budget 2 over 2 failures: %v", err)
	}
	if retries != 2 || exhausted != 0 {
		t.Errorf("retries=%d exhausted=%d, want 2, 0", retries, exhausted)
	}

	// A terminal (unmarked) error must not be retried.
	calls := 0
	_, err := retry(context.Background(), &Request{}, func(ctx context.Context, r *Request) (*Response, error) {
		calls++
		return nil, errors.New("terminal")
	})
	if err == nil || calls != 1 {
		t.Errorf("terminal error: calls=%d err=%v, want 1 call and an error", calls, err)
	}
}

func TestRetryExhaustionCountedInMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, "component", "test")
	chain := ChainClient(
		WithMetrics(m),
		WithRetry(m.RetryHooks(RetryConfig{Budget: 1})),
	)
	_, err := chain(context.Background(), &Request{Method: "op"}, func(ctx context.Context, r *Request) (*Response, error) {
		return nil, MarkRetryable(errors.New("always stale"))
	})
	if err == nil {
		t.Fatal("want error after exhausting the retry budget")
	}
	if got := m.Retries.Value(); got != 1 {
		t.Errorf("retries counter = %d, want 1", got)
	}
	if got := m.RetryExhausted.Value(); got != 1 {
		t.Errorf("retry_exhausted counter = %d, want 1", got)
	}
	if got := m.Calls.Value(); got != 1 {
		t.Errorf("calls counter = %d, want 1 (metrics sit outside retry)", got)
	}
	if got := m.Errors.Value(); got != 1 {
		t.Errorf("errors counter = %d, want 1", got)
	}
}

func TestRetryBudgetZeroDefaultsToOne(t *testing.T) {
	calls := 0
	_, _ = WithRetry(RetryConfig{})(context.Background(), &Request{}, func(ctx context.Context, r *Request) (*Response, error) {
		calls++
		return nil, MarkRetryable(errors.New("stale"))
	})
	if calls != 2 {
		t.Errorf("zero budget: %d attempts, want 2 (default one retry)", calls)
	}
	calls = 0
	_, _ = WithRetry(RetryConfig{Budget: -1})(context.Background(), &Request{}, func(ctx context.Context, r *Request) (*Response, error) {
		calls++
		return nil, MarkRetryable(errors.New("stale"))
	})
	if calls != 1 {
		t.Errorf("negative budget: %d attempts, want 1 (retries disabled)", calls)
	}
}

func TestWithDefaultDeadline(t *testing.T) {
	mw := WithDefaultDeadline(time.Minute)
	_, err := mw(context.Background(), &Request{}, func(ctx context.Context, r *Request) (*Response, error) {
		if _, ok := ctx.Deadline(); !ok {
			t.Error("no deadline applied to a bare context")
		}
		return &Response{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// An existing (tighter) deadline wins.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Second))
	defer cancel()
	want, _ := ctx.Deadline()
	_, err = mw(ctx, &Request{}, func(ctx context.Context, r *Request) (*Response, error) {
		if got, _ := ctx.Deadline(); !got.Equal(want) {
			t.Errorf("deadline overridden: got %v, want %v", got, want)
		}
		return &Response{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceInjectAndExtract(t *testing.T) {
	span := obs.SpanContext{TraceID: "cam0#1", SpanID: "cam0-5", Sampled: true}
	env := &protocol.Envelope{}
	ctx := obs.ContextWithSpan(context.Background(), span)
	_, err := WithTraceInject()(ctx, &Request{Body: env}, func(ctx context.Context, r *Request) (*Response, error) {
		return &Response{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if env.Trace == nil || obs.SpanContext(*env.Trace) != span {
		t.Fatalf("injected trace = %+v, want %+v", env.Trace, span)
	}

	// Extraction resumes the carried span on the server side.
	var got obs.SpanContext
	var ok bool
	_, err = WithTraceExtract()(context.Background(), &Request{Body: env}, func(ctx context.Context, r *Request) (*Response, error) {
		got, ok = obs.SpanFromContext(ctx)
		return &Response{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || got != span {
		t.Errorf("extracted span = %+v, %v; want %+v", got, ok, span)
	}

	// An explicit carrier context is never overwritten by the ambient span.
	explicit := protocol.TraceContext{TraceID: "cam9#9", SpanID: "cam9-1", Sampled: true}
	env2 := &protocol.Envelope{Trace: &explicit}
	_, err = WithTraceInject()(ctx, &Request{Body: env2}, func(ctx context.Context, r *Request) (*Response, error) {
		return &Response{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if *env2.Trace != explicit {
		t.Errorf("explicit trace overwritten: %+v", env2.Trace)
	}
}

func TestIsDeadlineError(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{context.DeadlineExceeded, true},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), true},
		{os.ErrDeadlineExceeded, true},
		{errors.New("plain"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsDeadlineError(c.err); got != c.want {
			t.Errorf("IsDeadlineError(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestMarkRetryable(t *testing.T) {
	if MarkRetryable(nil) != nil {
		t.Error("MarkRetryable(nil) != nil")
	}
	base := errors.New("stale")
	marked := MarkRetryable(base)
	if !IsRetryable(marked) {
		t.Error("marked error not retryable")
	}
	if !errors.Is(marked, base) {
		t.Error("marking hides the underlying error from errors.Is")
	}
	if IsRetryable(fmt.Errorf("plain")) {
		t.Error("plain error reported retryable")
	}
	if !IsRetryable(fmt.Errorf("wrapped: %w", marked)) {
		t.Error("wrapping loses retryability")
	}
}

func TestDialWithBackoffHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	attempts := 0
	_, err := DialWithBackoff(ctx, "nowhere",
		func(context.Context) (net.Conn, error) { attempts++; return nil, errors.New("refused") },
		BackoffConfig{Base: 10 * time.Millisecond, Max: 20 * time.Millisecond},
		DialHooks{})
	if err == nil {
		t.Fatal("dial to nowhere succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want a deadline error", err)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (retried within the deadline)", attempts)
	}
}

func TestDialWithBackoffAbort(t *testing.T) {
	closed := errors.New("endpoint closed")
	_, err := DialWithBackoff(context.Background(), "nowhere",
		func(context.Context) (net.Conn, error) { return nil, errors.New("refused") },
		BackoffConfig{Base: time.Millisecond, Max: time.Millisecond},
		DialHooks{Abort: func() error { return closed }})
	if !errors.Is(err, closed) {
		t.Errorf("err = %v, want the abort error", err)
	}
}
