package rpc

import (
	"context"
	"time"

	"repro/internal/obs"
)

// Metrics are one chain's pre-resolved telemetry handles
// (coralpie_rpc_*). Built with a nil registry they are standalone
// counters, usable in tests and in processes without an exposition
// endpoint.
type Metrics struct {
	Calls            *obs.Counter   // calls entering the chain
	Errors           *obs.Counter   // calls that returned an error
	DeadlineExceeded *obs.Counter   // calls aborted by a context or socket deadline
	Retries          *obs.Counter   // retry attempts spent by WithRetry
	RetryExhausted   *obs.Counter   // calls that failed after their whole retry budget
	Latency          *obs.Histogram // call latency, seconds
}

// NewMetrics resolves the coralpie_rpc_* handles on reg with the given
// label pairs (typically "component", <who>); nil reg yields standalone
// handles.
func NewMetrics(reg *obs.Registry, labels ...string) *Metrics {
	if reg == nil {
		return &Metrics{
			Calls:            new(obs.Counter),
			Errors:           new(obs.Counter),
			DeadlineExceeded: new(obs.Counter),
			Retries:          new(obs.Counter),
			RetryExhausted:   new(obs.Counter),
			Latency:          new(obs.Histogram),
		}
	}
	return &Metrics{
		Calls: reg.Counter("coralpie_rpc_calls_total",
			"rpc calls entering a middleware chain", labels...),
		Errors: reg.Counter("coralpie_rpc_errors_total",
			"rpc calls that returned an error", labels...),
		DeadlineExceeded: reg.Counter("coralpie_rpc_deadline_exceeded_total",
			"rpc calls aborted by a context or socket deadline", labels...),
		Retries: reg.Counter("coralpie_rpc_retries_total",
			"rpc retry attempts", labels...),
		RetryExhausted: reg.Counter("coralpie_rpc_retry_exhausted_total",
			"rpc calls that failed after exhausting their retry budget", labels...),
		Latency: reg.Histogram("coralpie_rpc_latency_seconds",
			"rpc call latency", nil, labels...),
	}
}

// RetryHooks wires m's retry counters into cfg and returns it, so a
// chain can be assembled as WithRetry(m.RetryHooks(RetryConfig{...})).
func (m *Metrics) RetryHooks(cfg RetryConfig) RetryConfig {
	cfg.OnRetry = m.Retries.Inc
	cfg.OnExhausted = m.RetryExhausted.Inc
	return cfg
}

// WithMetrics counts calls, errors, and deadline aborts, and observes
// wall-clock latency. Place it outside WithRetry so a call that
// succeeds on a retry counts once.
func WithMetrics(m *Metrics) ClientInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		resp, err := observe(m, ctx, req, next)
		return resp, err
	}
}

// WithServerMetrics is WithMetrics for inbound dispatch.
func WithServerMetrics(m *Metrics) ServerInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		resp, err := observe(m, ctx, req, next)
		return resp, err
	}
}

func observe(m *Metrics, ctx context.Context, req *Request, next Handler) (*Response, error) {
	m.Calls.Inc()
	start := time.Now()
	resp, err := next(ctx, req)
	m.Latency.Observe(time.Since(start).Seconds())
	if err != nil {
		m.Errors.Inc()
		if IsDeadlineError(err) {
			m.DeadlineExceeded.Inc()
		}
	}
	return resp, err
}
