// Package rpc is the shared substrate under every Coral-Pie wire
// protocol: the peer-to-peer camera envelopes, topology heartbeats,
// trajectory-store calls, and frame shipping are all "just messages",
// so their cross-cutting concerns — tracing, metrics, deadlines,
// logging, retry/redial policy, fault injection — live here once, as
// composable interceptors, instead of being hand-stitched into each
// transport.
//
// The model is a typed request/response plus one-way-message core over
// the existing length-prefixed-JSON wire formats (the wire bytes are
// unchanged; this layer is purely in-process). Client and server sides
// each compose a chain of interceptors in the onion model: the first
// interceptor is outermost, the base handler (the actual transport
// write or the protocol handler) is innermost.
package rpc

import (
	"context"
	"time"

	"repro/internal/protocol"
)

// Request is one outbound call or inbound message traveling through an
// interceptor chain.
type Request struct {
	// Method names the operation: the envelope message type for one-way
	// transport sends, or the wire op for request/response calls.
	Method string
	// Addr is the destination address (empty on the server side).
	Addr string
	// Body is the protocol-level message. Middleware that moves trace
	// contexts asserts it to TraceCarrier; transports assert it back to
	// their concrete frame type.
	Body any
	// OneWay marks fire-and-forget sends: no response body is expected
	// and a dropped message is indistinguishable from a delivered one.
	OneWay bool
	// Delay is latency injected by fault middleware. Transports honor
	// it at the last moment — the in-proc bus adds it to the simulated
	// network latency (keeping DES runs deterministic), the TCP
	// transport sleeps — and consume it, so retries do not pay it
	// twice.
	Delay time.Duration
}

// Response carries a call's reply body; one-way sends return an empty
// Response.
type Response struct {
	Body any
}

// Handler is the innermost stage of a chain: it performs the actual
// send, round trip, or protocol dispatch.
type Handler func(ctx context.Context, req *Request) (*Response, error)

// ClientInterceptor wraps outbound calls. It may mutate the request,
// short-circuit by not calling next, or retry by calling next more
// than once.
type ClientInterceptor func(ctx context.Context, req *Request, next Handler) (*Response, error)

// ServerInterceptor wraps inbound dispatch with the same shape and
// contract as ClientInterceptor.
type ServerInterceptor func(ctx context.Context, req *Request, next Handler) (*Response, error)

// ChainClient composes interceptors onion-style: the first argument is
// outermost, the handler passed at call time is innermost.
func ChainClient(ics ...ClientInterceptor) ClientInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		h := next
		for i := len(ics) - 1; i >= 0; i-- {
			ic, inner := ics[i], h
			h = func(c context.Context, r *Request) (*Response, error) {
				return ic(c, r, inner)
			}
		}
		return h(ctx, req)
	}
}

// BindClient composes interceptors around a fixed base handler, once.
// ChainClient rebuilds the onion per call — one closure allocation per
// interceptor per call — which is fine for occasional calls but not for
// the transport send hot path; a bound chain is allocation-free at call
// time. Order matches ChainClient: the first interceptor is outermost.
func BindClient(base Handler, ics ...ClientInterceptor) Handler {
	h := base
	for i := len(ics) - 1; i >= 0; i-- {
		ic, inner := ics[i], h
		h = func(ctx context.Context, req *Request) (*Response, error) {
			return ic(ctx, req, inner)
		}
	}
	return h
}

// BindServer is BindClient for server interceptor chains.
func BindServer(base Handler, ics ...ServerInterceptor) Handler {
	h := base
	for i := len(ics) - 1; i >= 0; i-- {
		ic, inner := ics[i], h
		h = func(ctx context.Context, req *Request) (*Response, error) {
			return ic(ctx, req, inner)
		}
	}
	return h
}

// ChainServer composes server interceptors with the same onion order
// as ChainClient.
func ChainServer(ics ...ServerInterceptor) ServerInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		h := next
		for i := len(ics) - 1; i >= 0; i-- {
			ic, inner := ics[i], h
			h = func(c context.Context, r *Request) (*Response, error) {
				return ic(c, r, inner)
			}
		}
		return h(ctx, req)
	}
}

// TraceCarrier is implemented by wire messages that can carry a trace
// context across the network (protocol.Envelope, the trajstore request
// frame). The trace middleware reads and writes through it without
// knowing the concrete frame type.
type TraceCarrier interface {
	TraceContext() *protocol.TraceContext
	SetTraceContext(*protocol.TraceContext)
}
