package rpc

import (
	"context"
	"net"
	"sync"
	"time"
)

// ClientConn owns one client connection to a framed request/response
// server. Calls are serialized over the single connection; a call that
// finds the cached connection dead closes it and surfaces the error
// marked retryable, so a WithRetry stage above redials transparently on
// the next attempt; dials use the shared jittered backoff bounded by
// the call context.
type ClientConn struct {
	addr    string
	backoff BackoffConfig
	dialer  func(ctx context.Context) (net.Conn, error)

	mu   sync.Mutex
	conn net.Conn
}

// NewClientConn builds a connection manager for addr. No dial happens
// until Prime or the first Call.
func NewClientConn(addr string, backoff BackoffConfig) *ClientConn {
	cc := &ClientConn{addr: addr, backoff: backoff.withDefaults()}
	cc.dialer = func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", cc.addr)
	}
	return cc
}

// Addr returns the server address.
func (cc *ClientConn) Addr() string { return cc.addr }

// Prime dials eagerly — a single attempt, no backoff — so construction
// fails fast when the server is unreachable. A no-op when a connection
// is already cached.
func (cc *ClientConn) Prime(ctx context.Context) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.conn != nil {
		return nil
	}
	conn, err := cc.dialer(ctx)
	if err != nil {
		return err
	}
	cc.conn = conn
	return nil
}

// Call runs one framed round trip under the connection lock: it ensures
// a connection (redialing with backoff, bounded by ctx, when the cache
// is empty), applies the context deadline to the socket, and hands the
// connection to fn. An fn failure closes the connection; if the
// connection was cached — the server may simply have restarted — the
// error is marked retryable, while a failure on a freshly dialed
// connection is terminal.
func (cc *ClientConn) Call(ctx context.Context, fn func(conn net.Conn) error) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cached := cc.conn != nil
	if !cached {
		conn, err := DialWithBackoff(ctx, cc.addr, cc.dialer, cc.backoff, DialHooks{})
		if err != nil {
			return err
		}
		cc.conn = conn
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = cc.conn.SetDeadline(deadline)
	}
	if err := fn(cc.conn); err != nil {
		_ = cc.conn.Close()
		cc.conn = nil
		if cached {
			return MarkRetryable(err)
		}
		return err
	}
	_ = cc.conn.SetDeadline(time.Time{})
	return nil
}

// Close closes the cached connection, if any. The ClientConn stays
// usable: a later Call simply redials.
func (cc *ClientConn) Close() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.conn != nil {
		err := cc.conn.Close()
		cc.conn = nil
		return err
	}
	return nil
}
