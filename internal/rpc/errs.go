package rpc

import (
	"context"
	"errors"
	"net"
	"os"
)

// IsDeadlineError reports whether err stems from a context deadline or
// a socket timeout. This is the single copy of a helper that used to be
// duplicated in internal/transport and internal/trajstore.
func IsDeadlineError(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// retryableError marks a transient failure — typically a write on a
// cached connection that turned out to be stale — that WithRetry may
// spend budget on.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// MarkRetryable wraps err so IsRetryable reports true; nil stays nil.
// Base transports mark exactly the failures a retry can fix (a stale
// cached connection), keeping retry policy out of the transports.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// IsRetryable reports whether err (or anything it wraps) was marked by
// MarkRetryable.
func IsRetryable(err error) bool {
	var re *retryableError
	return errors.As(err, &re)
}
