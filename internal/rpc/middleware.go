package rpc

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
)

// WithDefaultDeadline bounds a call by d when the caller's context
// carries no deadline of its own (a context that already has one wins).
// d <= 0 disables the middleware. The deadline context arms its timer
// lazily (see deadlineContext), so calls that never block on Done() pay
// nothing for the bound.
func WithDefaultDeadline(d time.Duration) ClientInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		if d > 0 {
			if _, ok := ctx.Deadline(); !ok {
				dc := newDeadlineContext(ctx, time.Now().Add(d))
				defer dc.release()
				ctx = dc
			}
		}
		return next(ctx, req)
	}
}

// WithTraceInject stamps the caller's ambient span context onto
// trace-carrying request bodies, unless the body already carries one —
// a sender that set the trace explicitly (e.g. a forwarded message)
// knows better than the ambient context.
func WithTraceInject() ClientInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		if carrier, ok := req.Body.(TraceCarrier); ok && carrier.TraceContext() == nil {
			if sc, ok := obs.SpanFromContext(ctx); ok {
				wire := protocol.TraceContext(sc)
				carrier.SetTraceContext(&wire)
			}
		}
		return next(ctx, req)
	}
}

// WithTraceExtract resumes the sender's trace on the receiving side:
// a valid trace context on the request body is installed in ctx so
// handlers (and downstream middleware) continue the sender's trace.
func WithTraceExtract() ServerInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		if carrier, ok := req.Body.(TraceCarrier); ok {
			if wire := carrier.TraceContext(); wire != nil && wire.Valid() {
				ctx = obs.ContextWithSpan(ctx, obs.SpanContext(*wire))
			}
		}
		return next(ctx, req)
	}
}

// RetryConfig tunes WithRetry.
type RetryConfig struct {
	// Budget is how many retries (beyond the first attempt) a call may
	// spend on errors marked retryable by the base transport. Zero
	// means the default of 1 — the redial-once behavior the transports
	// shipped with — and a negative budget disables retries.
	Budget int
	// OnRetry observes each retry attempt (e.g. a counter).
	OnRetry func()
	// OnExhausted observes each call that still failed with a
	// retryable error after its whole budget was spent.
	OnExhausted func()
}

func (c RetryConfig) budget() int {
	if c.Budget == 0 {
		return 1
	}
	if c.Budget < 0 {
		return 0
	}
	return c.Budget
}

// WithRetry re-invokes the rest of the chain on errors marked by
// MarkRetryable, up to the configured budget, stopping early when the
// context expires (the last transport error is returned then, not the
// bare context error — it is the more diagnostic of the two).
// Non-retryable errors — protocol-level rejections, fresh-dial
// failures — short-circuit immediately.
func WithRetry(cfg RetryConfig) ClientInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		budget := cfg.budget()
		var resp *Response
		var err error
		for attempt := 0; ; attempt++ {
			resp, err = next(ctx, req)
			if err == nil || !IsRetryable(err) {
				return resp, err
			}
			if attempt >= budget || ctx.Err() != nil {
				if cfg.OnExhausted != nil {
					cfg.OnExhausted()
				}
				return resp, err
			}
			if cfg.OnRetry != nil {
				cfg.OnRetry()
			}
		}
	}
}

// WithClientLogging logs each outbound call (debug level on success,
// warn on error) with method, peer, duration, and the active trace.
// A nil logger disables the middleware.
func WithClientLogging(logger *obs.Logger) ClientInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		start := time.Now()
		resp, err := next(ctx, req)
		logCall(ctx, logger, "rpc call", req, time.Since(start), err)
		return resp, err
	}
}

// WithServerLogging is WithClientLogging for inbound dispatch.
func WithServerLogging(logger *obs.Logger) ServerInterceptor {
	return func(ctx context.Context, req *Request, next Handler) (*Response, error) {
		start := time.Now()
		resp, err := next(ctx, req)
		logCall(ctx, logger, "rpc serve", req, time.Since(start), err)
		return resp, err
	}
}

func logCall(ctx context.Context, logger *obs.Logger, msg string, req *Request, dur time.Duration, err error) {
	if logger == nil {
		return
	}
	l := logger
	if sc, ok := obs.SpanFromContext(ctx); ok {
		l = l.WithTrace(sc)
	}
	kv := []string{"method", req.Method, "dur", dur.String()}
	if req.Addr != "" {
		kv = append(kv, "addr", req.Addr)
	}
	if err != nil {
		l.Warn(msg, append(kv, "err", err.Error())...)
		return
	}
	l.Debug(msg, kv...)
}
