package rpc

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// ServerCodec translates between wire frames and Requests/Responses for
// one request/response protocol served by Server. Implementations do
// not need to be safe for concurrent use; the server uses one codec
// value across connections but calls are not interleaved per
// connection.
type ServerCodec interface {
	// ReadRequest blocks for the next request frame on r. Any error —
	// including io.EOF — ends the connection.
	ReadRequest(r io.Reader) (*Request, error)
	// WriteResponse writes the reply for req. herr is the handler
	// chain's error; protocol codecs typically encode it into the
	// response frame (so old clients see the same wire shape) rather
	// than killing the connection.
	WriteResponse(w io.Writer, req *Request, resp *Response, herr error) error
}

// ServerConfig tunes a Server.
type ServerConfig struct {
	// WriteTimeout bounds each response write (0 = none).
	WriteTimeout time.Duration
	// Interceptors wrap the handler, outermost first, after the
	// built-in trace extraction.
	Interceptors []ServerInterceptor
	// Drain, when non-nil, receives graceful-shutdown drain durations
	// in seconds (defaults to a standalone histogram).
	Drain *obs.Histogram
}

// Server accepts framed request/response connections (one goroutine
// per connection, requests served in order per connection) and
// dispatches each request through the server interceptor chain. It owns
// the accept/serve/graceful-shutdown lifecycle that trajstore.Server
// used to implement privately.
type Server struct {
	ln      net.Listener
	codec   ServerCodec
	handler Handler
	chain   ServerInterceptor
	cfg     ServerConfig

	// rootCtx is the base context handed to request chains; cancelled
	// once the server hard-closes so stuck handlers can bail out.
	rootCtx context.Context
	cancel  context.CancelFunc

	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	drain *obs.Histogram
}

// NewServer listens on addr and serves the codec's protocol through
// handler wrapped in cfg.Interceptors (trace extraction is always
// outermost).
func NewServer(addr string, codec ServerCodec, handler Handler, cfg ServerConfig) (*Server, error) {
	if codec == nil || handler == nil {
		return nil, fmt.Errorf("rpc: codec and handler required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	drain := cfg.Drain
	if drain == nil {
		drain = new(obs.Histogram)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		ln:      ln,
		codec:   codec,
		handler: handler,
		chain:   ChainServer(append([]ServerInterceptor{WithTraceExtract()}, cfg.Interceptors...)...),
		cfg:     cfg,
		rootCtx: ctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
		drain:   drain,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := s.codec.ReadRequest(conn)
		if err != nil {
			return // EOF, peer reset, shutdown read deadline, or framing error
		}
		resp, herr := s.chain(s.rootCtx, req, s.handler)
		if s.cfg.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if err := s.codec.WriteResponse(conn, req, resp, herr); err != nil {
			return
		}
		if s.cfg.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Time{})
		}
	}
}

// Shutdown gracefully stops the server: it stops accepting new
// connections, lets any request currently being served finish, and only
// hard-closes connections once idle (or once ctx expires, whichever is
// first). The drain duration lands in the drain histogram. Safe to call
// concurrently with Close; both are idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	lnErr := s.ln.Close()
	// Unblock idle readers immediately; a connection mid-request has
	// already consumed its frame and finishes handle+reply first. Bound
	// the reply write by the shutdown deadline so a stalled client
	// cannot hold the drain open.
	for _, c := range conns {
		_ = c.SetReadDeadline(time.Now())
		if deadline, ok := ctx.Deadline(); ok {
			_ = c.SetWriteDeadline(deadline)
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("rpc: shutdown drain: %w", ctx.Err())
		for _, c := range conns {
			_ = c.Close()
		}
		<-done
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.cancel()
	s.drain.Observe(time.Since(start).Seconds())
	if drainErr != nil {
		return drainErr
	}
	return lnErr
}

// DrainObservations returns how many graceful shutdowns have recorded a
// drain duration (at most one per server; exposed for tests and
// telemetry wiring).
func (s *Server) DrainObservations() uint64 { return s.drain.Count() }

// Close stops accepting, closes connections, and waits for handlers.
// Unlike Shutdown it does not wait for in-flight requests.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.cancel()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}
