package rpc

import (
	"flag"
	"time"
)

// Flags is the shared -rpc-* flag block that every TCP-facing binary
// registers, so call timeouts, dial backoff, and retry budget are tuned
// the same way across coral-node, topology-server, framestore-server,
// trajstore-server, and trajquery. Transports map it onto their configs
// via transport.TCPConfigFromFlags and trajstore.ClientConfigFromFlags.
type Flags struct {
	CallTimeout time.Duration
	DialTimeout time.Duration
	BackoffBase time.Duration
	BackoffMax  time.Duration
	RetryBudget int
}

// RegisterFlags installs the -rpc-* flags on fs with the shared
// defaults and returns the destination struct (valid after fs.Parse).
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.DurationVar(&f.CallTimeout, "rpc-call-timeout", 5*time.Second,
		"per-call/send budget applied when the context has no deadline")
	fs.DurationVar(&f.DialTimeout, "rpc-dial-timeout", 2*time.Second,
		"bound on one TCP connection attempt")
	fs.DurationVar(&f.BackoffBase, "rpc-backoff-base", 50*time.Millisecond,
		"first dial-retry delay; doubles per attempt, with jitter")
	fs.DurationVar(&f.BackoffMax, "rpc-backoff-max", time.Second,
		"cap on the dial-retry delay")
	fs.IntVar(&f.RetryBudget, "rpc-retry-budget", 1,
		"retries per call after a stale cached connection (negative disables)")
	return f
}
