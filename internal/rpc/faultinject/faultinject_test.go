package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rpc"
)

func ok(ctx context.Context, r *rpc.Request) (*rpc.Response, error) {
	return &rpc.Response{}, nil
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{DropRate: 1.0},
		{DropRate: -0.1},
		{ErrorRate: 1.5},
		{Latency: -time.Millisecond},
		{LatencyJitter: -time.Millisecond},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(Config{DropRate: 0.5, Latency: time.Millisecond}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, cfg := range []Config{
		{DropRate: 0.1}, {ErrorRate: 0.1}, {Latency: time.Millisecond}, {LatencyJitter: time.Millisecond},
	} {
		if !cfg.Enabled() {
			t.Errorf("config %+v reports disabled", cfg)
		}
	}
}

// TestDeterministicDropSequence requires two same-seed middlewares to
// drop exactly the same messages: fault injection must be a pure
// function of the seed and the message order.
func TestDeterministicDropSequence(t *testing.T) {
	drops := func() []int {
		var dropped []int
		i := 0
		ic, err := New(Config{Seed: 9, DropRate: 0.3, OnDrop: func() { dropped = append(dropped, i) }})
		if err != nil {
			t.Fatal(err)
		}
		for ; i < 200; i++ {
			if _, err := ic(context.Background(), &rpc.Request{OneWay: true}, ok); err != nil {
				t.Fatal(err)
			}
		}
		return dropped
	}
	a, b := drops(), drops()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("degenerate drop count %d/200 at rate 0.3", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same-seed runs dropped %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop sequences diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDropSemantics(t *testing.T) {
	// Force a drop with rate just under 1.
	ic, err := New(Config{Seed: 1, DropRate: 0.999999})
	if err != nil {
		t.Fatal(err)
	}
	// One-way: silently swallowed, like a lost datagram.
	resp, err := ic(context.Background(), &rpc.Request{Method: "hb", OneWay: true}, func(ctx context.Context, r *rpc.Request) (*rpc.Response, error) {
		t.Error("dropped one-way message still reached the base handler")
		return &rpc.Response{}, nil
	})
	if err != nil || resp == nil {
		t.Fatalf("one-way drop: resp=%v err=%v, want silent success", resp, err)
	}
	// Request/response: the caller awaits a reply, so the drop surfaces.
	if _, err := ic(context.Background(), &rpc.Request{Method: "add_edge"}, ok); !errors.Is(err, ErrInjected) {
		t.Errorf("req/resp drop err = %v, want ErrInjected", err)
	}
}

func TestErrorInjection(t *testing.T) {
	ic, err := New(Config{Seed: 1, ErrorRate: 0.999999})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ic(context.Background(), &rpc.Request{Method: "m", OneWay: true}, ok); !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
}

func TestLatencyRidesRequestDelay(t *testing.T) {
	ic, err := New(Config{Latency: 3 * time.Millisecond, LatencyJitter: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	req := &rpc.Request{Method: "m", OneWay: true}
	var seen time.Duration
	if _, err := ic(context.Background(), req, func(ctx context.Context, r *rpc.Request) (*rpc.Response, error) {
		seen = r.Delay
		return &rpc.Response{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen < 3*time.Millisecond || seen >= 5*time.Millisecond {
		t.Errorf("injected delay = %v, want in [3ms, 5ms)", seen)
	}
}
