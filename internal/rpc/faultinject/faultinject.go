// Package faultinject is a deterministic network-fault middleware for
// the rpc layer: seeded message drop, added latency, and error
// injection, so robustness scenarios are configuration (a coral-sim
// flag, a test knob) rather than ad-hoc hooks wired into each
// transport. It replaces the transport bus's private loss model.
//
// Determinism contract: faults draw from one private RNG in a fixed
// per-message order — latency, then drop, then error — and only for
// fault classes with a non-zero rate. A drop-only config therefore
// consumes the RNG exactly like the retired transport loss hook, and a
// seeded DES run with fault injection enabled is reproducible
// draw-for-draw.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/rpc"
)

// ErrInjected is the error returned for calls failed by error
// injection; match it with errors.Is.
var ErrInjected = errors.New("faultinject: injected error")

// Config selects which faults to inject and how often. The zero value
// injects nothing.
type Config struct {
	// Seed seeds the middleware's private RNG when RNG is nil.
	Seed int64
	// RNG, when non-nil, is drawn from directly (and mutated); it must
	// be dedicated to this middleware. Lets a simulation derive the
	// fault stream from its master seed.
	RNG *rand.Rand
	// DropRate in [0,1) silently discards each one-way message with
	// this probability, like a dropped datagram; request/response calls
	// selected for drop fail with ErrInjected instead (a lost request
	// is visible to a caller awaiting a reply).
	DropRate float64
	// ErrorRate in [0,1) fails each call with ErrInjected.
	ErrorRate float64
	// Latency, plus a uniform draw in [0, LatencyJitter), is added to
	// each message via Request.Delay: the in-proc bus folds it into the
	// simulated network latency (deterministic under the DES), the TCP
	// transport sleeps it off.
	Latency       time.Duration
	LatencyJitter time.Duration
	// OnDrop observes each dropped message (e.g. a lost counter).
	OnDrop func()
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.ErrorRate > 0 || c.Latency > 0 || c.LatencyJitter > 0
}

func (c Config) validate() error {
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("faultinject: drop rate %v out of [0,1)", c.DropRate)
	}
	if c.ErrorRate < 0 || c.ErrorRate >= 1 {
		return fmt.Errorf("faultinject: error rate %v out of [0,1)", c.ErrorRate)
	}
	if c.Latency < 0 || c.LatencyJitter < 0 {
		return fmt.Errorf("faultinject: negative latency")
	}
	return nil
}

// New builds the fault-injection client interceptor. The returned
// middleware is safe for concurrent use (the RNG is mutex-protected);
// determinism then additionally requires deterministic message order,
// which the DES bus provides.
func New(cfg Config) (rpc.ClientInterceptor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := cfg.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	var mu sync.Mutex
	return func(ctx context.Context, req *rpc.Request, next rpc.Handler) (*rpc.Response, error) {
		mu.Lock()
		var delay time.Duration
		if cfg.Latency > 0 || cfg.LatencyJitter > 0 {
			delay = cfg.Latency
			if cfg.LatencyJitter > 0 {
				delay += time.Duration(rng.Int63n(int64(cfg.LatencyJitter)))
			}
		}
		drop := cfg.DropRate > 0 && rng.Float64() < cfg.DropRate
		fail := cfg.ErrorRate > 0 && rng.Float64() < cfg.ErrorRate
		mu.Unlock()
		if drop {
			if cfg.OnDrop != nil {
				cfg.OnDrop()
			}
			if req.OneWay {
				return &rpc.Response{}, nil // silently lost, like a dropped datagram
			}
			return nil, fmt.Errorf("%w: dropped %s to %s", ErrInjected, req.Method, req.Addr)
		}
		if fail {
			return nil, fmt.Errorf("%w: %s to %s", ErrInjected, req.Method, req.Addr)
		}
		req.Delay += delay
		return next(ctx, req)
	}, nil
}
