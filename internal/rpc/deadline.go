package rpc

import (
	"context"
	"sync"
	"time"
)

// deadlineContext is a deadline-only context that arms its machinery
// lazily. The fast path of a transport call reads Deadline() (to set
// socket write deadlines) and polls Err(), but never selects on Done(),
// so the runtime timer plus stop goroutine that context.WithTimeout
// sets up per call would be pure overhead — measurably so on the Send
// hot path. The timer and the parent-cancellation watcher are created
// only if Done() is actually called (dial backoff, fault-latency
// sleeps).
type deadlineContext struct {
	parent   context.Context
	deadline time.Time

	mu      sync.Mutex
	done    chan struct{} // allocated lazily by Done
	err     error         // set before done is closed
	timer   *time.Timer
	unwatch chan struct{} // stops the parent watcher goroutine
}

var _ context.Context = (*deadlineContext)(nil)

func newDeadlineContext(parent context.Context, deadline time.Time) *deadlineContext {
	return &deadlineContext{parent: parent, deadline: deadline}
}

func (c *deadlineContext) Deadline() (time.Time, bool) { return c.deadline, true }
func (c *deadlineContext) Value(key any) any           { return c.parent.Value(key) }

func (c *deadlineContext) Err() error {
	if err := c.parent.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	// Eager check: no timer may be armed yet, so report expiry straight
	// from the clock.
	if !time.Now().Before(c.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// expireLocked settles the context with err: stops the timer and
// watcher, closes done if anyone is listening. Caller holds mu; the
// first settlement wins.
func (c *deadlineContext) expireLocked(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if c.unwatch != nil {
		close(c.unwatch)
		c.unwatch = nil
	}
	if c.done != nil {
		close(c.done)
	}
}

func (c *deadlineContext) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done != nil {
		return c.done
	}
	c.done = make(chan struct{})
	if c.err != nil { // settled before anyone asked
		close(c.done)
		return c.done
	}
	rem := time.Until(c.deadline)
	if rem <= 0 {
		c.expireLocked(context.DeadlineExceeded)
		return c.done
	}
	c.timer = time.AfterFunc(rem, func() {
		c.mu.Lock()
		c.expireLocked(context.DeadlineExceeded)
		c.mu.Unlock()
	})
	if pd := c.parent.Done(); pd != nil {
		stop := make(chan struct{})
		c.unwatch = stop
		go func() {
			select {
			case <-pd:
				c.mu.Lock()
				c.expireLocked(c.parent.Err())
				c.mu.Unlock()
			case <-stop:
			}
		}()
	}
	return c.done
}

// release cancels the context and frees the timer and watcher, like the
// CancelFunc returned by context.WithTimeout. Idempotent.
func (c *deadlineContext) release() {
	c.mu.Lock()
	c.expireLocked(context.Canceled)
	c.mu.Unlock()
}
