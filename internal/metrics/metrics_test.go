package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestConfusionScores(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 0}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("precision = %v", got)
	}
	if got := c.Recall(); got != 1 {
		t.Errorf("recall = %v", got)
	}
	// F2 with P=0.8, R=1: 5*0.8*1/(4*0.8+1) = 4/4.2.
	if got := c.F2(); math.Abs(got-4.0/4.2) > 1e-9 {
		t.Errorf("F2 = %v", got)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	empty := Confusion{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty confusion should score 1/1")
	}
	allMissed := Confusion{FN: 5}
	if allMissed.Recall() != 0 {
		t.Errorf("recall = %v", allMissed.Recall())
	}
	if allMissed.F2() != 0 {
		t.Errorf("F2 = %v", allMissed.F2())
	}
}

func TestFBetaWeightsRecall(t *testing.T) {
	// With beta=2, improving recall helps more than improving precision.
	base := FBeta(0.5, 0.5, 2)
	recallUp := FBeta(0.5, 0.6, 2)
	precUp := FBeta(0.6, 0.5, 2)
	if recallUp <= base || precUp <= base {
		t.Fatal("both improvements should raise the score")
	}
	if recallUp-base <= precUp-base {
		t.Errorf("recall improvement %v should exceed precision improvement %v",
			recallUp-base, precUp-base)
	}
}

func TestFBetaRangeProperty(t *testing.T) {
	f := func(p, r uint8) bool {
		prec := float64(p) / 255
		rec := float64(r) / 255
		v := FBeta(prec, rec, 2)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, FN: 3}
	a.Add(Confusion{TP: 10, FP: 20, FN: 30})
	if a.TP != 11 || a.FP != 22 || a.FN != 33 {
		t.Errorf("add = %+v", a)
	}
}

func sec(s int) time.Duration { return time.Duration(s) * time.Second }

func TestScoreEventsPerfect(t *testing.T) {
	truth := []Interval{
		{ID: "a", Enter: sec(0), Exit: sec(5)},
		{ID: "b", Enter: sec(10), Exit: sec(15)},
	}
	events := []ScoredEvent{
		{TruthID: "a", At: sec(6)},  // within slack after exit
		{TruthID: "b", At: sec(12)}, // during the visit
	}
	c := ScoreEvents(truth, events, sec(3))
	if c.TP != 2 || c.FP != 0 || c.FN != 0 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestScoreEventsFalseNegative(t *testing.T) {
	truth := []Interval{{ID: "a", Enter: sec(0), Exit: sec(5)}}
	c := ScoreEvents(truth, nil, sec(3))
	if c.FN != 1 || c.TP != 0 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestScoreEventsFalsePositives(t *testing.T) {
	truth := []Interval{{ID: "a", Enter: sec(0), Exit: sec(5)}}
	events := []ScoredEvent{
		{TruthID: "a", At: sec(2)},
		{TruthID: "a", At: sec(4)},  // duplicate event for the same visit
		{TruthID: "", At: sec(3)},   // truthless detection
		{TruthID: "z", At: sec(3)},  // vehicle never visited
		{TruthID: "a", At: sec(60)}, // way after the visit
	}
	c := ScoreEvents(truth, events, sec(3))
	if c.TP != 1 || c.FP != 4 || c.FN != 0 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestScoreEventsTwoVisitsSameVehicle(t *testing.T) {
	truth := []Interval{
		{ID: "a", Enter: sec(0), Exit: sec(5)},
		{ID: "a", Enter: sec(30), Exit: sec(35)},
	}
	events := []ScoredEvent{
		{TruthID: "a", At: sec(5)},
		{TruthID: "a", At: sec(36)},
	}
	c := ScoreEvents(truth, events, sec(3))
	if c.TP != 2 || c.FP != 0 || c.FN != 0 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestScoreTransitions(t *testing.T) {
	truth := []Transition{
		{VehicleID: "a", FromCam: "c1", ToCam: "c2"},
		{VehicleID: "a", FromCam: "c2", ToCam: "c3"},
		{VehicleID: "b", FromCam: "c1", ToCam: "c2"},
	}
	edges := []MatchedEdge{
		{FromCam: "c1", ToCam: "c2", FromTruth: "a", ToTruth: "a"}, // TP
		{FromCam: "c2", ToCam: "c3", FromTruth: "a", ToTruth: "b"}, // FP: identity mismatch
		{FromCam: "c1", ToCam: "c3", FromTruth: "b", ToTruth: "b"}, // FP: no such transition
	}
	c := ScoreTransitions(truth, edges)
	if c.TP != 1 || c.FP != 2 || c.FN != 2 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestScoreTransitionsDuplicateEdges(t *testing.T) {
	truth := []Transition{{VehicleID: "a", FromCam: "c1", ToCam: "c2"}}
	edges := []MatchedEdge{
		{FromCam: "c1", ToCam: "c2", FromTruth: "a", ToTruth: "a"},
		{FromCam: "c1", ToCam: "c2", FromTruth: "a", ToTruth: "a"}, // double match
	}
	c := ScoreTransitions(truth, edges)
	if c.TP != 1 || c.FP != 1 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestLatencyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Mean() != 0 || r.Max() != 0 || r.Count() != 0 {
		t.Error("empty recorder should report zeros")
	}
	if _, err := r.Percentile(50); err == nil {
		t.Error("percentile of empty recorder should error")
	}
	for i := 1; i <= 100; i++ {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Errorf("count = %d", r.Count())
	}
	if r.Mean() != 50500*time.Microsecond {
		t.Errorf("mean = %v", r.Mean())
	}
	p50, err := r.Percentile(50)
	if err != nil || p50 != 50*time.Millisecond {
		t.Errorf("p50 = %v err %v", p50, err)
	}
	p99, err := r.Percentile(99)
	if err != nil || p99 != 99*time.Millisecond {
		t.Errorf("p99 = %v err %v", p99, err)
	}
	if r.Max() != 100*time.Millisecond {
		t.Errorf("max = %v", r.Max())
	}
	if _, err := r.Percentile(0); err == nil {
		t.Error("p0 should error")
	}
	if _, err := r.Percentile(101); err == nil {
		t.Error("p101 should error")
	}
	// Adding after sorting still works.
	r.Add(200 * time.Millisecond)
	if r.Max() != 200*time.Millisecond {
		t.Errorf("max after add = %v", r.Max())
	}
}

// TestPercentileBoundaries pins the nearest-rank arithmetic at its exact
// sample boundaries, where the old float implementation (p/100*n +
// 0.999999) could round the rank up or down by one.
func TestPercentileBoundaries(t *testing.T) {
	mk := func(n int) *LatencyRecorder {
		r := NewLatencyRecorder()
		for i := 1; i <= n; i++ {
			r.Add(time.Duration(i) * time.Millisecond)
		}
		return r
	}

	t.Run("single sample", func(t *testing.T) {
		r := mk(1)
		for _, p := range []float64{0.001, 50, 100} {
			got, err := r.Percentile(p)
			if err != nil || got != time.Millisecond {
				t.Errorf("p%v = %v err %v, want 1ms", p, got, err)
			}
		}
	})

	t.Run("p100 is the max", func(t *testing.T) {
		for _, n := range []int{1, 2, 7, 100} {
			r := mk(n)
			got, err := r.Percentile(100)
			if err != nil || got != time.Duration(n)*time.Millisecond {
				t.Errorf("n=%d p100 = %v err %v", n, got, err)
			}
		}
	})

	t.Run("exact boundary k/n", func(t *testing.T) {
		// With 10 samples, p=30 is exactly sample 3 by nearest-rank;
		// 3*10.0 in floats gives p*n/100 = 3.0000000000000004, which the
		// old fudge turned into rank 4.
		r := mk(10)
		got, err := r.Percentile(3 * 10.0)
		if err != nil || got != 3*time.Millisecond {
			t.Errorf("p30 of 10 = %v err %v, want 3ms", got, err)
		}
		// p=20 on 5 samples -> ceil(1.0) = sample 1.
		r = mk(5)
		got, err = r.Percentile(20)
		if err != nil || got != time.Millisecond {
			t.Errorf("p20 of 5 = %v err %v, want 1ms", got, err)
		}
	})

	t.Run("just above a boundary rounds up", func(t *testing.T) {
		// Anything strictly above k/n*100 must take sample k+1.
		r := mk(10)
		got, err := r.Percentile(30.01)
		if err != nil || got != 4*time.Millisecond {
			t.Errorf("p30.01 of 10 = %v err %v, want 4ms", got, err)
		}
		got, err = r.Percentile(99.999)
		if err != nil || got != 10*time.Millisecond {
			t.Errorf("p99.999 of 10 = %v err %v, want 10ms", got, err)
		}
	})

	t.Run("tiny p clamps to first sample", func(t *testing.T) {
		r := mk(3)
		got, err := r.Percentile(0.0001)
		if err != nil || got != time.Millisecond {
			t.Errorf("p0.0001 of 3 = %v err %v, want 1ms", got, err)
		}
	})
}
