// Package metrics implements the evaluation arithmetic of the paper's
// Section 5: precision/recall/F-beta scoring of detection events against
// ground truth (Table 2), transition scoring for cross-camera
// re-identification accuracy (Section 5.6), and latency recording for the
// microbenchmarks (Table 1).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Confusion counts true positives, false positives, and false negatives.
type Confusion struct {
	TP int
	FP int
	FN int
}

// Precision returns TP / (TP + FP), or 1 when nothing was predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 1 when there was nothing to find.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FBeta combines precision and recall, weighting recall beta times as
// much as precision. The paper reports F2 (beta=2), which emphasizes
// minimizing false negatives.
func FBeta(precision, recall, beta float64) float64 {
	if precision <= 0 && recall <= 0 {
		return 0
	}
	b2 := beta * beta
	denom := b2*precision + recall
	if denom == 0 {
		return 0
	}
	return (1 + b2) * precision * recall / denom
}

// F2 returns the F2 score of the confusion counts.
func (c Confusion) F2() float64 {
	return FBeta(c.Precision(), c.Recall(), 2)
}

// Add accumulates another confusion into this one.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
}

// Interval is one ground-truth vehicle pass through a camera's field of
// view.
type Interval struct {
	ID    string // ground-truth vehicle identity
	Enter time.Duration
	Exit  time.Duration
}

// ScoredEvent is one generated detection event reduced to what scoring
// needs: the ground-truth identity it claims (empty for pure false
// positives) and when it fired.
type ScoredEvent struct {
	TruthID string
	At      time.Duration
}

// ScoreEvents compares generated detection events against ground-truth
// visits for one camera: each visit should yield exactly one event for
// its vehicle no later than slack after the visit ends. Extra events for
// the same visit, events for absent vehicles, and truthless events are
// false positives; visits with no event are false negatives.
func ScoreEvents(truth []Interval, events []ScoredEvent, slack time.Duration) Confusion {
	type visitKey struct {
		id    string
		index int
	}
	// Index visits by vehicle, in time order.
	byVehicle := make(map[string][]Interval)
	for _, v := range truth {
		byVehicle[v.ID] = append(byVehicle[v.ID], v)
	}
	for id := range byVehicle {
		vs := byVehicle[id]
		sort.Slice(vs, func(i, j int) bool { return vs[i].Enter < vs[j].Enter })
		byVehicle[id] = vs
	}
	consumed := make(map[visitKey]bool)

	var c Confusion
	ordered := append([]ScoredEvent(nil), events...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	for _, e := range ordered {
		if e.TruthID == "" {
			c.FP++
			continue
		}
		matched := false
		for i, v := range byVehicle[e.TruthID] {
			key := visitKey{id: e.TruthID, index: i}
			if consumed[key] {
				continue
			}
			// The event must fire during or shortly after the visit.
			if e.At >= v.Enter && e.At <= v.Exit+slack {
				consumed[key] = true
				matched = true
				break
			}
		}
		if matched {
			c.TP++
		} else {
			c.FP++
		}
	}
	for id, vs := range byVehicle {
		for i := range vs {
			if !consumed[visitKey{id: id, index: i}] {
				c.FN++
			}
		}
	}
	return c
}

// Transition is one ground-truth consecutive camera-to-camera movement of
// a vehicle.
type Transition struct {
	VehicleID string
	FromCam   string
	ToCam     string
}

// MatchedEdge is one re-identification result: the trajectory edge's
// upstream and downstream events reduced to their camera and ground-truth
// identities.
type MatchedEdge struct {
	FromCam   string
	ToCam     string
	FromTruth string
	ToTruth   string
}

// ScoreTransitions compares re-identification edges against ground-truth
// transitions. An edge is a true positive when both endpoints carry the
// same vehicle identity and that (vehicle, fromCam, toCam) transition is
// in the ground truth (each truth transition can be consumed once); every
// other edge is a false positive; unconsumed transitions are false
// negatives.
func ScoreTransitions(truth []Transition, edges []MatchedEdge) Confusion {
	remaining := make(map[Transition]int)
	for _, tr := range truth {
		remaining[tr]++
	}
	var c Confusion
	for _, e := range edges {
		if e.FromTruth == "" || e.FromTruth != e.ToTruth {
			c.FP++
			continue
		}
		key := Transition{VehicleID: e.FromTruth, FromCam: e.FromCam, ToCam: e.ToCam}
		if remaining[key] > 0 {
			remaining[key]--
			c.TP++
		} else {
			c.FP++
		}
	}
	for _, n := range remaining {
		c.FN += n
	}
	return c
}

// LatencyRecorder accumulates duration samples. Safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// Add records one sample.
func (r *LatencyRecorder) Add(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Mean returns the average sample, or 0 with no samples.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank, or an error with no samples.
func (r *LatencyRecorder) Percentile(p float64) (time.Duration, error) {
	if p <= 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %v out of (0,100]", p)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0, fmt.Errorf("metrics: no samples")
	}
	r.sortLocked()
	// Nearest-rank: rank = ceil(p*n/100), computed exactly in integers.
	// Percentiles are taken at micro-percent precision so that float
	// artifacts in p itself (30.000000000000004 from 3*10.0, say) do not
	// bump the rank, while any real excess above a sample boundary does.
	n := int64(len(r.samples))
	pScaled := int64(math.Round(p * 1e6)) // micro-percents, exact for any sane p
	const whole = 100 * 1e6               // 100% in micro-percents
	rank := int((pScaled*n + whole - 1) / whole)
	if rank < 1 {
		rank = 1
	}
	return r.samples[rank-1], nil
}

// Max returns the largest sample, or 0 with no samples.
func (r *LatencyRecorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	r.sortLocked()
	return r.samples[len(r.samples)-1]
}

func (r *LatencyRecorder) sortLocked() {
	if r.sorted {
		return
	}
	sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
	r.sorted = true
}
