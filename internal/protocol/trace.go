package protocol

// TraceContext is the wire form of a distributed-tracing span context.
// It mirrors obs.SpanContext field-for-field, so the two types convert
// with a plain struct conversion in either direction; protocol keeps
// its own copy to stay free of an obs dependency.
//
// TraceID names the trace (Coral-Pie uses the detection-event ID),
// SpanID the sender's span, ParentID that span's parent, and Sampled
// the head-sampling decision taken at the trace root. The field is
// optional everywhere it appears: messages without it are fully
// backward compatible.
type TraceContext struct {
	TraceID  string `json:"traceId"`
	SpanID   string `json:"spanId"`
	ParentID string `json:"parentId,omitempty"`
	Sampled  bool   `json:"sampled"`
}

// Valid reports whether tc identifies a trace position.
func (tc TraceContext) Valid() bool { return tc.TraceID != "" && tc.SpanID != "" }

// TraceContext and SetTraceContext implement the rpc layer's
// trace-carrier contract, letting the trace inject/extract middleware
// move span contexts through envelopes without knowing the frame type.
func (e *Envelope) TraceContext() *TraceContext      { return e.Trace }
func (e *Envelope) SetTraceContext(tc *TraceContext) { e.Trace = tc }
