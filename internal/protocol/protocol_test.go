package protocol

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/geo"
)

func validHistogram() feature.Histogram {
	h := feature.Histogram{Bins: make([]float64, feature.HistogramSize)}
	h.Bins[0] = 1
	return h
}

func sampleEvent() DetectionEvent {
	return DetectionEvent{
		ID:        NewEventID("cam1", 42),
		CameraID:  "cam1",
		Timestamp: time.Date(2020, 12, 7, 10, 30, 0, 0, time.UTC),
		Direction: geo.East,
		Histogram: validHistogram(),
		TrackID:   42,
		VertexID:  7,
		TruthID:   "veh-3",
	}
}

func TestEventID(t *testing.T) {
	id := NewEventID("cam1", 42)
	if id != "cam1#42" {
		t.Errorf("id = %q", id)
	}
	cam, track, err := id.Split()
	if err != nil || cam != "cam1" || track != 42 {
		t.Errorf("Split = %q %d %v", cam, track, err)
	}
	// Camera names containing '#' still split on the last separator.
	cam, track, err = EventID("edge#2#9").Split()
	if err != nil || cam != "edge#2" || track != 9 {
		t.Errorf("Split = %q %d %v", cam, track, err)
	}
	for _, bad := range []EventID{"", "noseparator", "#5", "cam#", "cam#abc"} {
		if _, _, err := bad.Split(); err == nil {
			t.Errorf("Split(%q) should error", bad)
		}
	}
}

func TestDetectionEventValidate(t *testing.T) {
	e := sampleEvent()
	if err := e.Validate(); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	e2 := sampleEvent()
	e2.CameraID = ""
	if err := e2.Validate(); err == nil {
		t.Error("missing camera id accepted")
	}
	e3 := sampleEvent()
	e3.ID = ""
	if err := e3.Validate(); err == nil {
		t.Error("missing id accepted")
	}
	e4 := sampleEvent()
	e4.Histogram = feature.Histogram{Bins: []float64{1}}
	if err := e4.Validate(); err == nil {
		t.Error("short histogram accepted")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	msgs := []any{
		Inform{Event: sampleEvent()},
		Confirm{EventID: "cam1#42", ByCameraID: "cam2", MatchedEventID: "cam2#7", Distance: 0.12},
		Retire{EventID: "cam1#42", ByCameraID: "cam2"},
		Heartbeat{CameraID: "cam3", Position: geo.Point{Lat: 33.77, Lon: -84.39}, HeadingDeg: 90, Addr: "127.0.0.1:9000", Time: time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)},
		TopologyUpdate{CameraID: "cam3", Version: 5, MDCS: map[geo.Direction][]CameraRef{
			geo.East: {{ID: "cam4", Addr: "127.0.0.1:9001"}},
		}},
		FrameRecord{CameraID: "cam1", Seq: 9, Width: 2, Height: 1, Pixels: []byte{1, 2, 3, 4, 5, 6}},
	}
	for _, msg := range msgs {
		env, err := Seal(msg)
		if err != nil {
			t.Fatalf("Seal(%T): %v", msg, err)
		}
		got, err := Open(env)
		if err != nil {
			t.Fatalf("Open(%T): %v", msg, err)
		}
		switch want := msg.(type) {
		case Inform:
			g, ok := got.(Inform)
			if !ok || g.Event.ID != want.Event.ID || g.Event.Direction != want.Event.Direction {
				t.Errorf("Inform round trip mismatch: %+v", got)
			}
			if len(g.Event.Histogram.Bins) != feature.HistogramSize {
				t.Error("histogram lost in round trip")
			}
			if !g.Event.Timestamp.Equal(want.Event.Timestamp) {
				t.Error("timestamp lost")
			}
		case Confirm:
			if got.(Confirm) != want {
				t.Errorf("Confirm round trip: %+v", got)
			}
		case Retire:
			if got.(Retire) != want {
				t.Errorf("Retire round trip: %+v", got)
			}
		case Heartbeat:
			g, ok := got.(Heartbeat)
			if !ok || g.CameraID != want.CameraID || g.Addr != want.Addr || !g.Time.Equal(want.Time) {
				t.Errorf("Heartbeat round trip: %+v", got)
			}
		case TopologyUpdate:
			g, ok := got.(TopologyUpdate)
			if !ok || g.Version != want.Version || len(g.MDCS[geo.East]) != 1 || g.MDCS[geo.East][0].ID != "cam4" {
				t.Errorf("TopologyUpdate round trip: %+v", got)
			}
		case FrameRecord:
			g, ok := got.(FrameRecord)
			if !ok || g.Seq != want.Seq || !bytes.Equal(g.Pixels, want.Pixels) {
				t.Errorf("FrameRecord round trip: %+v", got)
			}
		}
	}
}

func TestSealUnknownType(t *testing.T) {
	if _, err := Seal(struct{}{}); err == nil {
		t.Error("sealing an unknown type should error")
	}
}

func TestOpenUnknownType(t *testing.T) {
	_, err := Open(Envelope{Type: "bogus", Payload: []byte("{}")})
	if !errors.Is(err, ErrUnknownType) {
		t.Errorf("want ErrUnknownType, got %v", err)
	}
}

func TestOpenCorruptPayload(t *testing.T) {
	if _, err := Open(Envelope{Type: TypeInform, Payload: []byte("{")}); err == nil {
		t.Error("corrupt payload should error")
	}
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Retire{EventID: "cam1#1", ByCameraID: "cam9"}
	if err := WriteMessage(&buf, want); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if got.(Retire) != want {
		t.Errorf("round trip = %+v", got)
	}
}

func TestWireMultipleMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := int64(0); i < 5; i++ {
		if err := WriteMessage(&buf, Retire{EventID: NewEventID("cam", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 5; i++ {
		msg, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if msg.(Retire).EventID != NewEventID("cam", i) {
			t.Errorf("message %d out of order: %+v", i, msg)
		}
	}
	if _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF at end, got %v", err)
	}
}

func TestReadEnvelopeTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Retire{EventID: "c#1"}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Cut the payload short: must not return clean EOF.
	if _, err := ReadEnvelope(bytes.NewReader(data[:len(data)-2])); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated payload: %v", err)
	}
	// Cut inside the length prefix.
	if _, err := ReadEnvelope(bytes.NewReader(data[:2])); err == nil {
		t.Error("truncated length should error")
	}
}

func TestReadEnvelopeOversized(t *testing.T) {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxFrameBytes+1)
	_, err := ReadEnvelope(bytes.NewReader(lenBuf[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestReadEnvelopeGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("not json")
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	buf.Write(lenBuf[:])
	buf.Write(payload)
	if _, err := ReadEnvelope(&buf); err == nil {
		t.Error("garbage JSON should error")
	}
}
