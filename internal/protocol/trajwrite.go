package protocol

// TrajWriteKind discriminates the records of a trajectory-store write
// batch.
type TrajWriteKind string

// The batch record kinds, matching the WAL's own record tags.
const (
	// TrajWriteVertex inserts a detection event as a new graph vertex.
	TrajWriteVertex TrajWriteKind = "v"
	// TrajWriteEdge links two existing vertices with a confidence weight.
	TrajWriteEdge TrajWriteKind = "e"
)

// TrajWrite is one record of a trajectory-store write batch (the
// add_batch op): either a vertex insert carrying a detection event, or an
// edge insert carrying endpoint vertex IDs and a Bhattacharyya weight.
// Batches let a camera amortize one RPC and one WAL group commit over
// many writes, which is what keeps the shared store write path off the
// critical path of every camera (paper Section 4.3).
type TrajWrite struct {
	Kind   TrajWriteKind   `json:"kind"`
	Event  *DetectionEvent `json:"event,omitempty"`
	From   int64           `json:"from,omitempty"`
	To     int64           `json:"to,omitempty"`
	Weight float64         `json:"weight,omitempty"`
	// Trace optionally carries the writer's span context so the store
	// can record its WAL commit as part of the same distributed trace.
	Trace *TraceContext `json:"trace,omitempty"`
}

// WithTrace returns a copy of w carrying the given trace context.
func (w TrajWrite) WithTrace(tc TraceContext) TrajWrite {
	w.Trace = &tc
	return w
}

// VertexWrite builds a vertex batch record.
func VertexWrite(e DetectionEvent) TrajWrite {
	return TrajWrite{Kind: TrajWriteVertex, Event: &e}
}

// EdgeWrite builds an edge batch record.
func EdgeWrite(from, to int64, weight float64) TrajWrite {
	return TrajWrite{Kind: TrajWriteEdge, From: from, To: to, Weight: weight}
}
