// Package protocol defines the messages exchanged by Coral-Pie components:
// the vehicle detection event JSON object (paper Section 4.1.2), the
// informing/confirming notifications of the inter-camera communication
// protocol (Section 3.2), the heartbeat and topology-update messages of the
// camera topology server (Section 3.3), and a length-prefixed JSON codec
// that frames them over byte streams.
package protocol

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/feature"
	"repro/internal/geo"
)

// MessageType discriminates envelope payloads.
type MessageType string

// The wire message types.
const (
	// TypeInform carries a detection event from a camera to the members
	// of its MDCS (informing stage).
	TypeInform MessageType = "inform"
	// TypeConfirm is sent by the camera that re-identified a vehicle to
	// the predecessor camera that produced the original event
	// (confirming stage).
	TypeConfirm MessageType = "confirm"
	// TypeRetire is relayed by the predecessor to the other members of
	// its MDCS so they mark the event matched in their candidate pools.
	TypeRetire MessageType = "retire"
	// TypeHeartbeat is the periodic camera -> topology server liveness
	// and registration message.
	TypeHeartbeat MessageType = "heartbeat"
	// TypeTopologyUpdate is the topology server -> camera MDCS push.
	TypeTopologyUpdate MessageType = "topology_update"
	// TypeFrameRecord carries a raw frame plus annotations to the frame
	// storage server.
	TypeFrameRecord MessageType = "frame_record"
)

// EventID uniquely identifies a detection event as "<cameraID>#<trackID>".
type EventID string

// NewEventID composes an event ID from its parts.
func NewEventID(cameraID string, trackID int64) EventID {
	return EventID(cameraID + "#" + strconv.FormatInt(trackID, 10))
}

// Split returns the camera ID and track ID components. It errors on
// malformed IDs.
func (id EventID) Split() (cameraID string, trackID int64, err error) {
	i := strings.LastIndexByte(string(id), '#')
	if i <= 0 || i == len(id)-1 {
		return "", 0, fmt.Errorf("protocol: malformed event id %q", id)
	}
	trackID, err = strconv.ParseInt(string(id[i+1:]), 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("protocol: malformed event id %q: %w", id, err)
	}
	return string(id[:i]), trackID, nil
}

// DetectionEvent is the JSON object generated when a vehicle leaves a
// camera's field of view (paper Section 4.1.2): camera name, UTC
// timestamp, moving direction, adaptive histogram, the Sort tracker's
// local ID, and the ID of the corresponding trajectory-graph vertex.
type DetectionEvent struct {
	ID        EventID           `json:"id"`
	CameraID  string            `json:"cameraId"`
	Timestamp time.Time         `json:"timestamp"`
	Direction geo.Direction     `json:"direction"`
	Histogram feature.Histogram `json:"histogram"`
	TrackID   int64             `json:"trackId"`
	VertexID  int64             `json:"vertexId"`
	// TruthID is simulation ground truth carried for evaluation only.
	TruthID string `json:"truthId,omitempty"`
}

// Validate checks the structural invariants of an event.
func (e *DetectionEvent) Validate() error {
	if e.CameraID == "" {
		return errors.New("protocol: detection event missing camera id")
	}
	if e.ID == "" {
		return errors.New("protocol: detection event missing id")
	}
	if !e.Histogram.Valid() {
		return fmt.Errorf("protocol: detection event histogram has %d bins, want %d",
			len(e.Histogram.Bins), feature.HistogramSize)
	}
	return nil
}

// Inform is the informing-stage notification.
type Inform struct {
	Event DetectionEvent `json:"event"`
	// FromAddr is the sender's transport address, used by the
	// re-identifying camera to send the confirming notification back.
	FromAddr string `json:"fromAddr"`
}

// Confirm is the confirming-stage notification from the re-identifying
// camera back to the predecessor camera.
type Confirm struct {
	// EventID is the predecessor's event that was re-identified.
	EventID EventID `json:"eventId"`
	// ByCameraID is the camera that performed the re-identification.
	ByCameraID string `json:"byCameraId"`
	// MatchedEventID is the new event at the re-identifying camera.
	MatchedEventID EventID `json:"matchedEventId"`
	// Distance is the Bhattacharyya distance of the match.
	Distance float64 `json:"distance"`
}

// Retire tells an MDCS member to mark an event matched in its candidate
// pool (garbage-collection signal).
type Retire struct {
	EventID EventID `json:"eventId"`
	// ByCameraID is the camera that re-identified the vehicle, carried
	// for observability.
	ByCameraID string `json:"byCameraId"`
}

// Heartbeat registers a camera with the topology server and renews its
// liveness lease.
type Heartbeat struct {
	CameraID string    `json:"cameraId"`
	Position geo.Point `json:"position"`
	// HeadingDeg is the compass bearing that "up" in the camera image
	// corresponds to.
	HeadingDeg float64 `json:"headingDeg"`
	// Addr is the transport address where the camera accepts inter-camera
	// messages.
	Addr string    `json:"addr"`
	Time time.Time `json:"time"`
}

// CameraRef names a peer camera and how to reach it.
type CameraRef struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// TopologyUpdate pushes a camera's current MDCS table: for each moving
// direction, the set of downstream cameras to inform.
type TopologyUpdate struct {
	CameraID string `json:"cameraId"`
	// Version increases monotonically per camera so stale updates can be
	// discarded.
	Version int64 `json:"version"`
	// MDCS maps direction -> downstream cameras.
	MDCS map[geo.Direction][]CameraRef `json:"mdcs"`
}

// BoxAnnotation is per-frame tracking metadata stored with raw frames.
type BoxAnnotation struct {
	TrackID    int64   `json:"trackId"`
	X          int     `json:"x"`
	Y          int     `json:"y"`
	W          int     `json:"w"`
	H          int     `json:"h"`
	Label      string  `json:"label"`
	Confidence float64 `json:"confidence"`
}

// FrameRecord carries one raw frame plus annotations to the frame storage
// server. Pixels travel raw (not re-encoded), matching the paper's
// serialization decision.
type FrameRecord struct {
	CameraID    string          `json:"cameraId"`
	Seq         int64           `json:"seq"`
	Timestamp   time.Time       `json:"timestamp"`
	Width       int             `json:"width"`
	Height      int             `json:"height"`
	Pixels      []byte          `json:"pixels"`
	Annotations []BoxAnnotation `json:"annotations,omitempty"`
}

// Envelope frames a typed payload. Trace optionally carries the
// sender's span context so a receiver can continue the distributed
// trace; transports inject it from the caller's context on Send and
// extract it into the handler's context on delivery.
type Envelope struct {
	Type    MessageType     `json:"type"`
	Payload json.RawMessage `json:"payload"`
	Trace   *TraceContext   `json:"trace,omitempty"`
}

// ErrUnknownType is returned when decoding an envelope with an
// unrecognized message type.
var ErrUnknownType = errors.New("protocol: unknown message type")

// Seal wraps a payload value in an Envelope of the right type. It errors
// if the payload's Go type does not match a known message.
func Seal(msg any) (Envelope, error) {
	var t MessageType
	switch msg.(type) {
	case Inform, *Inform:
		t = TypeInform
	case Confirm, *Confirm:
		t = TypeConfirm
	case Retire, *Retire:
		t = TypeRetire
	case Heartbeat, *Heartbeat:
		t = TypeHeartbeat
	case TopologyUpdate, *TopologyUpdate:
		t = TypeTopologyUpdate
	case FrameRecord, *FrameRecord:
		t = TypeFrameRecord
	default:
		return Envelope{}, fmt.Errorf("protocol: cannot seal %T", msg)
	}
	raw, err := json.Marshal(msg)
	if err != nil {
		return Envelope{}, fmt.Errorf("protocol: marshal %T: %w", msg, err)
	}
	return Envelope{Type: t, Payload: raw}, nil
}

// Open decodes an envelope's payload into its concrete message type.
func Open(env Envelope) (any, error) {
	var (
		msg any
		err error
	)
	switch env.Type {
	case TypeInform:
		var m Inform
		err = json.Unmarshal(env.Payload, &m)
		msg = m
	case TypeConfirm:
		var m Confirm
		err = json.Unmarshal(env.Payload, &m)
		msg = m
	case TypeRetire:
		var m Retire
		err = json.Unmarshal(env.Payload, &m)
		msg = m
	case TypeHeartbeat:
		var m Heartbeat
		err = json.Unmarshal(env.Payload, &m)
		msg = m
	case TypeTopologyUpdate:
		var m TopologyUpdate
		err = json.Unmarshal(env.Payload, &m)
		msg = m
	case TypeFrameRecord:
		var m FrameRecord
		err = json.Unmarshal(env.Payload, &m)
		msg = m
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, env.Type)
	}
	if err != nil {
		return nil, fmt.Errorf("protocol: decode %s: %w", env.Type, err)
	}
	return msg, nil
}

// MaxFrameBytes bounds a single wire message (32 MiB), comfortably above
// a raw 1280×1024 RGB frame plus JSON overhead, and small enough to stop
// a corrupted length prefix from allocating unbounded memory.
const MaxFrameBytes = 32 << 20

// ErrFrameTooLarge is returned when a wire message exceeds MaxFrameBytes.
var ErrFrameTooLarge = errors.New("protocol: frame exceeds size limit")

// WriteEnvelope frames env as 4-byte big-endian length + JSON.
func WriteEnvelope(w io.Writer, env Envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("protocol: marshal envelope: %w", err)
	}
	if len(data) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(data))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("protocol: write length: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("protocol: write payload: %w", err)
	}
	return nil
}

// ReadEnvelope reads one length-prefixed envelope. It returns io.EOF when
// the stream ends cleanly at a message boundary.
func ReadEnvelope(r io.Reader) (Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Envelope{}, io.EOF
		}
		return Envelope{}, fmt.Errorf("protocol: read length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrameBytes {
		return Envelope{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return Envelope{}, fmt.Errorf("protocol: read payload: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope{}, fmt.Errorf("protocol: unmarshal envelope: %w", err)
	}
	return env, nil
}

// WriteMessage seals and writes a message in one step.
func WriteMessage(w io.Writer, msg any) error {
	env, err := Seal(msg)
	if err != nil {
		return err
	}
	return WriteEnvelope(w, env)
}

// ReadMessage reads and opens a message in one step.
func ReadMessage(r io.Reader) (any, error) {
	env, err := ReadEnvelope(r)
	if err != nil {
		return nil, err
	}
	return Open(env)
}
