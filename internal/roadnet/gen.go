package roadnet

import (
	"fmt"

	"repro/internal/geo"
)

// metersPerDegreeLat is the approximate ground length of one degree of
// latitude, used by the synthetic topology generators.
const metersPerDegreeLat = 111194.0

// offsetPoint returns origin displaced east and north by the given meters.
func offsetPoint(origin geo.Point, eastM, northM float64) geo.Point {
	latRad := origin.Lat * 3.141592653589793 / 180
	cos := cosApprox(latRad)
	return geo.Point{
		Lat: origin.Lat + northM/metersPerDegreeLat,
		Lon: origin.Lon + eastM/(metersPerDegreeLat*cos),
	}
}

// cosApprox avoids importing math for one call site while staying exact
// enough for topology generation.
func cosApprox(x float64) float64 {
	// 12th-order Taylor expansion, plenty for |x| < pi/2.
	x2 := x * x
	return 1 - x2/2 + x2*x2/24 - x2*x2*x2/720
}

// Grid builds a rows×cols Manhattan grid of two-way streets with the given
// block spacing. Node IDs are assigned row-major from 0. It returns the
// graph and the node IDs in ID order.
func Grid(rows, cols int, spacingMeters float64, origin geo.Point) (*Graph, []NodeID, error) {
	if rows < 1 || cols < 1 {
		return nil, nil, fmt.Errorf("roadnet: grid dimensions %dx%d invalid", rows, cols)
	}
	if spacingMeters <= 0 {
		return nil, nil, fmt.Errorf("roadnet: grid spacing %v invalid", spacingMeters)
	}
	g := NewGraph()
	ids := make([]NodeID, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := NodeID(r*cols + c)
			pos := offsetPoint(origin, float64(c)*spacingMeters, -float64(r)*spacingMeters)
			if err := g.AddNode(id, pos); err != nil {
				return nil, nil, err
			}
			ids = append(ids, id)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := NodeID(r*cols + c)
			if c+1 < cols {
				if err := g.AddRoad(id, id+1); err != nil {
					return nil, nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddRoad(id, NodeID((r+1)*cols+c)); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return g, ids, nil
}

// campusOrigin anchors the synthetic campus topology (Georgia Tech's
// coordinates, matching the paper's deployment area).
var campusOrigin = geo.Point{Lat: 33.7756, Lon: -84.3963}

// Campus builds the 37-intersection campus-like road network used by the
// paper's simulation studies (Figures 11 and 12a): a 6×7 grid with five
// intersections removed for irregularity and two one-way streets. It
// returns the graph and the 37 camera-capable intersections in a fixed
// deployment order.
func Campus() (*Graph, []NodeID, error) {
	const (
		rows    = 6
		cols    = 7
		spacing = 150.0 // meters between intersections
	)
	// Intersections removed to break the perfect grid, chosen away from
	// each other so the network stays strongly connected.
	removed := map[NodeID]bool{3: true, 14: true, 24: true, 33: true, 41: true}

	g := NewGraph()
	var sites []NodeID
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := NodeID(r*cols + c)
			if removed[id] {
				continue
			}
			pos := offsetPoint(campusOrigin, float64(c)*spacing, -float64(r)*spacing)
			if err := g.AddNode(id, pos); err != nil {
				return nil, nil, err
			}
			sites = append(sites, id)
		}
	}
	addRoad := func(a, b NodeID) error {
		if removed[a] || removed[b] {
			return nil
		}
		return g.AddRoad(a, b)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := NodeID(r*cols + c)
			if c+1 < cols {
				if err := addRoad(id, id+1); err != nil {
					return nil, nil, err
				}
			}
			if r+1 < rows {
				if err := addRoad(id, NodeID((r+1)*cols+c)); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	// Two one-way streets (cf. the EC and CB lanes in the paper's
	// Figure 4): keep only one direction of a pair that has parallel
	// two-way alternatives a block away.
	oneWays := [][2]NodeID{{8, 9}, {30, 31}}
	for _, ow := range oneWays {
		if err := removeEdge(g, ow[1], ow[0]); err != nil {
			return nil, nil, err
		}
	}
	if len(sites) != 37 {
		return nil, nil, fmt.Errorf("roadnet: campus has %d sites, want 37", len(sites))
	}
	return g, sites, nil
}

// removeEdge deletes a directed lane; it is unexported because topology
// churn in Coral-Pie is about cameras, not roads, outside of generator
// construction.
func removeEdge(g *Graph, from, to NodeID) error {
	k := edgeKey{from: from, to: to}
	if _, ok := g.edges[k]; !ok {
		return fmt.Errorf("%w: %d->%d", ErrEdgeNotFound, from, to)
	}
	delete(g.edges, k)
	list := g.out[from]
	for i, e := range list {
		if e == k {
			g.out[from] = append(list[:i], list[i+1:]...)
			break
		}
	}
	return nil
}

// Corridor builds a simple linear road of n intersections spaced the given
// distance apart, every intersection equipped for a camera — the shape of
// the paper's 5 live campus cameras along a street. It returns the graph
// and node IDs west-to-east.
func Corridor(n int, spacingMeters float64, origin geo.Point) (*Graph, []NodeID, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("roadnet: corridor needs >= 2 intersections, have %d", n)
	}
	if spacingMeters <= 0 {
		return nil, nil, fmt.Errorf("roadnet: corridor spacing %v invalid", spacingMeters)
	}
	g := NewGraph()
	ids := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if err := g.AddNode(id, offsetPoint(origin, float64(i)*spacingMeters, 0)); err != nil {
			return nil, nil, err
		}
		ids = append(ids, id)
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddRoad(NodeID(i), NodeID(i+1)); err != nil {
			return nil, nil, err
		}
	}
	return g, ids, nil
}
