package roadnet

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geo"
)

// Spec is the on-disk JSON representation of a road network, playing the
// role OSMnx's base map export plays in the paper (Section 4.3).
type Spec struct {
	Nodes   []NodeSpec   `json:"nodes"`
	Edges   []EdgeSpec   `json:"edges"`
	Cameras []CameraSpec `json:"cameras,omitempty"`
}

// NodeSpec describes one intersection.
type NodeSpec struct {
	ID  NodeID    `json:"id"`
	Pos geo.Point `json:"pos"`
}

// EdgeSpec describes one lane. TwoWay expands to a pair of directed lanes.
type EdgeSpec struct {
	From   NodeID `json:"from"`
	To     NodeID `json:"to"`
	TwoWay bool   `json:"twoWay,omitempty"`
}

// CameraSpec describes one camera placement: either AtNode, or on the lane
// From->To at fractional position Frac.
type CameraSpec struct {
	ID     string  `json:"id"`
	AtNode *NodeID `json:"atNode,omitempty"`
	From   *NodeID `json:"from,omitempty"`
	To     *NodeID `json:"to,omitempty"`
	Frac   float64 `json:"frac,omitempty"`
}

// FromSpec materializes a graph from a spec.
func FromSpec(spec Spec) (*Graph, error) {
	g := NewGraph()
	for _, n := range spec.Nodes {
		if err := g.AddNode(n.ID, n.Pos); err != nil {
			return nil, err
		}
	}
	for _, e := range spec.Edges {
		if e.TwoWay {
			if err := g.AddRoad(e.From, e.To); err != nil {
				return nil, err
			}
			continue
		}
		if err := g.AddEdge(e.From, e.To); err != nil {
			return nil, err
		}
	}
	for _, c := range spec.Cameras {
		switch {
		case c.AtNode != nil:
			if err := g.PlaceCameraAtNode(c.ID, *c.AtNode); err != nil {
				return nil, err
			}
		case c.From != nil && c.To != nil:
			if err := g.PlaceCameraOnEdge(c.ID, *c.From, *c.To, c.Frac); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("roadnet: camera %q has no placement", c.ID)
		}
	}
	return g, nil
}

// ToSpec serializes the graph to a spec. Two-way roads are emitted as a
// single TwoWay edge entry.
func (g *Graph) ToSpec() Spec {
	var spec Spec
	for _, id := range g.NodeIDs() {
		n := g.nodes[id]
		spec.Nodes = append(spec.Nodes, NodeSpec{ID: n.ID, Pos: n.Pos})
		if n.CameraID != "" {
			at := n.ID
			spec.Cameras = append(spec.Cameras, CameraSpec{ID: n.CameraID, AtNode: &at})
		}
	}
	emitted := make(map[edgeKey]bool, len(g.edges))
	for _, from := range g.NodeIDs() {
		for _, k := range g.out[from] {
			if emitted[k] {
				continue
			}
			rev := edgeKey{from: k.to, to: k.from}
			if _, ok := g.edges[rev]; ok && !emitted[rev] && k.from < k.to {
				spec.Edges = append(spec.Edges, EdgeSpec{From: k.from, To: k.to, TwoWay: true})
				emitted[k] = true
				emitted[rev] = true
				continue
			}
			if !emitted[k] {
				spec.Edges = append(spec.Edges, EdgeSpec{From: k.from, To: k.to})
				emitted[k] = true
			}
		}
	}
	for _, camID := range g.CameraIDs() {
		place := g.cameras[camID]
		if !place.onEdge {
			continue // node cameras were emitted with their node
		}
		from, to := place.OnEdgeFrom, place.OnEdgeTo
		spec.Cameras = append(spec.Cameras, CameraSpec{ID: camID, From: &from, To: &to, Frac: place.Frac})
	}
	return spec
}

// WriteJSON writes the graph as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g.ToSpec()); err != nil {
		return fmt.Errorf("roadnet: encode: %w", err)
	}
	return nil
}

// ReadJSON parses a graph from JSON produced by WriteJSON (or written by
// hand).
func ReadJSON(r io.Reader) (*Graph, error) {
	var spec Spec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("roadnet: decode: %w", err)
	}
	return FromSpec(spec)
}
