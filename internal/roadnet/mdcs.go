package roadnet

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// MDCSOptions tune the downstream-set computation.
type MDCSOptions struct {
	// IncludeSelf adds the querying camera to its own MDCS, supporting
	// U-turning vehicles that re-enter the same field of view (the
	// paper's Section 3.2 footnote describes exactly this extension).
	IncludeSelf bool
}

// MDCS computes the minimum downstream camera set for a camera and a
// vehicle moving direction (paper Section 3.3): the set of cameras the
// vehicle could reach first before any other camera in the system. It is
// a depth-first search from the camera's location; each branch returns as
// soon as it visits a camera, whether on an intersection or along a lane
// (Section 4.3). The querying camera itself never appears in its own MDCS
// (U-turns are out of scope, Section 3.2 footnote); use MDCSOpts with
// IncludeSelf for U-turn support.
func (g *Graph) MDCS(cameraID string, dir geo.Direction) ([]string, error) {
	return g.MDCSOpts(cameraID, dir, MDCSOptions{})
}

// MDCSOpts is MDCS with explicit options.
func (g *Graph) MDCSOpts(cameraID string, dir geo.Direction, opts MDCSOptions) ([]string, error) {
	place, err := g.CameraPlaceOf(cameraID)
	if err != nil {
		return nil, err
	}
	if !dir.Valid() {
		return nil, fmt.Errorf("roadnet: invalid direction %v", dir)
	}

	found := make(map[string]bool)
	visited := make(map[NodeID]bool)

	if place.onEdge {
		g.mdcsFromEdgeCamera(place, dir, visited, found)
	} else {
		for _, k := range g.matchingOutEdges(place.AtNode, dir) {
			g.traverse(k.from, k.to, 0, visited, found, cameraID)
		}
	}

	if opts.IncludeSelf {
		found[cameraID] = true
	} else {
		delete(found, cameraID)
	}
	out := make([]string, 0, len(found))
	for id := range found {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// mdcsFromEdgeCamera handles cameras that sit along a lane: the vehicle
// either continues forward along the lane or travels the reverse lane (if
// one exists), chosen by whichever orientation is closer to dir.
func (g *Graph) mdcsFromEdgeCamera(place CameraPlace, dir geo.Direction, visited map[NodeID]bool, found map[string]bool) {
	fwdBearing, err := g.EdgeBearing(place.OnEdgeFrom, place.OnEdgeTo)
	if err != nil {
		return
	}
	fwdDiff := geo.AngularDiffDegrees(dir.Bearing(), fwdBearing)
	revDiff := geo.AngularDiffDegrees(dir.Bearing(), fwdBearing+180)
	if fwdDiff <= revDiff {
		// The starting node of the forward traversal counts as visited so
		// branches cannot loop back through it.
		visited[place.OnEdgeFrom] = true
		g.traverse(place.OnEdgeFrom, place.OnEdgeTo, place.Frac, visited, found, place.ID)
		return
	}
	if !g.HasEdge(place.OnEdgeTo, place.OnEdgeFrom) {
		return // one-way lane; the vehicle cannot travel against it
	}
	visited[place.OnEdgeTo] = true
	g.traverse(place.OnEdgeTo, place.OnEdgeFrom, 1-place.Frac, visited, found, place.ID)
}

// matchingOutEdges returns the outgoing lanes of a node whose quantized
// bearing matches dir. When no lane matches exactly, the adjacent compass
// sectors are tried (nearest first) so that slightly misestimated vehicle
// directions still route to the right road.
func (g *Graph) matchingOutEdges(node NodeID, dir geo.Direction) []edgeKey {
	byDir := make(map[geo.Direction][]edgeKey)
	for _, k := range g.out[node] {
		b, err := g.EdgeBearing(k.from, k.to)
		if err != nil {
			continue
		}
		d := geo.DirectionFromBearing(b)
		byDir[d] = append(byDir[d], k)
	}
	if edges, ok := byDir[dir]; ok {
		return edges
	}
	// Try the two neighboring sectors, preferring the one whose edges are
	// angularly closer to the requested direction.
	prev := dir - 1
	if !prev.Valid() {
		prev = geo.NorthWest
	}
	next := dir + 1
	if !next.Valid() {
		next = geo.North
	}
	candidates := append(append([]edgeKey(nil), byDir[prev]...), byDir[next]...)
	if len(candidates) == 0 {
		return nil
	}
	best := candidates[:0]
	bestDiff := 361.0
	for _, k := range candidates {
		b, err := g.EdgeBearing(k.from, k.to)
		if err != nil {
			continue
		}
		diff := geo.AngularDiffDegrees(b, dir.Bearing())
		switch {
		case diff < bestDiff-1e-9:
			bestDiff = diff
			best = append(candidates[:0:0], k)
		case diff <= bestDiff+1e-9:
			best = append(best, k)
		}
	}
	return best
}

// traverse walks the lane from -> to starting at fractional position
// startFrac. It stops the branch at the first camera encountered (on the
// lane or at the target intersection); otherwise it recurses into the
// target's outgoing lanes, excluding the immediate U-turn.
func (g *Graph) traverse(from, to NodeID, startFrac float64, visited map[NodeID]bool, found map[string]bool, selfID string) {
	if _, ok := g.edges[edgeKey{from: from, to: to}]; !ok {
		return
	}
	for _, c := range g.roadCameras(from, to) {
		if c.frac > startFrac && c.id != selfID {
			found[c.id] = true
			return
		}
	}
	node := g.nodes[to]
	if node.CameraID != "" && node.CameraID != selfID {
		found[node.CameraID] = true
		return
	}
	if visited[to] {
		return
	}
	visited[to] = true
	for _, k := range g.out[to] {
		if k.to == from {
			continue // no immediate U-turn
		}
		g.traverse(k.from, k.to, 0, visited, found, selfID)
	}
}

// roadCameras returns every camera physically on the road between from and
// to — whichever directed lane it was registered on — with positions
// expressed as travel fractions in the from -> to direction and sorted in
// travel order. A camera watching a two-way road is reachable from either
// direction (paper Figure 8 treats the lane's camera list as a property of
// the road segment).
func (g *Graph) roadCameras(from, to NodeID) []edgeCamera {
	var out []edgeCamera
	if e, ok := g.edges[edgeKey{from: from, to: to}]; ok {
		out = append(out, e.cameras...)
	}
	if rev, ok := g.edges[edgeKey{from: to, to: from}]; ok {
		for _, c := range rev.cameras {
			out = append(out, edgeCamera{id: c.id, frac: 1 - c.frac})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].frac != out[j].frac {
			return out[i].frac < out[j].frac
		}
		return out[i].id < out[j].id
	})
	return out
}

// Directions returns the set of vehicle moving directions that make sense
// for a camera: the quantized bearings of the roads a vehicle can take
// away from its location (paper Section 3.3, observation 2).
func (g *Graph) Directions(cameraID string) ([]geo.Direction, error) {
	place, err := g.CameraPlaceOf(cameraID)
	if err != nil {
		return nil, err
	}
	set := make(map[geo.Direction]bool)
	if place.onEdge {
		if b, err := g.EdgeBearing(place.OnEdgeFrom, place.OnEdgeTo); err == nil {
			set[geo.DirectionFromBearing(b)] = true
			if g.HasEdge(place.OnEdgeTo, place.OnEdgeFrom) {
				set[geo.DirectionFromBearing(b+180)] = true
			}
		}
	} else {
		for _, k := range g.out[place.AtNode] {
			if b, err := g.EdgeBearing(k.from, k.to); err == nil {
				set[geo.DirectionFromBearing(b)] = true
			}
		}
	}
	out := make([]geo.Direction, 0, len(set))
	for _, d := range geo.AllDirections() {
		if set[d] {
			out = append(out, d)
		}
	}
	return out, nil
}

// MDCSAll computes the full MDCS table for a camera: every meaningful
// moving direction mapped to its downstream camera set. Directions whose
// MDCS is empty are included with an empty slice so callers can
// distinguish "no downstream camera" from "direction not applicable".
func (g *Graph) MDCSAll(cameraID string) (map[geo.Direction][]string, error) {
	dirs, err := g.Directions(cameraID)
	if err != nil {
		return nil, err
	}
	out := make(map[geo.Direction][]string, len(dirs))
	for _, d := range dirs {
		set, err := g.MDCS(cameraID, d)
		if err != nil {
			return nil, err
		}
		out[d] = set
	}
	return out, nil
}

// AverageMDCSSize returns the mean MDCS cardinality across every installed
// camera and each of its applicable directions. This is the quantity
// plotted in the paper's Figure 12(a).
func (g *Graph) AverageMDCSSize() (float64, error) {
	total, count := 0, 0
	for _, cam := range g.CameraIDs() {
		table, err := g.MDCSAll(cam)
		if err != nil {
			return 0, err
		}
		for _, set := range table {
			total += len(set)
			count++
		}
	}
	if count == 0 {
		return 0, nil
	}
	return float64(total) / float64(count), nil
}
