package roadnet

import (
	"errors"
	"testing"

	"repro/internal/geo"
)

// testOrigin is an arbitrary anchor for synthetic graphs.
var testOrigin = geo.Point{Lat: 33.7756, Lon: -84.3963}

// eastOf returns a point m meters east of the origin.
func eastOf(m float64) geo.Point { return offsetPoint(testOrigin, m, 0) }

func TestAddNodeAndEdgeBasics(t *testing.T) {
	g := NewGraph()
	if err := g.AddNode(1, testOrigin); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(1, testOrigin); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate node: %v", err)
	}
	if err := g.AddNode(2, eastOf(100)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); !errors.Is(err, ErrEdgeExists) {
		t.Errorf("duplicate edge: %v", err)
	}
	if err := g.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: %v", err)
	}
	if err := g.AddEdge(1, 99); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("missing target: %v", err)
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("edge direction wrong")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("counts %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestAddRoadIsBidirectional(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, eastOf(100)))
	mustAdd(t, g.AddRoad(1, 2))
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("road should add both lanes")
	}
}

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutNeighborsDeterministic(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(5, testOrigin))
	for _, id := range []NodeID{9, 2, 7, 1} {
		mustAdd(t, g.AddNode(id, eastOf(float64(id)*10)))
		mustAdd(t, g.AddEdge(5, id))
	}
	got := g.OutNeighbors(5)
	want := []NodeID{1, 2, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", got, want)
		}
	}
}

func TestEdgeLengthAndBearing(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, eastOf(200)))
	mustAdd(t, g.AddEdge(1, 2))
	l, err := g.EdgeLengthMeters(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l < 195 || l > 205 {
		t.Errorf("length = %v, want ~200", l)
	}
	b, err := g.EdgeBearing(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if geo.AngularDiffDegrees(b, 90) > 1 {
		t.Errorf("bearing = %v, want ~90", b)
	}
	if _, err := g.EdgeLengthMeters(2, 1); !errors.Is(err, ErrEdgeNotFound) {
		t.Errorf("reverse lane should not exist: %v", err)
	}
}

func TestCameraAtNode(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, eastOf(100)))
	if err := g.PlaceCameraAtNode("camA", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.PlaceCameraAtNode("camA", 2); !errors.Is(err, ErrCameraExists) {
		t.Errorf("duplicate camera id: %v", err)
	}
	if err := g.PlaceCameraAtNode("camB", 1); !errors.Is(err, ErrCameraOccupied) {
		t.Errorf("occupied node: %v", err)
	}
	if err := g.PlaceCameraAtNode("", 2); err == nil {
		t.Error("empty id should error")
	}
	place, err := g.CameraPlaceOf("camA")
	if err != nil || place.OnEdge() || place.AtNode != 1 {
		t.Errorf("place = %+v err %v", place, err)
	}
	pos, err := g.CameraPosition("camA")
	if err != nil || pos != testOrigin {
		t.Errorf("pos = %v err %v", pos, err)
	}
}

func TestCameraOnEdge(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, eastOf(100)))
	mustAdd(t, g.AddRoad(1, 2))
	if err := g.PlaceCameraOnEdge("camC", 1, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := g.PlaceCameraOnEdge("camD", 1, 2, 0.3); !errors.Is(err, ErrDuplicateOnEdge) {
		t.Errorf("same frac: %v", err)
	}
	if err := g.PlaceCameraOnEdge("camD", 1, 2, 1.5); !errors.Is(err, ErrBadFraction) {
		t.Errorf("bad frac: %v", err)
	}
	if err := g.PlaceCameraOnEdge("camD", 1, 2, 0.7); err != nil {
		t.Fatal(err)
	}
	e, err := g.Edge(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := e.CameraIDs()
	if len(ids) != 2 || ids[0] != "camC" || ids[1] != "camD" {
		t.Errorf("edge cameras = %v, want sorted by travel order", ids)
	}
	pos, err := g.CameraPosition("camD")
	if err != nil {
		t.Fatal(err)
	}
	if d := pos.DistanceMeters(eastOf(70)); d > 1 {
		t.Errorf("camD position off by %vm", d)
	}
}

func TestRemoveCamera(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, eastOf(100)))
	mustAdd(t, g.AddRoad(1, 2))
	mustAdd(t, g.PlaceCameraAtNode("camA", 1))
	mustAdd(t, g.PlaceCameraOnEdge("camC", 1, 2, 0.5))
	if err := g.RemoveCamera("camA"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveCamera("camA"); !errors.Is(err, ErrCameraNotFound) {
		t.Errorf("double remove: %v", err)
	}
	n, err := g.Node(1)
	if err != nil || n.CameraID != "" {
		t.Error("node camera not cleared")
	}
	// The node can host a new camera now.
	if err := g.PlaceCameraAtNode("camB", 1); err != nil {
		t.Errorf("re-place after remove: %v", err)
	}
	if err := g.RemoveCamera("camC"); err != nil {
		t.Fatal(err)
	}
	e, err := g.Edge(1, 2)
	if err != nil || len(e.CameraIDs()) != 0 {
		t.Error("edge camera not cleared")
	}
}

func TestNearestNode(t *testing.T) {
	g := NewGraph()
	if _, err := g.NearestNode(testOrigin); err == nil {
		t.Error("empty graph should error")
	}
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, eastOf(500)))
	got, err := g.NearestNode(eastOf(400))
	if err != nil || got != 2 {
		t.Errorf("nearest = %v err %v", got, err)
	}
	got, err = g.NearestNode(eastOf(100))
	if err != nil || got != 1 {
		t.Errorf("nearest = %v err %v", got, err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, eastOf(100)))
	mustAdd(t, g.AddRoad(1, 2))
	mustAdd(t, g.PlaceCameraAtNode("camA", 1))
	c := g.Clone()
	mustAdd(t, c.RemoveCamera("camA"))
	if _, err := g.CameraPlaceOf("camA"); err != nil {
		t.Error("mutating clone affected original")
	}
	mustAdd(t, c.PlaceCameraOnEdge("camX", 1, 2, 0.5))
	e, err := g.Edge(1, 2)
	if err != nil || len(e.CameraIDs()) != 0 {
		t.Error("clone shares edge camera lists")
	}
}

func TestCameraIDsSorted(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, eastOf(100)))
	mustAdd(t, g.AddNode(3, eastOf(200)))
	mustAdd(t, g.PlaceCameraAtNode("z", 1))
	mustAdd(t, g.PlaceCameraAtNode("a", 2))
	mustAdd(t, g.PlaceCameraAtNode("m", 3))
	ids := g.CameraIDs()
	if ids[0] != "a" || ids[1] != "m" || ids[2] != "z" {
		t.Errorf("ids = %v", ids)
	}
}
