package roadnet

import (
	"testing"

	"repro/internal/geo"
)

// northOf returns a point m meters north of the origin.
func northOf(m float64) geo.Point { return offsetPoint(testOrigin, 0, m) }

// at returns a point east/north of the origin.
func at(eastM, northM float64) geo.Point { return offsetPoint(testOrigin, eastM, northM) }

// buildCorridor builds 0 -- 1 -- 2 -- 3 -- 4 west-to-east two-way, with
// cameras at nodes 0, 2, 4.
func buildCorridor(t *testing.T) *Graph {
	t.Helper()
	g, ids, err := Corridor(5, 100, testOrigin)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 4} {
		if err := g.PlaceCameraAtNode(camName(i), ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func camName(i int) string { return string(rune('A' + i)) }

func wantMDCS(t *testing.T, g *Graph, cam string, dir geo.Direction, want ...string) {
	t.Helper()
	got, err := g.MDCS(cam, dir)
	if err != nil {
		t.Fatalf("MDCS(%s, %v): %v", cam, dir, err)
	}
	if len(got) != len(want) {
		t.Fatalf("MDCS(%s, %v) = %v, want %v", cam, dir, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MDCS(%s, %v) = %v, want %v", cam, dir, got, want)
		}
	}
}

func TestMDCSCorridor(t *testing.T) {
	g := buildCorridor(t)
	// Camera C (node 2): east -> E (node 4), west -> A (node 0). The
	// unequipped nodes 1 and 3 are passed through.
	wantMDCS(t, g, "C", geo.East, "E")
	wantMDCS(t, g, "C", geo.West, "A")
	// End cameras: nothing beyond the corridor.
	wantMDCS(t, g, "A", geo.West)
	wantMDCS(t, g, "E", geo.East)
	wantMDCS(t, g, "A", geo.East, "C")
}

func TestMDCSInvalidInputs(t *testing.T) {
	g := buildCorridor(t)
	if _, err := g.MDCS("nope", geo.East); err == nil {
		t.Error("unknown camera should error")
	}
	if _, err := g.MDCS("A", geo.DirectionInvalid); err == nil {
		t.Error("invalid direction should error")
	}
}

// TestMDCSBranching reproduces the paper's Figure 3: camera A upstream of
// an unequipped intersection where the road forks toward cameras B and C,
// so MDCS(A) = {B, C}.
func TestMDCSBranching(t *testing.T) {
	g := NewGraph()
	// A(0) -> junction(1) -> B(2) straight east, and junction -> C(3) north.
	mustAdd(t, g.AddNode(0, testOrigin))
	mustAdd(t, g.AddNode(1, at(100, 0)))
	mustAdd(t, g.AddNode(2, at(200, 0)))
	mustAdd(t, g.AddNode(3, at(100, 100)))
	mustAdd(t, g.AddRoad(0, 1))
	mustAdd(t, g.AddRoad(1, 2))
	mustAdd(t, g.AddRoad(1, 3))
	mustAdd(t, g.PlaceCameraAtNode("A", 0))
	mustAdd(t, g.PlaceCameraAtNode("B", 2))
	mustAdd(t, g.PlaceCameraAtNode("C", 3))
	wantMDCS(t, g, "A", geo.East, "B", "C")
	// From B heading west, the DFS passes the junction; branch north finds
	// C, branch west finds A.
	wantMDCS(t, g, "B", geo.West, "A", "C")
}

// TestMDCSFigure4 reproduces the paper's Figure 4 semantics: removing a
// camera reroutes the MDCS past the now-unequipped vertex, and adding a
// camera shields what lies beyond it.
func TestMDCSFigure4(t *testing.T) {
	// Layout (grid, two-way roads unless noted):
	//   D(0) -- x(1) -- B(2)
	//    |       |       |
	//   C(3) -- x(4) -- x(5)
	// D at top-left; DFS east from D crosses vertex 1 and stops at B;
	// DFS south stops at C.
	build := func() *Graph {
		g := NewGraph()
		mustAdd(t, g.AddNode(0, at(0, 100)))
		mustAdd(t, g.AddNode(1, at(100, 100)))
		mustAdd(t, g.AddNode(2, at(200, 100)))
		mustAdd(t, g.AddNode(3, at(0, 0)))
		mustAdd(t, g.AddNode(4, at(100, 0)))
		mustAdd(t, g.AddNode(5, at(200, 0)))
		mustAdd(t, g.AddRoad(0, 1))
		mustAdd(t, g.AddRoad(1, 2))
		mustAdd(t, g.AddRoad(0, 3))
		mustAdd(t, g.AddRoad(1, 4))
		mustAdd(t, g.AddRoad(2, 5))
		mustAdd(t, g.AddRoad(3, 4))
		mustAdd(t, g.AddRoad(4, 5))
		mustAdd(t, g.PlaceCameraAtNode("D", 0))
		mustAdd(t, g.PlaceCameraAtNode("B", 2))
		mustAdd(t, g.PlaceCameraAtNode("C", 3))
		return g
	}

	g := build()
	// From D east: through vertex 1; the straight branch hits B; the
	// branch south through 4 continues to 5 then up to 2 = B again, and
	// west to 3 = C. DFS visited-set semantics: the south branch from 1
	// explores 4, finds C at 3 and B via 5->2.
	got, err := g.MDCS("D", geo.East)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || !contains(got, "B") {
		t.Errorf("MDCS(D, E) = %v, must contain B", got)
	}
	wantMDCS(t, g, "D", geo.South, "C")

	// Remove B: now the DFS east from D keeps going past vertex 2.
	mustAdd(t, g.RemoveCamera("B"))
	got, err = g.MDCS("D", geo.East)
	if err != nil {
		t.Fatal(err)
	}
	if contains(got, "B") {
		t.Errorf("removed camera still in MDCS: %v", got)
	}
	if !contains(got, "C") {
		t.Errorf("MDCS(D, E) after removing B = %v, want C reachable via the loop", got)
	}

	// Add a camera E at vertex 1: it shields everything beyond it.
	mustAdd(t, g.PlaceCameraAtNode("E", 1))
	wantMDCS(t, g, "D", geo.East, "E")
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

// TestMDCSOneWay checks that one-way lanes block reverse travel.
func TestMDCSOneWay(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(0, testOrigin))
	mustAdd(t, g.AddNode(1, at(100, 0)))
	mustAdd(t, g.AddEdge(0, 1)) // one-way east
	mustAdd(t, g.PlaceCameraAtNode("A", 0))
	mustAdd(t, g.PlaceCameraAtNode("B", 1))
	wantMDCS(t, g, "A", geo.East, "B")
	wantMDCS(t, g, "B", geo.West) // cannot go against the one-way
}

// TestMDCSEdgeCameras reproduces the paper's Figure 8: cameras A at vertex
// 1 and B at vertex 2, cameras C and D along the lane between them (C
// close to 1, D close to 2). DFS from B toward 1 returns D.
func TestMDCSEdgeCameras(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, at(300, 0)))
	mustAdd(t, g.AddRoad(1, 2))
	mustAdd(t, g.PlaceCameraAtNode("A", 1))
	mustAdd(t, g.PlaceCameraAtNode("B", 2))
	mustAdd(t, g.PlaceCameraOnEdge("C", 1, 2, 0.3))
	mustAdd(t, g.PlaceCameraOnEdge("D", 1, 2, 0.7))

	wantMDCS(t, g, "B", geo.West, "D")
	wantMDCS(t, g, "A", geo.East, "C")
	// The edge cameras themselves: C eastward sees D; D eastward sees B.
	wantMDCS(t, g, "C", geo.East, "D")
	wantMDCS(t, g, "D", geo.East, "B")
	// And westward: D sees C; C sees A.
	wantMDCS(t, g, "D", geo.West, "C")
	wantMDCS(t, g, "C", geo.West, "A")
}

func TestMDCSEdgeCameraOnOneWay(t *testing.T) {
	g := NewGraph()
	mustAdd(t, g.AddNode(1, testOrigin))
	mustAdd(t, g.AddNode(2, at(300, 0)))
	mustAdd(t, g.AddEdge(1, 2)) // one-way east
	mustAdd(t, g.PlaceCameraAtNode("B", 2))
	mustAdd(t, g.PlaceCameraOnEdge("C", 1, 2, 0.5))
	wantMDCS(t, g, "C", geo.East, "B")
	wantMDCS(t, g, "C", geo.West) // nothing upstream on a one-way
}

func TestMDCSDirectionFallbackToAdjacentSector(t *testing.T) {
	// A road bearing ~40 degrees quantizes to NE; a vehicle estimated as
	// heading E (adjacent sector) should still route onto it.
	g := NewGraph()
	mustAdd(t, g.AddNode(0, testOrigin))
	mustAdd(t, g.AddNode(1, at(100, 120))) // bearing ~40 deg
	mustAdd(t, g.AddRoad(0, 1))
	mustAdd(t, g.PlaceCameraAtNode("A", 0))
	mustAdd(t, g.PlaceCameraAtNode("B", 1))
	wantMDCS(t, g, "A", geo.NorthEast, "B")
	wantMDCS(t, g, "A", geo.East, "B")  // adjacent sector fallback
	wantMDCS(t, g, "A", geo.North, "B") // other adjacent sector
	wantMDCS(t, g, "A", geo.South)      // opposite: no fallback
}

func TestMDCSCycleTermination(t *testing.T) {
	// A camera-free ring attached to one camera: the DFS must terminate
	// and return empty rather than loop.
	g := NewGraph()
	mustAdd(t, g.AddNode(0, testOrigin))
	mustAdd(t, g.AddNode(1, at(100, 0)))
	mustAdd(t, g.AddNode(2, at(200, 50)))
	mustAdd(t, g.AddNode(3, at(100, 100)))
	mustAdd(t, g.AddRoad(0, 1))
	mustAdd(t, g.AddRoad(1, 2))
	mustAdd(t, g.AddRoad(2, 3))
	mustAdd(t, g.AddRoad(3, 1))
	mustAdd(t, g.PlaceCameraAtNode("A", 0))
	wantMDCS(t, g, "A", geo.East) // empty, but terminates
}

func TestDirections(t *testing.T) {
	g := buildCorridor(t)
	dirs, err := g.Directions("C")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 || dirs[0] != geo.East || dirs[1] != geo.West {
		t.Errorf("Directions(C) = %v", dirs)
	}
	dirs, err = g.Directions("A")
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 has outgoing lanes only east.
	if len(dirs) != 1 || dirs[0] != geo.East {
		t.Errorf("Directions(A) = %v", dirs)
	}
}

func TestMDCSAll(t *testing.T) {
	g := buildCorridor(t)
	table, err := g.MDCSAll("C")
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 2 {
		t.Fatalf("table = %v", table)
	}
	if len(table[geo.East]) != 1 || table[geo.East][0] != "E" {
		t.Errorf("east = %v", table[geo.East])
	}
	if len(table[geo.West]) != 1 || table[geo.West][0] != "A" {
		t.Errorf("west = %v", table[geo.West])
	}
}

func TestAverageMDCSSizeDropsWithDensity(t *testing.T) {
	// On a grid, denser camera deployment shrinks the average MDCS.
	g, ids, err := Grid(4, 4, 100, testOrigin)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse: cameras at three corners; the DFS from each fans out over
	// the camera-free interior and finds multiple peers per direction.
	sparseCams := map[int]bool{0: true, 3: true, 12: true}
	for i := range sparseCams {
		mustAdd(t, g.PlaceCameraAtNode(camIDForGrid(i), ids[i]))
	}
	sparse, err := g.AverageMDCSSize()
	if err != nil {
		t.Fatal(err)
	}
	if sparse <= 1 {
		t.Fatalf("sparse average = %v, want > 1", sparse)
	}
	// Dense: a camera at every intersection.
	for i, id := range ids {
		if sparseCams[i] {
			continue
		}
		mustAdd(t, g.PlaceCameraAtNode(camIDForGrid(i), id))
	}
	dense, err := g.AverageMDCSSize()
	if err != nil {
		t.Fatal(err)
	}
	if dense >= sparse {
		t.Errorf("average MDCS should shrink with density: sparse=%v dense=%v", sparse, dense)
	}
	// Fully equipped grid: every direction leads to exactly the adjacent
	// camera, so the average is exactly 1.
	if dense != 1 {
		t.Errorf("fully equipped grid average = %v, want 1", dense)
	}
}

func camIDForGrid(i int) string { return "g" + string(rune('a'+i)) }

func TestAverageMDCSSizeEmptyGraph(t *testing.T) {
	g := NewGraph()
	avg, err := g.AverageMDCSSize()
	if err != nil || avg != 0 {
		t.Errorf("empty graph avg = %v err %v", avg, err)
	}
}

func TestMDCSIncludeSelfUTurn(t *testing.T) {
	g := buildCorridor(t)
	// The paper's footnote: U-turn support = the camera joins its own
	// MDCS.
	got, err := g.MDCSOpts("C", geo.East, MDCSOptions{IncludeSelf: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "C" || got[1] != "E" {
		t.Errorf("MDCS with U-turn = %v, want [C E]", got)
	}
	// Default behaviour unchanged.
	wantMDCS(t, g, "C", geo.East, "E")
}
