// Package roadnet models the road network underlying a Coral-Pie
// deployment: intersections are vertices, lanes are directed edges, and
// cameras sit either on vertices or along edges (paper Sections 3.3 and
// 4.3). The MDCS computation — a depth-first search whose branches stop at
// the first camera they visit — lives here too.
package roadnet

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geo"
)

// NodeID identifies an intersection.
type NodeID int

// Node is a road intersection.
type Node struct {
	ID  NodeID
	Pos geo.Point
	// CameraID is the camera installed at this intersection, or "" when
	// the intersection is unequipped.
	CameraID string
}

// edgeKey identifies a directed lane.
type edgeKey struct {
	from, to NodeID
}

// edgeCamera is a camera placed along a lane at a fractional position.
type edgeCamera struct {
	id   string
	frac float64 // position along the edge in (0, 1), in travel order
}

// Edge is a directed lane between two intersections. Cameras along the
// lane are kept sorted by travel order (paper Figure 8's list structure).
type Edge struct {
	From, To NodeID
	cameras  []edgeCamera
}

// CameraIDs returns the IDs of the cameras on the edge in travel order.
func (e *Edge) CameraIDs() []string {
	out := make([]string, len(e.cameras))
	for i, c := range e.cameras {
		out[i] = c.id
	}
	return out
}

// CameraPlace records where a camera sits in the graph.
type CameraPlace struct {
	ID string
	// AtNode is set when the camera is on an intersection.
	AtNode NodeID
	// OnEdge is set (From != To) when the camera lies along a lane;
	// Frac is its fractional position in travel order.
	OnEdgeFrom, OnEdgeTo NodeID
	Frac                 float64
	onEdge               bool
}

// OnEdge reports whether the camera sits along a lane rather than on an
// intersection.
func (p CameraPlace) OnEdge() bool { return p.onEdge }

// Errors returned by graph operations.
var (
	ErrNodeExists      = errors.New("roadnet: node already exists")
	ErrNodeNotFound    = errors.New("roadnet: node not found")
	ErrEdgeExists      = errors.New("roadnet: edge already exists")
	ErrEdgeNotFound    = errors.New("roadnet: edge not found")
	ErrCameraExists    = errors.New("roadnet: camera already exists")
	ErrCameraNotFound  = errors.New("roadnet: camera not found")
	ErrCameraOccupied  = errors.New("roadnet: node already has a camera")
	ErrSelfLoop        = errors.New("roadnet: self-loop edges are not allowed")
	ErrBadFraction     = errors.New("roadnet: edge fraction out of (0,1)")
	ErrDuplicateOnEdge = errors.New("roadnet: camera fraction collides on edge")
)

// Graph is a directed road network with camera placements. It is not safe
// for concurrent use; the topology server serializes access.
type Graph struct {
	nodes   map[NodeID]*Node
	out     map[NodeID][]edgeKey // outgoing edges per node, deterministic order
	edges   map[edgeKey]*Edge
	cameras map[string]CameraPlace
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:   make(map[NodeID]*Node),
		out:     make(map[NodeID][]edgeKey),
		edges:   make(map[edgeKey]*Edge),
		cameras: make(map[string]CameraPlace),
	}
}

// AddNode adds an intersection.
func (g *Graph) AddNode(id NodeID, pos geo.Point) error {
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("%w: %d", ErrNodeExists, id)
	}
	g.nodes[id] = &Node{ID: id, Pos: pos}
	return nil
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (*Node, error) {
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNodeNotFound, id)
	}
	return n, nil
}

// NodeIDs returns all node IDs in ascending order.
func (g *Graph) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the intersection count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the directed lane count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge adds a directed lane from -> to.
func (g *Graph) AddEdge(from, to NodeID) error {
	if from == to {
		return fmt.Errorf("%w: %d", ErrSelfLoop, from)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, to)
	}
	k := edgeKey{from: from, to: to}
	if _, ok := g.edges[k]; ok {
		return fmt.Errorf("%w: %d->%d", ErrEdgeExists, from, to)
	}
	g.edges[k] = &Edge{From: from, To: to}
	g.out[from] = insertSortedEdge(g.out[from], k)
	return nil
}

// insertSortedEdge keeps the outgoing-edge list ordered by target node so
// traversals are deterministic regardless of insertion order.
func insertSortedEdge(list []edgeKey, k edgeKey) []edgeKey {
	i := sort.Search(len(list), func(i int) bool { return list[i].to >= k.to })
	list = append(list, edgeKey{})
	copy(list[i+1:], list[i:])
	list[i] = k
	return list
}

// AddRoad adds a lane in each direction between a and b.
func (g *Graph) AddRoad(a, b NodeID) error {
	if err := g.AddEdge(a, b); err != nil {
		return err
	}
	if err := g.AddEdge(b, a); err != nil {
		return err
	}
	return nil
}

// Edge returns the directed lane from -> to.
func (g *Graph) Edge(from, to NodeID) (*Edge, error) {
	e, ok := g.edges[edgeKey{from: from, to: to}]
	if !ok {
		return nil, fmt.Errorf("%w: %d->%d", ErrEdgeNotFound, from, to)
	}
	return e, nil
}

// HasEdge reports whether the directed lane exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	_, ok := g.edges[edgeKey{from: from, to: to}]
	return ok
}

// OutNeighbors returns the target nodes of the outgoing lanes of id, in
// deterministic order.
func (g *Graph) OutNeighbors(id NodeID) []NodeID {
	keys := g.out[id]
	out := make([]NodeID, len(keys))
	for i, k := range keys {
		out[i] = k.to
	}
	return out
}

// EdgeLengthMeters returns the ground length of a lane.
func (g *Graph) EdgeLengthMeters(from, to NodeID) (float64, error) {
	if _, err := g.Edge(from, to); err != nil {
		return 0, err
	}
	return g.nodes[from].Pos.DistanceMeters(g.nodes[to].Pos), nil
}

// EdgeBearing returns the compass bearing of travel along the lane.
func (g *Graph) EdgeBearing(from, to NodeID) (float64, error) {
	if _, err := g.Edge(from, to); err != nil {
		return 0, err
	}
	return g.nodes[from].Pos.BearingDegrees(g.nodes[to].Pos), nil
}

// PlaceCameraAtNode installs a camera on an intersection. The paper
// assumes at most one camera per intersection.
func (g *Graph) PlaceCameraAtNode(cameraID string, node NodeID) error {
	if cameraID == "" {
		return errors.New("roadnet: empty camera id")
	}
	if _, ok := g.cameras[cameraID]; ok {
		return fmt.Errorf("%w: %q", ErrCameraExists, cameraID)
	}
	n, ok := g.nodes[node]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, node)
	}
	if n.CameraID != "" {
		return fmt.Errorf("%w: node %d has %q", ErrCameraOccupied, node, n.CameraID)
	}
	n.CameraID = cameraID
	g.cameras[cameraID] = CameraPlace{ID: cameraID, AtNode: node}
	return nil
}

// PlaceCameraOnEdge installs a camera along a lane at fractional position
// frac in (0, 1), measured in travel order from the lane's source.
func (g *Graph) PlaceCameraOnEdge(cameraID string, from, to NodeID, frac float64) error {
	if cameraID == "" {
		return errors.New("roadnet: empty camera id")
	}
	if _, ok := g.cameras[cameraID]; ok {
		return fmt.Errorf("%w: %q", ErrCameraExists, cameraID)
	}
	if frac <= 0 || frac >= 1 {
		return fmt.Errorf("%w: %v", ErrBadFraction, frac)
	}
	e, err := g.Edge(from, to)
	if err != nil {
		return err
	}
	for _, c := range e.cameras {
		if c.frac == frac {
			return fmt.Errorf("%w: %v", ErrDuplicateOnEdge, frac)
		}
	}
	e.cameras = append(e.cameras, edgeCamera{id: cameraID, frac: frac})
	sort.Slice(e.cameras, func(i, j int) bool { return e.cameras[i].frac < e.cameras[j].frac })
	g.cameras[cameraID] = CameraPlace{
		ID: cameraID, OnEdgeFrom: from, OnEdgeTo: to, Frac: frac, onEdge: true,
	}
	return nil
}

// RemoveCamera uninstalls a camera from wherever it sits.
func (g *Graph) RemoveCamera(cameraID string) error {
	place, ok := g.cameras[cameraID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrCameraNotFound, cameraID)
	}
	if place.onEdge {
		e := g.edges[edgeKey{from: place.OnEdgeFrom, to: place.OnEdgeTo}]
		for i, c := range e.cameras {
			if c.id == cameraID {
				e.cameras = append(e.cameras[:i], e.cameras[i+1:]...)
				break
			}
		}
	} else {
		g.nodes[place.AtNode].CameraID = ""
	}
	delete(g.cameras, cameraID)
	return nil
}

// CameraPlaceOf returns where a camera sits.
func (g *Graph) CameraPlaceOf(cameraID string) (CameraPlace, error) {
	place, ok := g.cameras[cameraID]
	if !ok {
		return CameraPlace{}, fmt.Errorf("%w: %q", ErrCameraNotFound, cameraID)
	}
	return place, nil
}

// CameraIDs returns all installed cameras in lexicographic order.
func (g *Graph) CameraIDs() []string {
	out := make([]string, 0, len(g.cameras))
	for id := range g.cameras {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CameraPosition returns a camera's geographic position (for edge cameras,
// the interpolated point along the lane).
func (g *Graph) CameraPosition(cameraID string) (geo.Point, error) {
	place, err := g.CameraPlaceOf(cameraID)
	if err != nil {
		return geo.Point{}, err
	}
	if !place.onEdge {
		return g.nodes[place.AtNode].Pos, nil
	}
	from := g.nodes[place.OnEdgeFrom].Pos
	to := g.nodes[place.OnEdgeTo].Pos
	return from.Lerp(to, place.Frac), nil
}

// NearestNode returns the node closest to pos. It errors on an empty
// graph.
func (g *Graph) NearestNode(pos geo.Point) (NodeID, error) {
	if len(g.nodes) == 0 {
		return 0, errors.New("roadnet: empty graph")
	}
	best := NodeID(-1)
	bestDist := -1.0
	for _, id := range g.NodeIDs() {
		d := g.nodes[id].Pos.DistanceMeters(pos)
		if bestDist < 0 || d < bestDist {
			best, bestDist = id, d
		}
	}
	return best, nil
}

// Clone returns a deep copy of the graph, used by the topology server to
// compute diffs without holding its lock.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for id, n := range g.nodes {
		nn := *n
		c.nodes[id] = &nn
	}
	for k, e := range g.edges {
		ne := &Edge{From: e.From, To: e.To, cameras: append([]edgeCamera(nil), e.cameras...)}
		c.edges[k] = ne
	}
	for id, keys := range g.out {
		c.out[id] = append([]edgeKey(nil), keys...)
	}
	for id, p := range g.cameras {
		c.cameras[id] = p
	}
	return c
}
