package roadnet

import (
	"bytes"
	"testing"

	"repro/internal/geo"
)

func TestGridGeneration(t *testing.T) {
	g, ids, err := Grid(3, 4, 100, testOrigin)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 12 || g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// 3x4 grid: horizontal roads 3*3=9, vertical 2*4=8; each two-way.
	if g.NumEdges() != (9+8)*2 {
		t.Errorf("edges = %d, want %d", g.NumEdges(), (9+8)*2)
	}
	// Geometry: node 1 is east of node 0, node 4 is south of node 0.
	b, err := g.EdgeBearing(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if geo.DirectionFromBearing(b) != geo.East {
		t.Errorf("bearing 0->1 = %v", b)
	}
	b, err = g.EdgeBearing(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if geo.DirectionFromBearing(b) != geo.South {
		t.Errorf("bearing 0->4 = %v", b)
	}
}

func TestGridValidation(t *testing.T) {
	if _, _, err := Grid(0, 4, 100, testOrigin); err == nil {
		t.Error("zero rows should error")
	}
	if _, _, err := Grid(2, 2, -5, testOrigin); err == nil {
		t.Error("negative spacing should error")
	}
}

func TestCampusTopology(t *testing.T) {
	g, sites, err := Campus()
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 37 {
		t.Fatalf("sites = %d, want 37", len(sites))
	}
	if g.NumNodes() != 37 {
		t.Fatalf("nodes = %d, want 37", g.NumNodes())
	}
	// One-way streets exist in exactly one direction.
	if !g.HasEdge(8, 9) || g.HasEdge(9, 8) {
		t.Error("8->9 should be one-way")
	}
	if !g.HasEdge(30, 31) || g.HasEdge(31, 30) {
		t.Error("30->31 should be one-way")
	}
	// Strong connectivity: every node reaches every other following
	// directed lanes (vehicles must be able to route anywhere).
	for _, start := range g.NodeIDs() {
		reached := reachableFrom(g, start)
		if len(reached) != g.NumNodes() {
			t.Fatalf("node %d reaches only %d/%d nodes", start, len(reached), g.NumNodes())
		}
	}
}

func reachableFrom(g *Graph, start NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.OutNeighbors(n) {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

func TestCampusDeterministic(t *testing.T) {
	g1, s1, err := Campus()
	if err != nil {
		t.Fatal(err)
	}
	g2, s2, err := Campus()
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Error("campus generation not deterministic")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("site order not deterministic")
		}
	}
}

func TestCorridor(t *testing.T) {
	g, ids, err := Corridor(5, 120, testOrigin)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || g.NumEdges() != 8 {
		t.Fatalf("nodes %d edges %d", len(ids), g.NumEdges())
	}
	l, err := g.EdgeLengthMeters(ids[0], ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if l < 115 || l > 125 {
		t.Errorf("spacing = %v", l)
	}
	if _, _, err := Corridor(1, 100, testOrigin); err == nil {
		t.Error("single-node corridor should error")
	}
	if _, _, err := Corridor(3, 0, testOrigin); err == nil {
		t.Error("zero spacing should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, ids, err := Corridor(4, 100, testOrigin)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, g.PlaceCameraAtNode("A", ids[0]))
	mustAdd(t, g.PlaceCameraOnEdge("B", ids[1], ids[2], 0.4))

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Errorf("round trip: %d/%d nodes, %d/%d edges",
			got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges())
	}
	place, err := got.CameraPlaceOf("B")
	if err != nil {
		t.Fatal(err)
	}
	if !place.OnEdge() || place.Frac != 0.4 {
		t.Errorf("camera B place = %+v", place)
	}
	placeA, err := got.CameraPlaceOf("A")
	if err != nil || placeA.OnEdge() || placeA.AtNode != ids[0] {
		t.Errorf("camera A place = %+v err %v", placeA, err)
	}
	// MDCS agrees before and after the round trip.
	want, err := g.MDCS("A", geo.East)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.MDCS("A", geo.East)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(have) || (len(want) > 0 && want[0] != have[0]) {
		t.Errorf("MDCS mismatch after round trip: %v vs %v", want, have)
	}
}

func TestFromSpecErrors(t *testing.T) {
	if _, err := FromSpec(Spec{Cameras: []CameraSpec{{ID: "x"}}}); err == nil {
		t.Error("camera without placement should error")
	}
	if _, err := FromSpec(Spec{Edges: []EdgeSpec{{From: 1, To: 2}}}); err == nil {
		t.Error("edge with missing nodes should error")
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("garbage JSON should error")
	}
}
