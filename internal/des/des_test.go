package des

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

var testEpoch = time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)

func TestScheduleOrdering(t *testing.T) {
	s := New(testEpoch)
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order %v, want %v", got, want)
			break
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(testEpoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(got) {
		t.Errorf("same-time events must fire FIFO, got %v", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(testEpoch)
	var times []time.Duration
	s.Schedule(time.Second, func() {
		times = append(times, s.Now())
		s.Schedule(time.Second, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("nested schedule times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	s := New(testEpoch)
	fired := false
	e := s.Schedule(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !e.Canceled() {
		t.Error("Canceled() should be true")
	}
	// Cancel after firing is a no-op.
	fired2 := false
	e2 := s.Schedule(time.Second, func() { fired2 = true })
	s.Run()
	e2.Cancel()
	if !fired2 {
		t.Error("event should have fired")
	}
}

func TestCancelNil(t *testing.T) {
	var e *Event
	e.Cancel() // must not panic
}

func TestRunUntil(t *testing.T) {
	s := New(testEpoch)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Errorf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", s.Pending())
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 5 {
		t.Errorf("fired %d events after second RunUntil, want 5", len(fired))
	}
	if s.Now() != 10*time.Second {
		t.Errorf("Now() advances to deadline even with no events: %v", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New(testEpoch)
	s.RunFor(time.Minute)
	if s.Now() != time.Minute {
		t.Errorf("Now() = %v", s.Now())
	}
	s.RunFor(time.Minute)
	if s.Now() != 2*time.Minute {
		t.Errorf("Now() = %v", s.Now())
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	s := New(testEpoch)
	s.RunFor(10 * time.Second)
	fired := time.Duration(-1)
	s.ScheduleAt(5*time.Second, func() { fired = s.Now() })
	s.Run()
	if fired != 10*time.Second {
		t.Errorf("past event fired at %v, want clamped to 10s", fired)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := New(testEpoch)
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Errorf("negative delay should fire at t=0, fired=%v now=%v", fired, s.Now())
	}
}

func TestTime(t *testing.T) {
	s := New(testEpoch)
	s.RunFor(90 * time.Second)
	want := testEpoch.Add(90 * time.Second)
	if !s.Time().Equal(want) {
		t.Errorf("Time() = %v, want %v", s.Time(), want)
	}
	if !s.Epoch().Equal(testEpoch) {
		t.Errorf("Epoch() = %v", s.Epoch())
	}
}

func TestTicker(t *testing.T) {
	s := New(testEpoch)
	var fires []time.Duration
	tk := s.Every(2*time.Second, func() { fires = append(fires, s.Now()) })
	s.RunUntil(7 * time.Second)
	tk.Stop()
	s.RunUntil(20 * time.Second)
	if len(fires) != 3 {
		t.Fatalf("ticker fired %d times, want 3: %v", len(fires), fires)
	}
	for i, want := range []time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second} {
		if fires[i] != want {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want)
		}
	}
}

func TestTickerStopIdempotent(t *testing.T) {
	s := New(testEpoch)
	tk := s.Every(time.Second, func() {})
	tk.Stop()
	tk.Stop()
	s.Run() // must terminate
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New(testEpoch)
	count := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 2 {
		t.Errorf("ticker fired %d times, want 2", count)
	}
}

func TestManyRandomEventsFireInOrder(t *testing.T) {
	s := New(testEpoch)
	rng := rand.New(rand.NewSource(42))
	var fired []time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d := time.Duration(rng.Intn(1000)) * time.Millisecond
		s.Schedule(d, func() { fired = append(fired, s.Now()) })
	}
	s.Run()
	if len(fired) != n {
		t.Fatalf("fired %d, want %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events out of order at %d: %v < %v", i, fired[i], fired[i-1])
		}
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(testEpoch)
	if s.Step() {
		t.Error("Step() on empty simulator should return false")
	}
	e := s.Schedule(time.Second, func() {})
	e.Cancel()
	if s.Step() {
		t.Error("Step() with only canceled events should return false")
	}
}
