// Package des implements a deterministic discrete-event simulator. All of
// the paper-scale experiments (fault tolerance, MDCS scaling, communication
// timing) run on this engine so that results are reproducible bit-for-bit
// and independent of the host machine's speed.
//
// The simulator is single-threaded by design: event callbacks run on the
// goroutine that calls Run/RunUntil/Step, and may schedule further events.
package des

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index, -1 once popped or canceled
	fired  bool
	cancel bool
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.fired {
		return
	}
	e.cancel = true
}

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.cancel }

// eventQueue is a min-heap ordered by (at, seq) so that events scheduled
// for the same instant fire in scheduling order.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e, ok := x.(*Event)
	if !ok {
		return
	}
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is a discrete-event simulation engine with a virtual clock.
// The zero value is not usable; call New.
type Simulator struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
	epoch time.Time
}

// New returns a simulator whose virtual clock starts at zero. Wall-clock
// timestamps produced by Time are offset from epoch.
func New(epoch time.Time) *Simulator {
	return &Simulator{epoch: epoch}
}

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (s *Simulator) Now() time.Duration { return s.now }

// Time returns the current virtual time as a wall-clock instant.
func (s *Simulator) Time() time.Time { return s.epoch.Add(s.now) }

// Epoch returns the wall-clock instant corresponding to virtual time zero.
func (s *Simulator) Epoch() time.Time { return s.epoch }

// Pending returns the number of events waiting to fire, including canceled
// events that have not yet been discarded.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule registers fn to run after delay. A negative delay is treated as
// zero (the event fires at the current time, after already-queued events
// for that time).
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt registers fn to run at absolute virtual time at. Times in the
// past are clamped to the present.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	if at < s.now {
		at = s.now
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Step fires the next event, advancing the clock to its time. It returns
// false if no events remain.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			return false
		}
		if e.cancel {
			continue
		}
		s.now = e.at
		e.fired = true
		e.fn()
		return true
	}
	return false
}

// Run fires events until none remain. Callbacks that keep scheduling new
// events (for example periodic tickers) make Run unbounded; use RunUntil
// in that case.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time <= deadline, then advances the clock to
// the deadline.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.cancel {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d from the current time.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

// Ticker fires a callback at a fixed virtual-time interval until stopped.
type Ticker struct {
	sim      *Simulator
	interval time.Duration
	fn       func()
	next     *Event
	stopped  bool
}

// Every schedules fn to run every interval, with the first firing one
// interval from now. The returned Ticker must be stopped to allow Run to
// terminate.
func (s *Simulator) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		interval = time.Nanosecond
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.next = s.Schedule(interval, t.fire)
	return t
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.next = t.sim.Schedule(t.interval, t.fire)
	}
}

// Stop cancels future firings. Stopping a stopped ticker is a no-op.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.next.Cancel()
}
