package query

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/rpc"
	"repro/internal/trajstore"
)

// randomStore builds a random acyclic trajectory graph with ground-truth
// vehicle IDs, varied cameras, and increasing timestamps.
func randomStore(t *testing.T, seed int64) (*trajstore.Store, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := trajstore.NewMemStore()
	n := 3 + rng.Intn(18)
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		cam := fmt.Sprintf("cam%d", rng.Intn(6))
		e := event(fmt.Sprintf("%s#%d", cam, i), cam,
			time.Duration(i*5+rng.Intn(5))*time.Second, fmt.Sprintf("veh-%d", rng.Intn(4)))
		id, err := s.AddVertex(e)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.12 {
				if err := s.AddEdge(ids[i], ids[j], rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s, ids
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServerSideEquivalenceRandomGraphs is the engine's core contract:
// on randomized graphs, the server-side reconstruct/best/sightings ops
// return byte-identical answers (marshalled JSON, so ordering, weights,
// and timestamps all count) to the local query package walking the same
// store — and so does the client-side per-vertex fallback.
func TestServerSideEquivalenceRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s, ids := randomStore(t, seed)
			srv, err := trajstore.Serve(s, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = srv.Close() }()
			client, err := trajstore.Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = client.Close() }()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			local := StoreReader{Store: s}
			limits := trajstore.TraceLimits{MaxDepth: 32, MaxPaths: 64}

			rng := rand.New(rand.NewSource(seed + 1000))
			starts := []int64{ids[0], ids[len(ids)-1], ids[rng.Intn(len(ids))]}
			for _, start := range starts {
				want, err := ReconstructFromVertex(local, start, limits)
				if err != nil {
					t.Fatal(err)
				}
				got, err := client.ReconstructVertexContext(ctx, start, limits)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
					t.Fatalf("vertex %d: server-side reconstruct diverged\n got: %s\nwant: %s",
						start, mustJSON(t, got), mustJSON(t, want))
				}
				// The per-vertex fallback over the same wire must agree too.
				fb, err := ReconstructFromVertex(client, start, limits)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mustJSON(t, fb), mustJSON(t, want)) {
					t.Fatalf("vertex %d: fallback reconstruct diverged", start)
				}

				v, err := s.Vertex(start)
				if err != nil {
					t.Fatal(err)
				}
				wantBest, wantErr := Best(local, v.Event.ID, limits)
				gotBest, gotErr := client.BestContext(ctx, v.Event.ID, limits)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("best errors diverge: %v vs %v", gotErr, wantErr)
				}
				if wantErr == nil && !bytes.Equal(mustJSON(t, gotBest), mustJSON(t, wantBest)) {
					t.Fatalf("event %q: best diverged", v.Event.ID)
				}
			}

			for v := 0; v < 4; v++ {
				vehicle := fmt.Sprintf("veh-%d", v)
				want, err := VehicleSightings(local, int64(s.NumVertices()), vehicle)
				if err != nil {
					t.Fatal(err)
				}
				got, err := client.SightingsContext(ctx, vehicle, int64(s.NumVertices()))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(mustJSON(t, got), mustJSON(t, want)) {
					t.Fatalf("%s: sightings diverged\n got: %s\nwant: %s",
						vehicle, mustJSON(t, got), mustJSON(t, want))
				}
			}
		})
	}
}

// countingReader counts reads per accessor, to pin the memoization
// contract of the client-side fallback.
type countingReader struct {
	g        GraphReader
	vertex   map[int64]int
	outEdges map[int64]int
	calls    int
}

func newCountingReader(g GraphReader) *countingReader {
	return &countingReader{g: g, vertex: map[int64]int{}, outEdges: map[int64]int{}}
}

func (c *countingReader) Vertex(id int64) (trajstore.Vertex, error) {
	c.calls++
	c.vertex[id]++
	return c.g.Vertex(id)
}

func (c *countingReader) FindByEventID(id protocol.EventID) (trajstore.Vertex, error) {
	c.calls++
	return c.g.FindByEventID(id)
}

func (c *countingReader) Trajectory(id int64, limits trajstore.TraceLimits) ([][]int64, error) {
	c.calls++
	return c.g.Trajectory(id, limits)
}

func (c *countingReader) OutEdges(id int64) ([]trajstore.Edge, error) {
	c.calls++
	c.outEdges[id]++
	return c.g.OutEdges(id)
}

func (c *countingReader) InEdges(id int64) ([]trajstore.Edge, error) {
	c.calls++
	return c.g.InEdges(id)
}

// TestReconstructMemoizesFetchesWithinOneCall: on a branching graph whose
// candidate paths share long prefixes, the fallback walk must fetch each
// vertex and edge list at most once per query — not once per path hop
// (the N+1 pattern this memoization removes).
func TestReconstructMemoizesFetchesWithinOneCall(t *testing.T) {
	s := trajstore.NewMemStore()
	mk := func(id, cam string, at time.Duration) int64 {
		vid, err := s.AddVertex(event(id, cam, at, ""))
		if err != nil {
			t.Fatal(err)
		}
		return vid
	}
	// A chain a->b->c that fans out into four leaves at c: every candidate
	// path repeats the a,b,c prefix.
	a := mk("a#1", "a", 0)
	b := mk("b#1", "b", time.Second)
	c := mk("c#1", "c", 2*time.Second)
	leaves := make([]int64, 4)
	for i := range leaves {
		leaves[i] = mk(fmt.Sprintf("leaf%d#1", i), fmt.Sprintf("leaf%d", i), 3*time.Second)
	}
	for _, e := range []struct {
		from, to int64
	}{{a, b}, {b, c}} {
		if err := s.AddEdge(e.from, e.to, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	for _, leaf := range leaves {
		if err := s.AddEdge(c, leaf, 0.2); err != nil {
			t.Fatal(err)
		}
	}

	counter := newCountingReader(StoreReader{Store: s})
	tracks, err := ReconstructFromVertex(counter, a, trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != len(leaves) {
		t.Fatalf("tracks = %d, want %d", len(tracks), len(leaves))
	}
	totalHops := 0
	for _, tr := range tracks {
		totalHops += len(tr.Hops)
	}
	if totalHops <= 7 {
		t.Fatalf("graph not branching enough to exercise memoization: %d total hops", totalHops)
	}
	for id, n := range counter.vertex {
		if n > 1 {
			t.Errorf("vertex %d fetched %d times within one query", id, n)
		}
	}
	for id, n := range counter.outEdges {
		if n > 1 {
			t.Errorf("out edges of %d fetched %d times within one query", id, n)
		}
	}
	// 7 distinct vertices + 3 distinct edge-list fetches + 1 trajectory:
	// far below the naive sum over path hops.
	if counter.calls > 11 {
		t.Errorf("%d reads for a query the memoized walk answers in <= 11", counter.calls)
	}
}

// TestFallbackRPCCountAgainstServer repeats the memoization check over a
// real connection, counting actual RPC round trips via the client's
// metrics.
func TestFallbackRPCCountAgainstServer(t *testing.T) {
	s, _ := buildGraph(t) // 4 vertices, paths share the v1 prefix
	srv, err := trajstore.Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := trajstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	before := client.Metrics().Calls.Value()
	tracks, err := Reconstruct(client, "camA#1", trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	rpcs := client.Metrics().Calls.Value() - before
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	// find_by_event + trajectory + 4 vertices + at most 2 edge lists: the
	// unmemoized walk needed one vertex fetch per hop (5 hops across the
	// two overlapping tracks) plus repeated edge lists.
	if rpcs > 8 {
		t.Errorf("fallback reconstruct used %d RPCs, want <= 8 with memoization", rpcs)
	}

	// Server-side: the same question in exactly one round trip.
	before = client.Metrics().Calls.Value()
	if _, err := client.Reconstruct("camA#1", trajstore.DefaultTraceLimits()); err != nil {
		t.Fatal(err)
	}
	if rpcs := client.Metrics().Calls.Value() - before; rpcs != 1 {
		t.Errorf("server-side reconstruct used %d RPCs, want 1", rpcs)
	}
}

// TestRemoteSentinelErrors: sentinel identity survives the wire for both
// query styles, so callers can errors.Is regardless of where the walk
// ran.
func TestRemoteSentinelErrors(t *testing.T) {
	s, _ := buildGraph(t)
	srv, err := trajstore.Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := trajstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	if _, err := client.Reconstruct("ghost#9", trajstore.DefaultTraceLimits()); !errors.Is(err, trajstore.ErrVertexNotFound) {
		t.Errorf("server-side unknown event: %v", err)
	}
	if _, err := client.Best("ghost#9", trajstore.DefaultTraceLimits()); !errors.Is(err, trajstore.ErrVertexNotFound) {
		t.Errorf("server-side best of unknown event: %v", err)
	}
	if _, err := Reconstruct(client, "ghost#9", trajstore.DefaultTraceLimits()); !errors.Is(err, trajstore.ErrVertexNotFound) {
		t.Errorf("fallback unknown event: %v", err)
	}
	if _, err := Best(client, "ghost#9", trajstore.DefaultTraceLimits()); !errors.Is(err, trajstore.ErrVertexNotFound) {
		t.Errorf("fallback best of unknown event: %v", err)
	}
}

// TestRemoteBestAndSightingsMatchLocal covers Best and VehicleSightings
// over the remote client path against their local answers.
func TestRemoteBestAndSightingsMatchLocal(t *testing.T) {
	s, _ := buildGraph(t)
	srv, err := trajstore.Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := trajstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	local := StoreReader{Store: s}
	wantBest, err := Best(local, "camA#1", trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	gotBest, err := client.Best("camA#1", trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, gotBest), mustJSON(t, wantBest)) {
		t.Errorf("remote best diverged:\n got: %s\nwant: %s", mustJSON(t, gotBest), mustJSON(t, wantBest))
	}

	wantHops, err := VehicleSightings(local, int64(s.NumVertices()), "veh-1")
	if err != nil {
		t.Fatal(err)
	}
	gotHops, err := client.Sightings("veh-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotHops) != 3 || !bytes.Equal(mustJSON(t, gotHops), mustJSON(t, wantHops)) {
		t.Errorf("remote sightings diverged:\n got: %s\nwant: %s", mustJSON(t, gotHops), mustJSON(t, wantHops))
	}
	// The fallback VehicleSightings over the per-vertex ops agrees too.
	fbHops, err := VehicleSightings(client, int64(s.NumVertices()), "veh-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, fbHops), mustJSON(t, wantHops)) {
		t.Errorf("fallback sightings diverged")
	}
}

// TestRemoteQueryDeadline: a server-side query that outlives the caller's
// context surfaces as a deadline error through the rpc middleware, and
// the client's deadline counter records it.
func TestRemoteQueryDeadline(t *testing.T) {
	s, _ := buildGraph(t)
	slow := func(ctx context.Context, req *rpc.Request, next rpc.Handler) (*rpc.Response, error) {
		if req.Method == "reconstruct" {
			time.Sleep(500 * time.Millisecond)
		}
		return next(ctx, req)
	}
	srv, err := trajstore.ServeWith(s, "127.0.0.1:0", trajstore.ServerOptions{
		Interceptors: []rpc.ServerInterceptor{slow},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := trajstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	before := client.Metrics().DeadlineExceeded.Value()
	_, err = client.ReconstructContext(ctx, "camA#1", trajstore.DefaultTraceLimits())
	if err == nil {
		t.Fatal("query against a slow server beat an 80ms deadline")
	}
	if !rpc.IsDeadlineError(err) {
		t.Errorf("error is not a deadline error: %v", err)
	}
	if got := client.Metrics().DeadlineExceeded.Value(); got != before+1 {
		t.Errorf("deadline counter = %d, want %d", got, before+1)
	}
}
