// Package query is the analytics layer over the trajectory graph that the
// paper defers to "a human user or more advanced analytics in the Cloud"
// (Section 4.2.1) and to future work (Section 8): it reconstructs
// candidate space-time tracks from any sighting, scores them by
// re-identification confidence, and ranks them so the most plausible
// trajectory comes first.
package query

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/protocol"
	"repro/internal/trajstore"
)

// GraphReader is the read surface the query layer needs. Both the local
// *trajstore.Store (via StoreReader) and the remote *trajstore.Client
// satisfy it.
type GraphReader interface {
	Vertex(id int64) (trajstore.Vertex, error)
	FindByEventID(id protocol.EventID) (trajstore.Vertex, error)
	Trajectory(id int64, limits trajstore.TraceLimits) ([][]int64, error)
	OutEdges(id int64) ([]trajstore.Edge, error)
	InEdges(id int64) ([]trajstore.Edge, error)
}

// StoreReader adapts a local store to GraphReader (the store's edge
// accessors do not return errors).
type StoreReader struct {
	Store *trajstore.Store
}

var _ GraphReader = StoreReader{}

// Vertex implements GraphReader.
func (r StoreReader) Vertex(id int64) (trajstore.Vertex, error) { return r.Store.Vertex(id) }

// FindByEventID implements GraphReader.
func (r StoreReader) FindByEventID(id protocol.EventID) (trajstore.Vertex, error) {
	return r.Store.FindByEventID(id)
}

// Trajectory implements GraphReader.
func (r StoreReader) Trajectory(id int64, limits trajstore.TraceLimits) ([][]int64, error) {
	return r.Store.Trajectory(id, limits)
}

// OutEdges implements GraphReader.
func (r StoreReader) OutEdges(id int64) ([]trajstore.Edge, error) {
	return r.Store.OutEdges(id), nil
}

// InEdges implements GraphReader.
func (r StoreReader) InEdges(id int64) ([]trajstore.Edge, error) {
	return r.Store.InEdges(id), nil
}

var _ GraphReader = (*trajstore.Client)(nil)

// Hop is one sighting on a reconstructed track.
type Hop struct {
	VertexID int64
	Camera   string
	Time     time.Time
	// LinkWeight is the Bhattacharyya distance of the edge arriving at
	// this hop (0 for the first hop).
	LinkWeight float64
}

// Track is one candidate space-time trajectory.
type Track struct {
	Hops []Hop
	// TotalWeight sums the link weights; lower = more confident.
	TotalWeight float64
	// MeanWeight is TotalWeight over the number of links (0 for a
	// single-sighting track).
	MeanWeight float64
	// Duration spans the first to the last sighting.
	Duration time.Duration
}

// Cameras returns the camera sequence of the track.
func (t Track) Cameras() []string {
	out := make([]string, len(t.Hops))
	for i, h := range t.Hops {
		out[i] = h.Camera
	}
	return out
}

// Reconstruct returns every candidate track through the sighting with the
// given event ID, ranked: longer tracks first (more of the vehicle's
// journey explained), then lower mean link weight (higher confidence).
func Reconstruct(g GraphReader, eventID protocol.EventID, limits trajstore.TraceLimits) ([]Track, error) {
	if g == nil {
		return nil, errors.New("query: nil graph reader")
	}
	start, err := g.FindByEventID(eventID)
	if err != nil {
		return nil, err
	}
	return ReconstructFromVertex(g, start.ID, limits)
}

// ReconstructFromVertex is Reconstruct keyed by vertex ID.
func ReconstructFromVertex(g GraphReader, vertexID int64, limits trajstore.TraceLimits) ([]Track, error) {
	if g == nil {
		return nil, errors.New("query: nil graph reader")
	}
	paths, err := g.Trajectory(vertexID, limits)
	if err != nil {
		return nil, err
	}
	tracks := make([]Track, 0, len(paths))
	for _, path := range paths {
		track, err := buildTrack(g, path)
		if err != nil {
			return nil, err
		}
		tracks = append(tracks, track)
	}
	sort.SliceStable(tracks, func(i, j int) bool {
		if len(tracks[i].Hops) != len(tracks[j].Hops) {
			return len(tracks[i].Hops) > len(tracks[j].Hops)
		}
		return tracks[i].MeanWeight < tracks[j].MeanWeight
	})
	return tracks, nil
}

// Best returns the top-ranked track through a sighting.
func Best(g GraphReader, eventID protocol.EventID, limits trajstore.TraceLimits) (Track, error) {
	tracks, err := Reconstruct(g, eventID, limits)
	if err != nil {
		return Track{}, err
	}
	if len(tracks) == 0 {
		return Track{}, fmt.Errorf("query: no tracks through %q", eventID)
	}
	return tracks[0], nil
}

func buildTrack(g GraphReader, path []int64) (Track, error) {
	if len(path) == 0 {
		return Track{}, errors.New("query: empty path")
	}
	track := Track{Hops: make([]Hop, 0, len(path))}
	for i, vid := range path {
		v, err := g.Vertex(vid)
		if err != nil {
			return Track{}, err
		}
		hop := Hop{VertexID: vid, Camera: v.Event.CameraID, Time: v.Event.Timestamp}
		if i > 0 {
			w, err := edgeWeight(g, path[i-1], vid)
			if err != nil {
				return Track{}, err
			}
			hop.LinkWeight = w
			track.TotalWeight += w
		}
		track.Hops = append(track.Hops, hop)
	}
	if n := len(track.Hops) - 1; n > 0 {
		track.MeanWeight = track.TotalWeight / float64(n)
	}
	track.Duration = track.Hops[len(track.Hops)-1].Time.Sub(track.Hops[0].Time)
	return track, nil
}

func edgeWeight(g GraphReader, from, to int64) (float64, error) {
	edges, err := g.OutEdges(from)
	if err != nil {
		return 0, err
	}
	for _, e := range edges {
		if e.To == to {
			return e.Weight, nil
		}
	}
	return 0, fmt.Errorf("query: missing edge %d->%d", from, to)
}

// VehicleSightings lists every sighting whose simulation ground truth
// matches the vehicle ID, in time order — an evaluation convenience for
// comparing reconstructed tracks with what actually happened.
func VehicleSightings(g GraphReader, maxVertexID int64, vehicleID string) ([]Hop, error) {
	if g == nil {
		return nil, errors.New("query: nil graph reader")
	}
	var out []Hop
	for vid := int64(1); vid <= maxVertexID; vid++ {
		v, err := g.Vertex(vid)
		if err != nil {
			continue
		}
		if v.Event.TruthID != vehicleID {
			continue
		}
		out = append(out, Hop{VertexID: vid, Camera: v.Event.CameraID, Time: v.Event.Timestamp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}
