// Package query is the analytics layer over the trajectory graph that the
// paper defers to "a human user or more advanced analytics in the Cloud"
// (Section 4.2.1) and to future work (Section 8): it reconstructs
// candidate space-time tracks from any sighting, scores them by
// re-identification confidence, and ranks them so the most plausible
// trajectory comes first.
//
// The reconstruction algorithm itself lives in internal/trajstore (one
// implementation shared with the server-side query engine); this
// package runs it client-side over any GraphReader — a local store or
// the remote per-vertex RPC client — which is the wire-compatible
// fallback when the server does not speak the reconstruct/best/
// sightings ops. Within one call, vertex and edge fetches are memoized
// so the remote fallback issues at most one RPC per distinct vertex
// instead of one per path hop (the N+1 walk).
package query

import (
	"errors"

	"repro/internal/protocol"
	"repro/internal/trajstore"
)

// GraphReader is the read surface the query layer needs. Both the local
// *trajstore.Store (via StoreReader) and the remote *trajstore.Client
// satisfy it. It is identical to trajstore.GraphView.
type GraphReader interface {
	Vertex(id int64) (trajstore.Vertex, error)
	FindByEventID(id protocol.EventID) (trajstore.Vertex, error)
	Trajectory(id int64, limits trajstore.TraceLimits) ([][]int64, error)
	OutEdges(id int64) ([]trajstore.Edge, error)
	InEdges(id int64) ([]trajstore.Edge, error)
}

// StoreReader adapts a local store to GraphReader (the store's edge
// accessors do not return errors).
type StoreReader struct {
	Store *trajstore.Store
}

var _ GraphReader = StoreReader{}

// Vertex implements GraphReader.
func (r StoreReader) Vertex(id int64) (trajstore.Vertex, error) { return r.Store.Vertex(id) }

// FindByEventID implements GraphReader.
func (r StoreReader) FindByEventID(id protocol.EventID) (trajstore.Vertex, error) {
	return r.Store.FindByEventID(id)
}

// Trajectory implements GraphReader.
func (r StoreReader) Trajectory(id int64, limits trajstore.TraceLimits) ([][]int64, error) {
	return r.Store.Trajectory(id, limits)
}

// OutEdges implements GraphReader.
func (r StoreReader) OutEdges(id int64) ([]trajstore.Edge, error) {
	return r.Store.OutEdges(id), nil
}

// InEdges implements GraphReader.
func (r StoreReader) InEdges(id int64) ([]trajstore.Edge, error) {
	return r.Store.InEdges(id), nil
}

var _ GraphReader = (*trajstore.Client)(nil)

// Hop is one sighting on a reconstructed track.
type Hop = trajstore.Hop

// Track is one candidate space-time trajectory.
type Track = trajstore.Track

// memoReader wraps a GraphReader and caches successful Vertex, OutEdges,
// and InEdges answers for the lifetime of one query. Candidate paths
// through a branching graph share long prefixes, so the naive walk
// re-fetches the same vertices once per path; over the remote client
// each re-fetch is a WAN round trip. One memoReader is created per
// call, so the cache can never serve answers stale across queries.
type memoReader struct {
	g        GraphReader
	vertices map[int64]trajstore.Vertex
	out      map[int64][]trajstore.Edge
	in       map[int64][]trajstore.Edge
}

func newMemoReader(g GraphReader) *memoReader {
	return &memoReader{
		g:        g,
		vertices: make(map[int64]trajstore.Vertex),
		out:      make(map[int64][]trajstore.Edge),
		in:       make(map[int64][]trajstore.Edge),
	}
}

func (m *memoReader) Vertex(id int64) (trajstore.Vertex, error) {
	if v, ok := m.vertices[id]; ok {
		return v, nil
	}
	v, err := m.g.Vertex(id)
	if err != nil {
		return trajstore.Vertex{}, err
	}
	m.vertices[id] = v
	return v, nil
}

func (m *memoReader) FindByEventID(id protocol.EventID) (trajstore.Vertex, error) {
	return m.g.FindByEventID(id)
}

func (m *memoReader) Trajectory(id int64, limits trajstore.TraceLimits) ([][]int64, error) {
	return m.g.Trajectory(id, limits)
}

func (m *memoReader) OutEdges(id int64) ([]trajstore.Edge, error) {
	if es, ok := m.out[id]; ok {
		return es, nil
	}
	es, err := m.g.OutEdges(id)
	if err != nil {
		return nil, err
	}
	m.out[id] = es
	return es, nil
}

func (m *memoReader) InEdges(id int64) ([]trajstore.Edge, error) {
	if es, ok := m.in[id]; ok {
		return es, nil
	}
	es, err := m.g.InEdges(id)
	if err != nil {
		return nil, err
	}
	m.in[id] = es
	return es, nil
}

// Reconstruct returns every candidate track through the sighting with the
// given event ID, ranked: longer tracks first (more of the vehicle's
// journey explained), then lower mean link weight (higher confidence).
func Reconstruct(g GraphReader, eventID protocol.EventID, limits trajstore.TraceLimits) ([]Track, error) {
	if g == nil {
		return nil, errors.New("query: nil graph reader")
	}
	return trajstore.FindTracks(newMemoReader(g), eventID, limits)
}

// ReconstructFromVertex is Reconstruct keyed by vertex ID.
func ReconstructFromVertex(g GraphReader, vertexID int64, limits trajstore.TraceLimits) ([]Track, error) {
	if g == nil {
		return nil, errors.New("query: nil graph reader")
	}
	return trajstore.ReconstructTracks(newMemoReader(g), vertexID, limits)
}

// Best returns the top-ranked track through a sighting. A sighting
// with no tracks surfaces as trajstore.ErrNoTracks.
func Best(g GraphReader, eventID protocol.EventID, limits trajstore.TraceLimits) (Track, error) {
	if g == nil {
		return Track{}, errors.New("query: nil graph reader")
	}
	return trajstore.BestTrack(newMemoReader(g), eventID, limits)
}

// VehicleSightings lists every sighting whose simulation ground truth
// matches the vehicle ID, in time order — an evaluation convenience for
// comparing reconstructed tracks with what actually happened.
func VehicleSightings(g GraphReader, maxVertexID int64, vehicleID string) ([]Hop, error) {
	if g == nil {
		return nil, errors.New("query: nil graph reader")
	}
	return trajstore.SightingsOf(newMemoReader(g), maxVertexID, vehicleID)
}
