package query

import (
	"math"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/protocol"
	"repro/internal/trajstore"
)

var epoch = time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)

func event(id string, camera string, at time.Duration, truth string) protocol.DetectionEvent {
	h := feature.Histogram{Bins: make([]float64, feature.HistogramSize)}
	h.Bins[0] = 1
	return protocol.DetectionEvent{
		ID:        protocol.EventID(id),
		CameraID:  camera,
		Timestamp: epoch.Add(at),
		Histogram: h,
		TruthID:   truth,
	}
}

// buildGraph constructs:
//
//	v1(camA,0s) --0.1--> v2(camB,10s) --0.2--> v3(camC,20s)
//	                \--0.5--> v4(camX,12s)          (false-positive branch)
func buildGraph(t *testing.T) (*trajstore.Store, []int64) {
	t.Helper()
	s := trajstore.NewMemStore()
	mk := func(id, cam string, at time.Duration, truth string) int64 {
		t.Helper()
		vid, err := s.AddVertex(event(id, cam, at, truth))
		if err != nil {
			t.Fatal(err)
		}
		return vid
	}
	v1 := mk("camA#1", "camA", 0, "veh-1")
	v2 := mk("camB#1", "camB", 10*time.Second, "veh-1")
	v3 := mk("camC#1", "camC", 20*time.Second, "veh-1")
	v4 := mk("camX#1", "camX", 12*time.Second, "veh-2")
	for _, e := range []struct {
		from, to int64
		w        float64
	}{{v1, v2, 0.1}, {v2, v3, 0.2}, {v1, v4, 0.5}} {
		if err := s.AddEdge(e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return s, []int64{v1, v2, v3, v4}
}

func TestReconstructRanksLongestFirst(t *testing.T) {
	s, ids := buildGraph(t)
	tracks, err := Reconstruct(StoreReader{Store: s}, "camA#1", trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2 (true path + FP branch)", len(tracks))
	}
	best := tracks[0]
	if len(best.Hops) != 3 {
		t.Fatalf("best track hops = %d, want 3", len(best.Hops))
	}
	wantCams := []string{"camA", "camB", "camC"}
	for i, cam := range best.Cameras() {
		if cam != wantCams[i] {
			t.Errorf("hop %d = %s, want %s", i, cam, wantCams[i])
		}
	}
	if math.Abs(best.TotalWeight-0.3) > 1e-9 {
		t.Errorf("total weight = %v", best.TotalWeight)
	}
	if math.Abs(best.MeanWeight-0.15) > 1e-9 {
		t.Errorf("mean weight = %v", best.MeanWeight)
	}
	if best.Duration != 20*time.Second {
		t.Errorf("duration = %v", best.Duration)
	}
	if best.Hops[0].LinkWeight != 0 || best.Hops[1].LinkWeight != 0.1 {
		t.Errorf("link weights = %+v", best.Hops)
	}
	// The false-positive branch ranks second.
	if len(tracks[1].Hops) != 2 || tracks[1].Hops[1].Camera != "camX" {
		t.Errorf("second track = %+v", tracks[1])
	}
	_ = ids
}

func TestBest(t *testing.T) {
	s, _ := buildGraph(t)
	best, err := Best(StoreReader{Store: s}, "camB#1", trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	// Through the middle sighting, the best track spans all three cameras.
	if len(best.Hops) != 3 {
		t.Errorf("best = %+v", best.Cameras())
	}
	if _, err := Best(StoreReader{Store: s}, "ghost#1", trajstore.DefaultTraceLimits()); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestTieBreakByMeanWeight(t *testing.T) {
	s := trajstore.NewMemStore()
	mk := func(id, cam string, at time.Duration) int64 {
		vid, err := s.AddVertex(event(id, cam, at, ""))
		if err != nil {
			t.Fatal(err)
		}
		return vid
	}
	v1 := mk("a#1", "a", 0)
	v2 := mk("b#1", "b", time.Second)
	v3 := mk("c#1", "c", time.Second)
	if err := s.AddEdge(v1, v2, 0.4); err != nil { // weak branch
		t.Fatal(err)
	}
	if err := s.AddEdge(v1, v3, 0.1); err != nil { // strong branch
		t.Fatal(err)
	}
	tracks, err := Reconstruct(StoreReader{Store: s}, "a#1", trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	if tracks[0].Hops[1].Camera != "c" {
		t.Errorf("equal-length tracks should rank by confidence; got %v first", tracks[0].Cameras())
	}
}

func TestVehicleSightings(t *testing.T) {
	s, _ := buildGraph(t)
	hops, err := VehicleSightings(StoreReader{Store: s}, int64(s.NumVertices()), "veh-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 {
		t.Fatalf("sightings = %d", len(hops))
	}
	for i := 1; i < len(hops); i++ {
		if hops[i].Time.Before(hops[i-1].Time) {
			t.Error("sightings out of time order")
		}
	}
}

func TestRemoteClientSatisfiesGraphReader(t *testing.T) {
	s, _ := buildGraph(t)
	srv, err := trajstore.Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client, err := trajstore.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	best, err := Best(client, "camA#1", trajstore.DefaultTraceLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Hops) != 3 || math.Abs(best.TotalWeight-0.3) > 1e-9 {
		t.Errorf("remote best = %+v", best)
	}
}

func TestNilReader(t *testing.T) {
	if _, err := Reconstruct(nil, "x#1", trajstore.DefaultTraceLimits()); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := VehicleSightings(nil, 1, "v"); err == nil {
		t.Error("nil reader accepted")
	}
}
