package query

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/trajstore"
)

// BenchmarkQueryPath measures the read path of the trajectory store over
// loopback TCP on a 20-hop trajectory: the server-side reconstruct op
// (one round trip against a snapshot) vs the wire-compatible per-vertex
// fallback walk. A background writer streams batches of unrelated
// vertices throughout, so the numbers include snapshot rebuilds and
// cache invalidation under write pressure — the deployment steady state.
// Each mode reports rpcs/op, the round-trip count per reconstructed
// trajectory.
func BenchmarkQueryPath(b *testing.B) {
	const hops = 20 // 21 vertices, 20 links
	s := trajstore.NewMemStore()
	ids := make([]int64, hops+1)
	for i := range ids {
		id, err := s.AddVertex(event(fmt.Sprintf("cam%d#1", i), fmt.Sprintf("cam%d", i),
			time.Duration(i)*5*time.Second, "veh-0"))
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i+1 < len(ids); i++ {
		if err := s.AddEdge(ids[i], ids[i+1], 0.1); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := trajstore.Serve(s, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	limits := trajstore.TraceLimits{MaxDepth: 64, MaxPaths: 8}
	ctx := context.Background()

	startWriter := func(b *testing.B) func() {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			w, err := trajstore.Dial(srv.Addr())
			if err != nil {
				return
			}
			defer func() { _ = w.Close() }()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := []protocol.TrajWrite{
					protocol.VertexWrite(event(fmt.Sprintf("bg%d#a", i), "bg", 0, "")),
					protocol.VertexWrite(event(fmt.Sprintf("bg%d#b", i), "bg", 0, "")),
				}
				if _, _, err := w.AddBatchContext(ctx, batch); err != nil {
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
		return func() { close(stop); <-done }
	}

	run := func(b *testing.B, reconstruct func(c *trajstore.Client) error) {
		client, err := trajstore.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = client.Close() }()
		stopWriter := startWriter(b)
		defer stopWriter()
		callsBefore := client.Metrics().Calls.Value()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := reconstruct(client); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		rpcs := client.Metrics().Calls.Value() - callsBefore
		b.ReportMetric(float64(rpcs)/float64(b.N), "rpcs/op")
	}

	b.Run("serverside", func(b *testing.B) {
		run(b, func(c *trajstore.Client) error {
			tracks, err := c.ReconstructVertexContext(ctx, ids[0], limits)
			if err != nil {
				return err
			}
			if len(tracks) == 0 || len(tracks[0].Hops) != hops+1 {
				return fmt.Errorf("got %d tracks", len(tracks))
			}
			return nil
		})
	})
	b.Run("pervertex", func(b *testing.B) {
		run(b, func(c *trajstore.Client) error {
			tracks, err := ReconstructFromVertex(c, ids[0], limits)
			if err != nil {
				return err
			}
			if len(tracks) == 0 || len(tracks[0].Hops) != hops+1 {
				return fmt.Errorf("got %d tracks", len(tracks))
			}
			return nil
		})
	})
}
