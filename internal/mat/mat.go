// Package mat implements the small dense-matrix operations needed by the
// Kalman filter in the SORT tracker. Matrices are row-major float64 and
// sized for state dimensions under ~10, so simplicity beats cache tricks.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned by Inverse when the matrix has no inverse.
var ErrSingular = errors.New("mat: matrix is singular")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a rows×cols zero matrix. It panics if either dimension is
// not positive, which indicates a programming error rather than a runtime
// condition.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal,
// nonzero length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mat: empty rows")
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mat: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// ColVector returns a len(v)×1 column vector with the given entries.
func ColVector(v ...float64) *Matrix {
	m := New(len(v), 1)
	copy(m.data, v)
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d × %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*b.cols+j] += a * b.data[k*b.cols+j]
			}
		}
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b, "Add")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b, "Sub")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns m scaled by s.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Inverse returns m⁻¹ computed by Gauss-Jordan elimination with partial
// pivoting. It returns ErrSingular when no inverse exists.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("mat: Inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest absolute value.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a.At(r, col)) > math.Abs(a.At(pivot, col)) {
				pivot = r
			}
		}
		pv := a.At(pivot, col)
		if math.Abs(pv) < 1e-12 {
			return nil, ErrSingular
		}
		a.swapRows(col, pivot)
		inv.swapRows(col, pivot)
		invPv := 1 / pv
		for j := 0; j < n; j++ {
			a.data[col*n+j] *= invPv
			inv.data[col*n+j] *= invPv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.data[r*n+j] -= f * a.data[col*n+j]
				inv.data[r*n+j] -= f * inv.data[col*n+j]
			}
		}
	}
	return inv, nil
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// EqualApprox reports whether m and b have the same shape and all entries
// within tol of each other.
func (m *Matrix) EqualApprox(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a compact row-per-line layout.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteByte('\n')
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.4g", m.At(i, j))
		}
	}
	return sb.String()
}

func (m *Matrix) mustSameShape(b *Matrix, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}
