package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromRows(t *testing.T, rows [][]float64) *Matrix {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

func TestFromRowsValidation(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("empty rows should error")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
}

func TestMul(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	want := mustFromRows(t, [][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.EqualApprox(want, 1e-12) {
		t.Errorf("Mul =\n%v\nwant\n%v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	if got := a.Mul(Identity(4)); !got.EqualApprox(a, 1e-12) {
		t.Error("A×I != A")
	}
	if got := Identity(4).Mul(a); !got.EqualApprox(a, 1e-12) {
		t.Error("I×A != A")
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestAddSubScale(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{10, 20}, {30, 40}})
	if got := a.Add(b); got.At(1, 1) != 44 {
		t.Errorf("Add wrong: %v", got)
	}
	if got := b.Sub(a); got.At(0, 0) != 9 {
		t.Errorf("Sub wrong: %v", got)
	}
	if got := a.Scale(3); got.At(1, 0) != 9 {
		t.Errorf("Scale wrong: %v", got)
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 10 {
		t.Error("operations must not mutate operands")
	}
}

func TestTranspose(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("transpose values wrong:\n%v", at)
	}
	if !at.Transpose().EqualApprox(a, 0) {
		t.Error("double transpose should be identity operation")
	}
}

func TestInverse(t *testing.T) {
	a := mustFromRows(t, [][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	want := mustFromRows(t, [][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.EqualApprox(want, 1e-9) {
		t.Errorf("Inverse =\n%v\nwant\n%v", inv, want)
	}
}

func TestInverseSingular(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Error("non-square inverse should error")
	}
}

func TestInversePropertyAInvAIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the matrix comfortably invertible.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return a.Mul(inv).EqualApprox(Identity(n), 1e-8) &&
			inv.Mul(a).EqualApprox(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPivotingHandlesZeroLeadingEntry(t *testing.T) {
	a := mustFromRows(t, [][]float64{{0, 1}, {1, 0}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	if !inv.EqualApprox(a, 1e-12) {
		t.Errorf("permutation matrix is its own inverse, got\n%v", inv)
	}
}

func TestColVector(t *testing.T) {
	v := ColVector(1, 2, 3)
	if v.Rows() != 3 || v.Cols() != 1 || v.At(2, 0) != 3 {
		t.Errorf("ColVector wrong: %v", v)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone must be independent of original")
	}
}

func TestEqualApproxShapes(t *testing.T) {
	if New(2, 2).EqualApprox(New(2, 3), 1) {
		t.Error("different shapes must not be equal")
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	s := mustFromRows(t, [][]float64{{1.5, -2}, {0, math.Pi}}).String()
	if s == "" {
		t.Error("String() empty")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 3)
}
