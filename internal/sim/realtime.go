package sim

import (
	"errors"
	"io"
	"time"

	"repro/internal/vision"
)

// RealtimeSource adapts a simulated camera to a wall-clock frame source:
// each Next call sleeps until the next frame instant and renders the
// world at the corresponding virtual time. It lets the live TCP runtime
// (cmd/coral-node) consume synthetic traffic as if it were a real camera
// stream.
type RealtimeSource struct {
	camera   *Camera
	interval time.Duration
	start    time.Time
	deadline time.Time
	tick     int64
	now      func() time.Time
	sleep    func(time.Duration)
}

// NewRealtimeSource wraps a camera at its spec's FPS, ending the stream
// after duration. Virtual time zero corresponds to the moment of this
// call.
func NewRealtimeSource(camera *Camera, duration time.Duration) (*RealtimeSource, error) {
	return NewRealtimeSourceAt(camera, time.Now(), duration)
}

// NewRealtimeSourceAt anchors virtual time zero at start, which may be in
// the future: processes on different machines sharing the same start
// instant then render the same world in lock-step, enabling cross-camera
// re-identification over a real network.
func NewRealtimeSourceAt(camera *Camera, start time.Time, duration time.Duration) (*RealtimeSource, error) {
	if camera == nil {
		return nil, errors.New("sim: nil camera")
	}
	if duration <= 0 {
		return nil, errors.New("sim: non-positive stream duration")
	}
	return &RealtimeSource{
		camera:   camera,
		interval: time.Duration(float64(time.Second) / camera.spec.FPS),
		start:    start,
		deadline: start.Add(duration),
		now:      time.Now,
		sleep:    time.Sleep,
	}, nil
}

// Next blocks until the next frame instant and returns the rendered
// frame; io.EOF after the configured duration.
func (s *RealtimeSource) Next() (*vision.Frame, error) {
	due := s.start.Add(time.Duration(s.tick) * s.interval)
	if due.After(s.deadline) {
		return nil, io.EOF
	}
	if wait := due.Sub(s.now()); wait > 0 {
		s.sleep(wait)
	}
	s.tick++
	return s.camera.Render(due.Sub(s.start)), nil
}
