package sim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/imaging"
	"repro/internal/roadnet"
	"repro/internal/vision"
)

var epoch = time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC)

// newCorridorWorld builds a 3-node east-west corridor with 200 m spacing.
func newCorridorWorld(t *testing.T) (*World, []roadnet.NodeID) {
	t.Helper()
	g, ids, err := roadnet.Corridor(3, 200, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(WorldConfig{Sim: des.New(epoch), Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	return w, ids
}

func nodePos(t *testing.T, w *World, id roadnet.NodeID) geo.Point {
	t.Helper()
	n, err := w.Graph().Node(id)
	if err != nil {
		t.Fatal(err)
	}
	return n.Pos
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(WorldConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestAddVehicleValidation(t *testing.T) {
	w, ids := newCorridorWorld(t)
	bad := []VehicleSpec{
		{ID: "", SpeedMPS: 10, Route: ids},
		{ID: "v", SpeedMPS: 0, Route: ids},
		{ID: "v", SpeedMPS: 10, Route: ids[:1]},
		{ID: "v", SpeedMPS: 10, Route: []roadnet.NodeID{ids[0], ids[2]}}, // no direct lane
	}
	for i, spec := range bad {
		if err := w.AddVehicle(spec); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
	good := VehicleSpec{ID: "v", Color: imaging.Red, SpeedMPS: 10, Route: ids}
	if err := w.AddVehicle(good); err != nil {
		t.Fatal(err)
	}
	if err := w.AddVehicle(good); err == nil {
		t.Error("duplicate vehicle accepted")
	}
}

func TestVehicleMotion(t *testing.T) {
	w, ids := newCorridorWorld(t)
	// 400 m at 20 m/s = 20 s.
	if err := w.AddVehicle(VehicleSpec{ID: "v", Color: imaging.Red, SpeedMPS: 20, Route: ids, Depart: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	done, err := w.VehicleDone("v")
	if err != nil {
		t.Fatal(err)
	}
	if diff := (done - 25*time.Second).Abs(); diff > 50*time.Millisecond {
		t.Errorf("done = %v, want ~25s", done)
	}
	if _, visible, _ := w.VehiclePosition("v", 2*time.Second); visible {
		t.Error("visible before departure")
	}
	pos, visible, err := w.VehiclePosition("v", 10*time.Second)
	if err != nil || !visible {
		t.Fatal("should be visible at t=10s")
	}
	// 5 s into the trip at 20 m/s = 100 m east of node 0.
	if d := pos.DistanceMeters(nodePos(t, w, ids[0])); d < 95 || d > 105 {
		t.Errorf("traveled %vm, want ~100", d)
	}
	if _, visible, _ := w.VehiclePosition("v", 30*time.Second); visible {
		t.Error("visible after completion")
	}
	if _, _, err := w.VehiclePosition("ghost", 0); err == nil {
		t.Error("unknown vehicle accepted")
	}
}

func TestTrafficLightDelaysVehicle(t *testing.T) {
	w, ids := newCorridorWorld(t)
	// Light at the middle node: red except for the first 10% of each
	// 60 s cycle.
	if err := w.AddTrafficLight(TrafficLight{Node: ids[1], Period: 60 * time.Second, GreenFrac: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddVehicle(VehicleSpec{ID: "v", Color: imaging.Red, SpeedMPS: 20, Route: ids}); err != nil {
		t.Fatal(err)
	}
	// Leg 1: 10 s; arrives at node 1 at t=10s, cycle position 10s > 6s
	// green window, so it waits until t=60s, then 10 s more.
	done, err := w.VehicleDone("v")
	if err != nil {
		t.Fatal(err)
	}
	if diff := (done - 70*time.Second).Abs(); diff > 50*time.Millisecond {
		t.Errorf("done = %v, want ~70s (waited at the light)", done)
	}
	// While waiting the vehicle sits at node 1.
	pos, visible, err := w.VehiclePosition("v", 30*time.Second)
	if err != nil || !visible {
		t.Fatal("should be waiting at the light")
	}
	if d := pos.DistanceMeters(nodePos(t, w, ids[1])); d > 1 {
		t.Errorf("waiting position off by %vm", d)
	}
}

func TestTrafficLightValidation(t *testing.T) {
	w, ids := newCorridorWorld(t)
	if err := w.AddTrafficLight(TrafficLight{Node: 999, Period: time.Minute, GreenFrac: 0.5}); err == nil {
		t.Error("unknown node accepted")
	}
	if err := w.AddTrafficLight(TrafficLight{Node: ids[0], Period: 0, GreenFrac: 0.5}); err == nil {
		t.Error("zero period accepted")
	}
	if err := w.AddTrafficLight(TrafficLight{Node: ids[0], Period: time.Minute, GreenFrac: 1.5}); err == nil {
		t.Error("bad green fraction accepted")
	}
}

func TestGreenAt(t *testing.T) {
	l := TrafficLight{Period: 10 * time.Second, GreenFrac: 0.5}
	if green, _ := l.greenAt(2 * time.Second); !green {
		t.Error("t=2s should be green")
	}
	green, next := l.greenAt(7 * time.Second)
	if green {
		t.Error("t=7s should be red")
	}
	if next != 10*time.Second {
		t.Errorf("next green at %v, want 10s", next)
	}
}

func TestCameraRendersVehicle(t *testing.T) {
	w, ids := newCorridorWorld(t)
	if err := w.AddVehicle(VehicleSpec{ID: "v", Color: imaging.Red, SpeedMPS: 20, Route: ids}); err != nil {
		t.Fatal(err)
	}
	spec := DefaultCameraSpec("cam1", nodePos(t, w, ids[1]), 0)
	cam, err := w.AddCamera(spec, func(*vision.Frame) {})
	if err != nil {
		t.Fatal(err)
	}

	// At t=10s the vehicle is exactly at node 1 (the camera position).
	f := cam.Render(10 * time.Second)
	if len(f.Truth) != 1 || f.Truth[0].ID != "v" {
		t.Fatalf("truth = %+v", f.Truth)
	}
	box := f.Truth[0].Box
	cx, cy := box.CenterX(), box.CenterY()
	if cx < float64(spec.Width)/2-2 || cx > float64(spec.Width)/2+2 {
		t.Errorf("vehicle centered at x=%v", cx)
	}
	if cy < float64(spec.Height)/2-2 || cy > float64(spec.Height)/2+2 {
		t.Errorf("vehicle centered at y=%v", cy)
	}
	// The rendered pixels really are the vehicle color.
	center := f.Image.At(int(cx), int(cy))
	if center != imaging.Red {
		t.Errorf("center pixel = %+v", center)
	}
	// Far away (t=0, 200 m west): out of frame.
	f0 := cam.Render(0)
	if len(f0.Truth) != 0 {
		t.Errorf("vehicle should be out of view at t=0: %+v", f0.Truth)
	}
}

func TestCameraMotionDirectionInImage(t *testing.T) {
	// With heading 0 (up = north), an eastbound vehicle should move
	// rightward (+x) across the image.
	w, ids := newCorridorWorld(t)
	if err := w.AddVehicle(VehicleSpec{ID: "v", Color: imaging.Red, SpeedMPS: 20, Route: ids}); err != nil {
		t.Fatal(err)
	}
	cam, err := w.AddCamera(DefaultCameraSpec("cam1", nodePos(t, w, ids[1]), 0), func(*vision.Frame) {})
	if err != nil {
		t.Fatal(err)
	}
	f1 := cam.Render(9 * time.Second)
	f2 := cam.Render(10 * time.Second)
	if len(f1.Truth) != 1 || len(f2.Truth) != 1 {
		t.Skipf("vehicle not visible at both instants: %d/%d", len(f1.Truth), len(f2.Truth))
	}
	if f2.Truth[0].Box.CenterX() <= f1.Truth[0].Box.CenterX() {
		t.Error("eastbound vehicle should move right in the image")
	}
}

func TestCameraTicksAndVisits(t *testing.T) {
	w, ids := newCorridorWorld(t)
	if err := w.AddVehicle(VehicleSpec{ID: "v", Color: imaging.Red, SpeedMPS: 20, Route: ids}); err != nil {
		t.Fatal(err)
	}
	var frames int
	var truthFrames int
	_, err := w.AddCamera(DefaultCameraSpec("cam1", nodePos(t, w, ids[1]), 0), func(f *vision.Frame) {
		frames++
		if len(f.Truth) > 0 {
			truthFrames++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StartCameras()
	w.Sim().RunUntil(25 * time.Second)
	w.StopCameras()
	w.Sim().Run() // drain

	if frames < 300 { // 15 FPS * 25 s minus the first tick offset
		t.Errorf("frames = %d", frames)
	}
	if truthFrames == 0 {
		t.Error("vehicle never appeared in any frame")
	}
	visits, err := w.Visits("cam1")
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 1 || visits[0].VehicleID != "v" {
		t.Fatalf("visits = %+v", visits)
	}
	v := visits[0]
	if v.Exit <= v.Enter {
		t.Errorf("visit interval = %+v", v)
	}
	// The vehicle passes the camera around t=10s.
	if v.Enter > 12*time.Second || v.Exit < 8*time.Second {
		t.Errorf("visit window = [%v, %v], want around 10s", v.Enter, v.Exit)
	}
}

func TestTwoSeparateVisits(t *testing.T) {
	w, ids := newCorridorWorld(t)
	// Same vehicle passes the camera twice: out and back.
	route := []roadnet.NodeID{ids[0], ids[1], ids[2], ids[1], ids[0]}
	if err := w.AddVehicle(VehicleSpec{ID: "v", Color: imaging.Blue, SpeedMPS: 20, Route: route}); err != nil {
		t.Fatal(err)
	}
	cam, err := w.AddCamera(DefaultCameraSpec("cam1", nodePos(t, w, ids[1]), 0), func(*vision.Frame) {})
	if err != nil {
		t.Fatal(err)
	}
	done, err := w.VehicleDone("v")
	if err != nil {
		t.Fatal(err)
	}
	for ts := time.Duration(0); ts < done; ts += 100 * time.Millisecond {
		cam.Render(ts)
	}
	visits := cam.Visits()
	if len(visits) != 2 {
		t.Errorf("visits = %+v, want 2 passes", visits)
	}
}

func TestStopCamera(t *testing.T) {
	w, ids := newCorridorWorld(t)
	frames := 0
	_, err := w.AddCamera(DefaultCameraSpec("cam1", nodePos(t, w, ids[0]), 0), func(*vision.Frame) { frames++ })
	if err != nil {
		t.Fatal(err)
	}
	w.StartCameras()
	w.Sim().RunUntil(2 * time.Second)
	countAtStop := frames
	if err := w.StopCamera("cam1"); err != nil {
		t.Fatal(err)
	}
	w.Sim().RunUntil(10 * time.Second)
	if frames != countAtStop {
		t.Errorf("frames after stop: %d -> %d", countAtStop, frames)
	}
	if err := w.StopCamera("ghost"); err == nil {
		t.Error("unknown camera accepted")
	}
}

func TestAddCameraValidation(t *testing.T) {
	w, ids := newCorridorWorld(t)
	pos := nodePos(t, w, ids[0])
	if _, err := w.AddCamera(CameraSpec{ID: "", Position: pos, FPS: 15, Width: 10, Height: 10, PxPerMeter: 1}, func(*vision.Frame) {}); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := w.AddCamera(DefaultCameraSpec("c", pos, 0), nil); err == nil {
		t.Error("nil consumer accepted")
	}
	bad := DefaultCameraSpec("c", pos, 0)
	bad.FPS = 0
	if _, err := w.AddCamera(bad, func(*vision.Frame) {}); err == nil {
		t.Error("zero FPS accepted")
	}
	if _, err := w.AddCamera(DefaultCameraSpec("c", pos, 0), func(*vision.Frame) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddCamera(DefaultCameraSpec("c", pos, 0), func(*vision.Frame) {}); err == nil {
		t.Error("duplicate camera accepted")
	}
}

func TestPaletteColorsDistinct(t *testing.T) {
	seen := make(map[imaging.Color]bool)
	for i := 0; i < 24; i++ {
		c := PaletteColor(i)
		if seen[c] {
			t.Errorf("palette color %d repeats: %+v", i, c)
		}
		seen[c] = true
	}
}

func TestRandomRoute(t *testing.T) {
	g, sites, err := roadnet.Campus()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	route, err := RandomRoute(g, rng, sites[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) < 2 {
		t.Fatalf("route = %v", route)
	}
	for i := 0; i+1 < len(route); i++ {
		if !g.HasEdge(route[i], route[i+1]) {
			t.Fatalf("route uses missing lane %d->%d", route[i], route[i+1])
		}
	}
	// No immediate U-turns on the campus grid (alternatives always exist).
	for i := 0; i+2 < len(route); i++ {
		if route[i] == route[i+2] {
			t.Errorf("U-turn at leg %d: %v", i, route[:i+3])
		}
	}
	if _, err := RandomRoute(g, rng, sites[0], 0); err == nil {
		t.Error("zero legs accepted")
	}
}

func TestRenderDeterministic(t *testing.T) {
	mk := func() *vision.Frame {
		w, ids := newCorridorWorld(t)
		if err := w.AddVehicle(VehicleSpec{ID: "v", Color: imaging.Red, SpeedMPS: 20, Route: ids}); err != nil {
			t.Fatal(err)
		}
		cam, err := w.AddCamera(DefaultCameraSpec("cam1", nodePos(t, w, ids[1]), 0), func(*vision.Frame) {})
		if err != nil {
			t.Fatal(err)
		}
		return cam.Render(10 * time.Second)
	}
	a, b := mk(), mk()
	if !a.Image.Equal(b.Image) {
		t.Error("render not deterministic")
	}
}
