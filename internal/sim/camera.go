package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/imaging"
	"repro/internal/vision"
)

// CameraSpec describes one simulated camera.
type CameraSpec struct {
	ID string
	// Position is the camera's geographic location (typically an
	// intersection it watches).
	Position geo.Point
	// HeadingDeg is the compass bearing that "up" in the image
	// corresponds to.
	HeadingDeg float64
	// FPS is the frame rate (the paper's gateway sustains ~15).
	FPS float64
	// Width and Height are the frame dimensions in pixels.
	Width, Height int
	// PxPerMeter scales the world into the image; it determines the
	// effective field-of-view range.
	PxPerMeter float64
	// Seed varies the background texture per camera.
	Seed uint64
	// BrightnessOffset shifts every rendered pixel by this signed amount
	// per channel, modeling per-camera exposure differences — the reason
	// the same vehicle's color histogram differs across real cameras.
	BrightnessOffset int
}

// DefaultCameraSpec fills in the common parameters for a camera at pos.
func DefaultCameraSpec(id string, pos geo.Point, headingDeg float64) CameraSpec {
	return CameraSpec{
		ID:         id,
		Position:   pos,
		HeadingDeg: headingDeg,
		FPS:        15,
		Width:      256,
		Height:     192,
		PxPerMeter: 4,
		Seed:       hashString(id),
	}
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// FrameConsumer receives each rendered frame (typically a camera node's
// ProcessFrame).
type FrameConsumer func(f *vision.Frame)

// Visit is one ground-truth pass of a vehicle through a camera's field of
// view.
type Visit struct {
	VehicleID string
	Enter     time.Duration
	Exit      time.Duration
}

// visitTracker accumulates visibility intervals per vehicle.
type visitTracker struct {
	open   map[string]*Visit
	closed []Visit
	gap    time.Duration
}

func newVisitTracker(gap time.Duration) *visitTracker {
	return &visitTracker{open: make(map[string]*Visit), gap: gap}
}

func (vt *visitTracker) observe(vehicleID string, now time.Duration) {
	if v, ok := vt.open[vehicleID]; ok {
		if now-v.Exit <= vt.gap {
			v.Exit = now
			return
		}
		vt.closed = append(vt.closed, *v)
	}
	vt.open[vehicleID] = &Visit{VehicleID: vehicleID, Enter: now, Exit: now}
}

func (vt *visitTracker) snapshot() []Visit {
	out := append([]Visit(nil), vt.closed...)
	for _, v := range vt.open {
		out = append(out, *v)
	}
	return out
}

// vehicleFootprintMeters are the nominal car dimensions rendered into
// frames.
const (
	vehicleLengthM = 4.5
	vehicleWidthM  = 2.2
)

// Camera is one simulated camera: it renders frames of the world on a
// fixed tick and feeds them to its consumer.
type Camera struct {
	spec     CameraSpec
	world    *World
	consumer FrameConsumer
	seq      int64
	ticker   *des.Ticker
	visits   *visitTracker
}

// AddCamera installs a camera; its ticks begin when StartCameras runs.
func (w *World) AddCamera(spec CameraSpec, consumer FrameConsumer) (*Camera, error) {
	if spec.ID == "" {
		return nil, errors.New("sim: camera id required")
	}
	if _, ok := w.cameras[spec.ID]; ok {
		return nil, fmt.Errorf("sim: camera %q already exists", spec.ID)
	}
	if consumer == nil {
		return nil, errors.New("sim: camera consumer required")
	}
	if spec.FPS <= 0 || spec.Width <= 0 || spec.Height <= 0 || spec.PxPerMeter <= 0 {
		return nil, fmt.Errorf("sim: camera %q has invalid geometry/rate", spec.ID)
	}
	c := &Camera{
		spec:     spec,
		world:    w,
		consumer: consumer,
		visits:   newVisitTracker(2 * time.Second),
	}
	w.cameras[spec.ID] = c
	return c, nil
}

// StartCameras begins every camera's frame ticks. Cameras start in
// sorted ID order so their tick events enter the simulator — and
// same-timestamp frames therefore fire — in an order that is a pure
// function of the camera set, keeping runs reproducible.
func (w *World) StartCameras() {
	for _, id := range w.cameraIDs() {
		w.cameras[id].start()
	}
}

// StopCameras cancels every camera's ticks (so Run can terminate).
func (w *World) StopCameras() {
	for _, id := range w.cameraIDs() {
		w.cameras[id].stop()
	}
}

// cameraIDs returns the installed camera IDs, sorted.
func (w *World) cameraIDs() []string {
	out := make([]string, 0, len(w.cameras))
	for id := range w.cameras {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// StopCamera stops a single camera, simulating its failure.
func (w *World) StopCamera(id string) error {
	c, ok := w.cameras[id]
	if !ok {
		return fmt.Errorf("sim: camera %q not found", id)
	}
	c.stop()
	return nil
}

// StartCamera restarts a single stopped camera, simulating a node
// recovery. Starting a camera that is already ticking is a no-op, so
// recovery code does not need to track whether the failure ever
// happened.
func (w *World) StartCamera(id string) error {
	c, ok := w.cameras[id]
	if !ok {
		return fmt.Errorf("sim: camera %q not found", id)
	}
	c.start()
	return nil
}

func (c *Camera) start() {
	if c.ticker != nil {
		return
	}
	interval := time.Duration(float64(time.Second) / c.spec.FPS)
	c.ticker = c.world.sim.Every(interval, c.tick)
}

func (c *Camera) stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

// tick renders one frame and hands it to the consumer.
func (c *Camera) tick() {
	now := c.world.sim.Now()
	f := c.Render(now)
	c.consumer(f)
}

// Render produces the camera's frame at virtual time now, with
// ground-truth annotations, and records vehicle visits.
func (c *Camera) Render(now time.Duration) *vision.Frame {
	img := imaging.MustNewFrame(c.spec.Width, c.spec.Height)
	img.FillTexturedBackground(imaging.Color{R: 96, G: 96, B: 100}, c.spec.Seed)

	f := &vision.Frame{
		CameraID: c.spec.ID,
		Seq:      c.seq,
		Time:     c.world.sim.Epoch().Add(now),
		Image:    img,
	}
	c.seq++

	h := headingRadians(c.spec.HeadingDeg)
	sinH, cosH := math.Sin(h), math.Cos(h)
	ppm := c.spec.PxPerMeter

	carW := max(4, int(math.Round(vehicleLengthM*ppm)))
	carH := max(3, int(math.Round(vehicleWidthM*ppm)))

	// Vehicles render in sorted ID order: when two boxes overlap, draw
	// order decides which color wins the shared pixels, so iterating the
	// map directly would make frame content — and every detection and
	// re-id decision downstream — vary run to run.
	for _, vid := range c.world.vehicleIDs() {
		v := c.world.vehicles[vid]
		pos, visible := v.position(c.world.graph, now)
		if !visible {
			continue
		}
		east, north := planarOffsetMeters(c.spec.Position, pos)
		right := east*cosH - north*sinH
		forward := east*sinH + north*cosH
		x := float64(c.spec.Width)/2 + right*ppm
		y := float64(c.spec.Height)/2 - forward*ppm
		box := imaging.Rect{
			X: int(math.Round(x)) - carW/2,
			Y: int(math.Round(y)) - carH/2,
			W: carW,
			H: carH,
		}
		// The vehicle is in-frame when its centroid is; partially visible
		// boxes at the border are clipped by the detector anyway.
		if x < 0 || x >= float64(c.spec.Width) || y < 0 || y >= float64(c.spec.Height) {
			continue
		}
		img.FillRect(box, shiftColor(v.spec.Color, c.spec.BrightnessOffset))
		f.Truth = append(f.Truth, vision.TruthObject{
			ID:    v.spec.ID,
			Label: vision.LabelCar,
			Box:   box,
		})
		c.visits.observe(v.spec.ID, now)
	}
	return f
}

// Visits returns the ground-truth vehicle passes recorded so far.
func (c *Camera) Visits() []Visit {
	return c.visits.snapshot()
}

// Visits returns the recorded ground truth for one camera.
func (w *World) Visits(cameraID string) ([]Visit, error) {
	c, ok := w.cameras[cameraID]
	if !ok {
		return nil, fmt.Errorf("sim: camera %q not found", cameraID)
	}
	return c.Visits(), nil
}

// Camera returns an installed camera by ID.
func (w *World) Camera(id string) (*Camera, error) {
	c, ok := w.cameras[id]
	if !ok {
		return nil, fmt.Errorf("sim: camera %q not found", id)
	}
	return c, nil
}

// Spec returns the camera's spec.
func (c *Camera) Spec() CameraSpec { return c.spec }

// shiftColor applies a per-camera exposure offset with clamping.
func shiftColor(c imaging.Color, offset int) imaging.Color {
	if offset == 0 {
		return c
	}
	clamp := func(v int) uint8 {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v)
	}
	return imaging.Color{
		R: clamp(int(c.R) + offset),
		G: clamp(int(c.G) + offset),
		B: clamp(int(c.B) + offset),
	}
}
