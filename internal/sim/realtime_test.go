package sim

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/imaging"
	"repro/internal/roadnet"
	"repro/internal/vision"
)

func newRealtimeFixture(t *testing.T) *Camera {
	t.Helper()
	g, ids, err := roadnet.Corridor(3, 200, geo.Point{Lat: 33.7756, Lon: -84.3963})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(WorldConfig{Sim: des.New(epoch), Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddVehicle(VehicleSpec{ID: "v", Color: imaging.Red, SpeedMPS: 20, Route: ids}); err != nil {
		t.Fatal(err)
	}
	node, err := g.Node(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	cam, err := w.AddCamera(DefaultCameraSpec("rt", node.Pos, 0), func(*vision.Frame) {})
	if err != nil {
		t.Fatal(err)
	}
	return cam
}

func TestRealtimeSourceValidation(t *testing.T) {
	cam := newRealtimeFixture(t)
	if _, err := NewRealtimeSource(nil, time.Second); err == nil {
		t.Error("nil camera accepted")
	}
	if _, err := NewRealtimeSource(cam, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRealtimeSourceStreamsAndEnds(t *testing.T) {
	cam := newRealtimeFixture(t)
	// Virtual clock injection: no real sleeping.
	now := time.Unix(1000, 0)
	src, err := NewRealtimeSourceAt(cam, now, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var slept time.Duration
	src.now = func() time.Time { return now }
	src.sleep = func(d time.Duration) {
		slept += d
		now = now.Add(d)
	}

	var frames int
	var lastSeq int64 = -1
	for {
		f, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq != lastSeq+1 {
			t.Fatalf("seq jumped %d -> %d", lastSeq, f.Seq)
		}
		lastSeq = f.Seq
		frames++
		if frames > 100 {
			t.Fatal("stream never ended")
		}
	}
	// 15 FPS over 1 s plus the frame at t=0: 16 frames.
	if frames < 15 || frames > 16 {
		t.Errorf("frames = %d, want ~15", frames)
	}
	if slept < 900*time.Millisecond {
		t.Errorf("slept %v, should pace frames across the second", slept)
	}
}

func TestRealtimeSourceFutureEpoch(t *testing.T) {
	cam := newRealtimeFixture(t)
	now := time.Unix(1000, 0)
	start := now.Add(2 * time.Second) // epoch in the future
	src, err := NewRealtimeSourceAt(cam, start, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var firstSleep time.Duration
	src.now = func() time.Time { return now }
	src.sleep = func(d time.Duration) {
		if firstSleep == 0 {
			firstSleep = d
		}
		now = now.Add(d)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if firstSleep < 1900*time.Millisecond {
		t.Errorf("first sleep = %v, should wait for the shared epoch", firstSleep)
	}
}
